file(REMOVE_RECURSE
  "CMakeFiles/distributed_audit.dir/distributed_audit.cpp.o"
  "CMakeFiles/distributed_audit.dir/distributed_audit.cpp.o.d"
  "distributed_audit"
  "distributed_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
