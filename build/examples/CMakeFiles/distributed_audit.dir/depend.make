# Empty dependencies file for distributed_audit.
# This may be replaced when dependencies are built.
