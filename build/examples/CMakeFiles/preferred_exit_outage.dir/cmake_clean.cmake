file(REMOVE_RECURSE
  "CMakeFiles/preferred_exit_outage.dir/preferred_exit_outage.cpp.o"
  "CMakeFiles/preferred_exit_outage.dir/preferred_exit_outage.cpp.o.d"
  "preferred_exit_outage"
  "preferred_exit_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preferred_exit_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
