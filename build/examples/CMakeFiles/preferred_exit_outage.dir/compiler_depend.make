# Empty compiler generated dependencies file for preferred_exit_outage.
# This may be replaced when dependencies are built.
