
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hbgctl.cpp" "examples/CMakeFiles/hbgctl.dir/hbgctl.cpp.o" "gcc" "examples/CMakeFiles/hbgctl.dir/hbgctl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_dverify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_model_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_hbr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_ospf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
