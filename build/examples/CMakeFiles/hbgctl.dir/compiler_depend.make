# Empty compiler generated dependencies file for hbgctl.
# This may be replaced when dependencies are built.
