file(REMOVE_RECURSE
  "CMakeFiles/hbgctl.dir/hbgctl.cpp.o"
  "CMakeFiles/hbgctl.dir/hbgctl.cpp.o.d"
  "hbgctl"
  "hbgctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbgctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
