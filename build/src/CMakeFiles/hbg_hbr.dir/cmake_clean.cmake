file(REMOVE_RECURSE
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/incremental.cpp.o"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/incremental.cpp.o.d"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/inference.cpp.o"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/inference.cpp.o.d"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/pattern_miner.cpp.o"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/pattern_miner.cpp.o.d"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/rule_matcher.cpp.o"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/rule_matcher.cpp.o.d"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/rules.cpp.o"
  "CMakeFiles/hbg_hbr.dir/hbguard/hbr/rules.cpp.o.d"
  "libhbg_hbr.a"
  "libhbg_hbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_hbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
