
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbguard/hbr/incremental.cpp" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/incremental.cpp.o" "gcc" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/incremental.cpp.o.d"
  "/root/repo/src/hbguard/hbr/inference.cpp" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/inference.cpp.o" "gcc" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/inference.cpp.o.d"
  "/root/repo/src/hbguard/hbr/pattern_miner.cpp" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/pattern_miner.cpp.o" "gcc" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/pattern_miner.cpp.o.d"
  "/root/repo/src/hbguard/hbr/rule_matcher.cpp" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/rule_matcher.cpp.o" "gcc" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/rule_matcher.cpp.o.d"
  "/root/repo/src/hbguard/hbr/rules.cpp" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/rules.cpp.o" "gcc" "src/CMakeFiles/hbg_hbr.dir/hbguard/hbr/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_ospf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
