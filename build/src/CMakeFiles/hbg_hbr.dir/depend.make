# Empty dependencies file for hbg_hbr.
# This may be replaced when dependencies are built.
