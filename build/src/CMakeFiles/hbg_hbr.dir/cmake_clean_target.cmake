file(REMOVE_RECURSE
  "libhbg_hbr.a"
)
