# Empty compiler generated dependencies file for hbg_hbr.
# This may be replaced when dependencies are built.
