file(REMOVE_RECURSE
  "libhbg_model_verifier.a"
)
