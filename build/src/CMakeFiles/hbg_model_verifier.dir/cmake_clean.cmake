file(REMOVE_RECURSE
  "CMakeFiles/hbg_model_verifier.dir/hbguard/model_verifier/model.cpp.o"
  "CMakeFiles/hbg_model_verifier.dir/hbguard/model_verifier/model.cpp.o.d"
  "libhbg_model_verifier.a"
  "libhbg_model_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_model_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
