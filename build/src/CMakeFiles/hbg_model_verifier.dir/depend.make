# Empty dependencies file for hbg_model_verifier.
# This may be replaced when dependencies are built.
