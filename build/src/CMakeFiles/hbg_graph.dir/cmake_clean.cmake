file(REMOVE_RECURSE
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/builder.cpp.o"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/builder.cpp.o.d"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/graph.cpp.o"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/graph.cpp.o.d"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/incremental.cpp.o"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/incremental.cpp.o.d"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/render.cpp.o"
  "CMakeFiles/hbg_graph.dir/hbguard/hbg/render.cpp.o.d"
  "libhbg_graph.a"
  "libhbg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
