file(REMOVE_RECURSE
  "libhbg_graph.a"
)
