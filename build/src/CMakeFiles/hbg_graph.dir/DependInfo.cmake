
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbguard/hbg/builder.cpp" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/builder.cpp.o" "gcc" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/builder.cpp.o.d"
  "/root/repo/src/hbguard/hbg/graph.cpp" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/graph.cpp.o" "gcc" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/graph.cpp.o.d"
  "/root/repo/src/hbguard/hbg/incremental.cpp" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/incremental.cpp.o" "gcc" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/incremental.cpp.o.d"
  "/root/repo/src/hbguard/hbg/render.cpp" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/render.cpp.o" "gcc" "src/CMakeFiles/hbg_graph.dir/hbguard/hbg/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_hbr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_ospf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
