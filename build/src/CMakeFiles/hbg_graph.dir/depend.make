# Empty dependencies file for hbg_graph.
# This may be replaced when dependencies are built.
