# Empty dependencies file for hbg_sim.
# This may be replaced when dependencies are built.
