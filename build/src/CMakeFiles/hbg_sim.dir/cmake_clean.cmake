file(REMOVE_RECURSE
  "CMakeFiles/hbg_sim.dir/hbguard/sim/network.cpp.o"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/network.cpp.o.d"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/router.cpp.o"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/router.cpp.o.d"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/scenario.cpp.o"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/scenario.cpp.o.d"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/workload.cpp.o"
  "CMakeFiles/hbg_sim.dir/hbguard/sim/workload.cpp.o.d"
  "libhbg_sim.a"
  "libhbg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
