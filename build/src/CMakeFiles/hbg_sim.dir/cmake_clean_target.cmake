file(REMOVE_RECURSE
  "libhbg_sim.a"
)
