
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbguard/net/ip.cpp" "src/CMakeFiles/hbg_net.dir/hbguard/net/ip.cpp.o" "gcc" "src/CMakeFiles/hbg_net.dir/hbguard/net/ip.cpp.o.d"
  "/root/repo/src/hbguard/net/prefix_trie.cpp" "src/CMakeFiles/hbg_net.dir/hbguard/net/prefix_trie.cpp.o" "gcc" "src/CMakeFiles/hbg_net.dir/hbguard/net/prefix_trie.cpp.o.d"
  "/root/repo/src/hbguard/net/topology.cpp" "src/CMakeFiles/hbg_net.dir/hbguard/net/topology.cpp.o" "gcc" "src/CMakeFiles/hbg_net.dir/hbguard/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
