file(REMOVE_RECURSE
  "CMakeFiles/hbg_net.dir/hbguard/net/ip.cpp.o"
  "CMakeFiles/hbg_net.dir/hbguard/net/ip.cpp.o.d"
  "CMakeFiles/hbg_net.dir/hbguard/net/prefix_trie.cpp.o"
  "CMakeFiles/hbg_net.dir/hbguard/net/prefix_trie.cpp.o.d"
  "CMakeFiles/hbg_net.dir/hbguard/net/topology.cpp.o"
  "CMakeFiles/hbg_net.dir/hbguard/net/topology.cpp.o.d"
  "libhbg_net.a"
  "libhbg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
