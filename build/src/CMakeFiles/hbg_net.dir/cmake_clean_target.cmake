file(REMOVE_RECURSE
  "libhbg_net.a"
)
