# Empty dependencies file for hbg_net.
# This may be replaced when dependencies are built.
