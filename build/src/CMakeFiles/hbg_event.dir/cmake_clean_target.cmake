file(REMOVE_RECURSE
  "libhbg_event.a"
)
