# Empty compiler generated dependencies file for hbg_event.
# This may be replaced when dependencies are built.
