file(REMOVE_RECURSE
  "CMakeFiles/hbg_event.dir/hbguard/event/simulator.cpp.o"
  "CMakeFiles/hbg_event.dir/hbguard/event/simulator.cpp.o.d"
  "libhbg_event.a"
  "libhbg_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
