file(REMOVE_RECURSE
  "libhbg_capture.a"
)
