# Empty dependencies file for hbg_capture.
# This may be replaced when dependencies are built.
