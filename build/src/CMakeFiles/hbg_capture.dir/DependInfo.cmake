
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbguard/capture/io_record.cpp" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/io_record.cpp.o" "gcc" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/io_record.cpp.o.d"
  "/root/repo/src/hbguard/capture/tap.cpp" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/tap.cpp.o" "gcc" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/tap.cpp.o.d"
  "/root/repo/src/hbguard/capture/trace_io.cpp" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/trace_io.cpp.o" "gcc" "src/CMakeFiles/hbg_capture.dir/hbguard/capture/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_rib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_ospf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
