file(REMOVE_RECURSE
  "CMakeFiles/hbg_capture.dir/hbguard/capture/io_record.cpp.o"
  "CMakeFiles/hbg_capture.dir/hbguard/capture/io_record.cpp.o.d"
  "CMakeFiles/hbg_capture.dir/hbguard/capture/tap.cpp.o"
  "CMakeFiles/hbg_capture.dir/hbguard/capture/tap.cpp.o.d"
  "CMakeFiles/hbg_capture.dir/hbguard/capture/trace_io.cpp.o"
  "CMakeFiles/hbg_capture.dir/hbguard/capture/trace_io.cpp.o.d"
  "libhbg_capture.a"
  "libhbg_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
