file(REMOVE_RECURSE
  "libhbg_util.a"
)
