# Empty dependencies file for hbg_util.
# This may be replaced when dependencies are built.
