file(REMOVE_RECURSE
  "CMakeFiles/hbg_util.dir/hbguard/util/logging.cpp.o"
  "CMakeFiles/hbg_util.dir/hbguard/util/logging.cpp.o.d"
  "CMakeFiles/hbg_util.dir/hbguard/util/rng.cpp.o"
  "CMakeFiles/hbg_util.dir/hbguard/util/rng.cpp.o.d"
  "CMakeFiles/hbg_util.dir/hbguard/util/strings.cpp.o"
  "CMakeFiles/hbg_util.dir/hbguard/util/strings.cpp.o.d"
  "libhbg_util.a"
  "libhbg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
