file(REMOVE_RECURSE
  "libhbg_repair.a"
)
