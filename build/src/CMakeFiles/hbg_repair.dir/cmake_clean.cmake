file(REMOVE_RECURSE
  "CMakeFiles/hbg_repair.dir/hbguard/repair/blocker.cpp.o"
  "CMakeFiles/hbg_repair.dir/hbguard/repair/blocker.cpp.o.d"
  "CMakeFiles/hbg_repair.dir/hbguard/repair/early_block.cpp.o"
  "CMakeFiles/hbg_repair.dir/hbguard/repair/early_block.cpp.o.d"
  "CMakeFiles/hbg_repair.dir/hbguard/repair/reverter.cpp.o"
  "CMakeFiles/hbg_repair.dir/hbguard/repair/reverter.cpp.o.d"
  "libhbg_repair.a"
  "libhbg_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
