# Empty dependencies file for hbg_repair.
# This may be replaced when dependencies are built.
