# Empty compiler generated dependencies file for hbg_repair.
# This may be replaced when dependencies are built.
