# Empty dependencies file for hbg_config.
# This may be replaced when dependencies are built.
