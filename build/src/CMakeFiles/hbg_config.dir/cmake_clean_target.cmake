file(REMOVE_RECURSE
  "libhbg_config.a"
)
