
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbguard/config/config.cpp" "src/CMakeFiles/hbg_config.dir/hbguard/config/config.cpp.o" "gcc" "src/CMakeFiles/hbg_config.dir/hbguard/config/config.cpp.o.d"
  "/root/repo/src/hbguard/config/config_store.cpp" "src/CMakeFiles/hbg_config.dir/hbguard/config/config_store.cpp.o" "gcc" "src/CMakeFiles/hbg_config.dir/hbguard/config/config_store.cpp.o.d"
  "/root/repo/src/hbguard/config/parser.cpp" "src/CMakeFiles/hbg_config.dir/hbguard/config/parser.cpp.o" "gcc" "src/CMakeFiles/hbg_config.dir/hbguard/config/parser.cpp.o.d"
  "/root/repo/src/hbguard/config/policy.cpp" "src/CMakeFiles/hbg_config.dir/hbguard/config/policy.cpp.o" "gcc" "src/CMakeFiles/hbg_config.dir/hbguard/config/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
