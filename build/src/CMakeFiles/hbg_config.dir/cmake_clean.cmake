file(REMOVE_RECURSE
  "CMakeFiles/hbg_config.dir/hbguard/config/config.cpp.o"
  "CMakeFiles/hbg_config.dir/hbguard/config/config.cpp.o.d"
  "CMakeFiles/hbg_config.dir/hbguard/config/config_store.cpp.o"
  "CMakeFiles/hbg_config.dir/hbguard/config/config_store.cpp.o.d"
  "CMakeFiles/hbg_config.dir/hbguard/config/parser.cpp.o"
  "CMakeFiles/hbg_config.dir/hbguard/config/parser.cpp.o.d"
  "CMakeFiles/hbg_config.dir/hbguard/config/policy.cpp.o"
  "CMakeFiles/hbg_config.dir/hbguard/config/policy.cpp.o.d"
  "libhbg_config.a"
  "libhbg_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
