# Empty compiler generated dependencies file for hbg_bgp.
# This may be replaced when dependencies are built.
