file(REMOVE_RECURSE
  "libhbg_bgp.a"
)
