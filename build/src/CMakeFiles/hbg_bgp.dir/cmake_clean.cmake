file(REMOVE_RECURSE
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/attributes.cpp.o"
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/attributes.cpp.o.d"
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/decision.cpp.o"
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/decision.cpp.o.d"
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/engine.cpp.o"
  "CMakeFiles/hbg_bgp.dir/hbguard/proto/bgp/engine.cpp.o.d"
  "libhbg_bgp.a"
  "libhbg_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
