file(REMOVE_RECURSE
  "CMakeFiles/hbg_verify.dir/hbguard/verify/eqclass.cpp.o"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/eqclass.cpp.o.d"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/forwarding_graph.cpp.o"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/forwarding_graph.cpp.o.d"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/policy.cpp.o"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/policy.cpp.o.d"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/truth_monitor.cpp.o"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/truth_monitor.cpp.o.d"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/verifier.cpp.o"
  "CMakeFiles/hbg_verify.dir/hbguard/verify/verifier.cpp.o.d"
  "libhbg_verify.a"
  "libhbg_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
