file(REMOVE_RECURSE
  "libhbg_verify.a"
)
