# Empty dependencies file for hbg_verify.
# This may be replaced when dependencies are built.
