file(REMOVE_RECURSE
  "CMakeFiles/hbg_core.dir/hbguard/core/guard.cpp.o"
  "CMakeFiles/hbg_core.dir/hbguard/core/guard.cpp.o.d"
  "CMakeFiles/hbg_core.dir/hbguard/core/report.cpp.o"
  "CMakeFiles/hbg_core.dir/hbguard/core/report.cpp.o.d"
  "libhbg_core.a"
  "libhbg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
