# Empty compiler generated dependencies file for hbg_core.
# This may be replaced when dependencies are built.
