file(REMOVE_RECURSE
  "libhbg_core.a"
)
