file(REMOVE_RECURSE
  "CMakeFiles/hbg_rib.dir/hbguard/rib/fib.cpp.o"
  "CMakeFiles/hbg_rib.dir/hbguard/rib/fib.cpp.o.d"
  "CMakeFiles/hbg_rib.dir/hbguard/rib/redistribution.cpp.o"
  "CMakeFiles/hbg_rib.dir/hbguard/rib/redistribution.cpp.o.d"
  "CMakeFiles/hbg_rib.dir/hbguard/rib/rib.cpp.o"
  "CMakeFiles/hbg_rib.dir/hbguard/rib/rib.cpp.o.d"
  "libhbg_rib.a"
  "libhbg_rib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_rib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
