# Empty dependencies file for hbg_rib.
# This may be replaced when dependencies are built.
