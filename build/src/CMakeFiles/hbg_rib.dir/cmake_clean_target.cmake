file(REMOVE_RECURSE
  "libhbg_rib.a"
)
