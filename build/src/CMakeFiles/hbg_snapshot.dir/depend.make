# Empty dependencies file for hbg_snapshot.
# This may be replaced when dependencies are built.
