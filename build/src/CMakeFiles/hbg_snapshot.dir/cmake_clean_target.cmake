file(REMOVE_RECURSE
  "libhbg_snapshot.a"
)
