file(REMOVE_RECURSE
  "CMakeFiles/hbg_snapshot.dir/hbguard/snapshot/consistent.cpp.o"
  "CMakeFiles/hbg_snapshot.dir/hbguard/snapshot/consistent.cpp.o.d"
  "CMakeFiles/hbg_snapshot.dir/hbguard/snapshot/naive.cpp.o"
  "CMakeFiles/hbg_snapshot.dir/hbguard/snapshot/naive.cpp.o.d"
  "libhbg_snapshot.a"
  "libhbg_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
