file(REMOVE_RECURSE
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/engine.cpp.o"
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/engine.cpp.o.d"
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/lsdb.cpp.o"
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/lsdb.cpp.o.d"
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/spf.cpp.o"
  "CMakeFiles/hbg_ospf.dir/hbguard/proto/ospf/spf.cpp.o.d"
  "libhbg_ospf.a"
  "libhbg_ospf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_ospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
