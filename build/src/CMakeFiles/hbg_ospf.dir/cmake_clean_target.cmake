file(REMOVE_RECURSE
  "libhbg_ospf.a"
)
