# Empty compiler generated dependencies file for hbg_ospf.
# This may be replaced when dependencies are built.
