# Empty compiler generated dependencies file for hbg_dverify.
# This may be replaced when dependencies are built.
