file(REMOVE_RECURSE
  "libhbg_dverify.a"
)
