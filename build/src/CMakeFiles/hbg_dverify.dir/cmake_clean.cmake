file(REMOVE_RECURSE
  "CMakeFiles/hbg_dverify.dir/hbguard/dverify/distributed.cpp.o"
  "CMakeFiles/hbg_dverify.dir/hbguard/dverify/distributed.cpp.o.d"
  "libhbg_dverify.a"
  "libhbg_dverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_dverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
