file(REMOVE_RECURSE
  "CMakeFiles/hbg_provenance.dir/hbguard/provenance/distributed_hbg.cpp.o"
  "CMakeFiles/hbg_provenance.dir/hbguard/provenance/distributed_hbg.cpp.o.d"
  "CMakeFiles/hbg_provenance.dir/hbguard/provenance/root_cause.cpp.o"
  "CMakeFiles/hbg_provenance.dir/hbguard/provenance/root_cause.cpp.o.d"
  "libhbg_provenance.a"
  "libhbg_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbg_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
