file(REMOVE_RECURSE
  "libhbg_provenance.a"
)
