# Empty compiler generated dependencies file for hbg_provenance.
# This may be replaced when dependencies are built.
