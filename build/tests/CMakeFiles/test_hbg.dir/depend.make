# Empty dependencies file for test_hbg.
# This may be replaced when dependencies are built.
