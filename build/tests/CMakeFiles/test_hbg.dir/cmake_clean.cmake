file(REMOVE_RECURSE
  "CMakeFiles/test_hbg.dir/test_hbg.cpp.o"
  "CMakeFiles/test_hbg.dir/test_hbg.cpp.o.d"
  "test_hbg"
  "test_hbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
