file(REMOVE_RECURSE
  "CMakeFiles/test_rib.dir/test_rib.cpp.o"
  "CMakeFiles/test_rib.dir/test_rib.cpp.o.d"
  "test_rib"
  "test_rib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
