# Empty dependencies file for test_rib.
# This may be replaced when dependencies are built.
