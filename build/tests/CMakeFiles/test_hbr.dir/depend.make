# Empty dependencies file for test_hbr.
# This may be replaced when dependencies are built.
