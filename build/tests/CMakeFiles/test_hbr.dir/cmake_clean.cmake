file(REMOVE_RECURSE
  "CMakeFiles/test_hbr.dir/test_hbr.cpp.o"
  "CMakeFiles/test_hbr.dir/test_hbr.cpp.o.d"
  "test_hbr"
  "test_hbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
