# Empty compiler generated dependencies file for test_ospf.
# This may be replaced when dependencies are built.
