file(REMOVE_RECURSE
  "CMakeFiles/test_ospf.dir/test_ospf.cpp.o"
  "CMakeFiles/test_ospf.dir/test_ospf.cpp.o.d"
  "test_ospf"
  "test_ospf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ospf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
