# Empty dependencies file for test_dverify.
# This may be replaced when dependencies are built.
