file(REMOVE_RECURSE
  "CMakeFiles/test_dverify.dir/test_dverify.cpp.o"
  "CMakeFiles/test_dverify.dir/test_dverify.cpp.o.d"
  "test_dverify"
  "test_dverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
