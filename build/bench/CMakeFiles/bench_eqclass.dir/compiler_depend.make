# Empty compiler generated dependencies file for bench_eqclass.
# This may be replaced when dependencies are built.
