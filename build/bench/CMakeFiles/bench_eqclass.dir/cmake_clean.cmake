file(REMOVE_RECURSE
  "CMakeFiles/bench_eqclass.dir/bench_eqclass.cpp.o"
  "CMakeFiles/bench_eqclass.dir/bench_eqclass.cpp.o.d"
  "bench_eqclass"
  "bench_eqclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eqclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
