file(REMOVE_RECURSE
  "CMakeFiles/bench_hbr_inference.dir/bench_hbr_inference.cpp.o"
  "CMakeFiles/bench_hbr_inference.dir/bench_hbr_inference.cpp.o.d"
  "bench_hbr_inference"
  "bench_hbr_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hbr_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
