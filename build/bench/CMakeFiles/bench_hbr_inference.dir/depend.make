# Empty dependencies file for bench_hbr_inference.
# This may be replaced when dependencies are built.
