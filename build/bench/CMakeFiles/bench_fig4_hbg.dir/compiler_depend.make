# Empty compiler generated dependencies file for bench_fig4_hbg.
# This may be replaced when dependencies are built.
