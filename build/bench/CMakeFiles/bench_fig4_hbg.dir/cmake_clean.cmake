file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hbg.dir/bench_fig4_hbg.cpp.o"
  "CMakeFiles/bench_fig4_hbg.dir/bench_fig4_hbg.cpp.o.d"
  "bench_fig4_hbg"
  "bench_fig4_hbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
