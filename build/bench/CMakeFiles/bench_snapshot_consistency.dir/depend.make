# Empty dependencies file for bench_snapshot_consistency.
# This may be replaced when dependencies are built.
