file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_consistency.dir/bench_snapshot_consistency.cpp.o"
  "CMakeFiles/bench_snapshot_consistency.dir/bench_snapshot_consistency.cpp.o.d"
  "bench_snapshot_consistency"
  "bench_snapshot_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
