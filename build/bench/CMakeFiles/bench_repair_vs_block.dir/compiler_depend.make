# Empty compiler generated dependencies file for bench_repair_vs_block.
# This may be replaced when dependencies are built.
