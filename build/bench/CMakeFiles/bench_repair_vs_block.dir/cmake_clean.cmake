file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_vs_block.dir/bench_repair_vs_block.cpp.o"
  "CMakeFiles/bench_repair_vs_block.dir/bench_repair_vs_block.cpp.o.d"
  "bench_repair_vs_block"
  "bench_repair_vs_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_vs_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
