file(REMOVE_RECURSE
  "CMakeFiles/bench_model_gap.dir/bench_model_gap.cpp.o"
  "CMakeFiles/bench_model_gap.dir/bench_model_gap.cpp.o.d"
  "bench_model_gap"
  "bench_model_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
