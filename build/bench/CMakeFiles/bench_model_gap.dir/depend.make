# Empty dependencies file for bench_model_gap.
# This may be replaced when dependencies are built.
