# Empty compiler generated dependencies file for bench_fig1c_snapshot_race.
# This may be replaced when dependencies are built.
