file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_snapshot_race.dir/bench_fig1c_snapshot_race.cpp.o"
  "CMakeFiles/bench_fig1c_snapshot_race.dir/bench_fig1c_snapshot_race.cpp.o.d"
  "bench_fig1c_snapshot_race"
  "bench_fig1c_snapshot_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_snapshot_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
