file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_verify.dir/bench_distributed_verify.cpp.o"
  "CMakeFiles/bench_distributed_verify.dir/bench_distributed_verify.cpp.o.d"
  "bench_distributed_verify"
  "bench_distributed_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
