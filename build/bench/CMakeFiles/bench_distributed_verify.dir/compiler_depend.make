# Empty compiler generated dependencies file for bench_distributed_verify.
# This may be replaced when dependencies are built.
