file(REMOVE_RECURSE
  "CMakeFiles/bench_hbg_scale.dir/bench_hbg_scale.cpp.o"
  "CMakeFiles/bench_hbg_scale.dir/bench_hbg_scale.cpp.o.d"
  "bench_hbg_scale"
  "bench_hbg_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hbg_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
