# Empty compiler generated dependencies file for bench_hbg_scale.
# This may be replaced when dependencies are built.
