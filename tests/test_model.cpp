#include <gtest/gtest.h>

#include "hbguard/model_verifier/model.hpp"
#include "hbguard/verify/forwarding_graph.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

std::vector<AssumedExternalRoute> paper_routes(const PaperScenario& scenario) {
  return {
      {scenario.r1, PaperScenario::kUplink1, scenario.prefix_p,
       {PaperScenario::kUplink1As, 64999}, 0},
      {scenario.r2, PaperScenario::kUplink2, scenario.prefix_p,
       {PaperScenario::kUplink2As, 64999}, 0},
  };
}

TEST(ModelVerifier, MatchesSimulatorOnPlainLocalPrefScenario) {
  // Fig. 1/2 uses only local-pref, which the simplified model understands:
  // prediction and reality agree.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  ControlPlaneModel model;
  auto predicted = model.predict(scenario.network->topology(), scenario.network->configs(),
                                 paper_routes(scenario));
  auto actual = take_instant_snapshot(*scenario.network);
  EXPECT_EQ(count_fib_divergence(predicted, actual, {scenario.prefix_p}), 0u);
}

TEST(ModelVerifier, TracksConfigChanges) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  ControlPlaneModel model;
  auto predicted = model.predict(scenario.network->topology(), scenario.network->configs(),
                                 paper_routes(scenario));
  auto actual = take_instant_snapshot(*scenario.network);
  // The model reads the *current* configs, so it follows the LP change.
  EXPECT_EQ(count_fib_divergence(predicted, actual, {scenario.prefix_p}), 0u);
  const FibEntry* r2 = predicted.lookup(scenario.r2, representative(scenario.prefix_p));
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->action, FibEntry::Action::kForward);  // model also predicts the R1 exit
}

TEST(ModelVerifier, DivergesOnMedSemantics) {
  // §2's vendor-quirk gap: two uplinks in the SAME neighbor AS with equal
  // local-pref and path length but different MEDs. The real decision
  // process compares MED within a neighbor AS and picks the lower (R2's
  // uplink); the simplified model ignores MED and tie-breaks on router id
  // (R1). The model's predicted FIBs are wrong.
  auto scenario = PaperScenario::make();
  // Make both uplinks the same neighbor AS and neutralize local-pref.
  scenario.network->apply_config_change(scenario.r1, "neutral LP on uplink1",
                                        [](RouterConfig& config) {
                                          config.route_maps["lp-uplink1"].clauses.at(0)
                                              .set_local_pref = 100;
                                          config.bgp.find_session(PaperScenario::kUplink1)
                                              ->peer_as = 64500;
                                        });
  scenario.network->apply_config_change(scenario.r2, "neutral LP on uplink2",
                                        [](RouterConfig& config) {
                                          config.route_maps["lp-uplink2"].clauses.at(0)
                                              .set_local_pref = 100;
                                          config.bgp.find_session(PaperScenario::kUplink2)
                                              ->peer_as = 64500;
                                        });
  scenario.network->run_to_convergence();

  // R1 hears MED 50, R2 hears MED 10 — same neighbor AS 64500.
  scenario.network->inject_external_advert(scenario.r1, PaperScenario::kUplink1,
                                           scenario.prefix_p, {64500, 64999}, false, 50);
  scenario.network->inject_external_advert(scenario.r2, PaperScenario::kUplink2,
                                           scenario.prefix_p, {64500, 64999}, false, 10);
  scenario.network->run_to_convergence();

  // Reality: lower MED wins, exit via R2.
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));

  std::vector<AssumedExternalRoute> routes = {
      {scenario.r1, PaperScenario::kUplink1, scenario.prefix_p, {64500, 64999}, 50},
      {scenario.r2, PaperScenario::kUplink2, scenario.prefix_p, {64500, 64999}, 10},
  };
  ControlPlaneModel model;
  auto predicted = model.predict(scenario.network->topology(), scenario.network->configs(),
                                 routes);
  const FibEntry* r3 = predicted.lookup(scenario.r3, representative(scenario.prefix_p));
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->next_hop, scenario.r1) << "the MED-blind model predicts the R1 exit";

  auto actual = take_instant_snapshot(*scenario.network);
  EXPECT_GT(count_fib_divergence(predicted, actual, {scenario.prefix_p}), 0u)
      << "model and reality must diverge when vendor MED semantics matter";
}

TEST(ModelVerifier, RespectsImportDeny) {
  auto scenario = PaperScenario::make();
  scenario.network->apply_config_change(scenario.r2, "deny P on uplink2",
                                        [&](RouterConfig& config) {
                                          RouteMapClause deny;
                                          deny.action = RouteMapClause::Action::kDeny;
                                          config.route_maps["lp-uplink2"].clauses.insert(
                                              config.route_maps["lp-uplink2"].clauses.begin(),
                                              deny);
                                        });
  ControlPlaneModel model;
  auto predicted = model.predict(scenario.network->topology(), scenario.network->configs(),
                                 paper_routes(scenario));
  const FibEntry* r3 = predicted.lookup(scenario.r3, representative(scenario.prefix_p));
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->next_hop, scenario.r1);  // only the R1 route survives
}

TEST(ModelVerifier, NoRoutesNoEntries) {
  auto scenario = PaperScenario::make();
  ControlPlaneModel model;
  auto predicted =
      model.predict(scenario.network->topology(), scenario.network->configs(), {});
  for (const auto& [router, view] : predicted.routers) {
    EXPECT_TRUE(view.entries.empty());
  }
}

}  // namespace
}  // namespace hbguard
