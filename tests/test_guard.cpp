#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "hbguard/core/guard.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

TEST(Guard, CleanNetworkNoIncidents) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kReport;
  Guard guard(*scenario.network, paper_policies(scenario), options);
  auto report = guard.run();
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_GT(report.clean_scans, 0u);
}

TEST(Guard, ReportModeDiagnosesFig2) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kReport;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  auto report = guard.run();

  ASSERT_FALSE(report.incidents.empty());
  const GuardIncident& incident = report.incidents.front();
  EXPECT_EQ(incident.action, "reported");
  ASSERT_FALSE(incident.causes.empty());
  bool found = false;
  for (const RootCause& cause : incident.causes) {
    if (cause.record.config_version == bad) found = true;
  }
  EXPECT_TRUE(found) << "the incident must name the LP=10 change as a cause";
  // No repair: violation persists.
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_FALSE(scenario.network->configs().record(bad).reverted);
}

TEST(Guard, RevertModeHealsFig2) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Guard guard(*scenario.network, paper_policies(scenario));  // default: revert

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  auto report = guard.run();

  EXPECT_EQ(report.reverts, 1u);
  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
  // The network is back in the compliant state.
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
  // And the guard's final scans were clean.
  EXPECT_GT(report.clean_scans, 0u);
}

TEST(Guard, RevertModeWithGroundTruthHbg) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.use_ground_truth_hbg = true;
  Guard guard(*scenario.network, paper_policies(scenario), options);
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  auto report = guard.run();
  EXPECT_EQ(report.reverts, 1u);
  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
}

TEST(Guard, UplinkFailureReportedNotReverted) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Guard guard(*scenario.network, paper_policies(scenario));

  scenario.fail_uplink2();
  auto report = guard.run();

  // Failover to R1 is policy-compliant; there may be a transient violation
  // but no revert may ever fire (§8: blocking a withdrawal helps nothing).
  EXPECT_EQ(report.reverts, 0u);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
}

TEST(Guard, BlockModeShieldsDataPlane) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kBlock;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  scenario.misconfigure_r2_lp10();
  auto report = guard.run();

  EXPECT_GT(report.blocked_updates, 0u);
  // Data plane still compliant...
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  // ...while the control plane diverged (the §2 hazard in waiting).
  const FibEntry* control = scenario.router1().control_fib().find(scenario.prefix_p);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->action, FibEntry::Action::kExternal);
}

TEST(Guard, ProposeOnlyQueuesRepairForApproval) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kProposeOnly;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  auto report = guard.run();

  // Diagnosed like kReport — but the revert is queued, not executed.
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_NE(report.incidents.front().action.find("proposal #1"), std::string::npos)
      << report.incidents.front().action;
  EXPECT_NE(report.incidents.front().action.find("awaiting approval"), std::string::npos);
  EXPECT_EQ(report.reverts, 0u);
  EXPECT_FALSE(scenario.network->configs().record(bad).reverted);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));  // violation persists

  ASSERT_EQ(guard.proposals().size(), 1u);
  const RepairProposal& proposal = guard.proposals().front();
  EXPECT_EQ(proposal.id, 1u);
  EXPECT_EQ(proposal.cause_version, bad);
  EXPECT_EQ(proposal.status, RepairProposal::Status::kPending);
  EXPECT_EQ(proposal.executed_version, kNoVersion);

  // Unknown ids and double-settling fail with a message.
  EXPECT_FALSE(guard.approve_proposal(99).ok);
  auto declined = guard.decline_proposal(1);
  EXPECT_TRUE(declined.ok) << declined.message;
  EXPECT_EQ(guard.proposals().front().status, RepairProposal::Status::kDeclined);
  EXPECT_FALSE(guard.decline_proposal(1).ok);
  EXPECT_FALSE(guard.approve_proposal(1).ok);
  EXPECT_FALSE(scenario.network->configs().record(bad).reverted);
}

TEST(Guard, ProposeOnlyApprovalExecutesRevert) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kProposeOnly;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  guard.run();
  ASSERT_EQ(guard.proposals().size(), 1u);

  auto approved = guard.approve_proposal(1);
  ASSERT_TRUE(approved.ok) << approved.message;
  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
  const RepairProposal& proposal = guard.proposals().front();
  EXPECT_EQ(proposal.status, RepairProposal::Status::kApproved);
  EXPECT_NE(proposal.executed_version, kNoVersion);

  // Let the revert propagate under guard; the network heals.
  auto report = guard.run();
  EXPECT_EQ(report.reverts, 1u);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  EXPECT_GT(report.clean_scans, 0u);

  // revert_repair rolls the executed repair back (the operator decided the
  // change was intended after all); the original change is back in force.
  auto rolled_back = guard.revert_repair(1);
  ASSERT_TRUE(rolled_back.ok) << rolled_back.message;
  EXPECT_EQ(guard.proposals().front().status, RepairProposal::Status::kDeclined);
  EXPECT_EQ(guard.proposals().front().executed_version, kNoVersion);
  scenario.network->run_to_convergence();
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));  // violating state again
  // No executed repair left to roll back.
  EXPECT_FALSE(guard.revert_repair(1).ok);
}

TEST(Guard, EarlyBlockLearnsAcrossIncidents) {
  auto scenario = PaperScenario::make();
  // Slow soft reconfiguration so the config input is visible to the guard
  // well before its FIB fallout (the window early blocking exploits).
  scenario.network->apply_config_change(scenario.r2, "set slow soft reconfiguration",
                                        [](RouterConfig& config) {
                                          config.bgp.quirks.soft_reconfig_delay_us = 400'000;
                                        });
  scenario.converge_initial();

  GuardOptions options;
  options.repair = RepairMode::kEarlyBlock;
  options.scan_interval_us = 100'000;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  // First offence: the guard has nothing learned — the violation happens
  // and is reverted reactively.
  scenario.misconfigure_r2_lp10();
  guard.run();
  EXPECT_EQ(guard.report().reverts, 1u);
  EXPECT_EQ(guard.report().early_reverts, 0u);
  EXPECT_GT(guard.early_block_model().known_patterns(), 0u);

  // Second offence, same change: predicted from the learned EC behaviour
  // and reverted *before* any violation reaches the data plane.
  scenario.misconfigure_r2_lp10();
  auto report = guard.run();
  EXPECT_EQ(report.early_reverts, 1u);
  EXPECT_EQ(report.reverts, 1u) << "no additional reactive revert was needed";
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
}

TEST(Guard, RepeatViolationNotDoubleReported) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kReport;
  Guard guard(*scenario.network, paper_policies(scenario), options);
  scenario.misconfigure_r2_lp10();
  guard.run();
  std::size_t incidents = guard.report().incidents.size();
  // More scans over the same persistent violation add no new incidents.
  guard.scan();
  guard.scan();
  EXPECT_EQ(guard.report().incidents.size(), incidents);
}

TEST(Guard, SummaryMentionsActions) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Guard guard(*scenario.network, paper_policies(scenario));
  scenario.misconfigure_r2_lp10();
  auto report = guard.run();
  std::string summary = report.summary();
  EXPECT_NE(summary.find("reverted"), std::string::npos);
  EXPECT_NE(summary.find("incident"), std::string::npos);
}

TEST(Guard, HbgAccessorProducesGraph) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Guard guard(*scenario.network, paper_policies(scenario));
  auto hbg = guard.current_hbg();
  EXPECT_GT(hbg.vertex_count(), 0u);
  EXPECT_GT(hbg.edge_count(), 0u);
}

}  // namespace
}  // namespace hbguard
