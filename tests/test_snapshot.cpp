#include <gtest/gtest.h>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/naive.hpp"
#include "hbguard/verify/verifier.hpp"

#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

PolicyList paper_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

TEST(InstantSnapshot, MatchesDataFibs) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto snapshot = take_instant_snapshot(*scenario.network);

  ASSERT_EQ(snapshot.routers.size(), 3u);
  const FibEntry* entry = snapshot.lookup(scenario.r2, representative(scenario.prefix_p));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->action, FibEntry::Action::kExternal);
  EXPECT_EQ(snapshot.all_prefixes().size(),
            scenario.router2().data_fib().entries().size() > 0 ? 4u : 0u);  // 3 loopbacks + P
}

TEST(InstantSnapshot, UplinkStateTracked) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.fail_uplink2();
  scenario.network->run_to_convergence();
  auto snapshot = take_instant_snapshot(*scenario.network);
  EXPECT_FALSE(snapshot.uplink_up(scenario.r2, PaperScenario::kUplink2));
  EXPECT_TRUE(snapshot.uplink_up(scenario.r1, PaperScenario::kUplink1));
}

TEST(NaiveSnapshot, ZeroSkewEqualsInstant) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  NaiveSnapshotter snapshotter(*scenario.network, 0);
  snapshotter.request();
  scenario.network->run_for(1);
  ASSERT_TRUE(snapshotter.complete());

  auto truth = take_instant_snapshot(*scenario.network);
  for (const auto& [router, view] : truth.routers) {
    EXPECT_EQ(snapshotter.result().routers.at(router).entries, view.entries);
  }
}

TEST(NaiveSnapshot, SkewedSamplingDuringChurnDiverges) {
  // Fig. 1c: a snapshot taken while the Fig. 1b update propagates can show
  // a state no packet would ever encounter.
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r1();
  scenario.network->run_to_convergence();

  // Kick off the better route via R2 and sample while it propagates.
  scenario.advertise_p_via_r2();
  NaiveSnapshotter snapshotter(*scenario.network, 60'000, /*seed=*/3);
  snapshotter.request();
  scenario.network->run_to_convergence();
  ASSERT_TRUE(snapshotter.complete());

  // The skewed views have per-router timestamps spanning a window.
  SimTime min_t = Simulator::kForever, max_t = 0;
  for (const auto& [router, view] : snapshotter.result().routers) {
    min_t = std::min(min_t, view.as_of);
    max_t = std::max(max_t, view.as_of);
  }
  EXPECT_GT(max_t, min_t);
}

// ---------------------------------------------------------------------------
// Consistent snapshotter

class ConsistentFixture : public ::testing::Test {
 protected:
  ConsistentFixture() : scenario_(PaperScenario::make()) {}

  HappensBeforeGraph build_hbg() {
    return HbgBuilder::build(scenario_.network->capture().records(), RuleMatchingInference());
  }

  PaperScenario scenario_;
  ConsistentSnapshotter snapshotter_;
};

TEST_F(ConsistentFixture, FullHorizonMatchesFinalState) {
  scenario_.converge_initial();
  auto hbg = build_hbg();
  ConsistencyReport report;
  auto snapshot = snapshotter_.build(scenario_.network->capture().records(), hbg, {}, &report);

  auto truth = take_instant_snapshot(*scenario_.network);
  for (const auto& [router, view] : truth.routers) {
    EXPECT_EQ(snapshot.routers.at(router).entries, view.entries) << "router " << router;
  }
  EXPECT_EQ(report.total_rewound(), 0u);
}

TEST_F(ConsistentFixture, GroundTruthHbgAlsoReplaysCleanly) {
  scenario_.converge_initial();
  scenario_.misconfigure_r2_lp10();
  scenario_.network->run_to_convergence();
  auto hbg = HbgBuilder::build_ground_truth(scenario_.network->capture().records());
  auto snapshot = snapshotter_.build(scenario_.network->capture().records(), hbg, {});
  auto truth = take_instant_snapshot(*scenario_.network);
  for (const auto& [router, view] : truth.routers) {
    EXPECT_EQ(snapshot.routers.at(router).entries, view.entries);
  }
}

TEST_F(ConsistentFixture, StaleRouterForcesRewindOfDependents) {
  // Reproduce the §7 inconsistency: the verifier has everything from R2/R3
  // but R1's log stops before it processed the new route. A FIB entry at
  // R3 pointing via R1's advertisement must not be included.
  scenario_.network->run_to_convergence();
  scenario_.advertise_p_via_r1();
  scenario_.network->run_to_convergence();
  SimTime before_r2 = scenario_.network->sim().now();
  scenario_.advertise_p_via_r2();
  scenario_.network->run_to_convergence();

  auto records = scenario_.network->capture().records();
  auto hbg = build_hbg();

  // R2's log is only available up to just before it processed the new
  // advertisement; other routers report in full.
  std::map<RouterId, SimTime> horizons{{scenario_.r2, before_r2}};
  ConsistencyReport report;
  auto snapshot = snapshotter_.build(records, hbg, horizons, &report);

  // Consistency: if R1/R3's FIBs still pointed at R2's new route while R2's
  // snapshot predates it, the verifier would see a state no packet
  // encounters. The rewind must push R1 and R3 back before their switch to
  // the R2 route.
  EXPECT_GT(report.total_rewound(), 0u);
  const FibEntry* r1_entry = snapshot.lookup(scenario_.r1, representative(scenario_.prefix_p));
  ASSERT_NE(r1_entry, nullptr);
  EXPECT_EQ(r1_entry->action, FibEntry::Action::kExternal)
      << "R1 must still show its own uplink route, matching R2's stale view";

  // And the combined snapshot must be verifiably sane: no loops/blackholes.
  Verifier verifier({std::make_shared<LoopFreedomPolicy>(scenario_.prefix_p),
                     std::make_shared<BlackholeFreedomPolicy>(scenario_.prefix_p)});
  EXPECT_TRUE(verifier.verify(snapshot).clean());
}

TEST_F(ConsistentFixture, NaiveSnapshotSameScenarioSeesPhantomState) {
  // Companion to the above: with the same staleness, a naive assembler
  // that just takes each router's latest reported FIB yields a state where
  // R1 and R3 forward to R2 while R2 still forwards to R1 — the Fig. 1c
  // phantom loop.
  scenario_.network->run_to_convergence();
  scenario_.advertise_p_via_r1();
  scenario_.network->run_to_convergence();
  SimTime before_r2 = scenario_.network->sim().now();
  scenario_.advertise_p_via_r2();
  scenario_.network->run_to_convergence();

  auto records = scenario_.network->capture().records();
  // Naive assembly: replay ALL reported FIB updates per router up to its
  // horizon with no consistency check == ConsistentSnapshotter with the
  // closure disabled. Emulate by replaying manually.
  std::map<RouterId, SimTime> horizons{{scenario_.r2, before_r2}};
  DataPlaneSnapshot naive;
  for (const IoRecord& r : records) {
    auto& view = naive.routers[r.router];
    SimTime horizon = horizons.contains(r.router) ? horizons[r.router] : Simulator::kForever;
    if (r.logged_time > horizon || r.kind != IoKind::kFibUpdate || r.fib_blocked) continue;
    Fib fib;
    for (const FibEntry& e : view.entries) fib.install(e);
    if (r.withdraw) {
      if (r.prefix) fib.remove(*r.prefix);
    } else if (r.fib_entry) {
      fib.install(*r.fib_entry);
    }
    view.entries = fib.entries();
  }

  Verifier verifier({std::make_shared<LoopFreedomPolicy>(scenario_.prefix_p)});
  auto result = verifier.verify(naive);
  EXPECT_FALSE(result.clean()) << "naive assembly should exhibit the phantom R1<->R2 loop";
}

TEST_F(ConsistentFixture, DetectsViolationWithFullData) {
  scenario_.converge_initial();
  scenario_.misconfigure_r2_lp10();
  scenario_.network->run_to_convergence();

  auto hbg = build_hbg();
  auto snapshot = snapshotter_.build(scenario_.network->capture().records(), hbg, {});
  Verifier verifier(paper_policies(scenario_));
  auto result = verifier.verify(snapshot);
  ASSERT_FALSE(result.clean());
  bool preferred_exit_violated = false;
  for (const Violation& v : result.violations) {
    if (v.policy.starts_with("preferred-exit")) preferred_exit_violated = true;
  }
  EXPECT_TRUE(preferred_exit_violated);
}

TEST_F(ConsistentFixture, UplinkFailureIsNotAViolation) {
  scenario_.converge_initial();
  scenario_.fail_uplink2();
  scenario_.network->run_to_convergence();

  auto hbg = build_hbg();
  auto snapshot = snapshotter_.build(scenario_.network->capture().records(), hbg, {});
  EXPECT_FALSE(snapshot.uplink_up(scenario_.r2, PaperScenario::kUplink2));
  Verifier verifier(paper_policies(scenario_));
  auto result = verifier.verify(snapshot);
  EXPECT_TRUE(result.clean()) << (result.violations.empty()
                                      ? ""
                                      : result.violations.front().describe());
}

}  // namespace
}  // namespace hbguard
