// End-to-end integration tests for features not covered by the paper
// scenarios: Add-Path, redistribution, static routes, OSPF cost overrides,
// and capture imperfections flowing through the whole pipeline.
#include <gtest/gtest.h>

#include "hbguard/core/guard.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

PolicyList paper_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

PaperScenario make_add_path_scenario() {
  auto scenario = PaperScenario::make();
  for (RouterId r : {scenario.r1, scenario.r2, scenario.r3}) {
    scenario.network->apply_config_change(r, "enable add-path", [](RouterConfig& config) {
      config.bgp.add_path = true;
    });
  }
  scenario.converge_initial();
  return scenario;
}

TEST(AddPath, IbgpPeersSeeAllBorderPaths) {
  auto scenario = make_add_path_scenario();
  // R3 has no uplink of its own; with add-path it must know *both* border
  // routers' paths for P, not just the winner.
  auto paths_r1 = scenario.router3().bgp().adj_rib_in("ibgp-R1");
  auto paths_r2 = scenario.router3().bgp().adj_rib_in("ibgp-R2");
  std::size_t p_paths = 0;
  for (const auto& route : paths_r1) {
    if (route.prefix == scenario.prefix_p) ++p_paths;
  }
  for (const auto& route : paths_r2) {
    if (route.prefix == scenario.prefix_p) ++p_paths;
  }
  EXPECT_GE(p_paths, 2u) << "add-path must expose the backup path at R3";
  // Behaviour is unchanged: LP 30 still wins.
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(AddPath, FailoverWithoutWaitingForReadvertisement) {
  auto scenario = make_add_path_scenario();
  std::size_t events_before = scenario.network->sim().dispatched();
  scenario.fail_uplink2();
  scenario.network->run_to_convergence();
  std::size_t add_path_events = scenario.network->sim().dispatched() - events_before;
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r1));

  // Compare with the non-add-path network: the same failover needs R1 to
  // re-advertise before R3 can switch, costing extra messages.
  auto baseline = PaperScenario::make();
  baseline.converge_initial();
  events_before = baseline.network->sim().dispatched();
  baseline.fail_uplink2();
  baseline.network->run_to_convergence();
  std::size_t baseline_events = baseline.network->sim().dispatched() - events_before;
  EXPECT_TRUE(baseline.fib_exits_via(baseline.r3, baseline.r1));
  EXPECT_LE(add_path_events, baseline_events)
      << "pre-distributed backup paths shouldn't need more events than "
         "re-advertisement";
}

TEST(Redistribution, StaticRouteReachesTheWholeNetwork) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Prefix lan = *Prefix::parse("172.16.0.0/16");

  scenario.network->apply_config_change(scenario.r3, "attach LAN + redistribute",
                                        [&](RouterConfig& config) {
                                          config.statics.push_back({lan, std::nullopt});
                                          config.redistributions.push_back(
                                              {Protocol::kStatic, Protocol::kEbgp, ""});
                                        });
  scenario.network->run_to_convergence();

  // R3 drops locally (null route); R1 and R2 forward toward R3.
  const FibEntry* r3 = scenario.router3().data_fib().find(lan);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->action, FibEntry::Action::kDrop);
  for (RouterId r : {scenario.r1, scenario.r2}) {
    const FibEntry* entry = scenario.network->router(r).data_fib().find(lan);
    ASSERT_NE(entry, nullptr) << "router " << r;
    EXPECT_EQ(entry->action, FibEntry::Action::kForward);
    EXPECT_EQ(entry->next_hop, scenario.r3);
  }
}

TEST(Redistribution, RemovingTheStaticWithdrawsEverywhere) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  Prefix lan = *Prefix::parse("172.16.0.0/16");
  scenario.network->apply_config_change(scenario.r3, "attach LAN", [&](RouterConfig& config) {
    config.statics.push_back({lan, std::nullopt});
    config.redistributions.push_back({Protocol::kStatic, Protocol::kEbgp, ""});
  });
  scenario.network->run_to_convergence();
  ASSERT_NE(scenario.router1().data_fib().find(lan), nullptr);

  scenario.network->apply_config_change(scenario.r3, "detach LAN", [&](RouterConfig& config) {
    config.statics.clear();
  });
  scenario.network->run_to_convergence();
  EXPECT_EQ(scenario.router1().data_fib().find(lan), nullptr);
  EXPECT_EQ(scenario.router2().data_fib().find(lan), nullptr);
  EXPECT_EQ(scenario.router3().data_fib().find(lan), nullptr);
}

TEST(StaticRoutes, ForwardAndExternalActions) {
  auto scenario = PaperScenario::make();
  Prefix via = *Prefix::parse("10.50.0.0/16");
  Prefix ext = *Prefix::parse("10.60.0.0/16");
  scenario.network->apply_config_change(scenario.r1, "add statics", [&](RouterConfig& config) {
    config.statics.push_back({via, scenario.r3});
    config.statics.push_back({ext, kExternalRouter});
  });
  scenario.network->run_to_convergence();

  const FibEntry* forward = scenario.router1().data_fib().find(via);
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward->action, FibEntry::Action::kForward);
  EXPECT_EQ(forward->next_hop, scenario.r3);
  const FibEntry* external = scenario.router1().data_fib().find(ext);
  ASSERT_NE(external, nullptr);
  EXPECT_EQ(external->action, FibEntry::Action::kExternal);
}

TEST(OspfCosts, OverrideSteersIgpPath) {
  // Triangle topology: R3 normally reaches R2 directly. Make the direct
  // link prohibitively expensive from R3's side; traffic re-routes via R1.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto direct = scenario.network->topology().link_between(scenario.r3, scenario.r2);
  ASSERT_TRUE(direct.has_value());

  scenario.network->apply_config_change(scenario.r3, "raise cost of direct link",
                                        [&](RouterConfig& config) {
                                          config.ospf.cost_override[*direct] = 10;
                                        });
  scenario.network->run_to_convergence();

  const FibEntry* entry = scenario.router3().data_fib().find(scenario.prefix_p);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->action, FibEntry::Action::kForward);
  EXPECT_EQ(entry->next_hop, scenario.r1) << "iBGP next hop now resolves via R1";
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(CaptureImperfections, GuardStillHealsFig2UnderClockImperfections) {
  NetworkOptions options;
  options.capture.clock_offset_us = 1'000;
  options.capture.timestamp_jitter_us = 100;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();

  GuardOptions guard_options;
  guard_options.matcher.local_slack_us = 1'000;
  Guard guard(*scenario.network, paper_policies(scenario), guard_options);
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  guard.run();

  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(CaptureImperfections, LogLossNeverTriggersSpuriousRepairs) {
  // Losing log records can blind a conditional policy (e.g. the uplink's
  // advert never reached the collector, so "preferred exit available" can't
  // be established — the paper's "we may be missing some FIB updates"
  // case). The guard must stay *safe*: no revert of changes it cannot
  // implicate, and no crash.
  NetworkOptions options;
  options.capture.loss_probability = 0.05;
  options.seed = 5;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();

  Guard guard(*scenario.network, paper_policies(scenario));
  ConfigVersion benign = scenario.network->apply_config_change(
      scenario.r3, "benign tweak", [](RouterConfig& config) {
        config.bgp.default_local_pref = 100;
      });
  guard.run();
  EXPECT_FALSE(scenario.network->configs().record(benign).reverted);

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  guard.run();
  // Either the guard implicated and reverted the bad change, or the loss
  // blinded it — but it must never have reverted the benign change.
  EXPECT_FALSE(scenario.network->configs().record(benign).reverted);
  if (scenario.network->configs().record(bad).reverted) {
    EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
  }
}

TEST(CaptureImperfections, LossyLogsForceConservativeRewinds) {
  NetworkOptions options;
  options.capture.loss_probability = 0.15;  // heavy log loss
  options.seed = 77;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();

  auto records = scenario.network->capture().records();
  EXPECT_GT(scenario.network->capture().events_lost(), 0u);
  auto hbg = HbgBuilder::build(records, RuleMatchingInference());
  ConsistencyReport report;
  ConsistentSnapshotter snapshotter;
  auto snapshot = snapshotter.build(records, hbg, {}, &report);
  // With recvs whose sends were lost, the snapshotter must rewind (§5: "we
  // may be missing some FIB updates") rather than pretend completeness.
  EXPECT_GT(report.unmatched_recvs + report.total_rewound(), 0u);
}

TEST(SessionShutdown, DisablingANeighborSessionPartitionsBgp) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  // R3 shuts down its session to R2: it must reconverge using only what it
  // hears from R1 (which re-exports nothing for P — iBGP non-transitivity —
  // until R1 itself switches best path).
  scenario.network->apply_config_change(scenario.r3, "shutdown session to R2",
                                        [](RouterConfig& config) {
                                          config.bgp.find_session("ibgp-R2")->enabled = false;
                                        });
  scenario.network->run_to_convergence();

  const FibEntry* entry = scenario.router3().data_fib().find(scenario.prefix_p);
  // R1's best is the iBGP route via R2, which it may not re-advertise to
  // R3 (no reflection configured): R3 loses the route entirely.
  EXPECT_EQ(entry, nullptr) << (entry != nullptr ? entry->describe() : "");
}

TEST(GuardModes, EarlyBlockFallsBackToReactiveOnNovelChanges) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = RepairMode::kEarlyBlock;
  Guard guard(*scenario.network, paper_policies(scenario), options);

  // A change class the model has never seen: handled reactively.
  scenario.misconfigure_r2_lp10();
  guard.run();
  EXPECT_EQ(guard.report().early_reverts, 0u);
  EXPECT_EQ(guard.report().reverts, 1u);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(Communities, TagAtBorderFilterAtPeer) {
  // R2 tags routes from its uplink with 65000:666; R1 and R3 deny that
  // community on import. R1 then prefers its own untagged uplink and
  // advertises it, giving R3 a usable (untagged) path via R1 even though
  // R2's LP-30 route would otherwise win everywhere.
  auto scenario = PaperScenario::make();
  scenario.network->apply_config_change(scenario.r2, "tag uplink2 routes",
                                        [](RouterConfig& config) {
                                          config.route_maps["lp-uplink2"].clauses.at(0)
                                              .add_communities.push_back(
                                                  make_community(65000, 666));
                                        });
  auto install_filter = [](RouterConfig& config) {
    RouteMap filter;
    filter.name = "no-tagged";
    RouteMapClause deny;
    deny.match_community = make_community(65000, 666);
    deny.action = RouteMapClause::Action::kDeny;
    filter.clauses.push_back(deny);
    config.route_maps["no-tagged"] = std::move(filter);
    config.bgp.find_session("ibgp-R2")->import_policy = "no-tagged";
  };
  scenario.network->apply_config_change(scenario.r1, "deny tagged routes", install_filter);
  scenario.network->apply_config_change(scenario.r3, "deny tagged routes", install_filter);
  scenario.converge_initial();

  // The community must be visible in R3's Adj-RIB-In from R2...
  bool tagged_seen = false;
  for (const BgpRoute& route : scenario.router3().bgp().adj_rib_in("ibgp-R2")) {
    if (route.prefix == scenario.prefix_p) {
      for (std::uint32_t community : route.attrs.communities) {
        if (community == make_community(65000, 666)) tagged_seen = true;
      }
    }
  }
  EXPECT_TRUE(tagged_seen) << "community must propagate across iBGP";

  // ...and the import filter steers R3 to the R1 path even though R2's
  // LP 30 route would otherwise win.
  const FibEntry* entry = scenario.router3().data_fib().find(scenario.prefix_p);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->next_hop, scenario.r1);
}

// ---------------------------------------------------------------------------
// Firewall waypoint (§5's "traffic should never bypass a firewall")

TEST(Firewall, BaselineTrafficPassesTheFirewall) {
  auto scenario = FirewallScenario::make();
  scenario.network->run_to_convergence();
  EXPECT_TRUE(scenario.traffic_passes_firewall());

  auto snapshot = take_instant_snapshot(*scenario.network);
  std::vector<Violation> violations;
  WaypointPolicy(scenario.protected_prefix, scenario.firewall).check(snapshot, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(Firewall, CostMisconfigBypassesAndIsDetected) {
  auto scenario = FirewallScenario::make();
  scenario.network->run_to_convergence();
  scenario.misconfigure_direct_cost();
  scenario.network->run_to_convergence();

  EXPECT_FALSE(scenario.traffic_passes_firewall());
  auto snapshot = take_instant_snapshot(*scenario.network);
  std::vector<Violation> violations;
  WaypointPolicy(scenario.protected_prefix, scenario.firewall).check(snapshot, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].router, scenario.edge);
}

TEST(Firewall, GuardRevertsTheBypass) {
  auto scenario = FirewallScenario::make();
  scenario.network->run_to_convergence();

  PolicyList policies;
  policies.push_back(
      std::make_shared<WaypointPolicy>(scenario.protected_prefix, scenario.firewall));
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.protected_prefix));
  Guard guard(*scenario.network, policies);

  ConfigVersion bypass = scenario.misconfigure_direct_cost();
  auto report = guard.run();

  EXPECT_TRUE(scenario.network->configs().record(bypass).reverted)
      << report.summary();
  EXPECT_TRUE(scenario.traffic_passes_firewall());
  EXPECT_GE(report.reverts, 1u);
}

}  // namespace
}  // namespace hbguard
