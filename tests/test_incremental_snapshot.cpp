// Incremental snapshot pipeline parity (ISSUE 2 tentpole).
//
// The contract under test: IncrementalSnapshotter fed per-scan record and
// HBG-edge deltas produces a snapshot byte-identical to
// ConsistentSnapshotter::build over the full capture history with empty
// horizons — at EVERY scan, not just at convergence — and a Guard running
// the incremental pipeline emits a GuardReport byte-identical to the
// scratch pipeline's, for every repair mode and thread count.
#include <gtest/gtest.h>

#include <sstream>

#include "hbguard/core/guard.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/incremental.hpp"
#include "hbguard/snapshot/naive.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {
namespace {

std::string snapshot_digest(const DataPlaneSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [router, view] : snapshot.routers) {
    out << "R" << router << "@" << view.as_of << "\n";
    for (const FibEntry& entry : view.entries) out << "  " << entry.describe() << "\n";
    for (const std::string& session : view.failed_uplinks) out << "  down:" << session << "\n";
    for (const auto& [session, prefixes] : view.uplink_routes) {
      out << "  offer:" << session << ":";
      for (const Prefix& prefix : prefixes) out << prefix.to_string() << ",";
      out << "\n";
    }
  }
  return out.str();
}

PolicyList churn_policies(std::size_t prefix_count) {
  PolicyList policies;
  for (std::size_t i = 0; i < prefix_count; ++i) {
    Prefix p = churn_prefix(i);
    policies.push_back(std::make_shared<LoopFreedomPolicy>(p));
    policies.push_back(std::make_shared<BlackholeFreedomPolicy>(p));
    policies.push_back(std::make_shared<ReachabilityPolicy>(0, p));
  }
  return policies;
}

/// Step `network` in scan-sized slices, maintaining one shared incremental
/// HBG; at every step assert the incremental snapshot equals a scratch
/// rebuild over the full history. Returns the incremental stats.
void expect_snapshot_parity(Network& network, std::size_t steps, SimTime interval,
                            IncrementalSnapshotter::Stats* stats_out,
                            MatcherOptions matcher = {}) {
  IncrementalHbgBuilder builder(matcher);
  std::size_t hbg_cursor = 0;
  ConsistentSnapshotter scratch;
  IncrementalSnapshotter incremental;
  std::size_t cursor = 0;
  std::vector<HbgEdge> edge_delta;
  std::size_t rewound_scans = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    network.run_for(interval);
    const std::vector<IoRecord>& records = network.capture().records();
    edge_delta.clear();
    builder.append(network.capture().records_since(hbg_cursor), &edge_delta);
    hbg_cursor = records.size();
    const HappensBeforeGraph& hbg = builder.graph();

    ConsistencyReport scratch_report;
    DataPlaneSnapshot scratch_snapshot = scratch.build(records, hbg, {}, &scratch_report);
    ConsistencyReport incremental_report;
    const DataPlaneSnapshot& incremental_snapshot =
        incremental.ingest(network.capture().records_since(cursor), hbg, edge_delta, nullptr,
                           &incremental_report);
    cursor = records.size();

    ASSERT_EQ(snapshot_digest(scratch_snapshot), snapshot_digest(incremental_snapshot))
        << "snapshot diverged at scan " << step << " (" << records.size() << " records)";
    ASSERT_EQ(scratch_report.rewound, incremental_report.rewound) << "scan " << step;
    ASSERT_EQ(scratch_report.in_flux, incremental_report.in_flux) << "scan " << step;
    if (incremental_report.total_rewound() > 0) ++rewound_scans;
  }
  EXPECT_EQ(incremental.stats().scans, steps);
  if (stats_out != nullptr) *stats_out = incremental.stats();
}

TEST(IncrementalSnapshot, ParityAtEveryScanUnderChurn) {
  Rng topo_rng(11);
  NetworkOptions options;
  options.seed = 11;
  auto generated = make_ibgp_network(make_waxman_topology(10, topo_rng), 3, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 6;
  churn_options.event_count = 40;
  churn_options.seed = 12;
  ChurnWorkload churn(generated, churn_options);
  ASSERT_GT(churn.scheduled_events(), 0u);

  IncrementalSnapshotter::Stats stats;
  expect_snapshot_parity(*generated.network, 40, 100'000, &stats);
  EXPECT_GT(stats.records_ingested, 0u);
  // The whole point: closure work stays a small multiple of the ingested
  // records, instead of re-walking the full history each of the 40 scans.
  EXPECT_LT(stats.closure_checks, 4 * stats.records_ingested);
}

TEST(IncrementalSnapshot, ParityUnderClockSkewAndLoss) {
  // Rewind-heavy: unsynchronized clocks and lossy logging make the closure
  // exclude records every scan (unmatched receives, causes beyond their
  // router's apparent frontier), and late-arriving edges can target
  // already-validated records. Parity must survive all of it.
  Rng topo_rng(21);
  NetworkOptions options;
  options.seed = 21;
  options.capture.timestamp_jitter_us = 2'000;
  options.capture.clock_offset_us = 40'000;
  options.capture.loss_probability = 0.02;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = 30;
  churn_options.seed = 22;
  ChurnWorkload churn(generated, churn_options);

  MatcherOptions matcher;
  matcher.local_slack_us = 5'000;  // lets causes be matched after their effects
  IncrementalSnapshotter::Stats stats;
  expect_snapshot_parity(*generated.network, 30, 100'000, &stats, matcher);
  EXPECT_GT(stats.records_ingested, 0u);
}

TEST(IncrementalSnapshot, LateEdgeIntoStableRegionForcesClosureRerun) {
  // Hand-built trace driving the fallback path: scan 1 validates a RIB+FIB
  // pair on router 0; scan 2 delivers an internal receive whose (jittered)
  // timestamp lands just after theirs, so late-cause matching makes it
  // their inferred cause — and it is itself inconsistent (no matching send
  // in the HBG).
  // The closure must then rewind below the previously stable frontier —
  // only a full re-run gets that right, and the snapshotter must detect it.
  Prefix p = *Prefix::parse("198.18.0.0/24");
  MatcherOptions matcher;
  matcher.local_slack_us = 500;
  IncrementalHbgBuilder builder(matcher);
  ConsistentSnapshotter scratch;
  IncrementalSnapshotter incremental;

  IoRecord rib;
  rib.id = 1;
  rib.router = 0;
  rib.kind = IoKind::kRibUpdate;
  rib.protocol = Protocol::kIbgp;
  rib.prefix = p;
  rib.logged_time = 1'000;
  rib.router_seq = 0;
  IoRecord fib;
  fib.id = 2;
  fib.router = 0;
  fib.kind = IoKind::kFibUpdate;
  fib.protocol = Protocol::kIbgp;
  fib.prefix = p;
  fib.fib_entry = FibEntry{p, FibEntry::Action::kForward, 1, "", Protocol::kIbgp};
  fib.logged_time = 1'010;
  fib.router_seq = 1;
  std::vector<IoRecord> scan1{rib, fib};

  IoRecord recv;
  recv.id = 3;
  recv.router = 0;
  recv.kind = IoKind::kRecvAdvert;
  recv.protocol = Protocol::kIbgp;
  recv.prefix = p;
  recv.peer = 1;  // internal peer: requires a matching send, which never comes
  recv.session = "ibgp1";
  recv.logged_time = 1'020;  // within local_slack after the RIB update
  recv.router_seq = 2;
  std::vector<IoRecord> scan2{recv};

  std::vector<IoRecord> all;
  std::vector<HbgEdge> edges;

  // Scan 1: both records validate; the FIB entry lands in the snapshot.
  builder.append(scan1, &edges);
  all.insert(all.end(), scan1.begin(), scan1.end());
  const DataPlaneSnapshot& after1 =
      incremental.ingest(scan1, builder.graph(), edges, nullptr, nullptr);
  EXPECT_EQ(after1.routers.at(0).entries.size(), 1u);
  EXPECT_EQ(snapshot_digest(scratch.build(all, builder.graph(), {})), snapshot_digest(after1));
  EXPECT_EQ(incremental.stats().closure_fallbacks, 0u);

  // Scan 2: the late receive arrives. Late-cause matching should attach it
  // as the RIB update's cause; the closure must rewind everything.
  edges.clear();
  builder.append(scan2, &edges);
  all.insert(all.end(), scan2.begin(), scan2.end());
  bool has_edge_into_stable = false;
  for (const HbgEdge& edge : edges) {
    if (edge.to == rib.id) has_edge_into_stable = true;
  }
  ASSERT_TRUE(has_edge_into_stable) << "test premise: the engine emits a late cause edge";

  SnapshotDelta delta;
  const DataPlaneSnapshot& after2 =
      incremental.ingest(scan2, builder.graph(), edges, &delta, nullptr);
  EXPECT_EQ(snapshot_digest(scratch.build(all, builder.graph(), {})), snapshot_digest(after2));
  EXPECT_TRUE(after2.routers.at(0).entries.empty())
      << "the FIB entry's whole causal prefix must be rewound";
  EXPECT_EQ(incremental.stats().closure_fallbacks, 1u);
  EXPECT_TRUE(delta.full) << "a rebuild must void the delta";
}

TEST(IncrementalSnapshot, DeltaDrivenVerifyMatchesFullVerify) {
  // A delta that names the one changed prefix must let the verifier skip
  // re-keying the others while returning identical violations.
  Rng topo_rng(31);
  NetworkOptions options;
  options.seed = 31;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  Network& net = *generated.network;
  net.run_to_convergence();
  for (std::size_t i = 0; i < 4; ++i) {
    const UplinkInfo& uplink = generated.uplinks[i % generated.uplinks.size()];
    net.inject_external_advert(uplink.router, uplink.session, churn_prefix(i),
                               {uplink.peer_as, static_cast<AsNumber>(65100 + i)});
  }
  net.run_to_convergence();
  DataPlaneSnapshot before = take_instant_snapshot(net);

  // Withdraw one prefix: only its destinations are affected.
  const UplinkInfo& uplink = generated.uplinks[0];
  net.inject_external_advert(uplink.router, uplink.session, churn_prefix(0),
                             {uplink.peer_as, 65100}, /*withdraw=*/true);
  net.run_to_convergence();
  DataPlaneSnapshot after = take_instant_snapshot(net);

  VerifierOptions verifier_options;
  verifier_options.num_threads = 2;
  Verifier with_delta(churn_policies(4), verifier_options);
  Verifier without_delta(churn_policies(4), verifier_options);

  auto digest = [](const VerifyResult& result) {
    std::string out;
    for (const Violation& v : result.violations) out += v.describe() + "\n";
    return out;
  };

  ASSERT_EQ(digest(with_delta.verify(before)), digest(without_delta.verify(before)));
  SnapshotDelta delta;
  delta.full = false;
  delta.changed_prefixes.insert(churn_prefix(0));
  VerifyResult delta_result = with_delta.verify(after, &delta);
  VerifyResult full_result = without_delta.verify(after);
  EXPECT_EQ(digest(delta_result), digest(full_result));
  EXPECT_GT(with_delta.stats().delta_skips, 0u)
      << "unaffected destinations must skip re-keying";
}

// ---------------------------------------------------------------------------
// End-to-end guard parity: scratch vs incremental snapshots, across repair
// modes and thread counts, on both a violation-and-repair scenario and a
// churn workload.

PolicyList scenario_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

std::string run_guard_on_scenario(RepairMode mode, unsigned threads, bool incremental) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.repair = mode;
  options.num_threads = threads;
  options.incremental_snapshot = incremental;
  Guard guard(*scenario.network, scenario_policies(scenario), options);
  scenario.misconfigure_r2_lp10();
  return guard.run().digest();
}

std::string run_guard_on_churn(RepairMode mode, unsigned threads, bool incremental,
                               std::uint64_t seed) {
  Rng topo_rng(seed);
  NetworkOptions options;
  options.seed = seed;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = 16;
  churn_options.config_change_probability = 0.2;
  churn_options.seed = seed + 1;
  ChurnWorkload churn(generated, churn_options);

  GuardOptions guard_options;
  guard_options.repair = mode;
  guard_options.num_threads = threads;
  guard_options.incremental_snapshot = incremental;
  Guard guard(*generated.network, churn_policies(churn_options.prefix_count), guard_options);
  return guard.run().digest();
}

TEST(IncrementalSnapshot, GuardReportParityAllModesAndThreads) {
  for (RepairMode mode : {RepairMode::kReport, RepairMode::kBlock, RepairMode::kRevert,
                          RepairMode::kEarlyBlock}) {
    std::string baseline = run_guard_on_scenario(mode, 1, /*incremental=*/false);
    ASSERT_FALSE(baseline.empty());
    for (unsigned threads : {1u, 2u, 8u}) {
      EXPECT_EQ(baseline, run_guard_on_scenario(mode, threads, /*incremental=*/true))
          << "mode=" << to_string(mode) << " threads=" << threads;
    }
    EXPECT_EQ(baseline, run_guard_on_scenario(mode, 8, /*incremental=*/false))
        << "mode=" << to_string(mode) << " scratch threads=8";
  }
}

TEST(IncrementalSnapshot, GuardReportParityUnderChurn) {
  for (RepairMode mode : {RepairMode::kReport, RepairMode::kRevert, RepairMode::kEarlyBlock}) {
    std::string baseline = run_guard_on_churn(mode, 1, /*incremental=*/false, 41);
    for (unsigned threads : {1u, 2u, 8u}) {
      EXPECT_EQ(baseline, run_guard_on_churn(mode, threads, /*incremental=*/true, 41))
          << "mode=" << to_string(mode) << " threads=" << threads;
    }
  }
}

std::string run_guard_on_lossy_churn(unsigned threads, bool incremental, std::uint64_t seed) {
  Rng topo_rng(seed);
  NetworkOptions options;
  options.seed = seed;
  options.capture.timestamp_jitter_us = 1'000;
  options.capture.loss_probability = 0.05;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = 16;
  churn_options.config_change_probability = 0.2;
  churn_options.seed = seed + 1;
  ChurnWorkload churn(generated, churn_options);

  GuardOptions guard_options;
  guard_options.num_threads = threads;
  guard_options.incremental_snapshot = incremental;
  guard_options.matcher.local_slack_us = 5'000;
  Guard guard(*generated.network, churn_policies(churn_options.prefix_count), guard_options);
  return guard.run().digest();
}

TEST(IncrementalSnapshot, GuardReportParityUnderCaptureLoss) {
  // Hub-level record loss (loss_probability > 0) punches seq gaps into the
  // store itself. Whatever the guard concludes from that imperfect history,
  // it must conclude identically at every thread count, scratch or
  // incremental — loss is in the data, not in the pipeline.
  std::string baseline = run_guard_on_lossy_churn(1, /*incremental=*/false, 53);
  ASSERT_FALSE(baseline.empty());
  for (unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(baseline, run_guard_on_lossy_churn(threads, /*incremental=*/true, 53))
        << "threads=" << threads;
    EXPECT_EQ(baseline, run_guard_on_lossy_churn(threads, /*incremental=*/false, 53))
        << "scratch threads=" << threads;
  }
}

}  // namespace
}  // namespace hbguard
