#include <gtest/gtest.h>

#include "hbguard/snapshot/naive.hpp"
#include "hbguard/verify/eqclass.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {
namespace {

FibEntry forward(const char* prefix, RouterId next_hop) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kForward;
  e.next_hop = next_hop;
  return e;
}

FibEntry external(const char* prefix, const char* session) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kExternal;
  e.external_session = session;
  return e;
}

FibEntry local(const char* prefix) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kLocal;
  return e;
}

FibEntry drop(const char* prefix) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kDrop;
  return e;
}

/// Hand-built snapshot: R0 -> R1 -> R2(exit via "up"), destination P.
DataPlaneSnapshot chain_snapshot() {
  DataPlaneSnapshot s;
  s.routers[0].entries = {forward("203.0.113.0/24", 1)};
  s.routers[1].entries = {forward("203.0.113.0/24", 2)};
  s.routers[2].entries = {external("203.0.113.0/24", "up")};
  return s;
}

const Prefix kP = *Prefix::parse("203.0.113.0/24");

TEST(Trace, ChainReachesExternal) {
  auto s = chain_snapshot();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kExternal);
  EXPECT_EQ(trace.path, (std::vector<RouterId>{0, 1, 2}));
  EXPECT_EQ(trace.exit_router, 2u);
  EXPECT_EQ(trace.exit_session, "up");
}

TEST(Trace, LoopDetected) {
  auto s = chain_snapshot();
  s.routers[2].entries = {forward("203.0.113.0/24", 0)};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kLoop);
}

TEST(Trace, BlackholeOnMissingEntry) {
  auto s = chain_snapshot();
  s.routers[1].entries = {};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kBlackhole);
  EXPECT_EQ(trace.path.back(), 1u);
}

TEST(Trace, DropAction) {
  auto s = chain_snapshot();
  s.routers[1].entries = {drop("203.0.113.0/24")};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kDropped);
}

TEST(Trace, LocalDelivery) {
  auto s = chain_snapshot();
  s.routers[2].entries = {local("203.0.113.0/24")};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(trace.exit_router, 2u);
}

TEST(Trace, DeadUplinkDetected) {
  auto s = chain_snapshot();
  s.routers[2].failed_uplinks.insert("up");
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kDeadUplink);
}

TEST(Trace, ForwardToUnknownRouterIsBlackhole) {
  auto s = chain_snapshot();
  s.routers[1].entries = {forward("203.0.113.0/24", 99)};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, representative(kP));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kBlackhole);
}

TEST(Trace, LongestPrefixMatchGovernsNextHop) {
  auto s = chain_snapshot();
  s.routers[0].entries = {forward("203.0.113.0/24", 1), forward("203.0.113.0/25", 2)};
  s.invalidate_lookup_cache();
  auto trace = trace_forwarding(s, 0, IpAddress(203, 0, 113, 5));  // inside /25
  EXPECT_EQ(trace.path[1], 2u);
}

TEST(Policies, LoopFreedomFlagsEveryLoopedSource) {
  auto s = chain_snapshot();
  s.routers[2].entries = {forward("203.0.113.0/24", 0)};
  s.invalidate_lookup_cache();
  LoopFreedomPolicy policy(kP);
  std::vector<Violation> violations;
  policy.check(s, violations);
  EXPECT_EQ(violations.size(), 3u);  // every source loops
}

TEST(Policies, BlackholeFreedomIgnoresRoutelessRouters) {
  auto s = chain_snapshot();
  s.routers[0].entries = {};  // no route at R0: not a blackhole by policy
  s.invalidate_lookup_cache();
  BlackholeFreedomPolicy policy(kP);
  std::vector<Violation> violations;
  policy.check(s, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(Policies, BlackholeFreedomFlagsDownstreamHole) {
  auto s = chain_snapshot();
  s.routers[2].entries = {};  // R0 and R1 forward into a hole
  s.invalidate_lookup_cache();
  BlackholeFreedomPolicy policy(kP);
  std::vector<Violation> violations;
  policy.check(s, violations);
  EXPECT_EQ(violations.size(), 2u);
}

TEST(Policies, ReachabilityPassAndFail) {
  auto s = chain_snapshot();
  ReachabilityPolicy ok(0, kP);
  std::vector<Violation> violations;
  ok.check(s, violations);
  EXPECT_TRUE(violations.empty());

  s.routers[1].entries = {};
  s.invalidate_lookup_cache();
  ok.check(s, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].router, 0u);
}

TEST(Policies, WaypointEnforced) {
  auto s = chain_snapshot();
  WaypointPolicy through_r1(kP, 1);
  std::vector<Violation> violations;
  through_r1.check(s, violations);
  EXPECT_TRUE(violations.empty());

  // R0 bypasses R1 straight to R2.
  s.routers[0].entries = {forward("203.0.113.0/24", 2)};
  s.invalidate_lookup_cache();
  through_r1.check(s, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].router, 0u);
}

TEST(Policies, PreferredExitHonoursUplinkState) {
  DataPlaneSnapshot s;
  s.routers[0].entries = {forward("203.0.113.0/24", 2)};
  s.routers[1].entries = {external("203.0.113.0/24", "backup")};
  s.routers[2].entries = {external("203.0.113.0/24", "pref")};
  // Both uplinks currently offer the route.
  s.routers[1].uplink_routes["backup"].insert(kP);
  s.routers[2].uplink_routes["pref"].insert(kP);

  PreferredExitPolicy policy(kP, 2, "pref", 1, "backup");
  {
    std::vector<Violation> violations;
    policy.check(s, violations);
    // R1 exits via backup although preferred is up: violation at R1.
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].router, 1u);
  }
  {
    // Preferred uplink down: now R1's exit is right and R0/R2 are wrong.
    s.routers[2].failed_uplinks.insert("pref");
    std::vector<Violation> violations;
    policy.check(s, violations);
    EXPECT_EQ(violations.size(), 2u);
  }
}

TEST(Policies, PreferredExitQuietWhileExitHasNoOffer) {
  // Fig. 1a: the preferred uplink is up but has learned no route — exiting
  // via the backup is correct, not a violation.
  DataPlaneSnapshot s;
  s.routers[0].entries = {forward("203.0.113.0/24", 1)};
  s.routers[1].entries = {external("203.0.113.0/24", "backup")};
  s.routers[1].uplink_routes["backup"].insert(kP);
  s.routers[2].entries = {forward("203.0.113.0/24", 1)};
  PreferredExitPolicy policy(kP, 2, "pref", 1, "backup");
  std::vector<Violation> violations;
  policy.check(s, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(Policies, PreferredExitQuietWhenPrefixWithdrawn) {
  DataPlaneSnapshot s;
  s.routers[0].entries = {};
  s.routers[1].entries = {};
  PreferredExitPolicy policy(kP, 0, "pref", 1, "backup");
  std::vector<Violation> violations;
  policy.check(s, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(Verifier, AggregatesAcrossPolicies) {
  auto s = chain_snapshot();
  s.routers[2].entries = {forward("203.0.113.0/24", 0)};
  s.invalidate_lookup_cache();
  Verifier verifier({std::make_shared<LoopFreedomPolicy>(kP),
                     std::make_shared<ReachabilityPolicy>(0, kP)});
  auto result = verifier.verify(s);
  EXPECT_EQ(result.violations.size(), 4u);  // 3 loop + 1 reachability
}

TEST(Verifier, CompareVerdicts) {
  auto truth = chain_snapshot();
  auto observed = chain_snapshot();
  observed.routers[2].entries = {forward("203.0.113.0/24", 0)};  // phantom loop

  Verifier verifier({std::make_shared<LoopFreedomPolicy>(kP)});
  auto comparison = compare_verdicts(verifier, observed, truth);
  EXPECT_EQ(comparison.false_alarms, 1u);
  EXPECT_EQ(comparison.missed, 0u);
  EXPECT_EQ(comparison.agree, 0u);

  comparison = compare_verdicts(verifier, truth, observed);
  EXPECT_EQ(comparison.missed, 1u);
}

// ---------------------------------------------------------------------------
// Equivalence classes

TEST(EqClass, ChainHasFewClasses) {
  auto s = chain_snapshot();
  auto classes = compute_equivalence_classes(s);
  // Two behaviours: inside P (forwarded to exit) and outside P (no route).
  EXPECT_EQ(classes.classes.size(), 2u);
  EXPECT_EQ(classes.class_of(IpAddress(203, 0, 113, 7)),
            classes.class_of(IpAddress(203, 0, 113, 200)));
  EXPECT_NE(classes.class_of(IpAddress(203, 0, 113, 7)), classes.class_of(IpAddress(8, 8, 8, 8)));
}

TEST(EqClass, ManyPrefixesSameTreatmentCollapse) {
  DataPlaneSnapshot s;
  for (int i = 0; i < 50; ++i) {
    std::string p = "10." + std::to_string(i) + ".0.0/16";
    s.routers[0].entries.push_back(forward(p.c_str(), 1));
    s.routers[1].entries.push_back(external(p.c_str(), "up"));
  }
  auto classes = compute_equivalence_classes(s);
  // 50 prefixes but only 2 classes: "inside a 10.x/16" and "everything else".
  EXPECT_EQ(classes.classes.size(), 2u);
  EXPECT_GT(classes.atomic_intervals, 50u);
}

TEST(EqClass, DifferentTreatmentSplitsClasses) {
  DataPlaneSnapshot s;
  s.routers[0].entries = {forward("10.0.0.0/16", 1), forward("10.1.0.0/16", 2),
                          drop("10.2.0.0/16")};
  auto classes = compute_equivalence_classes(s);
  EXPECT_EQ(classes.classes.size(), 4u);  // three distinct + default no-route
}

TEST(EqClass, CoversFullAddressSpace) {
  auto s = chain_snapshot();
  auto classes = compute_equivalence_classes(s);
  std::uint64_t total = 0;
  for (const auto& klass : classes.classes) total += klass.size;
  EXPECT_EQ(total, std::uint64_t{1} << 32);
}

}  // namespace
}  // namespace hbguard
