// End-to-end tests for hbguardd: a loopback Unix-socket client streams the
// Fig. 2 trace through a live daemon and asserts that the GuardReport digest
// matches the synchronous library path (ReplayGuardSession::run_offline) on
// the same input — the transport must be invisible to verification. Also
// exercises the control RPC surface (status/scan/repairs), ingest
// backpressure with a slow (paused) consumer, and clean shutdown.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "hbguard/capture/trace_io.hpp"
#include "hbguard/daemon/daemon.hpp"
#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

// ---- Minimal blocking loopback client (mirrors hbgctl live / feed) --------

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// One RPC round-trip: send `command`, collect the "."-framed response body.
std::string rpc(int fd, const std::string& command) {
  if (!send_all(fd, command + "\n")) return {};
  std::string buffer;
  std::string body;
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line == ".") return body;
      if (!line.empty() && line[0] == '.') line.erase(0, 1);  // un-dot-stuff
      body += line;
      body += '\n';
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return body;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string chomp(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::string to_jsonl(const std::vector<IoRecord>& records) {
  std::ostringstream out;
  write_trace(out, records);
  return out.str();
}

/// Pull an integer field out of the one-line status JSON.
std::uint64_t status_field(const std::string& status, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  std::size_t pos = status.find(needle);
  if (pos == std::string::npos) return ~0ULL;
  return std::strtoull(status.c_str() + pos + needle.size(), nullptr, 10);
}

struct Fig2Trace {
  std::vector<IoRecord> records;
  PolicyList policies;
};

/// The misconfigured Fig. 2 run: the preferred-exit violation is in the
/// trace, so proposal-mode scans queue a repair for operator approval.
Fig2Trace make_fig2_trace() {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  return {scenario.network->capture().records(), paper_policies(scenario)};
}

DaemonOptions make_options(const Fig2Trace& trace, const std::string& suffix) {
  DaemonOptions options;
  options.socket_dir =
      "/tmp/hbguardd-test-" + std::to_string(::getpid()) + "-" + suffix;
  options.session.policies = trace.policies;
  options.session.scan_every_us = 5'000;  // several cadence boundaries per trace
  options.session.guard.repair = RepairMode::kProposeOnly;
  options.session.guard.compact_budget = 64;  // amortized compaction on
  return options;
}

// ---------------------------------------------------------------------------

TEST(Daemon, DigestParityAcrossThreadCountsWithAmortizedCompaction) {
  Fig2Trace trace = make_fig2_trace();
  ASSERT_GT(trace.records.size(), 20u);

  std::vector<std::string> digests;
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DaemonOptions options = make_options(trace, "parity-" + std::to_string(threads));
    options.session.guard.num_threads = threads;

    GuardReport offline = ReplayGuardSession::run_offline(trace.records, options.session);
    ASSERT_GE(offline.scans, 2u);  // cadence actually fired mid-stream

    GuardDaemon daemon(options);
    ASSERT_TRUE(daemon.bind());
    std::thread server([&daemon] { daemon.run(); });

    int ingest = connect_unix(daemon.ingest_socket_path());
    ASSERT_GE(ingest, 0);
    ASSERT_TRUE(send_all(ingest, to_jsonl(trace.records)));
    ::close(ingest);

    int control = connect_unix(daemon.control_socket_path());
    ASSERT_GE(control, 0);
    std::string digest = rpc(control, "digest");  // gated on ingest quiescence
    std::string bye = rpc(control, "shutdown");
    ::close(control);
    server.join();

    EXPECT_EQ(chomp(digest), chomp(offline.digest()));
    EXPECT_EQ(bye.rfind("ok", 0), 0u) << bye;
    EXPECT_EQ(daemon.session().records_delivered(), trace.records.size());
    EXPECT_EQ(daemon.records_dropped(), 0u);
    digests.push_back(chomp(digest));
  }
  // Thread count must not leak into the verdict stream.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(Daemon, ControlSurfaceDrivesProposalsOverRpc) {
  Fig2Trace trace = make_fig2_trace();
  DaemonOptions options = make_options(trace, "rpc");

  GuardDaemon daemon(options);
  ASSERT_TRUE(daemon.bind());
  std::thread server([&daemon] { daemon.run(); });

  int ingest = connect_unix(daemon.ingest_socket_path());
  ASSERT_GE(ingest, 0);
  ASSERT_TRUE(send_all(ingest, to_jsonl(trace.records)));
  ::close(ingest);

  int control = connect_unix(daemon.control_socket_path());
  ASSERT_GE(control, 0);

  // digest first: it waits for the whole stream to drain and the tail scan
  // to run, so everything after it observes the final state.
  std::string digest = rpc(control, "digest");
  EXPECT_FALSE(chomp(digest).empty());

  std::string status = rpc(control, "status");
  EXPECT_EQ(status_field(status, "records_delivered"), trace.records.size());
  EXPECT_EQ(status_field(status, "records_dropped"), 0u);
  EXPECT_GE(status_field(status, "scans"), 2u);
  EXPECT_GE(status_field(status, "incidents"), 1u);  // preferred-exit violated
  EXPECT_EQ(status_field(status, "proposals_pending"), 1u);
  EXPECT_NE(status.find("\"finished\":true"), std::string::npos) << status;

  std::string list = rpc(control, "repairs list");
  EXPECT_NE(list.find("#1 pending"), std::string::npos) << list;

  // The replay host does not own the misconfigured device's config store, so
  // approval reports the out-of-band path rather than faking a revert.
  std::string approve = rpc(control, "repairs approve 1");
  EXPECT_EQ(approve.rfind("err", 0), 0u) << approve;
  EXPECT_NE(approve.find("out of band"), std::string::npos) << approve;

  std::string decline = rpc(control, "repairs decline 1");
  EXPECT_EQ(decline.rfind("ok", 0), 0u) << decline;
  EXPECT_NE(rpc(control, "repairs list").find("#1 declined"), std::string::npos);

  EXPECT_EQ(rpc(control, "why 999999").rfind("err", 0), 0u);
  EXPECT_EQ(rpc(control, "bogus-command").rfind("err", 0), 0u);

  std::string bye = rpc(control, "shutdown");
  EXPECT_EQ(bye.rfind("ok", 0), 0u) << bye;
  ::close(control);
  server.join();
}

TEST(Daemon, BackpressureSlowConsumerDropsAtHardCapThenRecovers) {
  Fig2Trace trace = make_fig2_trace();
  ASSERT_GT(trace.records.size(), 20u);

  DaemonOptions options = make_options(trace, "backpressure");
  options.inbox_soft_limit = 4;  // hard cap 8 — far below the trace size

  GuardDaemon daemon(options);
  ASSERT_TRUE(daemon.bind());
  std::thread server([&daemon] { daemon.run(); });

  int control = connect_unix(daemon.control_socket_path());
  ASSERT_GE(control, 0);
  ASSERT_EQ(rpc(control, "pause").rfind("ok", 0), 0u);

  // With delivery paused the inbox cannot drain: reads stop at the soft
  // limit (lossless kernel backpressure), and a single read burst that
  // overshoots the hard cap is dropped. Send all but the last 12 records as
  // one burst — the inbox caps at 8, the rest of the burst is dropped.
  std::size_t tail_count = 12;
  std::vector<IoRecord> head(trace.records.begin(), trace.records.end() - tail_count);
  std::vector<IoRecord> tail(trace.records.end() - tail_count, trace.records.end());
  std::uint64_t sent = trace.records.size();

  int ingest = connect_unix(daemon.ingest_socket_path());
  ASSERT_GE(ingest, 0);
  ASSERT_TRUE(send_all(ingest, to_jsonl(head)));

  // Resume: the buffered 8 deliver, the connection unpauses, and the reads
  // release. digest is the drain barrier — after it, the head is fully
  // accounted (delivered or dropped).
  ASSERT_EQ(rpc(control, "resume").rfind("ok", 0), 0u);
  EXPECT_FALSE(chomp(rpc(control, "digest")).empty());
  std::string mid_status = rpc(control, "status");
  std::uint64_t dropped = status_field(mid_status, "records_dropped");
  EXPECT_GT(dropped, 0u) << mid_status;

  // The tail now streams through the recovered connection in small bursts
  // with status round-trips in between (bursts can still coalesce while a
  // cadence scan holds delivery, so a few more hard-cap drops are legal).
  // Delivered tail records follow the dropped middle of the trace, so their
  // router_seq jumps must surface as stream-health gaps at the next scan.
  for (std::size_t i = 0; i < tail.size(); i += 4) {
    std::vector<IoRecord> burst(tail.begin() + i,
                                tail.begin() + std::min(i + 4, tail.size()));
    ASSERT_TRUE(send_all(ingest, to_jsonl(burst)));
    EXPECT_NE(rpc(control, "status").find("records_delivered"), std::string::npos);
  }
  ::close(ingest);
  EXPECT_FALSE(chomp(rpc(control, "digest")).empty());  // tail drain barrier
  ASSERT_EQ(rpc(control, "scan").rfind("ok", 0), 0u);

  std::string status = rpc(control, "status");
  std::uint64_t final_dropped = status_field(status, "records_dropped");
  EXPECT_GE(final_dropped, dropped) << status;
  // Every record sent is accounted for: delivered or dropped, never lost.
  EXPECT_EQ(status_field(status, "records_delivered") + final_dropped, sent) << status;
  // Dropped records leave router_seq gaps the stream-health layer must see.
  EXPECT_GT(status_field(status, "stream_gaps"), 0u) << status;

  std::string bye = rpc(control, "shutdown");
  EXPECT_EQ(bye.rfind("ok", 0), 0u) << bye;
  ::close(control);
  server.join();

  EXPECT_EQ(daemon.records_dropped(), final_dropped);
  EXPECT_EQ(daemon.session().records_delivered(), sent - final_dropped);
}

TEST(Daemon, StopRequestExitsTheLoopCleanly) {
  Fig2Trace trace = make_fig2_trace();
  DaemonOptions options = make_options(trace, "stop");

  GuardDaemon daemon(options);
  ASSERT_TRUE(daemon.bind());
  int rc = -1;
  std::thread server([&daemon, &rc] { rc = daemon.run(); });
  // stop() is the signal-handler path: thread-safe, wakes the poll loop.
  daemon.stop();
  server.join();
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace hbguard
