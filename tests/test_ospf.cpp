#include <gtest/gtest.h>

#include "hbguard/proto/ospf/engine.hpp"
#include "hbguard/proto/ospf/lsdb.hpp"
#include "hbguard/proto/ospf/spf.hpp"

namespace hbguard {
namespace {

RouterLsa make_lsa(RouterId origin, std::uint64_t seq,
                   std::vector<std::pair<RouterId, std::uint32_t>> adjacencies,
                   std::vector<Prefix> prefixes = {}) {
  RouterLsa lsa;
  lsa.origin = origin;
  lsa.seq = seq;
  lsa.adjacencies = std::move(adjacencies);
  lsa.prefixes = std::move(prefixes);
  return lsa;
}

TEST(Lsdb, NewerSequenceWins) {
  Lsdb lsdb;
  EXPECT_TRUE(lsdb.install(make_lsa(1, 1, {{2, 1}})));
  EXPECT_FALSE(lsdb.install(make_lsa(1, 1, {{2, 1}})));  // same seq: reject
  EXPECT_FALSE(lsdb.install(make_lsa(1, 0, {{3, 1}})));  // older: reject
  EXPECT_TRUE(lsdb.install(make_lsa(1, 2, {{3, 1}})));
  ASSERT_NE(lsdb.get(1), nullptr);
  EXPECT_EQ(lsdb.get(1)->adjacencies[0].first, 3u);
}

TEST(Lsdb, FlushRemoves) {
  Lsdb lsdb;
  lsdb.install(make_lsa(1, 1, {}));
  EXPECT_TRUE(lsdb.flush(1));
  EXPECT_FALSE(lsdb.flush(1));
  EXPECT_EQ(lsdb.get(1), nullptr);
}

class SpfFixture : public ::testing::Test {
 protected:
  // Diamond: 0-1 (1), 0-2 (2), 1-3 (1), 2-3 (1); plus prefix P at 3.
  SpfFixture() {
    p_ = *Prefix::parse("10.3.0.0/16");
    lsdb_.install(make_lsa(0, 1, {{1, 1}, {2, 2}}));
    lsdb_.install(make_lsa(1, 1, {{0, 1}, {3, 1}}));
    lsdb_.install(make_lsa(2, 1, {{0, 2}, {3, 1}}));
    lsdb_.install(make_lsa(3, 1, {{1, 1}, {2, 1}}, {p_}));
  }
  Lsdb lsdb_;
  Prefix p_;
};

TEST_F(SpfFixture, ShortestDistances) {
  auto result = run_spf(lsdb_, 0);
  EXPECT_EQ(result.distance_to(0), 0u);
  EXPECT_EQ(result.distance_to(1), 1u);
  EXPECT_EQ(result.distance_to(2), 2u);
  EXPECT_EQ(result.distance_to(3), 2u);  // via 1
}

TEST_F(SpfFixture, FirstHopsFollowShortestPath) {
  auto result = run_spf(lsdb_, 0);
  EXPECT_EQ(result.first_hop_to(3), 1u);
  EXPECT_EQ(result.first_hop_to(1), 1u);
  EXPECT_EQ(result.first_hop_to(2), 2u);
  EXPECT_EQ(result.first_hop_to(0), 0u);
}

TEST_F(SpfFixture, PrefixRoutes) {
  auto result = run_spf(lsdb_, 0);
  ASSERT_TRUE(result.prefix_routes.contains(p_));
  const OspfRoute& route = result.prefix_routes.at(p_);
  EXPECT_EQ(route.cost, 2u);
  EXPECT_EQ(route.first_hop, 1u);
  EXPECT_EQ(route.origin_router, 3u);
}

TEST_F(SpfFixture, TwoWayCheckIgnoresOneSidedAdjacency) {
  // Router 4 claims adjacency to 0, but 0 does not reciprocate.
  lsdb_.install(make_lsa(4, 1, {{0, 1}}));
  auto result = run_spf(lsdb_, 0);
  EXPECT_FALSE(result.distance_to(4).has_value());
}

TEST_F(SpfFixture, UnreachableRouterAbsent) {
  lsdb_.install(make_lsa(9, 1, {{8, 1}}));
  lsdb_.install(make_lsa(8, 1, {{9, 1}}));
  auto result = run_spf(lsdb_, 0);
  EXPECT_FALSE(result.distance_to(9).has_value());
  EXPECT_TRUE(result.distance_to(3).has_value());
}

TEST_F(SpfFixture, RootWithoutLsaYieldsEmptyResult) {
  Lsdb empty;
  auto result = run_spf(empty, 0);
  EXPECT_TRUE(result.nodes.empty());
  EXPECT_TRUE(result.prefix_routes.empty());
}

TEST_F(SpfFixture, PrefixTieBreaksByCostThenOriginId) {
  Prefix shared = *Prefix::parse("10.9.0.0/16");
  // Both 1 (dist 1) and 2 (dist 2) originate `shared`: 1 must win on cost.
  lsdb_.install(make_lsa(1, 2, {{0, 1}, {3, 1}}, {shared}));
  lsdb_.install(make_lsa(2, 2, {{0, 2}, {3, 1}}, {shared}));
  auto result = run_spf(lsdb_, 0);
  ASSERT_TRUE(result.prefix_routes.contains(shared));
  EXPECT_EQ(result.prefix_routes.at(shared).origin_router, 1u);
}

// ---------------------------------------------------------------------------
// Engine tests: two engines connected by a test harness that forwards
// floods directly.

class OspfEnginePair : public ::testing::Test {
 protected:
  OspfEnginePair() {
    config_a_.ospf.enabled = true;
    config_a_.ospf.originated.push_back(*Prefix::parse("10.0.1.0/24"));
    config_b_.ospf.enabled = true;
    config_b_.ospf.originated.push_back(*Prefix::parse("10.0.2.0/24"));

    a_ = std::make_unique<OspfEngine>(0, OspfEngine::Callbacks{
        [this](const RouterLsa& lsa, RouterId to) {
          if (to == 1 && b_) b_->handle_lsa(0, lsa);
        },
        [this](const Prefix& prefix, const OspfRoute* route) {
          a_routes_[prefix] = route != nullptr;
        },
        nullptr});
    b_ = std::make_unique<OspfEngine>(1, OspfEngine::Callbacks{
        [this](const RouterLsa& lsa, RouterId to) {
          if (to == 0 && a_) a_->handle_lsa(1, lsa);
        },
        [this](const Prefix& prefix, const OspfRoute* route) {
          b_routes_[prefix] = route != nullptr;
        },
        nullptr});
    a_->set_config(&config_a_);
    b_->set_config(&config_b_);
    a_->set_adjacency_source([] {
      return std::vector<std::pair<RouterId, std::uint32_t>>{{1, 1}};
    });
    b_->set_adjacency_source([] {
      return std::vector<std::pair<RouterId, std::uint32_t>>{{0, 1}};
    });
  }

  RouterConfig config_a_, config_b_;
  std::unique_ptr<OspfEngine> a_, b_;
  std::map<Prefix, bool> a_routes_, b_routes_;
};

TEST_F(OspfEnginePair, ConvergesAndExchangesPrefixes) {
  a_->start();
  b_->start();
  // This harness delivers synchronously, so a's initial flood (sent before
  // b started) was dropped — something that cannot happen over the real
  // message fabric, where delivery is delayed past the receiver's start.
  // A refresh re-floods with a higher sequence number, as a real adjacency
  // bring-up would.
  a_->refresh();
  EXPECT_EQ(a_->distance_to(1), 1u);
  EXPECT_EQ(b_->distance_to(0), 1u);
  EXPECT_TRUE(a_routes_.at(*Prefix::parse("10.0.2.0/24")));
  EXPECT_TRUE(b_routes_.at(*Prefix::parse("10.0.1.0/24")));
}

TEST_F(OspfEnginePair, AdjacencyLossPartitions) {
  a_->start();
  b_->start();
  a_->set_adjacency_source([] {
    return std::vector<std::pair<RouterId, std::uint32_t>>{};
  });
  a_->refresh();
  EXPECT_FALSE(a_->distance_to(1).has_value());
  EXPECT_FALSE(a_routes_.at(*Prefix::parse("10.0.2.0/24")));
}

TEST_F(OspfEnginePair, DisabledEngineIgnoresLsas) {
  config_a_.ospf.enabled = false;
  a_->start();
  b_->start();
  EXPECT_FALSE(a_->distance_to(1).has_value());
}

}  // namespace
}  // namespace hbguard
