// Fault-resilience contract (robustness tentpole).
//
// A FaultInjector drives seeded link flaps, router crash/restart cycles and
// capture-channel outages against a live network while the guard keeps
// scanning. The gates:
//
//   * zero FALSE verdicts — every PASS/FAIL the degraded pipeline emits must
//     be defensible against a fault-free-capture oracle that experienced the
//     identical control-plane faults (incident containment);
//   * full recovery — once streams heal, the guard's verdicts and the
//     network's actual data plane must match the oracle's exactly;
//   * crash/restart round-trips the control plane — a cold-booted router
//     re-converges to the same FIBs it had before the crash.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "fixtures.hpp"
#include "hbguard/core/guard.hpp"
#include "hbguard/fault/injector.hpp"
#include "hbguard/fault/plan.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan.

TEST(FaultPlan, DeterministicForASeed) {
  Rng topo_rng(5);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions options;
  options.seed = 77;
  FaultPlan a = FaultPlan::random(topology, options);
  FaultPlan b = FaultPlan::random(topology, options);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.describe(), b.describe());

  options.seed = 78;
  FaultPlan c = FaultPlan::random(topology, options);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, CaptureAndControlSubsetsPartitionThePlan) {
  Rng topo_rng(5);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions options;
  options.link_flaps = 3;
  options.router_crashes = 2;
  options.capture_outages = 4;
  FaultPlan plan = FaultPlan::random(topology, options);
  EXPECT_EQ(plan.events().size(), 9u);
  FaultPlan capture = plan.capture_only();
  FaultPlan control = plan.control_only();
  EXPECT_EQ(capture.events().size(), 4u);
  EXPECT_EQ(control.events().size(), 5u);
  for (const FaultEvent& event : capture.events()) {
    EXPECT_EQ(event.kind, FaultKind::kCaptureOutage);
  }
  for (const FaultEvent& event : control.events()) {
    EXPECT_NE(event.kind, FaultKind::kCaptureOutage);
  }
}

// ---------------------------------------------------------------------------
// DeliveryChannel: reordered/duplicated delivery, in-order store.

TEST(DeliveryChannel, StoreKeepsPerRouterSeqOrderUnderReordering) {
  Simulator sim;
  CaptureHub hub;
  DeliveryOptions options;
  options.reorder_probability = 0.5;
  options.duplicate_probability = 0.2;
  DeliveryChannel channel(sim, hub, options);
  hub.set_transport(&channel);
  hub.enable_stream_health();
  RouterTap tap0(&hub, 0);
  RouterTap tap1(&hub, 1);

  const int n = 100;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(i * 100, [&] {
      IoRecord a;
      a.kind = IoKind::kFibUpdate;
      a.true_time = sim.now();
      tap0.record(std::move(a));
      IoRecord b;
      b.kind = IoKind::kRibUpdate;
      b.true_time = sim.now();
      tap1.record(std::move(b));
    });
  }
  sim.run();

  // No outage: every record reaches the store exactly once, in seq order.
  ASSERT_EQ(hub.records().size(), static_cast<std::size_t>(2 * n));
  std::map<RouterId, std::uint64_t> next;
  for (const IoRecord& r : hub.records()) {
    ASSERT_EQ(r.router_seq, next[r.router]) << "router " << r.router;
    ++next[r.router];
  }
  EXPECT_GT(channel.duplicated(), 0u);
  EXPECT_EQ(hub.health()->stats().duplicates_dropped, channel.duplicated());
  EXPECT_GT(hub.health()->stats().reordered, 0u);
  EXPECT_FALSE(hub.health()->any_degraded()) << "all gaps must have healed";
}

TEST(DeliveryChannel, OutageWindowLosesRecordsUntilResync) {
  Simulator sim;
  CaptureHub hub;
  DeliveryOptions options;
  options.jitter_us = 0;
  options.reorder_probability = 0;
  options.duplicate_probability = 0;
  DeliveryChannel channel(sim, hub, options);
  hub.set_transport(&channel);
  StreamHealthOptions health;
  health.gap_grace_us = 10'000;
  hub.enable_stream_health(health);
  RouterTap tap(&hub, 0);

  auto emit = [&](bool fib_reset = false) {
    IoRecord r;
    r.kind = fib_reset ? IoKind::kHardwareStatus : IoKind::kFibUpdate;
    r.fib_reset = fib_reset;
    r.true_time = sim.now();
    tap.record(std::move(r));
  };
  sim.schedule_at(100, [&] { emit(); });
  sim.schedule_at(200, [&] { channel.set_outage(0, true); });
  sim.schedule_at(300, [&] { emit(); });  // eaten by the outage
  sim.schedule_at(400, [&] { emit(); });  // eaten by the outage
  sim.schedule_at(500, [&] { channel.set_outage(0, false); });
  sim.schedule_at(600, [&] { emit(); });  // opens the gap at the hub
  sim.run();
  EXPECT_EQ(channel.dropped(), 2u);
  EXPECT_EQ(hub.health()->state(0), StreamState::kSuspect);

  // Grace expires with the records gone for good: quarantine.
  hub.tick_health(20'000);
  EXPECT_EQ(hub.health()->state(0), StreamState::kQuarantined);
  EXPECT_EQ(hub.health()->stats().records_lost, 2u);

  // The router's resync checkpoint makes the stream trustworthy again.
  sim.schedule_at(21'000, [&] { emit(/*fib_reset=*/true); });
  sim.run();
  EXPECT_EQ(hub.health()->state(0), StreamState::kHealthy);
  EXPECT_EQ(hub.health()->stats().resyncs, 1u);
}

// ---------------------------------------------------------------------------
// Crash/restart round-trip.

TEST(FaultInjection, CrashedRouterReconvergesToItsPreCrashFibs) {
  Rng topo_rng(9);
  NetworkOptions options;
  options.seed = 9;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  Network& net = *generated.network;
  net.run_to_convergence();
  for (std::size_t i = 0; i < 4; ++i) {
    const UplinkInfo& uplink = generated.uplinks[i % generated.uplinks.size()];
    net.inject_external_advert(uplink.router, uplink.session, churn_prefix(i),
                               {uplink.peer_as, static_cast<AsNumber>(65100 + i)});
  }
  net.run_to_convergence();
  std::string before = content_digest(take_instant_snapshot(net));

  for (RouterId victim : {RouterId{2}, RouterId{5}}) {
    net.crash_router(victim);
    net.run_for(100'000);
    // While down, the victim contributes nothing to the data plane.
    EXPECT_TRUE(take_instant_snapshot(net).routers.at(victim).entries.empty());
    net.restart_router(victim);
    net.run_to_convergence();
    EXPECT_EQ(before, content_digest(take_instant_snapshot(net)))
        << "R" << victim << " did not re-converge to its pre-crash state";
  }
}

// ---------------------------------------------------------------------------
// Guarded runs under a fault plan vs the fault-free-capture oracle.

// loopback_policies, GuardedRun and run_guarded moved to fixtures.hpp so the
// distributed-HBG differential harness replays the identical runs.

std::set<std::string> incident_signatures(const GuardReport& report) {
  std::set<std::string> signatures;
  for (const GuardIncident& incident : report.incidents) {
    for (const Violation& violation : incident.violations) {
      signatures.insert(violation.policy + "|" + std::to_string(violation.router));
    }
  }
  return signatures;
}

TEST(FaultInjection, CaptureOnlyFaultsNeverChangeVerdicts) {
  // Outage-only plan: the control plane is untouched, so any incident at
  // all is a false verdict.
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.link_flaps = 0;
  plan_options.router_crashes = 0;
  plan_options.capture_outages = 3;
  plan_options.seed = 13;
  FaultPlan plan = FaultPlan::random(topology, plan_options);

  GuardedRun oracle = run_guarded(plan, /*faulty=*/false, 1, 13);
  ASSERT_TRUE(oracle.report.incidents.empty())
      << "premise: fault-free run is clean\n" << oracle.report.summary();

  GuardedRun faulty = run_guarded(plan, /*faulty=*/true, 1, 13);
  EXPECT_TRUE(faulty.report.incidents.empty())
      << "capture faults manufactured a verdict:\n" << faulty.report.summary();

  // The outages were actually exercised...
  EXPECT_GT(faulty.report.degrade.gaps, 0u);
  EXPECT_GT(faulty.report.degrade.records_lost, 0u);
  EXPECT_GT(faulty.report.degrade.resyncs, 0u);
  EXPECT_GT(faulty.report.degrade.degraded_scans, 0u);
  EXPECT_GT(faulty.report.degrade.watchdog_fallbacks, 0u);

  // ...and fully recovered from: same final data plane, final PASS, no
  // stream still degraded.
  EXPECT_FALSE(faulty.degraded_at_end);
  EXPECT_EQ(faulty.final_data_plane, oracle.final_data_plane);
  ASSERT_FALSE(faulty.report.scan_verdicts.empty());
  EXPECT_EQ(faulty.report.scan_verdicts.back(), ScanVerdict::kPass);
}

TEST(FaultInjection, FullPlanVerdictsAreContainedInTheOracles) {
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.seed = 17;
  FaultPlan plan = FaultPlan::random(topology, plan_options);
  ASSERT_FALSE(plan.control_only().empty());
  ASSERT_FALSE(plan.capture_only().empty());

  GuardedRun oracle = run_guarded(plan, /*faulty=*/false, 1, 13);
  GuardedRun faulty = run_guarded(plan, /*faulty=*/true, 1, 13);

  // Zero false verdicts: every (policy, router) the degraded pipeline
  // flagged was also flagged by the oracle that saw a pristine capture of
  // the same control-plane faults.
  std::set<std::string> oracle_signatures = incident_signatures(oracle.report);
  for (const std::string& signature : incident_signatures(faulty.report)) {
    EXPECT_TRUE(oracle_signatures.contains(signature))
        << "false verdict " << signature << " not present in the oracle run\n"
        << "oracle:\n" << oracle.report.summary() << "faulty:\n"
        << faulty.report.summary();
  }

  // Recovery: after the streams heal, both pipelines agree on the world.
  EXPECT_FALSE(faulty.degraded_at_end)
      << faulty.health_states << "\nplan:\n" << plan.describe();
  EXPECT_EQ(faulty.final_data_plane, oracle.final_data_plane);
  ASSERT_FALSE(faulty.report.scan_verdicts.empty());
  ASSERT_EQ(faulty.report.scan_verdicts.size(), oracle.report.scan_verdicts.size());
  EXPECT_EQ(faulty.report.scan_verdicts.back(), oracle.report.scan_verdicts.back());
  EXPECT_NE(faulty.report.scan_verdicts.back(), ScanVerdict::kUnknown);
}

TEST(FaultInjection, LostSendsDoNotRewindHealthyRoutersForever) {
  // Regression: when a capture outage swallows a router's kSendAdvert
  // records for good, the receivers' kRecvAdvert records have no matching
  // send in the HBG *forever*. The happens-before closure used to rewind
  // those (perfectly healthy) receivers past the receive on every scan,
  // freezing their replayed FIBs at the fault epoch — the guard kept
  // reporting a long-healed violation until the end of the run. The
  // lost-send presumption (snapshotters consult the stream-health lossy
  // set) must keep such receives once the sender's log has moved on.
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(12, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.link_flaps = 3;
  plan_options.router_crashes = 1;
  plan_options.capture_outages = 3;
  plan_options.seed = 17;
  FaultPlan plan = FaultPlan::random(topology, plan_options);

  GuardedRun oracle = run_guarded(plan, /*faulty=*/false, 1, 13, 12, 80);
  GuardedRun faulty = run_guarded(plan, /*faulty=*/true, 1, 13, 12, 80);
  ASSERT_GT(faulty.report.degrade.records_lost, 0u) << "premise: sends were lost";

  // Once the streams heal, the verdict stream must settle back to the
  // oracle's — a verdict stuck on a healed violation is the regression.
  ASSERT_FALSE(faulty.report.scan_verdicts.empty());
  ASSERT_EQ(faulty.report.scan_verdicts.size(), oracle.report.scan_verdicts.size());
  for (std::size_t i = faulty.report.scan_verdicts.size() - 3;
       i < faulty.report.scan_verdicts.size(); ++i) {
    EXPECT_EQ(faulty.report.scan_verdicts[i], oracle.report.scan_verdicts[i])
        << "scan " << i << " disagrees after heal\nfaulty:\n"
        << faulty.report.summary();
  }
  EXPECT_NE(faulty.report.scan_verdicts.back(), ScanVerdict::kUnknown);
}

TEST(FaultInjection, DegradedRunsAreDeterministicAcrossThreadCounts) {
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.seed = 17;
  FaultPlan plan = FaultPlan::random(topology, plan_options);

  std::string baseline = run_guarded(plan, /*faulty=*/true, 1, 13).report.digest();
  ASSERT_FALSE(baseline.empty());
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(baseline, run_guarded(plan, /*faulty=*/true, threads, 13).report.digest())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace hbguard
