// Durability tests: WAL round-trip and torn-tail repair, checkpoint
// validity/fallback, guard-state serialization, and crash-recovery digest
// parity. The invariant under test everywhere: recovery (checkpoint + WAL
// suffix replay) reconstructs a session whose GuardReport::digest() is
// byte-identical to the canonical synchronous pass over the same records
// and control actions (ReplayGuardSession::run_offline /
// run_offline_with_controls). The process-kill variant of these checks
// lives in bench/bench_crash_recovery.cpp; here the "crash" is a WAL cut
// at an arbitrary byte, which covers strictly more tail shapes.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixtures.hpp"
#include "hbguard/capture/trace_io.hpp"
#include "hbguard/capture/wal.hpp"
#include "hbguard/core/guard_state.hpp"
#include "hbguard/daemon/daemon.hpp"
#include "hbguard/daemon/recovery.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/snapshot/checkpoint.hpp"
#include "hbguard/util/io.hpp"

namespace hbguard {
namespace {

// ---- Scratch directories --------------------------------------------------

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) {
    path = "/tmp/hbgwal-test-" + std::to_string(::getpid()) + "-" + name;
    wipe();
    ::mkdir(path.c_str(), 0700);
  }
  ~TempDir() { wipe(); }
  void wipe() {
    DIR* dir = ::opendir(path.c_str());
    if (dir != nullptr) {
      while (dirent* entry = ::readdir(dir)) {
        std::string file = entry->d_name;
        if (file == "." || file == "..") continue;
        ::unlink((path + "/" + file).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::string error;
  EXPECT_TRUE(io::read_file(path, bytes, &error)) << error;
  return bytes;
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---- Fixture trace --------------------------------------------------------

struct Fig2Trace {
  std::vector<IoRecord> records;
  PolicyList policies;
};

Fig2Trace make_fig2_trace() {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  return {scenario.network->capture().records(), paper_policies(scenario)};
}

ReplaySessionOptions make_session_options(const Fig2Trace& trace) {
  ReplaySessionOptions options;
  options.policies = trace.policies;
  options.scan_every_us = 5'000;  // several cadence boundaries per trace
  options.guard.repair = RepairMode::kProposeOnly;
  return options;
}

/// Append `records` (and `controls` at their positions) to a fresh WAL in
/// `dir`, exactly as the daemon would have: records in delivery order,
/// controls sealed at their execution point, everything synced.
void build_wal(const std::string& dir, const std::vector<IoRecord>& records,
               const std::vector<std::pair<std::size_t, std::string>>& controls,
               const ReplaySessionOptions& options, std::size_t records_per_frame = 8) {
  GuardWal wal;
  WalOptions wal_options;
  wal_options.fsync_interval = 0;  // tests care about bytes, not barriers
  wal_options.records_per_frame = records_per_frame;
  std::string error;
  ASSERT_TRUE(wal.open(dir, 1, 0, session_fingerprint(options), wal_options, &error))
      << error;
  std::size_t next_control = 0;
  for (std::size_t i = 0; i <= records.size(); ++i) {
    while (next_control < controls.size() && controls[next_control].first == i) {
      wal.append_control(controls[next_control].second);
      ++next_control;
    }
    if (i < records.size()) wal.append_record(records[i]);
  }
  ASSERT_TRUE(wal.sync());
}

/// Drive the canonical deliver/scan loop over records[from..to) against a
/// live (possibly just-recovered) session.
void feed_canonical(ReplayGuardSession& session, const std::vector<IoRecord>& records,
                    std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    while (session.scan_due_before(records[i])) session.run_one_due_scan();
    session.deliver(records[i]);
    while (session.scan_due_now()) session.run_one_due_scan();
  }
}

/// The guard state + WAL position a daemon checkpoint at `lsn` (== record
/// count here) would have captured: run the canonical loop over the prefix
/// and export.
std::vector<std::uint8_t> checkpoint_payload_at(const std::vector<IoRecord>& records,
                                                const ReplaySessionOptions& options,
                                                std::size_t lsn) {
  ReplayGuardSession session(options);
  feed_canonical(session, records, 0, lsn);
  std::vector<std::uint8_t> payload;
  encode_guard_state(session.guard().export_state(), payload);
  return payload;
}

// ---- WAL ------------------------------------------------------------------

TEST(Wal, RoundTripRecordsAndControlsInExecutionOrder) {
  Fig2Trace trace = make_fig2_trace();
  ASSERT_GT(trace.records.size(), 20u);
  ReplaySessionOptions options = make_session_options(trace);
  TempDir dir("roundtrip");

  std::vector<std::pair<std::size_t, std::string>> controls = {
      {5, "scan"}, {10, "mode report"}, {trace.records.size(), "finish"}};
  build_wal(dir.path, trace.records, controls, options);

  std::vector<IoRecord> records;
  std::vector<std::pair<std::uint64_t, std::string>> seen_controls;
  std::uint64_t last_lsn = 0;
  WalScanStats stats;
  std::string error;
  ASSERT_TRUE(scan_wal(
      dir.path,
      [&](const IoRecord& r, std::uint64_t lsn) {
        records.push_back(r);
        last_lsn = lsn;
      },
      [&](const std::string& line, std::uint64_t lsn) {
        seen_controls.emplace_back(lsn, line);
      },
      stats, /*repair=*/false, &error))
      << error;

  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.warnings, 0u);
  EXPECT_EQ(stats.records, trace.records.size());
  EXPECT_EQ(stats.controls, controls.size());
  EXPECT_EQ(stats.entries, trace.records.size() + controls.size());
  EXPECT_EQ(stats.fingerprint, session_fingerprint(options));
  ASSERT_EQ(records.size(), trace.records.size());
  // Byte-identical record round-trip through the archive codec.
  std::ostringstream a;
  std::ostringstream b;
  write_trace(a, trace.records);
  write_trace(b, records);
  EXPECT_EQ(a.str(), b.str());
  // Controls interleave at their logged LSNs: entry 5 and (after it) 11.
  ASSERT_EQ(seen_controls.size(), 3u);
  EXPECT_EQ(seen_controls[0], (std::pair<std::uint64_t, std::string>{5, "scan"}));
  EXPECT_EQ(seen_controls[1], (std::pair<std::uint64_t, std::string>{11, "mode report"}));
  EXPECT_EQ(seen_controls[2].second, "finish");
  EXPECT_EQ(seen_controls[2].first, stats.entries - 1);
  EXPECT_EQ(last_lsn, stats.entries - 2);  // last record precedes "finish"
}

TEST(Wal, TornTailEveryCutRecoversACleanPrefixAndStaysAppendable) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  // A small WAL (few records per frame) keeps the every-byte sweep cheap
  // while still crossing several frame boundaries.
  std::vector<IoRecord> records(trace.records.begin(), trace.records.begin() + 24);
  TempDir master("torn-master");
  build_wal(master.path, records, {{12, "scan"}}, options, /*records_per_frame=*/4);
  std::vector<std::uint8_t> intact =
      read_bytes(GuardWal::segment_path(master.path, 1));
  ASSERT_GT(intact.size(), 64u);

  WalScanStats full_stats;
  std::string error;
  ASSERT_TRUE(scan_wal(master.path, nullptr, nullptr, full_stats, false, &error));
  ASSERT_EQ(full_stats.entries, 25u);

  // The clean prefixes of the file: empty (a benign just-created segment)
  // and every whole-frame boundary. A cut anywhere else is a torn tail and
  // must be flagged.
  std::set<std::size_t> clean_cuts = {0};
  {
    std::size_t offset = sizeof(kWalMagic);
    while (offset < intact.size()) {
      std::uint32_t len = static_cast<std::uint32_t>(intact[offset]) |
                          static_cast<std::uint32_t>(intact[offset + 1]) << 8 |
                          static_cast<std::uint32_t>(intact[offset + 2]) << 16 |
                          static_cast<std::uint32_t>(intact[offset + 3]) << 24;
      offset += 4 + len;
      clean_cuts.insert(offset);
    }
    ASSERT_GT(clean_cuts.size(), 4u);  // several frames to land between
  }

  TempDir dir("torn-cut");
  std::uint64_t prev_entries = 0;
  for (std::size_t cut = 0; cut <= intact.size(); ++cut) {
    std::vector<std::uint8_t> torn(intact.begin(), intact.begin() + cut);
    write_bytes(GuardWal::segment_path(dir.path, 1), torn);

    WalScanStats stats;
    ASSERT_TRUE(scan_wal(dir.path, nullptr, nullptr, stats, /*repair=*/true, &error))
        << "cut=" << cut << ": " << error;
    // Entries recovered grow monotonically with the cut and never exceed
    // the intact log; a cut inside a frame must surface a warning, a cut on
    // a frame boundary is a clean prefix and must not.
    EXPECT_LE(stats.entries, full_stats.entries) << "cut=" << cut;
    EXPECT_GE(stats.entries, prev_entries) << "cut=" << cut;
    prev_entries = std::max(prev_entries, stats.entries);
    if (clean_cuts.count(cut) != 0) {
      EXPECT_EQ(stats.warnings, 0u) << "cut=" << cut;
    } else {
      EXPECT_GE(stats.warnings, 1u) << "cut=" << cut;
    }

    // Repair truncated to a clean prefix: a re-scan decodes the same
    // entries warning-free, and the repaired segment accepts appends.
    WalScanStats again;
    ASSERT_TRUE(scan_wal(dir.path, nullptr, nullptr, again, false, &error));
    EXPECT_EQ(again.warnings, 0u) << "cut=" << cut;
    EXPECT_EQ(again.entries, stats.entries) << "cut=" << cut;

    if (cut == intact.size() / 2) {  // spot-check appendability once
      GuardWal wal;
      WalOptions wal_options;
      wal_options.fsync_interval = 0;
      ASSERT_TRUE(wal.open(dir.path, stats.segments > 0 ? stats.last_generation : 1,
                           stats.entries, session_fingerprint(options), wal_options,
                           &error))
          << error;
      wal.append_record(records[0]);
      ASSERT_TRUE(wal.sync());
      WalScanStats appended;
      ASSERT_TRUE(scan_wal(dir.path, nullptr, nullptr, appended, false, &error));
      EXPECT_EQ(appended.entries, stats.entries + 1);
      EXPECT_EQ(appended.warnings, 0u);
    }
  }
  EXPECT_EQ(prev_entries, full_stats.entries);  // the full cut decodes all
}

TEST(Wal, ByteFlipStopsReplayAtLastValidFrame) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  std::vector<IoRecord> records(trace.records.begin(), trace.records.begin() + 16);
  TempDir dir("byteflip");
  build_wal(dir.path, records, {}, options, /*records_per_frame=*/4);

  // Walk the frame chain (magic, then u32-length-prefixed frames) to the
  // third frame — header + one records frame stay intact — and blow up its
  // length prefix. Whatever bit a real corruption flips, the scan contract
  // is the same: stop at the last frame that decodes, count a warning.
  std::string path = GuardWal::segment_path(dir.path, 1);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  std::size_t offset = sizeof(kWalMagic);
  for (int frame = 0; frame < 2; ++frame) {
    std::uint32_t len = static_cast<std::uint32_t>(bytes[offset]) |
                        static_cast<std::uint32_t>(bytes[offset + 1]) << 8 |
                        static_cast<std::uint32_t>(bytes[offset + 2]) << 16 |
                        static_cast<std::uint32_t>(bytes[offset + 3]) << 24;
    offset += 4 + len;
  }
  ASSERT_LT(offset + 4, bytes.size());
  bytes[offset + 3] = 0xFF;  // frame now claims ~4 GiB: unsatisfiable
  write_bytes(path, bytes);

  WalScanStats stats;
  std::string error;
  std::uint64_t decoded = 0;
  ASSERT_TRUE(scan_wal(
      dir.path, [&](const IoRecord&, std::uint64_t) { ++decoded; }, nullptr, stats,
      /*repair=*/true, &error))
      << error;
  EXPECT_EQ(stats.entries, 4u);  // exactly the first records frame
  EXPECT_EQ(decoded, 4u);
  EXPECT_GE(stats.warnings, 1u);
  EXPECT_GT(stats.torn_bytes, 0u);

  // Replay after repair is a clean 4-record prefix — nothing past the flip
  // leaks into the session.
  RecoveryResult recovery = recover_session(dir.path, options);
  ASSERT_TRUE(recovery.ok) << recovery.error;
  EXPECT_EQ(recovery.session->records_delivered(), 4u);
}

// ---- Guard state & checkpoints --------------------------------------------

TEST(Checkpoint, GuardStateRoundTripsWithIncidentsAndProposals) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  ReplayGuardSession session(options);
  feed_canonical(session, trace.records, 0, trace.records.size());
  session.finish();

  GuardPersistentState state = session.guard().export_state();
  ASSERT_GE(state.report.incidents.size(), 1u);  // Fig. 2 violation captured
  ASSERT_GE(state.proposals.size(), 1u);         // kProposeOnly queued it

  std::vector<std::uint8_t> bytes;
  encode_guard_state(state, bytes);
  GuardPersistentState decoded;
  ASSERT_TRUE(decode_guard_state(bytes, decoded));
  std::vector<std::uint8_t> reencoded;
  encode_guard_state(decoded, reencoded);
  EXPECT_EQ(bytes, reencoded);  // field-wise equality, via the codec itself
  EXPECT_EQ(decoded.report.digest(), state.report.digest());
  EXPECT_EQ(decoded.proposals.size(), state.proposals.size());
  EXPECT_EQ(decoded.next_proposal_id, state.next_proposal_id);
  EXPECT_EQ(decoded.last_violation_signature, state.last_violation_signature);

  // Truncations must be rejected wholesale, never half-applied.
  for (std::size_t len : {bytes.size() - 1, bytes.size() / 2, std::size_t{0}}) {
    GuardPersistentState scratch;
    EXPECT_FALSE(decode_guard_state(
        std::span<const std::uint8_t>(bytes.data(), len), scratch))
        << "len=" << len;
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  GuardPersistentState scratch;
  EXPECT_FALSE(decode_guard_state(padded, scratch));  // trailing bytes
}

TEST(Checkpoint, StaleGenerationWithLsnBeyondWalIsSkipped) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  TempDir dir("stale");
  build_wal(dir.path, trace.records, {}, options);

  // A checkpoint claiming more WAL than exists — the shape left behind when
  // an older session's state dir is reused after its WAL was truncated.
  Checkpoint stale;
  stale.generation = 7;
  stale.lsn = trace.records.size() + 100;
  stale.fingerprint = session_fingerprint(options);
  stale.payload = {1, 2, 3};  // never reaches the decoder
  std::string error;
  ASSERT_TRUE(write_checkpoint(dir.path, stale, &error)) << error;

  RecoveryResult recovery = recover_session(dir.path, options);
  ASSERT_TRUE(recovery.ok) << recovery.error;
  EXPECT_FALSE(recovery.used_checkpoint);
  EXPECT_GE(recovery.checkpoints_skipped, 1u);
  EXPECT_EQ(recovery.replayed_entries, trace.records.size());  // full replay
  recovery.session->finish();
  EXPECT_EQ(recovery.session->digest(),
            ReplayGuardSession::run_offline(trace.records, options).digest());
}

TEST(Checkpoint, CorruptNewestFallsBackToOlderGeneration) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  TempDir dir("fallback");
  build_wal(dir.path, trace.records, {}, options);

  std::size_t boundary = trace.records.size() / 2;
  Checkpoint good;
  good.generation = 1;
  good.lsn = boundary;
  good.fingerprint = session_fingerprint(options);
  good.payload = checkpoint_payload_at(trace.records, options, boundary);
  std::string error;
  ASSERT_TRUE(write_checkpoint(dir.path, good, &error)) << error;

  // Newer generation, flipped byte in the body: checksum rejects it.
  Checkpoint bad = good;
  bad.generation = 2;
  ASSERT_TRUE(write_checkpoint(dir.path, bad, &error)) << error;
  std::vector<std::uint8_t> bytes = read_bytes(checkpoint_path(dir.path, 2));
  bytes[bytes.size() / 2] ^= 0x40;
  write_bytes(checkpoint_path(dir.path, 2), bytes);

  RecoveryResult recovery = recover_session(dir.path, options);
  ASSERT_TRUE(recovery.ok) << recovery.error;
  EXPECT_TRUE(recovery.used_checkpoint);
  EXPECT_EQ(recovery.checkpoint_generation, 1u);
  EXPECT_EQ(recovery.checkpoints_skipped, 1u);
  EXPECT_EQ(recovery.fast_forwarded_entries, boundary);
  recovery.session->finish();
  EXPECT_EQ(recovery.session->digest(),
            ReplayGuardSession::run_offline(trace.records, options).digest());
}

TEST(Checkpoint, GcKeepsNewestAndDropsTmpOrphans) {
  TempDir dir("gc");
  std::string error;
  for (std::uint64_t gen : {1u, 2u, 3u, 4u}) {
    Checkpoint c;
    c.generation = gen;
    c.fingerprint = "f";
    ASSERT_TRUE(write_checkpoint(dir.path, c, &error)) << error;
  }
  write_bytes(checkpoint_path(dir.path, 9) + ".tmp", {1, 2, 3});  // crashed write
  gc_checkpoints(dir.path, 2);
  auto kept = list_checkpoints(dir.path);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].generation, 3u);
  EXPECT_EQ(kept[1].generation, 4u);
  EXPECT_NE(::access((checkpoint_path(dir.path, 9) + ".tmp").c_str(), F_OK), 0);
}

// ---- Recovery digest parity ----------------------------------------------

TEST(Recovery, FingerprintMismatchRefusesTheStateDir) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  TempDir dir("fingerprint");
  build_wal(dir.path, trace.records, {}, options);

  ReplaySessionOptions other = options;
  other.scan_every_us = 7'000;  // different cadence → different digest
  RecoveryResult recovery = recover_session(dir.path, other);
  EXPECT_FALSE(recovery.ok);
  EXPECT_NE(recovery.error.find("fingerprint"), std::string::npos) << recovery.error;
}

TEST(Recovery, DigestParityAtEveryCutPointWithAndWithoutCheckpoint) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  const std::size_t n = trace.records.size();
  std::string oracle = ReplayGuardSession::run_offline(trace.records, options).digest();

  // The crash cut K models: K records were WAL-durable when the process
  // died; the tail re-arrives after recovery (the harness re-feeds it).
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, n / 3, n / 2, n - 1, n}) {
    for (bool with_checkpoint : {false, true}) {
      SCOPED_TRACE("cut=" + std::to_string(cut) +
                   " checkpoint=" + std::to_string(with_checkpoint));
      TempDir dir("parity");
      std::vector<IoRecord> prefix(trace.records.begin(), trace.records.begin() + cut);
      build_wal(dir.path, prefix, {}, options);
      if (with_checkpoint && cut >= 2) {
        Checkpoint c;
        c.generation = 1;
        c.lsn = cut / 2;
        c.fingerprint = session_fingerprint(options);
        c.payload = checkpoint_payload_at(trace.records, options, cut / 2);
        std::string error;
        ASSERT_TRUE(write_checkpoint(dir.path, c, &error)) << error;
      }

      RecoveryResult recovery = recover_session(dir.path, options);
      ASSERT_TRUE(recovery.ok) << recovery.error;
      ASSERT_NE(recovery.session, nullptr);
      EXPECT_EQ(recovery.session->records_delivered(), cut);
      EXPECT_EQ(recovery.used_checkpoint, with_checkpoint && cut >= 2);

      feed_canonical(*recovery.session, trace.records, cut, n);
      recovery.session->finish();
      EXPECT_EQ(recovery.session->digest(), oracle);
    }
  }
}

TEST(Recovery, LoggedControlsReplayToTheControlOracle) {
  Fig2Trace trace = make_fig2_trace();
  ReplaySessionOptions options = make_session_options(trace);
  const std::size_t n = trace.records.size();
  // An operator scan mid-stream and a decline of the Fig. 2 proposal at the
  // end — both change the digest-relevant state, both ride the WAL.
  std::vector<std::pair<std::size_t, std::string>> controls = {
      {n / 2, "scan"}, {n, "repairs decline 1"}};
  GuardReport oracle = run_offline_with_controls(trace.records, options, controls);
  ASSERT_GE(oracle.scans, 2u);

  TempDir dir("controls");
  build_wal(dir.path, trace.records, controls, options);
  RecoveryResult recovery = recover_session(dir.path, options);
  ASSERT_TRUE(recovery.ok) << recovery.error;
  EXPECT_EQ(recovery.wal.controls, controls.size());
  recovery.session->finish();
  EXPECT_EQ(recovery.session->digest(), oracle.digest());
  // The declined proposal survived recovery as declined, not pending.
  ASSERT_GE(recovery.session->guard().proposals().size(), 1u);
  EXPECT_EQ(recovery.session->guard().proposals()[0].status,
            RepairProposal::Status::kDeclined);
}

// ---- Daemon restart continuity -------------------------------------------

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string rpc(int fd, const std::string& command) {
  if (!send_all(fd, command + "\n")) return {};
  std::string buffer;
  std::string body;
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line == ".") return body;
      if (!line.empty() && line[0] == '.') line.erase(0, 1);
      body += line;
      body += '\n';
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return body;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string chomp(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

TEST(Recovery, DaemonRestartContinuesTheStreamWithDigestParity) {
  Fig2Trace trace = make_fig2_trace();
  ASSERT_GT(trace.records.size(), 20u);
  TempDir state("daemon-state");
  TempDir sockets("daemon-sock");

  DaemonOptions options;
  options.socket_dir = sockets.path;
  options.state_dir = state.path;
  options.fsync_interval = 4;
  options.checkpoint_every = 0;  // exercised by the shutdown checkpoint
  options.session.policies = trace.policies;
  options.session.scan_every_us = 5'000;
  options.session.guard.repair = RepairMode::kProposeOnly;

  std::string offline =
      ReplayGuardSession::run_offline(trace.records, options.session).digest();
  std::size_t half = trace.records.size() / 2;

  auto stream = [&](const std::vector<IoRecord>& records) {
    std::ostringstream out;
    write_trace(out, records);
    return out.str();
  };

  // First life: half the trace, then a clean shutdown (final checkpoint).
  {
    GuardDaemon daemon(options);
    ASSERT_TRUE(daemon.bind());
    EXPECT_FALSE(daemon.recovered());  // nothing durable yet
    std::thread server([&daemon] { daemon.run(); });
    int ingest = connect_unix(daemon.ingest_socket_path());
    ASSERT_GE(ingest, 0);
    ASSERT_TRUE(send_all(ingest, stream({trace.records.begin(),
                                         trace.records.begin() + half})));
    ::close(ingest);
    int control = connect_unix(daemon.control_socket_path());
    ASSERT_GE(control, 0);
    // Drain barrier without `digest` (that would log a mid-stream "finish"
    // into the WAL, which the offline oracle does not have): poll status
    // until the half-stream has been delivered — and thus WALed.
    std::string status;
    for (int i = 0; i < 2000; ++i) {
      status = rpc(control, "status");
      std::string needle = "\"records_delivered\":";
      std::size_t pos = status.find(needle);
      if (pos != std::string::npos &&
          std::strtoull(status.c_str() + pos + needle.size(), nullptr, 10) == half) {
        break;
      }
      ::usleep(2'000);
    }
    EXPECT_NE(status.find("\"durable\":true"), std::string::npos) << status;
    EXPECT_EQ(rpc(control, "shutdown").rfind("ok", 0), 0u);
    ::close(control);
    server.join();
  }
  ASSERT_GE(list_checkpoints(state.path).size(), 1u);  // shutdown checkpoint

  // Second life: recover, stream the tail, digest must equal one unbroken
  // offline pass over the whole trace.
  {
    GuardDaemon daemon(options);
    ASSERT_TRUE(daemon.bind());
    EXPECT_TRUE(daemon.recovered());
    std::thread server([&daemon] { daemon.run(); });
    int control = connect_unix(daemon.control_socket_path());
    ASSERT_GE(control, 0);
    std::string status = rpc(control, "status");
    EXPECT_NE(status.find("\"recovered\":true"), std::string::npos) << status;

    int ingest = connect_unix(daemon.ingest_socket_path());
    ASSERT_GE(ingest, 0);
    ASSERT_TRUE(send_all(ingest, stream({trace.records.begin() + half,
                                         trace.records.end()})));
    ::close(ingest);

    std::string digest = rpc(control, "digest");
    EXPECT_EQ(chomp(digest), chomp(offline));
    EXPECT_EQ(rpc(control, "checkpoint").rfind("ok", 0), 0u);  // RPC surface
    EXPECT_EQ(rpc(control, "shutdown").rfind("ok", 0), 0u);
    ::close(control);
    server.join();
    EXPECT_EQ(daemon.session().records_delivered(), trace.records.size());
  }
}

// ---- util/io helpers ------------------------------------------------------

TEST(IoHelpers, WriteFileAtomicRoundTripsAndReplaces) {
  TempDir dir("io");
  std::string path = dir.path + "/blob";
  std::vector<std::uint8_t> first = {1, 2, 3, 4};
  std::vector<std::uint8_t> second(10'000, 0xAB);
  std::string error;
  ASSERT_TRUE(io::write_file_atomic(path, first, &error)) << error;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(io::read_file(path, out, &error)) << error;
  EXPECT_EQ(out, first);
  ASSERT_TRUE(io::write_file_atomic(path, second, &error)) << error;
  ASSERT_TRUE(io::read_file(path, out, &error)) << error;
  EXPECT_EQ(out, second);
}

TEST(IoHelpers, WriteFullAndReadRetryCrossAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload(100'000, 'x');  // larger than the pipe buffer
  std::thread writer([&] {
    EXPECT_TRUE(io::write_full(fds[1], payload.data(), payload.size()));
    ::close(fds[1]);
  });
  std::string got;
  char chunk[4096];
  for (;;) {
    ssize_t n = io::read_retry(fds[0], chunk, sizeof(chunk));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    got.append(chunk, static_cast<std::size_t>(n));
  }
  writer.join();
  ::close(fds[0]);
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace hbguard
