#include <gtest/gtest.h>

#include "hbguard/proto/bgp/decision.hpp"
#include "hbguard/proto/bgp/engine.hpp"

namespace hbguard {
namespace {

BgpRoute make_route(std::uint32_t local_pref, std::size_t as_path_len, bool ebgp,
                    RouterId peer = 1) {
  BgpRoute route;
  route.prefix = *Prefix::parse("203.0.113.0/24");
  route.attrs.local_pref = local_pref;
  route.attrs.as_path.assign(as_path_len, 64500);
  route.attrs.next_hop = ebgp ? BgpNextHop::via_external("up") : BgpNextHop::internal(peer);
  route.ebgp = ebgp;
  route.peer = peer;
  route.peer_as = ebgp ? 64500 : 65000;
  return route;
}

BestPathSelector make_selector(VendorQuirks quirks = {}) {
  return BestPathSelector(quirks, [](RouterId) { return std::uint32_t{1}; });
}

TEST(Decision, HigherLocalPrefWins) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(20, 1, true, 1), make_route(30, 5, true, 2)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "higher local-pref");
}

TEST(Decision, WeightBeatsLocalPref) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(300, 1, true, 1), make_route(20, 1, true, 2)};
  candidates[1].attrs.weight = 32768;
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "higher weight");
}

TEST(Decision, ShorterAsPathBreaksLocalPrefTie) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(100, 3, true, 1), make_route(100, 2, true, 2)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "shorter AS path");
}

TEST(Decision, LowerOriginBreaksTie) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(100, 2, true, 1), make_route(100, 2, true, 2)};
  candidates[0].attrs.origin = BgpOrigin::kIncomplete;
  candidates[1].attrs.origin = BgpOrigin::kIgp;
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "lower origin");
}

TEST(Decision, MedComparedOnlyWithinSameNeighborAs) {
  auto selector = make_selector();  // always_compare_med = false
  std::vector<BgpRoute> candidates{make_route(100, 1, true, 1), make_route(100, 1, true, 2)};
  candidates[0].attrs.as_path = {64500};
  candidates[0].attrs.med = 50;
  candidates[1].attrs.as_path = {64600};  // different neighbor AS
  candidates[1].attrs.med = 10;
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  // MED incomparable across ASes: falls through to later tie-breaks
  // (router-id favors peer 1 → index 0).
  EXPECT_EQ(*result.best, 0u);
  EXPECT_NE(result.reason, "lower MED");
}

TEST(Decision, AlwaysCompareMedQuirkChangesWinner) {
  VendorQuirks quirks;
  quirks.always_compare_med = true;
  auto selector = make_selector(quirks);
  std::vector<BgpRoute> candidates{make_route(100, 1, true, 1), make_route(100, 1, true, 2)};
  candidates[0].attrs.as_path = {64500};
  candidates[0].attrs.med = 50;
  candidates[1].attrs.as_path = {64600};
  candidates[1].attrs.med = 10;
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);  // with the quirk, lower MED wins
}

TEST(Decision, MedWithinSameNeighborAs) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(100, 1, true, 1), make_route(100, 1, true, 2)};
  candidates[0].attrs.med = 50;
  candidates[1].attrs.med = 10;  // same neighbor AS 64500
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "lower MED");
}

TEST(Decision, EbgpPreferredOverIbgp) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(100, 1, false, 1), make_route(100, 1, true, 2)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "eBGP over iBGP");
}

TEST(Decision, LowerIgpMetricBreaksTie) {
  BestPathSelector selector({}, [](RouterId target) -> std::optional<std::uint32_t> {
    return target == 1 ? 5 : 2;
  });
  std::vector<BgpRoute> candidates{make_route(100, 1, false, 1), make_route(100, 1, false, 2)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "lower IGP metric to next hop");
}

TEST(Decision, UnreachableNextHopDisqualifies) {
  BestPathSelector selector({}, [](RouterId target) -> std::optional<std::uint32_t> {
    if (target == 1) return std::nullopt;
    return 1;
  });
  std::vector<BgpRoute> candidates{make_route(300, 1, false, 1), make_route(100, 1, false, 2)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);  // higher-LP route unusable
}

TEST(Decision, NoUsablePath) {
  BestPathSelector selector({}, [](RouterId) -> std::optional<std::uint32_t> {
    return std::nullopt;
  });
  std::vector<BgpRoute> candidates{make_route(100, 1, false, 1)};
  auto result = selector.select(candidates);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.reason, "no usable path");
}

TEST(Decision, OldestEbgpRouteQuirk) {
  VendorQuirks quirks;
  quirks.prefer_oldest_route = true;
  auto selector = make_selector(quirks);
  std::vector<BgpRoute> candidates{make_route(100, 1, true, 5), make_route(100, 1, true, 2)};
  candidates[0].arrival_seq = 1;  // older
  candidates[1].arrival_seq = 9;
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 0u);
  EXPECT_EQ(result.reason, "oldest eBGP route");

  // With the quirk disabled, router-id decides instead.
  quirks.prefer_oldest_route = false;
  auto selector2 = make_selector(quirks);
  result = selector2.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 1u);
  EXPECT_EQ(result.reason, "lower peer router-id");
}

TEST(Decision, SingleCandidate) {
  auto selector = make_selector();
  std::vector<BgpRoute> candidates{make_route(100, 1, true, 1)};
  auto result = selector.select(candidates);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(*result.best, 0u);
  EXPECT_EQ(result.reason, "only usable path");
}

TEST(Decision, EmptyCandidates) {
  auto selector = make_selector();
  auto result = selector.select({});
  EXPECT_FALSE(result.best.has_value());
}

// ---------------------------------------------------------------------------
// Engine tests (standalone, no simulator): a single router with two
// sessions; we inject updates and observe loc-RIB and sent messages.

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() {
    config_.bgp.enabled = true;

    BgpSessionConfig uplink;
    uplink.name = "uplink";
    uplink.external = true;
    uplink.peer_as = 64500;
    config_.bgp.sessions.push_back(uplink);

    BgpSessionConfig ibgp;
    ibgp.name = "ibgp-peer";
    ibgp.peer = 2;
    ibgp.peer_as = 65000;
    config_.bgp.sessions.push_back(ibgp);

    engine_ = std::make_unique<BgpEngine>(
        1, 65000,
        BgpEngine::Callbacks{
            [this](const std::string& session, const BgpUpdateMsg& msg) {
              sent_.emplace_back(session, msg);
            },
            [this](const Prefix& prefix, const LocRibEntry* entry) {
              if (entry != nullptr) {
                loc_rib_events_.emplace_back(prefix, entry->route.describe());
              } else {
                loc_rib_events_.emplace_back(prefix, "withdrawn");
              }
            },
            [](RouterId) { return std::uint32_t{1}; }, [] { return SimTime{0}; }});
    engine_->set_config(&config_);
    engine_->start();
  }

  BgpUpdateMsg external_advert(const char* prefix, std::vector<AsNumber> as_path) {
    BgpUpdateMsg msg;
    msg.prefix = *Prefix::parse(prefix);
    msg.attrs.as_path = std::move(as_path);
    msg.attrs.next_hop = BgpNextHop::via_external("uplink");
    return msg;
  }

  RouterConfig config_;
  std::unique_ptr<BgpEngine> engine_;
  std::vector<std::pair<std::string, BgpUpdateMsg>> sent_;
  std::vector<std::pair<Prefix, std::string>> loc_rib_events_;
};

TEST_F(EngineFixture, ExternalRouteInstalledAndReadvertisedToIbgp) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500}));
  ASSERT_EQ(loc_rib_events_.size(), 1u);
  const LocRibEntry* entry = engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->route.ebgp);

  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].first, "ibgp-peer");
  EXPECT_FALSE(sent_[0].second.withdraw);
  // next-hop-self on the iBGP export
  EXPECT_EQ(sent_[0].second.attrs.next_hop, BgpNextHop::internal(1));
}

TEST_F(EngineFixture, WithdrawRemovesAndPropagates) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500}));
  sent_.clear();
  BgpUpdateMsg withdraw;
  withdraw.prefix = *Prefix::parse("203.0.113.0/24");
  withdraw.withdraw = true;
  engine_->handle_update("uplink", withdraw);

  EXPECT_EQ(engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24")), nullptr);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_TRUE(sent_[0].second.withdraw);
}

TEST_F(EngineFixture, EbgpLoopPreventionDropsOwnAs) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500, 65000, 64999}));
  EXPECT_EQ(engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24")), nullptr);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(EngineFixture, IbgpLearnedRouteNotReflected) {
  BgpUpdateMsg msg;
  msg.prefix = *Prefix::parse("198.51.100.0/24");
  msg.attrs.next_hop = BgpNextHop::internal(2);
  msg.attrs.local_pref = 100;
  engine_->handle_update("ibgp-peer", msg);

  const LocRibEntry* entry = engine_->loc_rib_entry(*Prefix::parse("198.51.100.0/24"));
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->route.ebgp);
  // Only one iBGP peer (the sender): nothing to send (split horizon +
  // no-reflection), and nothing to the external uplink? eBGP export is
  // allowed — the uplink gets the route with our AS prepended.
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].first, "uplink");
  ASSERT_FALSE(sent_[0].second.attrs.as_path.empty());
  EXPECT_EQ(sent_[0].second.attrs.as_path.front(), 65000u);
}

TEST_F(EngineFixture, ImportPolicyAppliedAtDecisionTime) {
  // Soft reconfiguration: policy changes re-evaluate stored raw routes.
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500}));
  const LocRibEntry* entry = engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->route.attrs.local_pref, 100u);

  RouteMap map;
  map.name = "lp30";
  RouteMapClause clause;
  clause.set_local_pref = 30;
  map.clauses.push_back(clause);
  config_.route_maps["lp30"] = map;
  config_.bgp.find_session("uplink")->import_policy = "lp30";

  engine_->reevaluate_all();
  entry = engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->route.attrs.local_pref, 30u);
}

TEST_F(EngineFixture, ImportDenyRemovesRoute) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500}));
  RouteMap map;
  map.name = "deny-all";
  RouteMapClause clause;
  clause.action = RouteMapClause::Action::kDeny;
  map.clauses.push_back(clause);
  map.default_permit = false;
  config_.route_maps["deny-all"] = map;
  config_.bgp.find_session("uplink")->import_policy = "deny-all";

  engine_->reevaluate_all();
  EXPECT_EQ(engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24")), nullptr);
}

TEST_F(EngineFixture, SessionDownFlushesRoutes) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", {64500}));
  sent_.clear();
  engine_->set_session_state("uplink", false);
  EXPECT_EQ(engine_->loc_rib_entry(*Prefix::parse("203.0.113.0/24")), nullptr);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_TRUE(sent_[0].second.withdraw);
  EXPECT_EQ(sent_[0].first, "ibgp-peer");
}

TEST_F(EngineFixture, OriginatedNetworkAdvertised) {
  config_.bgp.originated.push_back(*Prefix::parse("192.0.2.0/24"));
  engine_->reevaluate_all();
  const LocRibEntry* entry = engine_->loc_rib_entry(*Prefix::parse("192.0.2.0/24"));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->route.originated);
  EXPECT_EQ(entry->route.attrs.weight, 32768u);
  EXPECT_EQ(sent_.size(), 2u);  // both sessions
}

TEST_F(EngineFixture, ExtraOriginatedBehavesLikeNetworkStatement) {
  engine_->set_extra_originated({*Prefix::parse("172.16.0.0/12")});
  const LocRibEntry* entry = engine_->loc_rib_entry(*Prefix::parse("172.16.0.0/12"));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->route.originated);

  engine_->set_extra_originated({});
  EXPECT_EQ(engine_->loc_rib_entry(*Prefix::parse("172.16.0.0/12")), nullptr);
}

TEST_F(EngineFixture, DuplicateAdvertisementIsIdempotent) {
  auto msg = external_advert("203.0.113.0/24", {64500});
  engine_->handle_update("uplink", msg);
  auto events = loc_rib_events_.size();
  auto sends = sent_.size();
  engine_->handle_update("uplink", msg);
  EXPECT_EQ(loc_rib_events_.size(), events);
  EXPECT_EQ(sent_.size(), sends);
}

}  // namespace
}  // namespace hbguard
