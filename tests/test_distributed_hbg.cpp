// Differential harness for sharded distributed-HBG construction (§5).
//
// The contract under test: a DistributedHbgStore that builds its graph
// *sharded* — per-shard rule matching over each shard's own tap stream,
// cross-router send→recv pairs exchanged as explicit ShardMessages — must
// answer every provenance query byte-identically to the single global
// HappensBeforeGraph built from the same capture stream, at any shard
// count, any thread count, and any append chunking. Randomized churn
// traces (seeded topology + workload, control-plane faults off and on)
// drive the comparison; the Guard-level matrix then pins the end-to-end
// report digest across distributed_shards × num_threads.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <vector>

#include "fixtures.hpp"
#include "hbguard/core/guard.hpp"
#include "hbguard/fault/injector.hpp"
#include "hbguard/fault/plan.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/provenance/distributed_hbg.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {
namespace {

/// Deterministic churn trace over a seeded random topology. With
/// `control_faults` the same seeded link flaps / router crashes that the
/// guarded fault tests replay are armed (capture stays pristine — the store
/// consumes whatever the hub recorded, faulty or not).
std::vector<IoRecord> churn_trace(std::uint64_t seed, std::size_t routers,
                                  std::size_t churn_events, bool control_faults) {
  Rng topo_rng(seed);
  Topology topology = make_waxman_topology(routers, topo_rng);
  NetworkOptions options;
  options.seed = seed;
  auto generated = make_ibgp_network(topology, 2, options);
  Network& net = *generated.network;
  net.run_to_convergence();

  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = churn_events;
  churn_options.config_change_probability = 0;
  churn_options.seed = seed + 1;
  ChurnWorkload churn(generated, churn_options);

  std::unique_ptr<FaultInjector> injector;
  if (control_faults) {
    FaultPlanOptions plan_options;
    plan_options.seed = seed + 2;
    FaultPlan plan = FaultPlan::random(topology, plan_options);
    FaultInjectorOptions injector_options;
    injector_options.install_channel = false;
    injector_options.enable_health = false;
    injector = std::make_unique<FaultInjector>(net, plan.control_only(), injector_options);
    injector->arm();
  }

  net.run_for(3'600'000);
  net.run_to_convergence();
  return std::vector<IoRecord>(net.capture().records().begin(),
                               net.capture().records().end());
}

/// Streaming-build a store over `records` in fixed-size chunks, fanned out
/// over `threads` workers (1 = no pool, the serial path), then run the
/// quiescence barrier so queries see the finished exchange.
DistributedHbgStore build_store(
    const std::vector<IoRecord>& records, std::size_t num_shards, unsigned threads,
    std::size_t chunk = 97,
    DistributedHbgStore::Transport transport = DistributedHbgStore::Transport::kInProcess) {
  DistributedHbgStore::Options options;
  options.num_shards = num_shards;
  options.transport = transport;
  DistributedHbgStore store(options);
  store.attach_store(&records);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  std::span<const IoRecord> all(records);
  for (std::size_t i = 0; i < all.size(); i += chunk) {
    store.append(all.subspan(i, std::min(chunk, all.size() - i)), pool.get());
  }
  store.quiesce(pool.get());
  return store;
}

const char* transport_name(DistributedHbgStore::Transport transport) {
  return transport == DistributedHbgStore::Transport::kLoopback ? "loopback" : "in-process";
}

constexpr DistributedHbgStore::Transport kTransports[] = {
    DistributedHbgStore::Transport::kInProcess,
    DistributedHbgStore::Transport::kLoopback,
};

/// Assert every provenance query over `store` matches the oracle graph,
/// byte for byte. Returns the aggregated distributed query stats so callers
/// can assert communication actually happened (or didn't).
DistributedQueryStats expect_queries_match(const DistributedHbgStore& store,
                                           const HappensBeforeGraph& oracle,
                                           const std::vector<IoRecord>& records,
                                           const std::string& label) {
  DistributedQueryStats total;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const IoId id = records[i].id;
    // Stride the full cross-product queries; every id still gets the cheap
    // record lookup so ownership mapping is covered completely.
    const IoRecord* resolved = store.record(id);
    if (resolved == nullptr) {
      ADD_FAILURE() << label << " lost record " << id;
      continue;
    }
    EXPECT_EQ(resolved->id, id);
    if (i % 5 != 0) continue;

    DistributedQueryStats stats;
    std::vector<IoId> roots = store.root_causes(id, 0.0, &stats);
    total += stats;
    EXPECT_EQ(roots, oracle.root_causes(id)) << label << " root_causes(" << id << ")";
    EXPECT_EQ(store.ancestors(id), oracle.ancestors(id)) << label << " ancestors(" << id << ")";
    for (IoId root : roots) {
      EXPECT_EQ(store.path_from(root, id), oracle.path_from(root, id))
          << label << " path_from(" << root << ", " << id << ")";
    }
    // Confidence filtering must shard identically too (rule edges carry
    // varied confidences; 0.9 prunes some of them).
    EXPECT_EQ(store.root_causes(id, 0.9), oracle.root_causes(id, 0.9))
        << label << " root_causes(" << id << ", 0.9)";
  }
  return total;
}

TEST(DistributedHbg, ShardedConstructionMatchesOracleAcrossShardAndThreadCounts) {
  std::vector<IoRecord> records = churn_trace(21, 8, 40, /*control_faults=*/false);
  ASSERT_GT(records.size(), 100u);

  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  for (DistributedHbgStore::Transport transport : kTransports) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      for (unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << "transport=" << transport_name(transport)
                                        << " shards=" << shards << " threads=" << threads);
        DistributedHbgStore store = build_store(records, shards, threads, 97, transport);
        EXPECT_EQ(store.shard_count(), shards);
        // Edge accounting: local shard edges plus cross-shard pairs must tile
        // the oracle's edge set exactly.
        std::size_t local_edges = 0;
        std::set<RouterId> seen_routers;
        for (const IoRecord& r : records) seen_routers.insert(r.router);
        for (RouterId router : seen_routers) {
          ASSERT_NE(store.subgraph(router), nullptr);
        }
        for (const auto& [router, storage] : store.per_router_storage()) {
          local_edges += storage.local_edges;
        }
        EXPECT_EQ(local_edges + store.cross_edge_count(), oracle.graph().edge_count());

        DistributedQueryStats stats =
            expect_queries_match(store, oracle.graph(), records, "streaming");
        if (shards == 1) {
          EXPECT_EQ(store.construction_stats().messages, 0u);
          EXPECT_EQ(store.cross_edge_count(), 0u);
          EXPECT_EQ(stats.messages, 0u);
        } else if (store.cross_edge_count() > 0) {
          EXPECT_GT(stats.messages, 0u) << "cross edges exist but no query crossed a shard";
        }
      }
    }
  }
}

TEST(DistributedHbg, ShardedConstructionMatchesOracleUnderControlFaults) {
  // Crashes and flaps make the trace gnarlier: session resets, withdraw
  // storms, re-convergence. The sharding argument must not care.
  std::vector<IoRecord> records = churn_trace(22, 8, 60, /*control_faults=*/true);
  ASSERT_GT(records.size(), 100u);

  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  for (DistributedHbgStore::Transport transport : kTransports) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      for (unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << "transport=" << transport_name(transport)
                                        << " shards=" << shards << " threads=" << threads);
        DistributedHbgStore store = build_store(records, shards, threads, 97, transport);
        expect_queries_match(store, oracle.graph(), records, "faulted");
      }
    }
  }
}

TEST(DistributedHbg, PerRouterShardingMatchesOracle) {
  // num_shards = 0: one shard per router, the paper's §5 deployment shape.
  std::vector<IoRecord> records = churn_trace(23, 6, 30, /*control_faults=*/false);
  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  DistributedHbgStore store = build_store(records, 0, 2);
  std::set<RouterId> routers;
  for (const IoRecord& r : records) routers.insert(r.router);
  EXPECT_EQ(store.shard_count(), routers.size());
  expect_queries_match(store, oracle.graph(), records, "per-router");
}

TEST(DistributedHbg, ChunkingDoesNotChangeAnswers) {
  // The same trace streamed in tiny, medium, and single-batch appends must
  // produce identical stores (channel FIFO state persists across appends).
  std::vector<IoRecord> records = churn_trace(24, 8, 40, /*control_faults=*/false);
  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{13}, records.size()}) {
    SCOPED_TRACE(testing::Message() << "chunk=" << chunk);
    DistributedHbgStore store = build_store(records, 4, 2, chunk);
    expect_queries_match(store, oracle.graph(), records, "chunked");
  }
}

TEST(DistributedHbg, AdoptionModeMatchesStreamingStore) {
  // Sharding an already-built global graph (adoption) must answer exactly
  // like the store that built its shards itself.
  std::vector<IoRecord> records = churn_trace(25, 8, 40, /*control_faults=*/false);
  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  DistributedHbgStore::Options options;
  options.num_shards = 4;
  DistributedHbgStore adopted(oracle.graph(), options);
  EXPECT_EQ(adopted.shard_count(), 4u);
  expect_queries_match(adopted, oracle.graph(), records, "adopted");

  DistributedHbgStore streamed = build_store(records, 4, 2);
  EXPECT_EQ(adopted.cross_edge_count(), streamed.cross_edge_count());
}

TEST(DistributedHbg, ConstructionAccountingIsExact) {
  std::vector<IoRecord> records = churn_trace(26, 8, 40, /*control_faults=*/false);
  DistributedHbgStore store = build_store(records, 8, 2);

  const auto& stats = store.construction_stats();
  EXPECT_EQ(stats.records_ingested, records.size());
  EXPECT_EQ(stats.cross_edges, store.cross_edge_count());
  EXPECT_GT(stats.messages, 0u) << "an 8-shard build of a churn trace must exchange sends";
  EXPECT_GT(stats.frames, 0u);
  EXPECT_LE(stats.frames, stats.messages);
  EXPECT_EQ(stats.loopback_local_bytes, 0u) << "in-process builds ship no loopback frames";

  // Every counted message is sitting in exactly one inbox, and wire_bytes
  // is the actual encoded size of the frames that carried them: what the
  // senders measured encoding must equal what the receivers measured
  // arriving.
  std::size_t inboxed = 0;
  std::size_t inbox_bytes = 0;
  std::size_t struct_estimate = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    inboxed += store.inbox(s).size();
    inbox_bytes += store.inbox_wire_bytes(s);
    for (const ShardMessage& m : store.inbox(s)) {
      struct_estimate += sizeof(IoId) + 2 * sizeof(RouterId) + sizeof(SimTime) +
                         m.channel.size();
    }
  }
  EXPECT_EQ(inboxed, stats.messages);
  EXPECT_EQ(inbox_bytes, stats.wire_bytes);

  // The codec earns its keep: the real encoded frames must come in strictly
  // below the hand-summed per-field struct estimate the store used to
  // report for the same messages.
  EXPECT_LT(stats.wire_bytes, struct_estimate);

  // Per-router storage tiles the vertex set and includes the inbox bytes.
  std::size_t ios = 0;
  std::size_t storage_bytes = 0;
  for (const auto& [router, storage] : store.per_router_storage()) {
    ios += storage.ios;
    storage_bytes += storage.storage_bytes;
    EXPECT_GT(storage.storage_bytes, 0u) << "router " << router;
  }
  EXPECT_EQ(ios, records.size());
  EXPECT_GE(storage_bytes, inbox_bytes);
}

TEST(DistributedHbg, LoopbackTransportMatchesInProcessExactly) {
  // The spawned matcher processes see events only as encoded frames over
  // their socketpairs; answers and exchange accounting must nonetheless be
  // identical to the in-process transport (same frames, same matches).
  std::vector<IoRecord> records = churn_trace(27, 8, 40, /*control_faults=*/false);
  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  DistributedHbgStore in_process = build_store(records, 8, 2);
  DistributedHbgStore loopback =
      build_store(records, 8, 2, 97, DistributedHbgStore::Transport::kLoopback);
  expect_queries_match(loopback, oracle.graph(), records, "loopback");

  EXPECT_EQ(loopback.cross_edge_count(), in_process.cross_edge_count());
  EXPECT_EQ(loopback.construction_stats().messages, in_process.construction_stats().messages);
  EXPECT_EQ(loopback.construction_stats().frames, in_process.construction_stats().frames);
  EXPECT_EQ(loopback.construction_stats().wire_bytes,
            in_process.construction_stats().wire_bytes);
  // Receiver-local events crossed the process boundary too — as kLocalBatch
  // frames, accounted separately from the §5 cross-shard traffic.
  EXPECT_GT(loopback.construction_stats().loopback_local_bytes, 0u);
}

TEST(DistributedHbg, FirstQueryRunsTheBarrierImplicitly) {
  // A store queried without an explicit quiesce() must run the barrier
  // itself (serially) and still answer byte-identically.
  std::vector<IoRecord> records = churn_trace(28, 6, 30, /*control_faults=*/false);
  IncrementalHbgBuilder oracle;
  oracle.attach_store(&records);
  oracle.append(records);

  DistributedHbgStore::Options options;
  options.num_shards = 4;
  DistributedHbgStore store(options);
  store.attach_store(&records);
  store.append(records);
  EXPECT_FALSE(store.quiescent());
  expect_queries_match(store, oracle.graph(), records, "implicit-quiesce");
  EXPECT_TRUE(store.quiescent());
}

// ---------------------------------------------------------------------------
// Guard-level matrix: the full pipeline report digest must not depend on
// distributed_shards or num_threads, with and without injected faults.

TEST(DistributedGuard, ReportDigestParityAcrossShardAndThreadMatrix) {
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.seed = 17;
  FaultPlan plan = FaultPlan::random(topology, plan_options);

  GuardedRunOptions base;
  base.faulty = false;
  base.threads = 1;
  base.seed = 13;
  std::string baseline = run_guarded(plan, base).report.digest();
  ASSERT_FALSE(baseline.empty());

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      GuardedRunOptions options = base;
      options.threads = threads;
      options.distributed_shards = shards;
      EXPECT_EQ(run_guarded(plan, options).report.digest(), baseline)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(DistributedGuard, ReportDigestParityUnderFaultInjection) {
  // Same gate with the delivery channel installed and the full fault plan
  // (capture outages included): degraded scans, watchdog fallbacks and all
  // must still digest identically whether provenance ran distributed or not.
  Rng topo_rng(13);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.seed = 17;
  FaultPlan plan = FaultPlan::random(topology, plan_options);

  GuardedRunOptions base;
  base.faulty = true;
  base.threads = 1;
  base.seed = 13;
  std::string baseline = run_guarded(plan, base).report.digest();
  ASSERT_FALSE(baseline.empty());

  struct Config {
    std::size_t shards;
    unsigned threads;
  };
  for (Config config : {Config{1, 1}, Config{4, 2}, Config{8, 8}}) {
    GuardedRunOptions options = base;
    options.threads = config.threads;
    options.distributed_shards = config.shards;
    EXPECT_EQ(run_guarded(plan, options).report.digest(), baseline)
        << "shards=" << config.shards << " threads=" << config.threads;
  }
}

}  // namespace
}  // namespace hbguard
