#include <gtest/gtest.h>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/repair/blocker.hpp"
#include "hbguard/repair/early_block.hpp"
#include "hbguard/repair/reverter.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

PolicyList paper_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

ProvenanceResult analyze_fig2(PaperScenario& scenario) {
  auto graph =
      HbgBuilder::build(scenario.network->capture().records(), RuleMatchingInference());
  IoId fault = kNoIo;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
  }
  RootCauseAnalyzer analyzer;
  return analyzer.analyze(graph, fault);
}

TEST(Reverter, RevertRestoresPolicyCompliance) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  ASSERT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));  // violated

  ConfigReverter reverter(*scenario.network);
  auto provenance = analyze_fig2(scenario);
  auto action = reverter.revert_root_cause(provenance);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->reverted, bad);
  EXPECT_EQ(action->router, scenario.r2);

  scenario.network->run_to_convergence();
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
}

TEST(Reverter, DoesNotRevertTwice) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  ConfigReverter reverter(*scenario.network);
  auto provenance = analyze_fig2(scenario);
  ASSERT_TRUE(reverter.revert_root_cause(provenance).has_value());
  EXPECT_FALSE(reverter.revert_root_cause(provenance).has_value());
  EXPECT_EQ(reverter.reverts_applied(), 1u);
}

TEST(Reverter, NothingRevertibleForUplinkFailure) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.fail_uplink2();
  scenario.network->run_to_convergence();

  auto graph =
      HbgBuilder::build(scenario.network->capture().records(), RuleMatchingInference());
  IoId fault = kNoIo;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
  }
  RootCauseAnalyzer analyzer;
  auto provenance = analyzer.analyze(graph, fault);
  ConfigReverter reverter(*scenario.network);
  EXPECT_FALSE(reverter.revert_root_cause(provenance).has_value());
}

// ---------------------------------------------------------------------------
// Blocking: §2's strawman and its follow-on blackhole.

TEST(Blocker, VerifyingBlockerKeepsDataPlaneCompliant) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  VerifyingBlocker blocker(*scenario.network, paper_policies(scenario));
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  EXPECT_GT(blocker.blocked_count(), 0u);
  // Data plane still honours the policy...
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  // ...but the control plane has moved on (divergence).
  const FibEntry* control = scenario.router1().control_fib().find(scenario.prefix_p);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->action, FibEntry::Action::kExternal);
}

TEST(Blocker, BlockingCausesBlackholeOnSubsequentWithdrawal) {
  // The paper's §2 hazard, end to end: block the Fig. 2 fallout, then R2's
  // uplink fails. The control plane believes traffic uses R1 and has
  // nothing to update; the blocked data plane still sends P to R2, where
  // the dead uplink swallows it.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  VerifyingBlocker blocker(*scenario.network, paper_policies(scenario));
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  ASSERT_GT(blocker.blocked_count(), 0u);

  scenario.fail_uplink2();
  scenario.network->run_to_convergence();

  auto snapshot = take_instant_snapshot(*scenario.network);
  auto trace = trace_forwarding(snapshot, scenario.r3, representative(scenario.prefix_p));
  EXPECT_FALSE(trace.reaches_exit())
      << "traffic should be blackholed, got: " << trace.describe();
}

TEST(Blocker, RevertAvoidsTheBlackholeInTheSameScenario) {
  // Companion experiment: with root-cause revert instead of blocking, the
  // subsequent uplink failure fails over cleanly.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  ConfigReverter reverter(*scenario.network);
  ASSERT_TRUE(reverter.revert_root_cause(analyze_fig2(scenario)).has_value());
  scenario.network->run_to_convergence();

  scenario.fail_uplink2();
  scenario.network->run_to_convergence();

  auto snapshot = take_instant_snapshot(*scenario.network);
  auto trace = trace_forwarding(snapshot, scenario.r3, representative(scenario.prefix_p));
  EXPECT_TRUE(trace.reaches_exit());
  EXPECT_EQ(trace.exit_router, scenario.r1);
}

TEST(Blocker, ReleaseAndResyncHealsDivergence) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  VerifyingBlocker blocker(*scenario.network, paper_policies(scenario));
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  ASSERT_GT(blocker.blocked_count(), 0u);

  blocker.release_and_resync();
  // Data plane now matches the (misconfigured) control plane.
  for (RouterId router : {scenario.r1, scenario.r2, scenario.r3}) {
    const FibEntry* control = scenario.network->router(router).control_fib().find(
        scenario.prefix_p);
    const FibEntry* data = scenario.network->router(router).data_fib().find(scenario.prefix_p);
    ASSERT_NE(data, nullptr);
    ASSERT_NE(control, nullptr);
    EXPECT_EQ(*data, *control);
  }
}

TEST(Blocker, SelectiveBlockAndUnblock) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  SelectiveBlocker blocker(*scenario.network);
  blocker.block(scenario.r1, scenario.prefix_p);

  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  EXPECT_GT(blocker.blocked_count(), 0u);

  // R1's data plane is frozen; R3's moved.
  const FibEntry* r1_data = scenario.router1().data_fib().find(scenario.prefix_p);
  ASSERT_NE(r1_data, nullptr);
  EXPECT_EQ(r1_data->action, FibEntry::Action::kForward);  // still toward R2

  blocker.unblock(scenario.r1, scenario.prefix_p);
  const FibEntry* resynced = scenario.router1().data_fib().find(scenario.prefix_p);
  ASSERT_NE(resynced, nullptr);
  EXPECT_EQ(resynced->action, FibEntry::Action::kExternal);
}

// ---------------------------------------------------------------------------
// Early-block model

TEST(EarlyBlock, NormalizeReplacesNetworksKeepsScalars) {
  EXPECT_EQ(normalize_change_description("set local-pref 10 on uplink2"),
            "set local-pref 10 on uplink2");
  EXPECT_EQ(normalize_change_description("add static 10.1.0.0/16 via R3"),
            "add static <net> via R3");
  EXPECT_EQ(normalize_change_description("filter 192.168.4.1 on edge"),
            "filter <net> on edge");
}

TEST(EarlyBlock, ModelLearnsAndPredicts) {
  EarlyBlockModel model;
  EarlyBlockKey key{1, "set local-pref 10 on uplink2", "ecA"};
  EXPECT_FALSE(model.predict(key).has_value());

  model.observe(key, true);
  auto prediction = model.predict(key);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(*prediction, 1.0);

  model.observe(key, false);
  EXPECT_DOUBLE_EQ(*model.predict(key), 0.5);
  EXPECT_EQ(model.known_patterns(), 1u);
}

TEST(EarlyBlock, DistinctClassesDistinctPredictions) {
  EarlyBlockModel model;
  model.observe({1, "change", "ecA"}, true);
  model.observe({1, "change", "ecB"}, false);
  EXPECT_DOUBLE_EQ(*model.predict({1, "change", "ecA"}), 1.0);
  EXPECT_DOUBLE_EQ(*model.predict({1, "change", "ecB"}), 0.0);
  EXPECT_FALSE(model.predict({2, "change", "ecA"}).has_value());
}

}  // namespace
}  // namespace hbguard
