#include <gtest/gtest.h>

#include "hbguard/config/config.hpp"
#include "hbguard/config/config_store.hpp"
#include "hbguard/config/policy.hpp"

namespace hbguard {
namespace {

PolicyRouteView make_view(const char* prefix, const char* neighbor = "s1") {
  PolicyRouteView view;
  view.prefix = *Prefix::parse(prefix);
  view.neighbor = neighbor;
  return view;
}

TEST(RouteMap, FirstMatchingClauseWins) {
  RouteMap map;
  RouteMapClause deny;
  deny.match_prefix = *Prefix::parse("10.0.0.0/8");
  deny.action = RouteMapClause::Action::kDeny;
  RouteMapClause set_lp;
  set_lp.set_local_pref = 200;
  map.clauses = {deny, set_lp};

  auto denied = make_view("10.1.0.0/16");
  EXPECT_FALSE(map.apply(denied));

  auto permitted = make_view("192.0.2.0/24");
  EXPECT_TRUE(map.apply(permitted));
  EXPECT_EQ(permitted.local_pref, 200u);
}

TEST(RouteMap, ExactMatchRequiresEquality) {
  RouteMapClause clause;
  clause.match_prefix = *Prefix::parse("10.0.0.0/8");
  clause.match_exact = true;
  EXPECT_TRUE(clause.matches(make_view("10.0.0.0/8")));
  EXPECT_FALSE(clause.matches(make_view("10.1.0.0/16")));
}

TEST(RouteMap, NeighborMatch) {
  RouteMapClause clause;
  clause.match_neighbor = "uplink1";
  EXPECT_TRUE(clause.matches(make_view("10.0.0.0/8", "uplink1")));
  EXPECT_FALSE(clause.matches(make_view("10.0.0.0/8", "uplink2")));
}

TEST(RouteMap, DefaultPermitControlsUnmatched) {
  RouteMap map;
  RouteMapClause clause;
  clause.match_prefix = *Prefix::parse("10.0.0.0/8");
  clause.set_local_pref = 50;
  map.clauses = {clause};

  map.default_permit = true;
  auto view = make_view("192.0.2.0/24");
  EXPECT_TRUE(map.apply(view));
  EXPECT_EQ(view.local_pref, 100u);  // untouched

  map.default_permit = false;
  EXPECT_FALSE(map.apply(view));
}

TEST(RouteMap, PrependInsertsPlaceholders) {
  RouteMap map;
  RouteMapClause clause;
  clause.prepend_count = 2;
  map.clauses = {clause};
  auto view = make_view("10.0.0.0/8");
  view.as_path = {64501};
  EXPECT_TRUE(map.apply(view));
  ASSERT_EQ(view.as_path.size(), 3u);
  EXPECT_EQ(view.as_path[0], 0u);
  EXPECT_EQ(view.as_path[1], 0u);
  EXPECT_EQ(view.as_path[2], 64501u);
}

TEST(RouteMap, CommunityMatchAndSet) {
  RouteMap tagger;
  RouteMapClause tag;
  tag.add_communities.push_back(make_community(65000, 666));
  tagger.clauses = {tag};
  auto view = make_view("10.0.0.0/8");
  ASSERT_TRUE(tagger.apply(view));
  ASSERT_EQ(view.communities.size(), 1u);
  EXPECT_EQ(view.communities[0], make_community(65000, 666));
  // Idempotent add.
  ASSERT_TRUE(tagger.apply(view));
  EXPECT_EQ(view.communities.size(), 1u);

  RouteMap filter;
  RouteMapClause deny_tagged;
  deny_tagged.match_community = make_community(65000, 666);
  deny_tagged.action = RouteMapClause::Action::kDeny;
  filter.clauses = {deny_tagged};
  EXPECT_FALSE(filter.apply(view));

  auto untagged = make_view("10.0.0.0/8");
  EXPECT_TRUE(filter.apply(untagged));
}

TEST(RouteMap, ClearCommunitiesRunsBeforeAdd) {
  RouteMap map;
  RouteMapClause clause;
  clause.clear_communities = true;
  clause.add_communities.push_back(make_community(65000, 1));
  map.clauses = {clause};
  auto view = make_view("10.0.0.0/8");
  view.communities = {make_community(65000, 2), make_community(65000, 3)};
  ASSERT_TRUE(map.apply(view));
  ASSERT_EQ(view.communities.size(), 1u);
  EXPECT_EQ(view.communities[0], make_community(65000, 1));
}

TEST(RouteMap, SetMed) {
  RouteMap map;
  RouteMapClause clause;
  clause.set_med = 77;
  map.clauses = {clause};
  auto view = make_view("10.0.0.0/8");
  EXPECT_TRUE(map.apply(view));
  EXPECT_EQ(view.med, 77u);
}

TEST(AdminDistances, DefaultsFollowCisco) {
  AdminDistances d;
  EXPECT_EQ(d.of(Protocol::kConnected), 0);
  EXPECT_EQ(d.of(Protocol::kStatic), 1);
  EXPECT_EQ(d.of(Protocol::kEbgp), 20);
  EXPECT_EQ(d.of(Protocol::kOspf), 110);
  EXPECT_EQ(d.of(Protocol::kIbgp), 200);
}

TEST(BgpConfig, FindSession) {
  BgpConfig config;
  BgpSessionConfig s;
  s.name = "a";
  config.sessions.push_back(s);
  EXPECT_NE(config.find_session("a"), nullptr);
  EXPECT_EQ(config.find_session("b"), nullptr);
}

TEST(BgpSessionConfig, EbgpClassification) {
  BgpSessionConfig s;
  s.peer_as = 65000;
  EXPECT_FALSE(s.is_ebgp(65000));
  EXPECT_TRUE(s.is_ebgp(65001));
}

class ConfigStoreTest : public ::testing::Test {
 protected:
  ConfigStoreTest() : store_(2) {
    RouterConfig config;
    config.bgp.enabled = true;
    config.bgp.default_local_pref = 100;
    v1_ = store_.install(0, config, "initial");
  }
  ConfigStore store_;
  ConfigVersion v1_;
};

TEST_F(ConfigStoreTest, InstallOnceOnly) {
  RouterConfig config;
  EXPECT_THROW(store_.install(0, config, "again"), std::logic_error);
}

TEST_F(ConfigStoreTest, ApplyCreatesNewVersionWithParent) {
  ConfigVersion v2 = store_.apply(0, "bump LP", [](RouterConfig& c) {
    c.bgp.default_local_pref = 200;
  });
  EXPECT_GT(v2, v1_);
  EXPECT_EQ(store_.record(v2).parent, v1_);
  EXPECT_EQ(store_.current(0).bgp.default_local_pref, 200u);
  EXPECT_EQ(store_.at_version(0, v1_).bgp.default_local_pref, 100u);
  EXPECT_EQ(store_.current_version(0), v2);
}

TEST_F(ConfigStoreTest, RevertReinstatesParentSnapshot) {
  ConfigVersion v2 = store_.apply(0, "bad change", [](RouterConfig& c) {
    c.bgp.default_local_pref = 10;
  });
  ConfigVersion v3 = store_.revert(0, v2, "undo bad change");
  EXPECT_EQ(store_.current(0).bgp.default_local_pref, 100u);
  EXPECT_TRUE(store_.record(v2).reverted);
  EXPECT_EQ(store_.record(v3).parent, v2);
  EXPECT_EQ(store_.versions_of(0).size(), 3u);
}

TEST_F(ConfigStoreTest, RevertInitialConfigRejected) {
  EXPECT_THROW(store_.revert(0, v1_, "nope"), std::invalid_argument);
}

TEST_F(ConfigStoreTest, RevertWrongRouterRejected) {
  RouterConfig config;
  store_.install(1, config, "initial r1");
  ConfigVersion v2 = store_.apply(0, "change", [](RouterConfig&) {});
  EXPECT_THROW(store_.revert(1, v2, "wrong router"), std::invalid_argument);
}

TEST_F(ConfigStoreTest, PointersStableAcrossApplies) {
  const RouterConfig* first = &store_.current(0);
  for (int i = 0; i < 100; ++i) {
    store_.apply(0, "noise", [](RouterConfig&) {});
  }
  // The v1 snapshot must not have moved (router shells hold pointers).
  EXPECT_EQ(&store_.at_version(0, v1_), first);
}

TEST_F(ConfigStoreTest, UnknownVersionRejected) {
  EXPECT_THROW(store_.record(999), std::invalid_argument);
  EXPECT_THROW(store_.record(kNoVersion), std::invalid_argument);
  EXPECT_THROW(store_.at_version(0, 999), std::invalid_argument);
}

}  // namespace
}  // namespace hbguard
