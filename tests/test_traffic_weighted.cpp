// Differential suite pinning traffic-weighted verification scheduling.
//
// The scheduler is only allowed to exist because of three invariants this
// file enforces:
//   1. With a full budget and uniform weights the guard's reports are
//      byte-identical to the pre-scheduler pipeline — at every thread count
//      and with incremental state on or off.
//   2. A budgeted scan defers *exactly* the tail plan() named, and the
//      union of budgeted scans converges to the oracle verdicts within the
//      aging bound (aging_scans + ceil(N / budget) verifying scans).
//   3. All orderings tie-break on destination id, so plans are pure
//      functions of the call history — no wall clock, no thread count, no
//      insertion order.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fixtures.hpp"
#include "hbguard/verify/forwarding_graph.hpp"
#include "hbguard/verify/traffic.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {
namespace {

// ---- Scheduler unit behaviour ---------------------------------------------

TrafficScheduler make_scheduler(TrafficScheduleOptions options,
                                const std::vector<std::pair<std::uint32_t, std::uint64_t>>& items,
                                bool reset_ages = true) {
  options.enabled = true;
  TrafficScheduler scheduler(options);
  scheduler.sync_items(items);
  if (reset_ages) {
    // New items start aged (never-verified outranks the hot set); verify
    // everything once so subsequent plans exercise the weight order.
    std::vector<std::uint32_t> all;
    for (const auto& [bits, weight] : items) all.push_back(bits);
    std::sort(all.begin(), all.end());
    scheduler.mark_verified(all);
  }
  return scheduler;
}

TEST(TrafficScheduler, NewItemsStartAgedAndCoverInIdOrder) {
  TrafficScheduleOptions options;
  options.max_items = 2;
  TrafficScheduler scheduler =
      make_scheduler(options, {{30, 1}, {10, 99}, {20, 5}}, /*reset_ages=*/false);
  // All three are new, hence aged with equal starvation: id order wins over
  // weight until the first verification.
  ScheduledScan scan = scheduler.plan();
  EXPECT_EQ(scan.covered, (std::vector<std::uint32_t>{10, 20}));
  EXPECT_EQ(scan.deferred, (std::vector<std::uint32_t>{30}));
  EXPECT_EQ(scan.aged_in, 2u);
}

TEST(TrafficScheduler, BudgetCoversHeaviestFirstAndDefersExactTail) {
  TrafficScheduleOptions options;
  options.max_items = 2;
  TrafficScheduler scheduler =
      make_scheduler(options, {{1, 5}, {2, 40}, {3, 10}, {4, 45}});
  ScheduledScan scan = scheduler.plan();
  EXPECT_EQ(scan.covered, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(scan.deferred, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(scan.covered_weight, 85u);
  EXPECT_EQ(scan.total_weight, 100u);
  EXPECT_FALSE(scan.full());
}

TEST(TrafficScheduler, CoverageTargetStopsAtIntegralThreshold) {
  TrafficScheduleOptions options;
  options.coverage_target = 0.5;
  TrafficScheduler scheduler = make_scheduler(options, {{1, 50}, {2, 30}, {3, 20}});
  ScheduledScan scan = scheduler.plan();
  // ceil(0.5 * 100) = 50: the heaviest item alone meets the target.
  EXPECT_EQ(scan.covered, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(scan.deferred, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_DOUBLE_EQ(scan.coverage(), 0.5);
}

TEST(TrafficScheduler, FullBudgetNeverDefers) {
  TrafficScheduler scheduler = make_scheduler({}, {{1, 3}, {2, 0}, {3, 7}});
  for (int i = 0; i < 5; ++i) {
    ScheduledScan scan = scheduler.plan();
    EXPECT_TRUE(scan.full());
    EXPECT_EQ(scan.covered.size(), 3u);
    scheduler.mark_verified(scan.covered);
  }
  EXPECT_EQ(scheduler.stats().deferred_items, 0u);
}

TEST(TrafficScheduler, EqualWeightsTieBreakOnIdRegardlessOfInsertionOrder) {
  // Regression: the priority order must break weight ties on destination
  // id, so the plan is independent of sync_items input order.
  TrafficScheduleOptions options;
  options.max_items = 2;
  TrafficScheduler forward = make_scheduler(options, {{5, 9}, {6, 9}, {7, 9}, {8, 9}});
  TrafficScheduler reversed = make_scheduler(options, {{8, 9}, {7, 9}, {6, 9}, {5, 9}});
  ScheduledScan a = forward.plan();
  ScheduledScan b = reversed.plan();
  EXPECT_EQ(a.covered, (std::vector<std::uint32_t>{5, 6}));
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.deferred, b.deferred);
}

TEST(TrafficScheduler, DuplicateIdsMergeTheirWeights) {
  TrafficScheduleOptions options;
  options.max_items = 1;
  // 7 appears twice (two prefixes sharing a representative): 4+4 > 6.
  TrafficScheduler scheduler = make_scheduler(options, {{6, 6}, {7, 4}, {7, 4}});
  EXPECT_EQ(scheduler.item_count(), 2u);
  ScheduledScan scan = scheduler.plan();
  EXPECT_EQ(scan.covered, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(scan.total_weight, 14u);
}

TEST(TrafficScheduler, AllZeroWeightsFallBackToUniform) {
  TrafficScheduler scheduler = make_scheduler({}, {{1, 0}, {2, 0}});
  ScheduledScan scan = scheduler.plan();
  EXPECT_EQ(scan.total_weight, 2u);
  EXPECT_EQ(scan.covered.size(), 2u);
}

TEST(TrafficScheduler, RoundRobinIsLeastRecentlyVerifiedFirst) {
  TrafficScheduleOptions options;
  options.policy = SchedulePolicy::kRoundRobin;
  options.max_items = 1;
  TrafficScheduler scheduler = make_scheduler(options, {{1, 100}, {2, 1}, {3, 1}});
  std::vector<std::uint32_t> covered_order;
  for (int i = 0; i < 6; ++i) {
    ScheduledScan scan = scheduler.plan();
    ASSERT_EQ(scan.covered.size(), 1u);
    covered_order.push_back(scan.covered[0]);
    scheduler.mark_verified(scan.covered);
  }
  // Weight is ignored: a strict LRU cycle in id order.
  EXPECT_EQ(covered_order, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3}));
}

TEST(TrafficScheduler, AgingBoundsStarvationUnderAPermanentHotSet) {
  // One destination carries nearly all the weight; with budget 1 it would
  // monopolize every scan. Aging guarantees every destination is verified
  // at least every aging_scans + ceil(N / budget) verifying scans.
  constexpr std::size_t kItems = 8;
  constexpr std::size_t kAging = 4;
  TrafficScheduleOptions options;
  options.max_items = 1;
  options.aging_scans = kAging;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  items.emplace_back(0, 1'000'000);
  for (std::uint32_t i = 1; i < kItems; ++i) items.emplace_back(i, 1);
  TrafficScheduler scheduler = make_scheduler(options, items);

  std::map<std::uint32_t, int> last_covered;
  for (const auto& [bits, weight] : items) last_covered[bits] = 0;
  const int bound = static_cast<int>(kAging + kItems);  // ceil(N/1) = N
  for (int scan_index = 1; scan_index <= 64; ++scan_index) {
    ScheduledScan scan = scheduler.plan();
    ASSERT_EQ(scan.covered.size(), 1u);
    scheduler.mark_verified(scan.covered);
    last_covered[scan.covered[0]] = scan_index;
    for (const auto& [bits, last] : last_covered) {
      EXPECT_LE(scan_index - last, bound) << "destination " << bits << " starved";
    }
  }
  // The histogram recorded the same bound as its worst gap.
  EXPECT_LE(scheduler.detection_latency().max_gap(), static_cast<std::uint64_t>(bound));
  EXPECT_GT(scheduler.stats().aged_items, 0u);
}

TEST(DetectionLatencyHistogram, WeightedPercentilesAreExact) {
  DetectionLatencyHistogram histogram;
  histogram.record(1, 90);
  histogram.record(10, 9);
  histogram.record(40, 1);
  EXPECT_EQ(histogram.weighted_percentile(0.50), 1u);
  EXPECT_EQ(histogram.weighted_percentile(0.90), 1u);
  EXPECT_EQ(histogram.weighted_percentile(0.99), 10u);
  EXPECT_EQ(histogram.weighted_percentile(1.0), 40u);
  EXPECT_EQ(histogram.samples(), 3u);
  EXPECT_EQ(histogram.total_weight(), 100u);
  EXPECT_EQ(histogram.max_gap(), 40u);
}

// ---- Verifier-level budgeted convergence ----------------------------------

// A two-router snapshot with a forwarding loop on exactly one of four
// prefixes: the oracle (full verify) flags it; budgeted scans must flag
// nothing outside their covered set and converge to the oracle within the
// aging bound.
struct BudgetedFixture {
  DataPlaneSnapshot snapshot;
  PolicyList policies;
  std::vector<Prefix> prefixes;

  BudgetedFixture() {
    snapshot.routers[0];
    snapshot.routers[1];
    for (std::size_t i = 0; i < 4; ++i) {
      Prefix prefix = churn_prefix(i);
      prefixes.push_back(prefix);
      policies.push_back(std::make_shared<LoopFreedomPolicy>(prefix));
      std::string cidr = prefix.to_string();
      if (i == 2) {  // loop: R0 -> R1 -> R0
        snapshot.apply_fib_update(0, forward_entry(cidr.c_str(), 1), false);
        snapshot.apply_fib_update(1, forward_entry(cidr.c_str(), 0), false);
      } else {
        snapshot.apply_fib_update(0, forward_entry(cidr.c_str(), 1), false);
        snapshot.apply_fib_update(1, external_entry(cidr.c_str(), "up0"), false);
      }
    }
  }
};

std::set<std::string> violation_set(const std::vector<Violation>& violations) {
  std::set<std::string> out;
  for (const Violation& v : violations) out.insert(v.describe());
  return out;
}

TEST(BudgetedVerify, DefersExactlyThePlannedTailAndConverges) {
  BudgetedFixture fixture;
  Verifier oracle_verifier(fixture.policies);
  VerifyResult oracle = oracle_verifier.verify(fixture.snapshot);
  ASSERT_FALSE(oracle.clean());
  EXPECT_EQ(oracle.evaluated_policies, fixture.policies.size());
  EXPECT_EQ(oracle.deferred_policies, 0u);

  TrafficScheduleOptions options;
  options.enabled = true;
  options.max_items = 1;
  options.aging_scans = 2;
  TrafficScheduler scheduler(options);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> universe;
  for (std::size_t i = 0; i < fixture.prefixes.size(); ++i) {
    // Skew the demand away from the faulty prefix so convergence genuinely
    // relies on aging, not on the loop being hot.
    universe.emplace_back(representative(fixture.prefixes[i]).bits(), i == 2 ? 1 : 100);
  }

  Verifier verifier(fixture.policies);
  std::set<std::string> seen;
  const std::size_t bound = options.aging_scans + fixture.prefixes.size();  // ceil(N/1)
  std::size_t converged_at = 0;
  for (std::size_t scan_index = 1; scan_index <= bound; ++scan_index) {
    scheduler.sync_items(universe);
    ScheduledScan scan = scheduler.plan();
    EXPECT_EQ(scan.covered.size() + scan.deferred.size(), fixture.prefixes.size());
    VerifyPlan plan;
    plan.covered = scan.covered;
    VerifyResult result = verifier.verify(fixture.snapshot, nullptr, &plan);
    scheduler.mark_verified(scan.covered);

    // Budgeted scans skip exactly the policies whose destination was
    // deferred — nothing more, nothing less.
    EXPECT_EQ(result.evaluated_policies, scan.covered.size());
    EXPECT_EQ(result.deferred_policies, scan.deferred.size());
    for (const Violation& violation : result.violations) {
      EXPECT_TRUE(std::binary_search(scan.covered.begin(), scan.covered.end(),
                                     representative(violation.prefix).bits()))
          << "violation reported for a deferred destination";
    }
    for (const std::string& v : violation_set(result.violations)) seen.insert(v);
    if (converged_at == 0 && seen == violation_set(oracle.violations)) {
      converged_at = scan_index;
    }
  }
  EXPECT_EQ(seen, violation_set(oracle.violations));
  EXPECT_GT(converged_at, 0u) << "budgeted scans never reached the oracle verdicts";
  EXPECT_LE(converged_at, bound);
}

TEST(BudgetedVerify, NullPlanMatchesFullPlanByteForByte) {
  BudgetedFixture fixture;
  Verifier a(fixture.policies);
  Verifier b(fixture.policies);
  VerifyPlan everything;
  for (const Prefix& prefix : fixture.prefixes) {
    everything.covered.push_back(representative(prefix).bits());
  }
  std::sort(everything.covered.begin(), everything.covered.end());
  VerifyResult with_plan = b.verify(fixture.snapshot, nullptr, &everything);
  VerifyResult without = a.verify(fixture.snapshot);
  EXPECT_EQ(violation_set(with_plan.violations), violation_set(without.violations));
  EXPECT_EQ(with_plan.evaluated_policies, without.evaluated_policies);
  EXPECT_EQ(with_plan.deferred_policies, 0u);
}

// ---- Guard-level differential ---------------------------------------------

FaultPlan control_fault_plan(std::uint64_t seed) {
  Rng topo_rng(seed);
  Topology topology = make_waxman_topology(8, topo_rng);
  FaultPlanOptions plan_options;
  plan_options.link_flaps = 2;
  plan_options.router_crashes = 1;
  plan_options.capture_outages = 0;
  plan_options.seed = seed;
  return FaultPlan::random(topology, plan_options);
}

TEST(TrafficGuardParity, UniformFullBudgetDigestByteIdentical) {
  // The tentpole's safety gate: scheduling enabled with uniform weights and
  // a full budget must be invisible — byte-identical GuardReport digests at
  // every thread count, with incremental state on and off.
  FaultPlan plan = control_fault_plan(13);
  for (bool incremental : {true, false}) {
    std::string baseline;
    for (unsigned threads : {1u, 2u, 8u}) {
      GuardedRunOptions options;
      options.threads = threads;
      options.customize = [&](GuardOptions& guard) {
        guard.incremental_hbg = incremental;
        guard.incremental_snapshot = incremental;
      };
      std::string off = run_guarded(plan, options).report.digest();

      options.customize = [&](GuardOptions& guard) {
        guard.incremental_hbg = incremental;
        guard.incremental_snapshot = incremental;
        guard.traffic.enabled = true;  // defaults: full coverage, no weights
      };
      std::string on = run_guarded(plan, options).report.digest();
      EXPECT_EQ(off, on) << "threads=" << threads << " incremental=" << incremental;
      if (baseline.empty()) baseline = off;
      EXPECT_EQ(baseline, off) << "threads=" << threads << " incremental=" << incremental;
    }
  }
}

TEST(TrafficGuardParity, SkewedWeightsWithFullBudgetKeepVerdictsAndIncidents) {
  // Non-uniform demand re-ranks causes (intended) but a full budget must
  // not change what is detected: same per-scan verdicts, same violations.
  FaultPlan plan = control_fault_plan(13);
  GuardedRunOptions options;
  GuardedRun baseline = run_guarded(plan, options);

  auto weights = std::make_shared<TrafficWeights>();
  for (RouterId r = 1; r < 8; ++r) {
    weights->set(loopback_prefix(r), 1'000'000 >> r);  // heavy head, light tail
  }
  options.customize = [&](GuardOptions& guard) {
    guard.traffic.enabled = true;
    guard.traffic.weights = weights;
  };
  GuardedRun weighted = run_guarded(plan, options);

  EXPECT_EQ(baseline.report.scan_verdicts, weighted.report.scan_verdicts);
  ASSERT_EQ(baseline.report.incidents.size(), weighted.report.incidents.size());
  for (std::size_t i = 0; i < baseline.report.incidents.size(); ++i) {
    EXPECT_EQ(violation_set(baseline.report.incidents[i].violations),
              violation_set(weighted.report.incidents[i].violations));
  }
  EXPECT_EQ(baseline.final_data_plane, weighted.final_data_plane);
}

TEST(TrafficGuardBudget, CleanBudgetedScansReportDeferredAndBoundTtd) {
  // A clean network under a hard scan budget: every verifying scan covers 3
  // of the 7 loopback destinations, so no scan may claim a full PASS — the
  // verdict is kDeferred — and the aging bound caps the per-destination
  // verification gap.
  FaultPlan empty_plan;
  GuardedRunOptions options;
  TrafficScheduleStats stats;
  std::uint64_t max_gap = 0;
  std::uint64_t samples = 0;
  options.customize = [](GuardOptions& guard) {
    guard.traffic.enabled = true;
    guard.traffic.max_items = 3;
    guard.traffic.aging_scans = 4;
  };
  options.inspect = [&](const Guard& guard) {
    ASSERT_TRUE(guard.traffic_scheduling());
    stats = guard.traffic_scheduler().stats();
    max_gap = guard.traffic_scheduler().detection_latency().max_gap();
    samples = guard.traffic_scheduler().detection_latency().samples();
  };
  GuardedRun run = run_guarded(empty_plan, options);

  EXPECT_TRUE(run.report.incidents.empty()) << run.report.summary();
  EXPECT_EQ(run.report.clean_scans, 0u);  // deferred scans are not full passes
  std::size_t deferred_verdicts = 0;
  for (ScanVerdict verdict : run.report.scan_verdicts) {
    EXPECT_NE(verdict, ScanVerdict::kPass);
    EXPECT_NE(verdict, ScanVerdict::kFail);
    if (verdict == ScanVerdict::kDeferred) ++deferred_verdicts;
  }
  EXPECT_EQ(deferred_verdicts, run.report.scan_verdicts.size());
  EXPECT_GT(stats.planned_scans, 0u);
  EXPECT_GT(stats.deferred_items, 0u);
  EXPECT_GT(samples, 0u);
  // aging_scans + ceil(7 destinations / budget 3) = 4 + 3.
  EXPECT_LE(max_gap, 7u);
}

}  // namespace
}  // namespace hbguard
