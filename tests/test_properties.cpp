// Property-based sweeps: invariants that must hold across topologies,
// seeds and workloads, exercised via parameterized gtest.
#include <gtest/gtest.h>

#include <map>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/proto/bgp/decision.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/naive.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/verify/forwarding_graph.hpp"

namespace hbguard {
namespace {

// ---------------------------------------------------------------------------
// Network invariants across topology shapes and seeds.

enum class TopoKind { kChain, kRing, kMesh, kRandom, kRouteReflector };

struct NetParam {
  TopoKind kind;
  std::size_t size;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<NetParam>& info) {
  const char* kind = "";
  switch (info.param.kind) {
    case TopoKind::kChain: kind = "chain"; break;
    case TopoKind::kRing: kind = "ring"; break;
    case TopoKind::kMesh: kind = "mesh"; break;
    case TopoKind::kRandom: kind = "random"; break;
    case TopoKind::kRouteReflector: kind = "rr"; break;
  }
  return std::string(kind) + std::to_string(info.param.size) + "_s" +
         std::to_string(info.param.seed);
}

class NetworkInvariants : public ::testing::TestWithParam<NetParam> {
 protected:
  GeneratedNetwork build() {
    const NetParam& p = GetParam();
    NetworkOptions options;
    options.seed = p.seed;
    Rng rng(p.seed);
    switch (p.kind) {
      case TopoKind::kChain:
        return make_ibgp_network(make_chain_topology(p.size), 2, options);
      case TopoKind::kRing:
        return make_ibgp_network(make_ring_topology(p.size), 2, options);
      case TopoKind::kMesh:
        return make_ibgp_network(make_full_mesh_topology(p.size), 2, options);
      case TopoKind::kRandom:
        return make_ibgp_network(make_random_topology(p.size, p.size / 2, rng), 2, options);
      case TopoKind::kRouteReflector:
        return make_route_reflector_network(p.size - 1, 2, options);
    }
    return {};
  }
};

TEST_P(NetworkInvariants, ConvergesAndAllLoopbacksReachable) {
  auto generated = build();
  Network& net = *generated.network;
  std::size_t events = net.run_to_convergence();
  EXPECT_GT(events, 0u);
  ASSERT_TRUE(net.sim().idle());

  auto snapshot = take_instant_snapshot(net);
  for (std::size_t src = 0; src < net.router_count(); ++src) {
    for (std::size_t dst = 0; dst < net.router_count(); ++dst) {
      auto trace = trace_forwarding(snapshot, static_cast<RouterId>(src),
                                    representative(loopback_prefix(static_cast<RouterId>(dst))));
      EXPECT_EQ(trace.outcome, ForwardOutcome::kDelivered)
          << "R" << src << " -> loopback of R" << dst << ": " << trace.describe();
      EXPECT_EQ(trace.exit_router, static_cast<RouterId>(dst));
    }
  }
}

TEST_P(NetworkInvariants, ChurnPreservesCausalOrderAndLoopFreedom) {
  auto generated = build();
  Network& net = *generated.network;
  net.run_to_convergence();

  ChurnOptions churn_options;
  churn_options.seed = GetParam().seed + 41;
  churn_options.event_count = 25;
  churn_options.prefix_count = 4;
  ChurnWorkload churn(generated, churn_options);
  net.run_to_convergence();

  // Causal sanity of the capture stream.
  const auto& records = net.capture().records();
  for (const IoRecord& r : records) {
    for (IoId cause : r.true_causes) {
      ASSERT_LT(cause, r.id);
      const IoRecord* parent = net.capture().find(cause);
      ASSERT_NE(parent, nullptr);
      EXPECT_LE(parent->true_time, r.true_time);
    }
    if (!r.input()) EXPECT_FALSE(r.true_causes.empty()) << r.describe();
  }

  // Steady state has no forwarding loops for any advertised prefix.
  auto snapshot = take_instant_snapshot(net);
  for (std::size_t i = 0; i < churn_options.prefix_count; ++i) {
    for (std::size_t src = 0; src < net.router_count(); ++src) {
      auto trace = trace_forwarding(snapshot, static_cast<RouterId>(src),
                                    representative(churn_prefix(i)));
      EXPECT_NE(trace.outcome, ForwardOutcome::kLoop) << trace.describe();
    }
  }
}

TEST_P(NetworkInvariants, ConsistentSnapshotAtFullHorizonMatchesDataPlane) {
  auto generated = build();
  Network& net = *generated.network;
  net.run_to_convergence();
  ChurnOptions churn_options;
  churn_options.seed = GetParam().seed + 99;
  churn_options.event_count = 15;
  ChurnWorkload churn(generated, churn_options);
  net.run_to_convergence();

  auto records = net.capture().records();
  auto hbg = HbgBuilder::build(records, RuleMatchingInference());
  ConsistencyReport report;
  auto snapshot = ConsistentSnapshotter().build(records, hbg, {}, &report);
  auto truth = take_instant_snapshot(net);
  for (const auto& [router, view] : truth.routers) {
    EXPECT_EQ(snapshot.routers.at(router).entries, view.entries) << "router " << router;
  }
  EXPECT_EQ(report.total_rewound(), 0u) << "complete logs need no rewind";
  EXPECT_TRUE(report.in_flux.empty()) << "nothing is mid-propagation after convergence";
}

TEST_P(NetworkInvariants, ReplayIsDeterministic) {
  auto run = [this] {
    auto generated = build();
    generated.network->run_to_convergence();
    ChurnOptions churn_options;
    churn_options.seed = GetParam().seed + 7;
    churn_options.event_count = 10;
    ChurnWorkload churn(generated, churn_options);
    generated.network->run_to_convergence();
    std::vector<std::string> trace;
    for (const IoRecord& r : generated.network->capture().records()) {
      trace.push_back(r.describe());
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NetworkInvariants,
    ::testing::Values(NetParam{TopoKind::kChain, 4, 1}, NetParam{TopoKind::kChain, 8, 2},
                      NetParam{TopoKind::kRing, 5, 3}, NetParam{TopoKind::kRing, 9, 4},
                      NetParam{TopoKind::kMesh, 5, 5}, NetParam{TopoKind::kRandom, 8, 6},
                      NetParam{TopoKind::kRandom, 14, 7},
                      NetParam{TopoKind::kRouteReflector, 6, 8},
                      NetParam{TopoKind::kRouteReflector, 10, 9}),
    param_name);

// ---------------------------------------------------------------------------
// Longest-prefix-match trie vs a linear reference implementation.

class TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieProperty, MatchesLinearReference) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Prefix, int> reference;

  for (int op = 0; op < 600; ++op) {
    auto length = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    Prefix prefix(IpAddress(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL))),
                  length);
    if (rng.chance(0.3) && !reference.empty()) {
      // Erase a random existing prefix half the time, a random one otherwise.
      if (rng.chance(0.5)) {
        auto it = reference.begin();
        std::advance(it, rng.uniform_int(0, static_cast<std::int64_t>(reference.size()) - 1));
        prefix = it->first;
      }
      EXPECT_EQ(trie.erase(prefix), reference.erase(prefix) > 0);
    } else {
      int value = op;
      bool was_new = !reference.contains(prefix);
      EXPECT_EQ(trie.insert(prefix, value), was_new);
      reference[prefix] = value;
    }
    EXPECT_EQ(trie.size(), reference.size());
  }

  // Random lookups agree with the linear longest-match scan.
  for (int probe = 0; probe < 300; ++probe) {
    IpAddress ip(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL)));
    const int* got = trie.longest_match(ip);
    const std::pair<const Prefix, int>* best = nullptr;
    for (const auto& entry : reference) {
      if (entry.first.contains(ip) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr) << ip.to_string();
      EXPECT_EQ(*got, best->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty, ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// BGP decision process properties.

class DecisionProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<BgpRoute> random_candidates(Rng& rng, std::size_t count) {
    std::vector<BgpRoute> candidates;
    for (std::size_t i = 0; i < count; ++i) {
      BgpRoute route;
      route.prefix = *Prefix::parse("203.0.113.0/24");
      route.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(50, 52));
      route.attrs.as_path.assign(static_cast<std::size_t>(rng.uniform_int(1, 3)), 64500);
      route.attrs.med = static_cast<std::uint32_t>(rng.uniform_int(0, 2));
      route.attrs.origin = static_cast<BgpOrigin>(rng.uniform_int(0, 2));
      route.ebgp = rng.chance(0.5);
      route.peer = static_cast<RouterId>(i + 1);  // distinct peers
      route.peer_as = 64500;
      route.attrs.next_hop =
          route.ebgp ? BgpNextHop::via_external("up") : BgpNextHop::internal(route.peer);
      route.arrival_seq = i;
      candidates.push_back(std::move(route));
    }
    return candidates;
  }
};

TEST_P(DecisionProperty, WinnerInvariantUnderPermutation) {
  Rng rng(GetParam());
  VendorQuirks quirks;
  quirks.prefer_oldest_route = false;  // §8: deterministic configuration
  BestPathSelector selector(quirks, [](RouterId) { return std::uint32_t{1}; });

  for (int round = 0; round < 50; ++round) {
    auto candidates = random_candidates(rng, static_cast<std::size_t>(rng.uniform_int(1, 6)));
    auto result = selector.select(candidates);
    ASSERT_TRUE(result.best.has_value());
    RouterId winner_peer = candidates[*result.best].peer;

    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      rng.shuffle(candidates);
      auto again = selector.select(candidates);
      ASSERT_TRUE(again.best.has_value());
      EXPECT_EQ(candidates[*again.best].peer, winner_peer)
          << "winner must not depend on candidate order";
    }
  }
}

TEST_P(DecisionProperty, WinnerIsUndominated) {
  Rng rng(GetParam() + 1);
  VendorQuirks quirks;
  quirks.prefer_oldest_route = false;
  BestPathSelector selector(quirks, [](RouterId) { return std::uint32_t{1}; });

  for (int round = 0; round < 50; ++round) {
    auto candidates = random_candidates(rng, static_cast<std::size_t>(rng.uniform_int(2, 6)));
    auto result = selector.select(candidates);
    ASSERT_TRUE(result.best.has_value());
    const BgpRoute& winner = candidates[*result.best];
    for (const BgpRoute& other : candidates) {
      // Nobody may beat the winner on the first differentiating criterion.
      EXPECT_LE(other.attrs.weight, winner.attrs.weight);
      if (other.attrs.weight == winner.attrs.weight) {
        EXPECT_LE(other.attrs.local_pref, winner.attrs.local_pref);
        if (other.attrs.local_pref == winner.attrs.local_pref) {
          EXPECT_GE(other.attrs.as_path.size(), winner.attrs.as_path.size());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionProperty, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// FIB replay from captured records reproduces each router's data plane.

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayProperty, FibUpdatesReplayToFinalState) {
  NetworkOptions options;
  options.seed = GetParam();
  Rng rng(GetParam());
  auto generated = make_ibgp_network(make_random_topology(7, 3, rng), 2, options);
  Network& net = *generated.network;
  net.run_to_convergence();
  ChurnOptions churn_options;
  churn_options.seed = GetParam() + 13;
  churn_options.event_count = 20;
  ChurnWorkload churn(generated, churn_options);
  net.run_to_convergence();

  std::map<RouterId, Fib> replayed;
  for (const IoRecord& r : net.capture().records()) {
    if (r.kind != IoKind::kFibUpdate || r.fib_blocked) continue;
    if (r.withdraw) {
      if (r.prefix) replayed[r.router].remove(*r.prefix);
    } else if (r.fib_entry) {
      replayed[r.router].install(*r.fib_entry);
    }
  }
  for (std::size_t i = 0; i < net.router_count(); ++i) {
    auto id = static_cast<RouterId>(i);
    EXPECT_EQ(replayed[id].entries(), net.router(id).data_fib().entries()) << "router " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty, ::testing::Values(61, 62, 63, 64, 65, 66));

}  // namespace
}  // namespace hbguard
