#include <gtest/gtest.h>

#include "hbguard/capture/tap.hpp"

namespace hbguard {
namespace {

IoRecord make_record(IoKind kind, SimTime when, const char* prefix = nullptr) {
  IoRecord record;
  record.kind = kind;
  record.true_time = when;
  if (prefix != nullptr) record.prefix = *Prefix::parse(prefix);
  return record;
}

TEST(CaptureHub, AssignsIdsAndSequences) {
  CaptureHub hub;
  RouterTap tap0(&hub, 0);
  RouterTap tap1(&hub, 1);

  IoId a = tap0.record(make_record(IoKind::kConfigChange, 10));
  IoId b = tap1.record(make_record(IoKind::kFibUpdate, 20, "10.0.0.0/8"));
  IoId c = tap0.record(make_record(IoKind::kSendAdvert, 30, "10.0.0.0/8"));

  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);

  const IoRecord* ra = hub.find(a);
  const IoRecord* rc = hub.find(c);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(ra->router, 0u);
  EXPECT_EQ(ra->router_seq, 0u);
  EXPECT_EQ(rc->router_seq, 1u);  // second record of router 0
  EXPECT_EQ(hub.find(b)->router_seq, 0u);
}

TEST(CaptureHub, PerfectClocksByDefault) {
  CaptureHub hub;
  RouterTap tap(&hub, 0);
  IoId id = tap.record(make_record(IoKind::kFibUpdate, 1234));
  EXPECT_EQ(hub.find(id)->logged_time, 1234);
}

TEST(CaptureHub, JitterBoundsRespected) {
  CaptureOptions options;
  options.timestamp_jitter_us = 100;
  CaptureHub hub(options, 99);
  RouterTap tap(&hub, 0);
  for (int i = 0; i < 200; ++i) {
    IoId id = tap.record(make_record(IoKind::kFibUpdate, 10'000));
    const IoRecord* r = hub.find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_GE(r->logged_time, 9'900);
    EXPECT_LE(r->logged_time, 10'100);
  }
}

TEST(CaptureHub, JitterNeverProducesNegativeTime) {
  CaptureOptions options;
  options.timestamp_jitter_us = 1000;
  CaptureHub hub(options, 3);
  RouterTap tap(&hub, 0);
  for (int i = 0; i < 100; ++i) {
    IoId id = tap.record(make_record(IoKind::kFibUpdate, 5));
    EXPECT_GE(hub.find(id)->logged_time, 0);
  }
}

TEST(CaptureHub, LossDropsRecordsButKeepsIds) {
  CaptureOptions options;
  options.loss_probability = 0.5;
  CaptureHub hub(options, 7);
  RouterTap tap(&hub, 0);
  const int n = 1000;
  for (int i = 0; i < n; ++i) tap.record(make_record(IoKind::kFibUpdate, i));
  EXPECT_EQ(hub.events_seen(), static_cast<std::uint64_t>(n));
  EXPECT_GT(hub.events_lost(), 300u);
  EXPECT_LT(hub.events_lost(), 700u);
  EXPECT_EQ(hub.records().size() + hub.events_lost(), static_cast<std::size_t>(n));
  // Ids remain strictly increasing among survivors.
  IoId last = 0;
  for (const IoRecord& r : hub.records()) {
    EXPECT_GT(r.id, last);
    last = r.id;
  }
}

TEST(CaptureHub, FindLostRecordReturnsNull) {
  CaptureOptions options;
  options.loss_probability = 1.0;
  CaptureHub hub(options, 1);
  RouterTap tap(&hub, 0);
  IoId id = tap.record(make_record(IoKind::kFibUpdate, 1));
  EXPECT_EQ(hub.find(id), nullptr);
}

TEST(CaptureHub, SubscribersSeeSurvivingRecords) {
  CaptureHub hub;
  std::vector<IoId> seen;
  hub.subscribe([&](const IoRecord& r) { seen.push_back(r.id); });
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));
  tap.record(make_record(IoKind::kRibUpdate, 2));
  EXPECT_EQ(seen, (std::vector<IoId>{1, 2}));
}

TEST(CaptureHub, RecordsOfFiltersByRouter) {
  CaptureHub hub;
  RouterTap tap0(&hub, 0);
  RouterTap tap1(&hub, 1);
  tap0.record(make_record(IoKind::kFibUpdate, 1));
  tap1.record(make_record(IoKind::kFibUpdate, 2));
  tap0.record(make_record(IoKind::kFibUpdate, 3));
  auto r0 = hub.records_of(0);
  auto r1 = hub.records_of(1);
  ASSERT_EQ(r0.size(), 2u);
  ASSERT_EQ(r1.size(), 1u);
  // records_of returns indices into records(); check they resolve to the
  // right router, in log order.
  EXPECT_EQ(hub.records()[r0[0]].router, 0u);
  EXPECT_EQ(hub.records()[r0[1]].router, 0u);
  EXPECT_LT(hub.records()[r0[0]].router_seq, hub.records()[r0[1]].router_seq);
  EXPECT_EQ(hub.records()[r1[0]].router, 1u);
}

TEST(IoRecord, InputClassification) {
  EXPECT_TRUE(is_input(IoKind::kConfigChange));
  EXPECT_TRUE(is_input(IoKind::kHardwareStatus));
  EXPECT_TRUE(is_input(IoKind::kRecvAdvert));
  EXPECT_FALSE(is_input(IoKind::kRibUpdate));
  EXPECT_FALSE(is_input(IoKind::kFibUpdate));
  EXPECT_FALSE(is_input(IoKind::kSendAdvert));
}

TEST(IoRecord, LabelMatchesPaperStyle) {
  IoRecord r;
  r.router = 2;
  r.kind = IoKind::kRibUpdate;
  r.protocol = Protocol::kEbgp;
  r.prefix = *Prefix::parse("203.0.113.0/24");
  EXPECT_EQ(r.label(), "R2 update 203.0.113.0/24 in eBGP RIB");

  r.kind = IoKind::kFibUpdate;
  EXPECT_EQ(r.label(), "R2 install 203.0.113.0/24 in FIB");

  r.kind = IoKind::kConfigChange;
  r.detail = "set LP=10";
  EXPECT_EQ(r.label(), "R2 config change: set LP=10");
}

}  // namespace
}  // namespace hbguard
