#include <gtest/gtest.h>

#include "hbguard/capture/tap.hpp"

namespace hbguard {
namespace {

IoRecord make_record(IoKind kind, SimTime when, const char* prefix = nullptr) {
  IoRecord record;
  record.kind = kind;
  record.true_time = when;
  if (prefix != nullptr) record.prefix = *Prefix::parse(prefix);
  return record;
}

TEST(CaptureHub, AssignsIdsAndSequences) {
  CaptureHub hub;
  RouterTap tap0(&hub, 0);
  RouterTap tap1(&hub, 1);

  IoId a = tap0.record(make_record(IoKind::kConfigChange, 10));
  IoId b = tap1.record(make_record(IoKind::kFibUpdate, 20, "10.0.0.0/8"));
  IoId c = tap0.record(make_record(IoKind::kSendAdvert, 30, "10.0.0.0/8"));

  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);

  const IoRecord* ra = hub.find(a);
  const IoRecord* rc = hub.find(c);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(ra->router, 0u);
  EXPECT_EQ(ra->router_seq, 0u);
  EXPECT_EQ(rc->router_seq, 1u);  // second record of router 0
  EXPECT_EQ(hub.find(b)->router_seq, 0u);
}

TEST(CaptureHub, PerfectClocksByDefault) {
  CaptureHub hub;
  RouterTap tap(&hub, 0);
  IoId id = tap.record(make_record(IoKind::kFibUpdate, 1234));
  EXPECT_EQ(hub.find(id)->logged_time, 1234);
}

TEST(CaptureHub, JitterBoundsRespected) {
  CaptureOptions options;
  options.timestamp_jitter_us = 100;
  CaptureHub hub(options, 99);
  RouterTap tap(&hub, 0);
  for (int i = 0; i < 200; ++i) {
    IoId id = tap.record(make_record(IoKind::kFibUpdate, 10'000));
    const IoRecord* r = hub.find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_GE(r->logged_time, 9'900);
    EXPECT_LE(r->logged_time, 10'100);
  }
}

TEST(CaptureHub, JitterNeverProducesNegativeTime) {
  CaptureOptions options;
  options.timestamp_jitter_us = 1000;
  CaptureHub hub(options, 3);
  RouterTap tap(&hub, 0);
  for (int i = 0; i < 100; ++i) {
    IoId id = tap.record(make_record(IoKind::kFibUpdate, 5));
    EXPECT_GE(hub.find(id)->logged_time, 0);
  }
}

TEST(CaptureHub, LossDropsRecordsButKeepsIds) {
  CaptureOptions options;
  options.loss_probability = 0.5;
  CaptureHub hub(options, 7);
  RouterTap tap(&hub, 0);
  const int n = 1000;
  for (int i = 0; i < n; ++i) tap.record(make_record(IoKind::kFibUpdate, i));
  EXPECT_EQ(hub.events_seen(), static_cast<std::uint64_t>(n));
  EXPECT_GT(hub.events_lost(), 300u);
  EXPECT_LT(hub.events_lost(), 700u);
  EXPECT_EQ(hub.records().size() + hub.events_lost(), static_cast<std::size_t>(n));
  // Ids remain strictly increasing among survivors.
  IoId last = 0;
  for (const IoRecord& r : hub.records()) {
    EXPECT_GT(r.id, last);
    last = r.id;
  }
}

TEST(CaptureHub, FindLostRecordReturnsNull) {
  CaptureOptions options;
  options.loss_probability = 1.0;
  CaptureHub hub(options, 1);
  RouterTap tap(&hub, 0);
  IoId id = tap.record(make_record(IoKind::kFibUpdate, 1));
  EXPECT_EQ(hub.find(id), nullptr);
}

TEST(CaptureHub, SubscribersSeeSurvivingRecords) {
  CaptureHub hub;
  std::vector<IoId> seen;
  hub.subscribe([&](const IoRecord& r) { seen.push_back(r.id); });
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));
  tap.record(make_record(IoKind::kRibUpdate, 2));
  EXPECT_EQ(seen, (std::vector<IoId>{1, 2}));
}

TEST(CaptureHub, RecordsOfFiltersByRouter) {
  CaptureHub hub;
  RouterTap tap0(&hub, 0);
  RouterTap tap1(&hub, 1);
  tap0.record(make_record(IoKind::kFibUpdate, 1));
  tap1.record(make_record(IoKind::kFibUpdate, 2));
  tap0.record(make_record(IoKind::kFibUpdate, 3));
  auto r0 = hub.records_of(0);
  auto r1 = hub.records_of(1);
  ASSERT_EQ(r0.size(), 2u);
  ASSERT_EQ(r1.size(), 1u);
  // records_of returns indices into records(); check they resolve to the
  // right router, in log order.
  EXPECT_EQ(hub.records()[r0[0]].router, 0u);
  EXPECT_EQ(hub.records()[r0[1]].router, 0u);
  EXPECT_LT(hub.records()[r0[0]].router_seq, hub.records()[r0[1]].router_seq);
  EXPECT_EQ(hub.records()[r1[0]].router, 1u);
}

TEST(RecordSlice, StaysValidUntilNextAppend) {
  CaptureHub hub;
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));
  tap.record(make_record(IoKind::kFibUpdate, 2));

  RecordSlice slice = hub.records_since(0);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_TRUE(slice.valid());
  EXPECT_EQ(slice[0].id, 1u);
  EXPECT_EQ(slice.back().id, 2u);

  RecordSlice tail = slice.subspan(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail.front().id, 2u);

  tap.record(make_record(IoKind::kFibUpdate, 3));
  EXPECT_FALSE(slice.valid());
}

TEST(RecordSlice, DebugBuildAssertsOnUseAfterAppend) {
  CaptureHub hub;
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));
  RecordSlice slice = hub.records_since(0);
  tap.record(make_record(IoKind::kFibUpdate, 2));
  EXPECT_DEBUG_DEATH({ (void)slice.data(); }, "RecordSlice used after CaptureHub append");
}

TEST(RecordSlice, LostRecordsDoNotInvalidate) {
  CaptureOptions options;
  options.loss_probability = 1.0;
  CaptureHub hub(options, 1);
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));
  RecordSlice slice = hub.records_since(0);
  tap.record(make_record(IoKind::kFibUpdate, 2));  // dropped: no append
  EXPECT_TRUE(slice.valid());
  EXPECT_TRUE(slice.empty());
}

// ---------------------------------------------------------------------------
// StreamHealthTracker admission.

IoRecord seq_record(RouterId router, std::uint64_t seq, bool fib_reset = false) {
  IoRecord record;
  record.router = router;
  record.router_seq = seq;
  record.kind = fib_reset ? IoKind::kHardwareStatus : IoKind::kFibUpdate;
  record.fib_reset = fib_reset;
  return record;
}

struct HealthHarness {
  StreamHealthTracker tracker;
  std::vector<std::uint64_t> released;
  StreamHealthTracker::Sink sink = [this](IoRecord r) { released.push_back(r.router_seq); };

  explicit HealthHarness(StreamHealthOptions options = {}) : tracker(options) {}
  void admit(IoRecord record, SimTime now = 0) {
    tracker.admit(std::move(record), now, sink);
  }
};

TEST(StreamHealth, InOrderRecordsPassStraightThrough) {
  HealthHarness h;
  for (std::uint64_t seq : {0u, 1u, 2u}) h.admit(seq_record(0, seq));
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
  EXPECT_FALSE(h.tracker.any_degraded());
  EXPECT_EQ(h.tracker.stats().gaps_detected, 0u);
}

TEST(StreamHealth, GapHealsWhenMissingRecordArrives) {
  HealthHarness h;
  h.admit(seq_record(0, 0));
  h.admit(seq_record(0, 2));  // gap: seq 1 missing
  EXPECT_EQ(h.tracker.state(0), StreamState::kSuspect);
  EXPECT_TRUE(h.tracker.any_degraded());
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0}));

  h.admit(seq_record(0, 1));  // the straggler arrives
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
  EXPECT_EQ(h.tracker.stats().gaps_detected, 1u);
  EXPECT_EQ(h.tracker.stats().gaps_healed, 1u);
  EXPECT_EQ(h.tracker.stats().reordered, 1u);
}

TEST(StreamHealth, DuplicatesAreDropped) {
  HealthHarness h;
  h.admit(seq_record(0, 0));
  h.admit(seq_record(0, 0));
  h.admit(seq_record(0, 1));
  h.admit(seq_record(0, 1));
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(h.tracker.stats().duplicates_dropped, 2u);
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
}

TEST(StreamHealth, AbandonedGapQuarantinesUntilReset) {
  StreamHealthOptions options;
  options.gap_grace_us = 1'000;
  HealthHarness h(options);
  h.admit(seq_record(0, 0), 0);
  h.admit(seq_record(0, 2), 100);  // gap opens at t=100

  h.tracker.tick(500, h.sink);  // inside grace: still waiting
  EXPECT_EQ(h.tracker.state(0), StreamState::kSuspect);
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0}));

  h.tracker.tick(1'200, h.sink);  // grace expired: give up on seq 1
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(h.tracker.state(0), StreamState::kQuarantined);
  EXPECT_TRUE(h.tracker.any_quarantined());
  EXPECT_EQ(h.tracker.stats().gaps_abandoned, 1u);
  EXPECT_EQ(h.tracker.stats().records_lost, 1u);
  EXPECT_EQ(h.tracker.stats().quarantines, 1u);

  // The lost record arriving after abandonment is late, not a duplicate.
  h.admit(seq_record(0, 1), 1'300);
  EXPECT_EQ(h.tracker.stats().late_dropped, 1u);
  EXPECT_EQ(h.tracker.stats().duplicates_dropped, 0u);
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 2}));

  // A checkpoint supersedes the losses: trustworthy again.
  h.admit(seq_record(0, 3, /*fib_reset=*/true), 1'400);
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
  EXPECT_EQ(h.tracker.stats().resyncs, 1u);
}

TEST(StreamHealth, BufferedResetAbandonsGapEarly) {
  StreamHealthOptions options;
  options.gap_grace_us = 1'000'000;  // grace would hold for ages
  HealthHarness h(options);
  h.admit(seq_record(0, 0), 0);
  // Outage ate seqs 1..4; the post-outage checkpoint arrives out of order.
  h.admit(seq_record(0, 5, /*fib_reset=*/true), 10);
  // No waiting: the checkpoint supersedes whatever the gap held.
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 5}));
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
  EXPECT_EQ(h.tracker.stats().records_lost, 4u);
  EXPECT_EQ(h.tracker.stats().quarantines, 0u);
}

TEST(StreamHealth, BufferOverflowForcesAbandonment) {
  StreamHealthOptions options;
  options.gap_grace_us = 1'000'000;
  options.max_buffered_per_router = 4;
  HealthHarness h(options);
  h.admit(seq_record(0, 0));
  for (std::uint64_t seq = 2; seq <= 6; ++seq) h.admit(seq_record(0, seq));
  // The 5th buffered record breached the cap: everything flushes, seq 1 is
  // declared lost.
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{0, 2, 3, 4, 5, 6}));
  EXPECT_EQ(h.tracker.state(0), StreamState::kQuarantined);
  EXPECT_EQ(h.tracker.stats().records_lost, 1u);
}

TEST(StreamHealth, PrimedStreamsIgnoreHistory) {
  HealthHarness h;
  h.tracker.prime(0, 7);
  h.admit(seq_record(0, 7));
  h.admit(seq_record(0, 8));
  EXPECT_EQ(h.released, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(h.tracker.stats().gaps_detected, 0u);
}

TEST(StreamHealth, StreamsAreIndependentPerRouter) {
  HealthHarness h;
  h.admit(seq_record(0, 0));
  h.admit(seq_record(1, 1));  // router 1 has a gap at seq 0
  EXPECT_EQ(h.tracker.state(0), StreamState::kHealthy);
  EXPECT_EQ(h.tracker.state(1), StreamState::kSuspect);
  EXPECT_TRUE(h.tracker.any_degraded());
  EXPECT_FALSE(h.tracker.any_quarantined());
}

TEST(CaptureHub, StreamHealthReordersDeliveredRecords) {
  // End-to-end through the hub: delivered out of order, stored in order.
  CaptureHub hub;
  RouterTap tap(&hub, 0);
  tap.record(make_record(IoKind::kFibUpdate, 1));  // seq 0, direct
  hub.enable_stream_health();

  IoRecord late = make_record(IoKind::kFibUpdate, 2);
  late.router = 0;
  late.router_seq = 2;
  late.id = 90;
  IoRecord early = make_record(IoKind::kFibUpdate, 3);
  early.router = 0;
  early.router_seq = 1;
  early.id = 91;
  hub.deliver(std::move(late), 10);   // ahead of sequence: buffered
  EXPECT_EQ(hub.records().size(), 1u);
  hub.deliver(std::move(early), 11);  // unblocks both
  ASSERT_EQ(hub.records().size(), 3u);
  EXPECT_EQ(hub.records()[1].router_seq, 1u);
  EXPECT_EQ(hub.records()[2].router_seq, 2u);
  // The store is no longer id-sorted (91 before 90); find() must cope.
  ASSERT_NE(hub.find(90), nullptr);
  EXPECT_EQ(hub.find(90)->router_seq, 2u);
  ASSERT_NE(hub.find(91), nullptr);
  EXPECT_EQ(hub.find(91)->router_seq, 1u);
}

TEST(IoRecord, InputClassification) {
  EXPECT_TRUE(is_input(IoKind::kConfigChange));
  EXPECT_TRUE(is_input(IoKind::kHardwareStatus));
  EXPECT_TRUE(is_input(IoKind::kRecvAdvert));
  EXPECT_FALSE(is_input(IoKind::kRibUpdate));
  EXPECT_FALSE(is_input(IoKind::kFibUpdate));
  EXPECT_FALSE(is_input(IoKind::kSendAdvert));
}

TEST(IoRecord, LabelMatchesPaperStyle) {
  IoRecord r;
  r.router = 2;
  r.kind = IoKind::kRibUpdate;
  r.protocol = Protocol::kEbgp;
  r.prefix = *Prefix::parse("203.0.113.0/24");
  EXPECT_EQ(r.label(), "R2 update 203.0.113.0/24 in eBGP RIB");

  r.kind = IoKind::kFibUpdate;
  EXPECT_EQ(r.label(), "R2 install 203.0.113.0/24 in FIB");

  r.kind = IoKind::kConfigChange;
  r.detail = "set LP=10";
  EXPECT_EQ(r.label(), "R2 config change: set LP=10");
}

}  // namespace
}  // namespace hbguard
