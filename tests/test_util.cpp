#include <gtest/gtest.h>

#include <set>

#include "hbguard/util/logging.hpp"
#include "hbguard/util/rng.hpp"
#include "hbguard/util/strings.hpp"

namespace hbguard {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration_us(25'000'000), "25s");
  EXPECT_EQ(format_duration_us(4'000), "4ms");
  EXPECT_EQ(format_duration_us(100), "0.1ms");
  EXPECT_EQ(format_duration_us(7), "7us");
  EXPECT_EQ(format_duration_us(1'500'000), "1.5s");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  double mean = sum / n;
  EXPECT_GT(mean, 90.0);
  EXPECT_LT(mean, 110.0);
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(3);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent(5);
  Rng child = parent.fork();
  // Extremely unlikely to match for 10 consecutive draws if independent.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Logging, LevelsGateOutput) {
  auto& logger = Logger::instance();
  LogLevel saved = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, std::string_view msg) { lines.emplace_back(msg); });
  logger.set_level(LogLevel::kWarn);
  HBG_INFO << "hidden";
  HBG_WARN << "visible " << 42;
  logger.set_sink(nullptr);
  logger.set_level(saved);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "visible 42");
}

TEST(Logging, RateLimiterFlushReportsSuppressedAtTeardown) {
  auto& logger = Logger::instance();
  LogLevel saved = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, std::string_view msg) { lines.emplace_back(msg); });
  logger.set_level(LogLevel::kWarn);
  {
    RateLimiter limiter(4, "test-site");
    for (int i = 0; i < 10; ++i) {
      if (limiter.allow()) HBG_WARN << "occurrence " << i;
    }
    // 10 occurrences, every-4th logged (0, 4, 8) => 7 suppressed.
    EXPECT_EQ(limiter.seen(), 10u);
    EXPECT_EQ(limiter.suppressed(), 7u);

    // Explicit flush (what hbguardd does at shutdown) reports the tally...
    logger.flush_suppressed();
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[3], "test-site: 7 rate-limited warning(s) suppressed (10 total occurrences)");
    // ...idempotently: a second flush with nothing new emits nothing.
    logger.flush_suppressed();
    EXPECT_EQ(lines.size(), 4u);

    limiter.allow();  // occurrences 11 and 12: both suppressed
    limiter.allow();
    // Destruction flushes the remainder.
  }
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[4], "test-site: 2 rate-limited warning(s) suppressed (12 total occurrences)");

  // Unlabelled limiters never register and never self-report.
  {
    RateLimiter anonymous(2);
    for (int i = 0; i < 6; ++i) anonymous.allow();
    logger.flush_suppressed();
  }
  EXPECT_EQ(lines.size(), 5u);

  logger.set_sink(nullptr);
  logger.set_level(saved);
}

TEST(Logging, OffSilencesEverything) {
  auto& logger = Logger::instance();
  LogLevel saved = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, std::string_view msg) { lines.emplace_back(msg); });
  logger.set_level(LogLevel::kOff);
  HBG_ERROR << "nope";
  logger.set_sink(nullptr);
  logger.set_level(saved);
  EXPECT_TRUE(lines.empty());
}

}  // namespace
}  // namespace hbguard
