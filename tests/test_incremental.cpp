#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hbguard/core/guard.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"

namespace hbguard {
namespace {

std::set<std::pair<IoId, IoId>> edge_set(const HappensBeforeGraph& graph) {
  std::set<std::pair<IoId, IoId>> edges;
  graph.for_each_edge([&](const HbgEdge& edge) { edges.emplace(edge.from, edge.to); });
  return edges;
}

std::vector<IoRecord> churn_trace(std::uint64_t seed) {
  NetworkOptions options;
  options.seed = seed;
  Rng rng(seed);
  auto generated = make_ibgp_network(make_random_topology(9, 4, rng), 3, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.seed = seed + 3;
  churn_options.event_count = 35;
  ChurnWorkload churn(generated, churn_options);
  generated.network->run_to_convergence();
  return generated.network->capture().records();
}

TEST(Incremental, MatchesBatchOnPerfectLogs) {
  auto records = churn_trace(123);
  auto batch = HbgBuilder::build(records, RuleMatchingInference());

  IncrementalHbgBuilder incremental;
  incremental.append(records);

  EXPECT_EQ(incremental.graph().vertex_count(), batch.vertex_count());
  auto batch_edges = edge_set(batch);
  auto incremental_edges = edge_set(incremental.graph());
  // With monotone per-router logs (no slack) the edge sets must be equal.
  std::vector<std::pair<IoId, IoId>> missing, extra;
  std::set_difference(batch_edges.begin(), batch_edges.end(), incremental_edges.begin(),
                      incremental_edges.end(), std::back_inserter(missing));
  std::set_difference(incremental_edges.begin(), incremental_edges.end(), batch_edges.begin(),
                      batch_edges.end(), std::back_inserter(extra));
  EXPECT_TRUE(missing.empty()) << missing.size() << " edges missing from incremental";
  EXPECT_TRUE(extra.empty()) << extra.size() << " extra edges in incremental";
}

TEST(Incremental, ChunkedAppendsEqualOneShot) {
  auto records = churn_trace(321);
  IncrementalHbgBuilder one_shot;
  one_shot.append(records);

  IncrementalHbgBuilder chunked;
  std::size_t offset = 0;
  std::size_t chunk = 7;
  while (offset < records.size()) {
    std::size_t take = std::min(chunk, records.size() - offset);
    chunked.append(std::span<const IoRecord>(records).subspan(offset, take));
    offset += take;
    chunk = chunk * 2 + 1;  // uneven chunk sizes
  }
  EXPECT_EQ(edge_set(one_shot.graph()), edge_set(chunked.graph()));
  EXPECT_EQ(chunked.records_ingested(), records.size());
}

TEST(Incremental, AccuracyMatchesBatchUnderGroundTruthScoring) {
  auto records = churn_trace(777);
  IncrementalRuleInference incremental;
  RuleMatchingInference batch;
  auto batch_score = score_inference(records, batch.infer(records));
  auto incremental_score = score_inference(records, incremental.infer(records));
  EXPECT_NEAR(incremental_score.precision(), batch_score.precision(), 0.02);
  EXPECT_NEAR(incremental_score.recall(), batch_score.recall(), 0.02);
}

TEST(Incremental, LateCauseUnderClockNoiseStillLinked) {
  // Under per-record jitter a cause can be logged after its effect; the
  // engine must emit the edge when the late cause arrives.
  NetworkOptions options;
  options.capture.timestamp_jitter_us = 300;
  options.seed = 5;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  auto records = scenario.network->capture().records();

  MatcherOptions matcher;
  matcher.local_slack_us = 1'000;
  IncrementalHbgBuilder builder(matcher);
  builder.append(records);

  IoId fault = kNoIo, cause = kNoIo;
  for (const IoRecord& r : records) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
    if (r.kind == IoKind::kConfigChange && r.config_version == bad) cause = r.id;
  }
  ASSERT_NE(fault, kNoIo);
  auto ancestors = builder.graph().ancestors(fault, 0.9);
  EXPECT_TRUE(std::binary_search(ancestors.begin(), ancestors.end(), cause))
      << "provenance chain must survive clock noise in incremental mode";
}

TEST(Incremental, GuardIncrementalAndScratchAgree) {
  auto run = [](bool incremental) {
    auto scenario = PaperScenario::make();
    scenario.converge_initial();
    PolicyList policies;
    policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
    policies.push_back(std::make_shared<PreferredExitPolicy>(
        scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
        PaperScenario::kUplink1));
    GuardOptions options;
    options.incremental_hbg = incremental;
    Guard guard(*scenario.network, policies, options);
    scenario.misconfigure_r2_lp10();
    auto report = guard.run();
    return std::make_tuple(report.incidents.size(), report.reverts,
                           scenario.fib_exits_via(scenario.r3, scenario.r2));
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace hbguard
