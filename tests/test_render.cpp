// Rendering and reporting surfaces: GraphViz/timeline output, fault chains,
// guard report summaries, record describe()/label() formats.
#include <gtest/gtest.h>

#include "hbguard/core/report.hpp"
#include "hbguard/hbg/render.hpp"
#include "hbguard/provenance/root_cause.hpp"
#include "hbguard/verify/policy.hpp"

namespace hbguard {
namespace {

IoRecord record_of(IoId id, RouterId router, IoKind kind, SimTime when,
                   const char* prefix = nullptr) {
  IoRecord r;
  r.id = id;
  r.router = router;
  r.kind = kind;
  r.true_time = when;
  r.logged_time = when;
  if (prefix != nullptr) r.prefix = *Prefix::parse(prefix);
  return r;
}

class RenderFixture : public ::testing::Test {
 protected:
  RenderFixture() {
    graph_.add_vertex(record_of(1, 0, IoKind::kConfigChange, 0));
    graph_.add_vertex(record_of(2, 0, IoKind::kRibUpdate, 1'500, "10.0.0.0/8"));
    graph_.add_vertex(record_of(3, 0, IoKind::kSendAdvert, 2'000, "10.0.0.0/8"));
    graph_.add_vertex(record_of(4, 1, IoKind::kRecvAdvert, 4'000, "10.0.0.0/8"));
    graph_.add_edge({1, 2, 1.0, "config->rib"});
    graph_.add_edge({2, 3, 1.0, "bgp-rib->send"});
    graph_.add_edge({3, 4, 0.7, "send->recv"});
  }
  HappensBeforeGraph graph_;
};

TEST_F(RenderFixture, DotContainsVerticesAndEdges) {
  std::string dot = to_dot(graph_);
  EXPECT_NE(dot.find("digraph hbg"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("config->rib"), std::string::npos);
  // Sub-1.0 confidences are annotated on the edge.
  EXPECT_NE(dot.find("0.70"), std::string::npos);
  // Inputs are highlighted.
  EXPECT_NE(dot.find("orange"), std::string::npos);
}

TEST_F(RenderFixture, DotConfidenceFilter) {
  std::string dot = to_dot(graph_, 0.9);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_EQ(dot.find("n3 -> n4"), std::string::npos);  // 0.7 < 0.9
}

TEST_F(RenderFixture, TimelineGroupsByRouterWithGaps) {
  std::string timeline = to_timeline(graph_);
  EXPECT_NE(timeline.find("=== R0 ==="), std::string::npos);
  EXPECT_NE(timeline.find("=== R1 ==="), std::string::npos);
  EXPECT_NE(timeline.find("+1.5ms"), std::string::npos);  // config -> rib gap
  EXPECT_NE(timeline.find("cross-router edges"), std::string::npos);
  EXPECT_NE(timeline.find("R0 #3 -> R1 #4"), std::string::npos);
}

TEST_F(RenderFixture, ChainRendersLatencies) {
  std::string chain = render_chain(graph_, {1, 2, 3, 4});
  EXPECT_NE(chain.find("cause: R0 config change"), std::string::npos);
  EXPECT_NE(chain.find("+1.5ms"), std::string::npos);
  EXPECT_NE(chain.find("+2ms"), std::string::npos);  // send -> recv
}

TEST_F(RenderFixture, ChainSkipsUnknownVertices) {
  std::string chain = render_chain(graph_, {1, 99, 2});
  EXPECT_NE(chain.find("cause:"), std::string::npos);
  EXPECT_EQ(chain.find("99"), std::string::npos);
}

TEST(Report, SummaryListsIncidentsAndCauses) {
  GuardReport report;
  report.scans = 5;
  report.clean_scans = 3;
  report.records_processed = 120;
  report.reverts = 1;

  GuardIncident incident;
  incident.detected_at = 42'000;
  Violation violation;
  violation.policy = "preferred-exit(203.0.113.0/24)";
  violation.prefix = *Prefix::parse("203.0.113.0/24");
  violation.router = 2;
  violation.detail = "wrong exit";
  incident.violations.push_back(violation);
  RootCause cause;
  cause.kind = CauseKind::kConfigChange;
  cause.record = record_of(7, 1, IoKind::kConfigChange, 40'000);
  cause.record.detail = "set local-pref 10";
  incident.causes.push_back(cause);
  incident.action = "reverted v4 on R1";
  report.incidents.push_back(incident);

  std::string summary = report.summary();
  EXPECT_NE(summary.find("5 scans (3 clean)"), std::string::npos);
  EXPECT_NE(summary.find("1 incident(s)"), std::string::npos);
  EXPECT_NE(summary.find("reverted v4 on R1"), std::string::npos);
  EXPECT_NE(summary.find("preferred-exit"), std::string::npos);
  EXPECT_NE(summary.find("config-change"), std::string::npos);
  EXPECT_NE(summary.find("set local-pref 10"), std::string::npos);
}

TEST(Describe, ViolationFormat) {
  Violation violation;
  violation.policy = "loop-freedom(10.0.0.0/8)";
  violation.prefix = *Prefix::parse("10.0.0.0/8");
  violation.router = 3;
  violation.detail = "R3 -> R1 -> R3 [loop]";
  EXPECT_EQ(violation.describe(),
            "loop-freedom(10.0.0.0/8): 10.0.0.0/8 at R3 (R3 -> R1 -> R3 [loop])");
}

TEST(Describe, IoRecordFormats) {
  IoRecord r = record_of(12, 1, IoKind::kSendAdvert, 5'000, "203.0.113.0/24");
  r.session = "ibgp-R3";
  r.withdraw = true;
  std::string text = r.describe();
  EXPECT_NE(text.find("#12"), std::string::npos);
  EXPECT_NE(text.find("R1"), std::string::npos);
  EXPECT_NE(text.find("withdraw"), std::string::npos);
  EXPECT_NE(text.find("ibgp-R3"), std::string::npos);

  EXPECT_EQ(r.label(), "R1 send withdraw 203.0.113.0/24 on ibgp-R3");

  IoRecord hardware = record_of(13, 0, IoKind::kHardwareStatus, 1);
  hardware.link = 2;
  hardware.link_up = false;
  EXPECT_EQ(hardware.label(), "R0 link2 down");
}

TEST(Describe, CauseKindNames) {
  EXPECT_EQ(to_string(CauseKind::kConfigChange), "config-change");
  EXPECT_EQ(to_string(CauseKind::kHardwareStatus), "hardware");
  EXPECT_EQ(to_string(CauseKind::kExternalAdvert), "external-advert");
  EXPECT_EQ(to_string(CauseKind::kInitialConfig), "initial-config");
}

}  // namespace
}  // namespace hbguard
