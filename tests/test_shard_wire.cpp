// Property / fuzz tests for the distributed-HBG binary wire codec.
//
// Two invariants carry the whole distributed-construction parity argument:
//   * round-trip — decode(encode(batch)) reproduces every field of every
//     message exactly, for any batch the store can produce (and for
//     adversarial ones it can't: empty channels, duplicate keys, max-range
//     ids and times);
//   * rejection — decode_shard_frame returns false on any malformed input
//     (truncations at every byte, trailing bytes, corrupt counts, bad key
//     indexes) instead of fabricating events or crashing.
// The fuzz sections drive both with seeded randomness so failures replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "hbguard/provenance/shard_wire.hpp"

namespace hbguard {
namespace {

std::vector<ShardMessage> roundtrip(ShardFrameType type,
                                    const std::vector<ShardMessage>& batch) {
  std::vector<std::uint8_t> frame;
  encode_shard_frame(type, batch, frame);
  EXPECT_EQ(shard_frame_size(frame), frame.size());
  DecodedShardFrame decoded;
  EXPECT_TRUE(decode_shard_frame(frame, decoded));
  EXPECT_EQ(decoded.type, type);
  EXPECT_TRUE(decoded.matches.empty());
  return decoded.events;
}

TEST(ShardWire, VarintRoundTripCoversBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 56) - 1,
                                 std::numeric_limits<std::uint64_t>::max() - 1,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t value : cases) {
    std::vector<std::uint8_t> buffer;
    wire::put_varint(buffer, value);
    EXPECT_LE(buffer.size(), 10u);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(wire::get_varint(buffer, pos, back)) << value;
    EXPECT_EQ(back, value);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(ShardWire, VarintRejectsTruncationAndOverflow) {
  std::vector<std::uint8_t> buffer;
  wire::put_varint(buffer, std::numeric_limits<std::uint64_t>::max());
  // Every strict prefix of a valid varint is a truncation.
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t pos = 0;
    std::uint64_t value = 0;
    EXPECT_FALSE(wire::get_varint(std::span(buffer.data(), cut), pos, value)) << cut;
  }
  // An 11-byte continuation chain can't be a 64-bit value.
  std::vector<std::uint8_t> runaway(11, 0x80);
  std::size_t pos = 0;
  std::uint64_t value = 0;
  EXPECT_FALSE(wire::get_varint(runaway, pos, value));
  // A 10th byte carrying more than the final bit would overflow 64 bits.
  std::vector<std::uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);
  pos = 0;
  EXPECT_FALSE(wire::get_varint(overflow, pos, value));
}

TEST(ShardWire, ZigzagIsAnInvolutionOnExtremes) {
  const std::int64_t cases[] = {0, 1, -1, 63, -64, std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t value : cases) {
    EXPECT_EQ(wire::unzigzag(wire::zigzag(value)), value) << value;
  }
}

TEST(ShardWire, EmptyBatchAndEmptyChannelsRoundTrip) {
  EXPECT_TRUE(roundtrip(ShardFrameType::kCrossBatch, {}).empty());

  // Empty channel keys are legal (a degenerate but encodable FIFO key) and
  // must intern like any other key.
  std::vector<ShardMessage> batch;
  batch.push_back({1, 10, 0, 1, 100, true, ""});
  batch.push_back({2, 11, 0, 1, 200, true, ""});
  batch.push_back({3, 12, 0, 1, 300, true, "x"});
  EXPECT_EQ(roundtrip(ShardFrameType::kCrossBatch, batch), batch);
}

TEST(ShardWire, ExtremeFieldValuesRoundTrip) {
  // Max-range ids and times force the widest varints and the largest
  // zigzag deltas (jumping between 0 and uint64 max in one step).
  std::vector<ShardMessage> batch;
  batch.push_back({std::numeric_limits<std::uint64_t>::max(),
                   std::numeric_limits<IoId>::max(), 0, kInvalidRouter,
                   std::numeric_limits<SimTime>::max(), true, "hi"});
  batch.push_back({0, 0, kExternalRouter, 0, std::numeric_limits<SimTime>::min(), true, "lo"});
  batch.push_back({std::numeric_limits<std::uint64_t>::max() / 2, 1, 7, 9, -1, true, "hi"});
  EXPECT_EQ(roundtrip(ShardFrameType::kCrossBatch, batch), batch);
}

TEST(ShardWire, LocalBatchCarriesReceiveFlags) {
  std::vector<ShardMessage> batch;
  batch.push_back({5, 50, 2, 3, 500, true, "chan"});
  batch.push_back({6, 51, 2, 3, 600, false, "chan"});
  batch.push_back({7, 52, 3, 2, 700, false, "other"});
  EXPECT_EQ(roundtrip(ShardFrameType::kLocalBatch, batch), batch);
}

TEST(ShardWire, DuplicateChannelKeysInternToOneTableEntry) {
  // 64 messages over 2 distinct keys: the frame must pay for the key bytes
  // twice, not 64 times.
  std::vector<ShardMessage> batch;
  const std::string key_a(40, 'a');
  const std::string key_b(40, 'b');
  for (std::uint64_t i = 0; i < 64; ++i) {
    batch.push_back({i, i + 1, 1, 2, static_cast<SimTime>(1000 + i), true,
                     i % 2 == 0 ? key_a : key_b});
  }
  std::vector<std::uint8_t> frame;
  encode_shard_frame(ShardFrameType::kCrossBatch, batch, frame);
  EXPECT_LT(frame.size(), 2 * key_a.size() + 64 * 12);
  DecodedShardFrame decoded;
  ASSERT_TRUE(decode_shard_frame(frame, decoded));
  EXPECT_EQ(decoded.events, batch);
}

TEST(ShardWire, MatchFrameRoundTripsIncludingExtremes) {
  std::vector<ShardMatch> matches;
  matches.push_back({1, 2});
  matches.push_back({std::numeric_limits<IoId>::max(), 3});
  matches.push_back({0, std::numeric_limits<IoId>::max()});
  std::vector<std::uint8_t> frame;
  encode_match_frame(matches, frame);
  DecodedShardFrame decoded;
  ASSERT_TRUE(decode_shard_frame(frame, decoded));
  EXPECT_EQ(decoded.type, ShardFrameType::kMatches);
  EXPECT_EQ(decoded.matches, matches);
  EXPECT_TRUE(decoded.events.empty());
}

TEST(ShardWire, ControlFramesRoundTrip) {
  for (ShardFrameType type : {ShardFrameType::kFlush, ShardFrameType::kShutdown}) {
    std::vector<std::uint8_t> frame;
    encode_control_frame(type, frame);
    EXPECT_EQ(frame.size(), 5u);
    DecodedShardFrame decoded;
    ASSERT_TRUE(decode_shard_frame(frame, decoded));
    EXPECT_EQ(decoded.type, type);
  }
}

TEST(ShardWire, MultipleFramesConcatenateAndSplitCleanly) {
  // A socket stream is just frames back to back; shard_frame_size must find
  // every cut point exactly.
  std::vector<ShardMessage> batch;
  batch.push_back({1, 2, 3, 4, 5, true, "k"});
  std::vector<std::uint8_t> stream;
  encode_shard_frame(ShardFrameType::kCrossBatch, batch, stream);
  encode_control_frame(ShardFrameType::kFlush, stream);
  encode_match_frame({{ShardMatch{2, 9}}}, stream);

  std::size_t pos = 0;
  std::vector<ShardFrameType> seen;
  while (pos < stream.size()) {
    std::span<const std::uint8_t> rest(stream.data() + pos, stream.size() - pos);
    std::size_t size = shard_frame_size(rest);
    ASSERT_GE(size, 5u);
    ASSERT_LE(size, rest.size());
    DecodedShardFrame decoded;
    ASSERT_TRUE(decode_shard_frame(rest.subspan(0, size), decoded));
    seen.push_back(decoded.type);
    pos += size;
  }
  EXPECT_EQ(seen, (std::vector<ShardFrameType>{ShardFrameType::kCrossBatch,
                                               ShardFrameType::kFlush,
                                               ShardFrameType::kMatches}));
}

TEST(ShardWire, FuzzRandomBatchesRoundTripExactly) {
  std::mt19937_64 rng(0xC0DEC);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const bool local = rng() % 2 == 0;
    // Small alphabet of keys so duplicates are common; sizes 0..40 so the
    // empty-batch and single-message paths get constant coverage.
    std::uniform_int_distribution<std::size_t> size_dist(0, 40);
    std::uniform_int_distribution<int> key_dist(0, 5);
    std::uniform_int_distribution<std::uint64_t> wide(
        0, std::numeric_limits<std::uint64_t>::max());
    std::vector<ShardMessage> batch(size_dist(rng));
    for (ShardMessage& m : batch) {
      m.seq = wide(rng);
      m.io = wide(rng);
      m.from_router = static_cast<RouterId>(rng());
      m.to_router = static_cast<RouterId>(rng());
      m.logged_time = static_cast<SimTime>(wide(rng));
      m.is_send = local ? rng() % 2 == 0 : true;
      m.channel = std::string(static_cast<std::size_t>(key_dist(rng)),
                              static_cast<char>('a' + key_dist(rng)));
    }
    auto type = local ? ShardFrameType::kLocalBatch : ShardFrameType::kCrossBatch;
    EXPECT_EQ(roundtrip(type, batch), batch) << "iteration " << iteration;
  }
}

TEST(ShardWire, FuzzTruncatedFramesAreRejectedAtEveryCut) {
  std::mt19937_64 rng(0xBADF00D);
  std::uniform_int_distribution<std::uint64_t> wide(0,
                                                    std::numeric_limits<std::uint64_t>::max());
  std::vector<ShardMessage> batch(17);
  for (ShardMessage& m : batch) {
    m.seq = wide(rng);
    m.io = wide(rng);
    m.from_router = static_cast<RouterId>(rng());
    m.to_router = static_cast<RouterId>(rng());
    m.logged_time = static_cast<SimTime>(wide(rng));
    m.channel = "channel-" + std::to_string(rng() % 4);
  }
  std::vector<std::uint8_t> frame;
  encode_shard_frame(ShardFrameType::kCrossBatch, batch, frame);

  DecodedShardFrame decoded;
  // decode_shard_frame requires the span to be exactly one frame: every
  // strict prefix must be rejected, as must any trailing garbage.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(decode_shard_frame(std::span(frame.data(), cut), decoded)) << cut;
  }
  std::vector<std::uint8_t> trailing = frame;
  trailing.push_back(0);
  EXPECT_FALSE(decode_shard_frame(trailing, decoded));
}

TEST(ShardWire, FuzzRandomByteFlipsNeverDecodeOutOfBounds) {
  // Flip bytes all over a valid frame; decode must either reject the frame
  // or produce some batch — never read out of bounds (ASan watches) and
  // never return a key index past the table.
  std::vector<ShardMessage> batch;
  for (std::uint64_t i = 0; i < 12; ++i) {
    batch.push_back({i, i * 3 + 1, 1, 2, static_cast<SimTime>(i * 100), true,
                     "key-" + std::to_string(i % 3)});
  }
  std::vector<std::uint8_t> frame;
  encode_shard_frame(ShardFrameType::kCrossBatch, batch, frame);

  std::mt19937_64 rng(0xF1BBED);
  DecodedShardFrame decoded;
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<std::uint8_t> corrupt = frame;
    // Corrupt the payload only: resizing via the length prefix is the
    // truncation test's job, and a mutated prefix just fails the size check.
    std::size_t at = 4 + rng() % (corrupt.size() - 4);
    corrupt[at] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    decode_shard_frame(corrupt, decoded);  // must not crash; result is free
  }

  // Targeted corruption: a key index pointing past the interned table.
  std::vector<ShardMessage> one;
  one.push_back({1, 2, 3, 4, 5, true, "k"});
  std::vector<std::uint8_t> bad;
  encode_shard_frame(ShardFrameType::kCrossBatch, one, bad);
  // Payload layout: type, key_count=1, len=1, 'k', event_count=1, key_idx=0...
  // bump the key index varint (single byte, value 0) to 7.
  bad[4 + 1 + 1 + 1 + 1 + 1] = 7;
  EXPECT_FALSE(decode_shard_frame(bad, decoded));
}

TEST(ShardWire, OversizedLengthPrefixIsRejected) {
  std::vector<std::uint8_t> frame;
  encode_control_frame(ShardFrameType::kFlush, frame);
  // Claim a payload beyond the hard cap; decode must refuse before any
  // allocation sized by the attacker-controlled prefix.
  const std::uint32_t huge = (1u << 24) + 1;
  frame[0] = static_cast<std::uint8_t>(huge);
  frame[1] = static_cast<std::uint8_t>(huge >> 8);
  frame[2] = static_cast<std::uint8_t>(huge >> 16);
  frame[3] = static_cast<std::uint8_t>(huge >> 24);
  DecodedShardFrame decoded;
  EXPECT_FALSE(decode_shard_frame(frame, decoded));
}

}  // namespace
}  // namespace hbguard
