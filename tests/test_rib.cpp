#include <gtest/gtest.h>

#include "hbguard/rib/fib.hpp"
#include "hbguard/rib/redistribution.hpp"
#include "hbguard/rib/rib.hpp"

namespace hbguard {
namespace {

TEST(Fib, InstallLookupRemove) {
  Fib fib;
  FibEntry entry;
  entry.prefix = *Prefix::parse("10.0.0.0/8");
  entry.action = FibEntry::Action::kForward;
  entry.next_hop = 3;

  EXPECT_FALSE(fib.install(entry).has_value());
  const FibEntry* hit = fib.lookup(IpAddress(10, 1, 1, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, 3u);

  FibEntry replacement = entry;
  replacement.next_hop = 4;
  auto previous = fib.install(replacement);
  ASSERT_TRUE(previous.has_value());
  EXPECT_EQ(previous->next_hop, 3u);

  auto removed = fib.remove(entry.prefix);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->next_hop, 4u);
  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 1, 1)), nullptr);
}

TEST(Fib, LongestPrefixMatchOrder) {
  Fib fib;
  FibEntry broad;
  broad.prefix = *Prefix::parse("10.0.0.0/8");
  broad.action = FibEntry::Action::kForward;
  broad.next_hop = 1;
  FibEntry narrow;
  narrow.prefix = *Prefix::parse("10.1.0.0/16");
  narrow.action = FibEntry::Action::kForward;
  narrow.next_hop = 2;
  fib.install(broad);
  fib.install(narrow);

  EXPECT_EQ(fib.lookup(IpAddress(10, 1, 5, 5))->next_hop, 2u);
  EXPECT_EQ(fib.lookup(IpAddress(10, 2, 5, 5))->next_hop, 1u);
}

TEST(FibEntry, Describe) {
  FibEntry e;
  e.prefix = *Prefix::parse("10.0.0.0/8");
  e.action = FibEntry::Action::kExternal;
  e.external_session = "uplink2";
  EXPECT_EQ(e.describe(), "10.0.0.0/8 -> ext(uplink2)");
}

class RibFixture : public ::testing::Test {
 protected:
  RibFixture()
      : rib_(0, AdminDistances{},
             RibManager::Callbacks{
                 [this](const Prefix& p, Protocol proto, const RibRoute* r) {
                   rib_events_.push_back({p, proto, r != nullptr});
                 },
                 [this](const Prefix& p, const FibEntry* e) {
                   fib_events_.emplace_back(p, e != nullptr ? std::optional<FibEntry>(*e)
                                                            : std::nullopt);
                 },
                 [this](RouterId target) { return resolve_(target); }}) {}

  RibRoute bgp_route(const char* prefix, Protocol proto, RouterId next_hop) {
    RibRoute route;
    route.prefix = *Prefix::parse(prefix);
    route.protocol = proto;
    route.action = FibEntry::Action::kForward;
    route.next_hop_router = next_hop;
    return route;
  }

  struct RibEvent {
    Prefix prefix;
    Protocol protocol;
    bool installed;
  };

  std::function<std::optional<RouterId>(RouterId)> resolve_ = [](RouterId r) {
    return std::optional<RouterId>(r);  // everything directly adjacent
  };
  RibManager rib_;
  std::vector<RibEvent> rib_events_;
  std::vector<std::pair<Prefix, std::optional<FibEntry>>> fib_events_;
};

TEST_F(RibFixture, LowerAdminDistanceWins) {
  Prefix p = *Prefix::parse("203.0.113.0/24");
  rib_.update(Protocol::kIbgp, p, bgp_route("203.0.113.0/24", Protocol::kIbgp, 5));
  ASSERT_EQ(fib_events_.size(), 1u);
  EXPECT_EQ(fib_events_[0].second->next_hop, 5u);

  rib_.update(Protocol::kEbgp, p, bgp_route("203.0.113.0/24", Protocol::kEbgp, 7));
  ASSERT_EQ(fib_events_.size(), 2u);
  EXPECT_EQ(fib_events_[1].second->next_hop, 7u);  // eBGP (20) beats iBGP (200)

  rib_.update(Protocol::kEbgp, p, std::nullopt);
  ASSERT_EQ(fib_events_.size(), 3u);
  EXPECT_EQ(fib_events_[2].second->next_hop, 5u);  // falls back to iBGP
}

TEST_F(RibFixture, MetricBreaksTieWithinProtocol) {
  // Two updates from the same protocol replace each other, so the metric
  // tie-break applies across protocols of equal distance — verify the
  // best() comparator handles equal distances deterministically.
  Prefix p = *Prefix::parse("10.0.0.0/8");
  RibRoute a = bgp_route("10.0.0.0/8", Protocol::kOspf, 1);
  a.metric = 20;
  rib_.update(Protocol::kOspf, p, a);
  const RibRoute* best = rib_.best(p);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->metric, 20u);

  RibRoute b = a;
  b.metric = 5;
  b.next_hop_router = 2;
  rib_.update(Protocol::kOspf, p, b);
  best = rib_.best(p);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->metric, 5u);
  EXPECT_EQ(rib_.fib().find(p)->next_hop, 2u);
}

TEST_F(RibFixture, UnresolvableNextHopKeepsRouteOutOfFib) {
  resolve_ = [](RouterId) { return std::nullopt; };
  Prefix p = *Prefix::parse("203.0.113.0/24");
  rib_.update(Protocol::kIbgp, p, bgp_route("203.0.113.0/24", Protocol::kIbgp, 5));
  EXPECT_TRUE(fib_events_.empty());
  EXPECT_EQ(rib_.fib().find(p), nullptr);
  // RIB still has the candidate.
  EXPECT_NE(rib_.best(p), nullptr);
}

TEST_F(RibFixture, ReresolveAllPicksUpIgpChanges) {
  Prefix p = *Prefix::parse("203.0.113.0/24");
  rib_.update(Protocol::kIbgp, p, bgp_route("203.0.113.0/24", Protocol::kIbgp, 5));
  ASSERT_EQ(fib_events_.size(), 1u);
  EXPECT_EQ(fib_events_[0].second->next_hop, 5u);

  resolve_ = [](RouterId) { return std::optional<RouterId>(9); };  // IGP re-route
  rib_.reresolve_all();
  ASSERT_EQ(fib_events_.size(), 2u);
  EXPECT_EQ(fib_events_[1].second->next_hop, 9u);
}

TEST_F(RibFixture, SelfNextHopBecomesLocal) {
  Prefix p = *Prefix::parse("192.0.2.0/24");
  rib_.update(Protocol::kIbgp, p, bgp_route("192.0.2.0/24", Protocol::kIbgp, 0));  // self=0
  ASSERT_EQ(fib_events_.size(), 1u);
  EXPECT_EQ(fib_events_[0].second->action, FibEntry::Action::kLocal);
}

TEST_F(RibFixture, ExternalAndDropActions) {
  Prefix p = *Prefix::parse("0.0.0.0/0");
  RibRoute route;
  route.prefix = p;
  route.protocol = Protocol::kStatic;
  route.action = FibEntry::Action::kExternal;
  route.external_session = "uplink1";
  rib_.update(Protocol::kStatic, p, route);
  ASSERT_EQ(fib_events_.size(), 1u);
  EXPECT_EQ(fib_events_[0].second->action, FibEntry::Action::kExternal);
  EXPECT_EQ(fib_events_[0].second->external_session, "uplink1");

  route.action = FibEntry::Action::kDrop;
  rib_.update(Protocol::kStatic, p, route);
  ASSERT_EQ(fib_events_.size(), 2u);
  EXPECT_EQ(fib_events_[1].second->action, FibEntry::Action::kDrop);
}

TEST_F(RibFixture, NoChangeNoEvent) {
  Prefix p = *Prefix::parse("203.0.113.0/24");
  auto route = bgp_route("203.0.113.0/24", Protocol::kEbgp, 3);
  rib_.update(Protocol::kEbgp, p, route);
  auto fib_count = fib_events_.size();
  auto rib_count = rib_events_.size();
  rib_.update(Protocol::kEbgp, p, route);  // identical
  EXPECT_EQ(fib_events_.size(), fib_count);
  EXPECT_EQ(rib_events_.size(), rib_count);
}

TEST_F(RibFixture, WithdrawUnknownIsNoop) {
  rib_.update(Protocol::kEbgp, *Prefix::parse("203.0.113.0/24"), std::nullopt);
  EXPECT_TRUE(fib_events_.empty());
  EXPECT_TRUE(rib_events_.empty());
}

// ---------------------------------------------------------------------------
// Redistribution

TEST(Redistribution, StaticsFlowIntoBgp) {
  std::set<Prefix> observed;
  RedistributionEngine redist({[&](const std::set<Prefix>& prefixes) { observed = prefixes; }});
  RouterConfig config;
  config.redistributions.push_back({Protocol::kStatic, Protocol::kEbgp, ""});
  redist.set_config(&config);

  Prefix p = *Prefix::parse("172.16.0.0/12");
  RibRoute route;
  route.prefix = p;
  route.protocol = Protocol::kStatic;
  redist.on_rib_change(p, Protocol::kStatic, &route);
  EXPECT_TRUE(observed.contains(p));

  redist.on_rib_change(p, Protocol::kStatic, nullptr);
  EXPECT_FALSE(observed.contains(p));
}

TEST(Redistribution, PolicyFiltersPrefixes) {
  std::set<Prefix> observed;
  RedistributionEngine redist({[&](const std::set<Prefix>& prefixes) { observed = prefixes; }});
  RouterConfig config;
  config.redistributions.push_back({Protocol::kStatic, Protocol::kEbgp, "only-172"});
  RouteMap map;
  map.name = "only-172";
  RouteMapClause permit;
  permit.match_prefix = *Prefix::parse("172.16.0.0/12");
  map.clauses.push_back(permit);
  map.default_permit = false;
  config.route_maps["only-172"] = map;
  redist.set_config(&config);

  Prefix inside = *Prefix::parse("172.16.5.0/24");
  Prefix outside = *Prefix::parse("10.0.0.0/8");
  RibRoute route;
  route.protocol = Protocol::kStatic;
  route.prefix = inside;
  redist.on_rib_change(inside, Protocol::kStatic, &route);
  route.prefix = outside;
  redist.on_rib_change(outside, Protocol::kStatic, &route);

  EXPECT_TRUE(observed.contains(inside));
  EXPECT_FALSE(observed.contains(outside));
}

TEST(Redistribution, BgpRoutesNeverFedBack) {
  std::set<Prefix> observed;
  bool fired = false;
  RedistributionEngine redist({[&](const std::set<Prefix>& prefixes) {
    observed = prefixes;
    fired = true;
  }});
  RouterConfig config;
  config.redistributions.push_back({Protocol::kEbgp, Protocol::kIbgp, ""});
  redist.set_config(&config);

  Prefix p = *Prefix::parse("203.0.113.0/24");
  RibRoute route;
  route.prefix = p;
  route.protocol = Protocol::kEbgp;
  redist.on_rib_change(p, Protocol::kEbgp, &route);
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace hbguard
