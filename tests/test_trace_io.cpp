#include <gtest/gtest.h>

#include <sstream>

#include "hbguard/capture/trace_io.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/rng.hpp"

namespace hbguard {
namespace {

bool records_equal(const IoRecord& a, const IoRecord& b) {
  return a.id == b.id && a.router == b.router && a.kind == b.kind &&
         a.logged_time == b.logged_time && a.true_time == b.true_time &&
         a.router_seq == b.router_seq && a.prefix == b.prefix && a.protocol == b.protocol &&
         a.session == b.session && a.peer == b.peer && a.withdraw == b.withdraw &&
         a.local_pref == b.local_pref && a.detail == b.detail &&
         a.config_version == b.config_version && a.link == b.link && a.link_up == b.link_up &&
         a.fib_entry == b.fib_entry && a.fib_blocked == b.fib_blocked &&
         a.fib_reset == b.fib_reset && a.message_id == b.message_id &&
         a.true_causes == b.true_causes;
}

TEST(TraceIo, RoundTripsAFullScenarioTrace) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  const auto& records = scenario.network->capture().records();
  std::ostringstream out;
  write_trace(out, records);

  auto parsed = parse_trace_text(out.str());
  for (const auto& error : parsed.errors) {
    ADD_FAILURE() << "line " << error.line << ": " << error.message;
  }
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(records_equal(records[i], parsed.records[i]))
        << "record " << i << ": " << records[i].describe() << " vs "
        << parsed.records[i].describe();
  }
}

TEST(TraceIo, ParsedTraceDrivesTheAnalysisPipeline) {
  // The round-tripped trace must be as useful as the live one: same HBG,
  // same root causes.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  std::ostringstream out;
  write_trace(out, scenario.network->capture().records());
  auto parsed = parse_trace_text(out.str());
  ASSERT_TRUE(parsed.ok());

  auto hbg = HbgBuilder::build(parsed.records, RuleMatchingInference());
  IoId fault = kNoIo, cause = kNoIo;
  for (const IoRecord& r : parsed.records) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
    if (r.kind == IoKind::kConfigChange && r.config_version == bad) cause = r.id;
  }
  ASSERT_NE(fault, kNoIo);
  auto roots = hbg.root_causes(fault);
  EXPECT_NE(std::find(roots.begin(), roots.end(), cause), roots.end());
}

TEST(TraceIo, RedactionDropsOracleFields) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  TraceWriteOptions options;
  options.redact_ground_truth = true;
  std::ostringstream out;
  write_trace(out, scenario.network->capture().records(), options);
  std::string text = out.str();
  EXPECT_EQ(text.find("true_causes"), std::string::npos);
  EXPECT_EQ(text.find("true_time"), std::string::npos);
  EXPECT_EQ(text.find("message_id"), std::string::npos);

  auto parsed = parse_trace_text(text);
  ASSERT_TRUE(parsed.ok());
  for (const IoRecord& record : parsed.records) {
    EXPECT_TRUE(record.true_causes.empty());
    EXPECT_EQ(record.message_id, 0u);
    // true_time falls back to logged_time so time-based analysis still works.
    EXPECT_EQ(record.true_time, record.logged_time);
  }
}

TEST(TraceIo, EscapesSpecialCharacters) {
  IoRecord record;
  record.id = 1;
  record.router = 0;
  record.kind = IoKind::kConfigChange;
  record.detail = "set \"desc\" with \\ backslash\nand newline\ttab";
  std::string line = to_json_line(record);

  auto parsed = parse_trace_text(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].detail, record.detail);
}

TEST(TraceIo, ReportsMalformedLinesWithNumbers) {
  std::string text =
      "{\"id\":1,\"router\":0,\"kind\":\"fib\",\"seq\":0,\"logged_time\":5}\n"
      "this is not json\n"
      "{\"id\":2,\"router\":0,\"seq\":1}\n"  // missing kind
      "{\"id\":3,\"router\":0,\"kind\":\"nope\",\"seq\":2}\n";
  auto parsed = parse_trace_text(text);
  EXPECT_EQ(parsed.records.size(), 1u);
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_EQ(parsed.errors[0].line, 2u);
  EXPECT_EQ(parsed.errors[1].line, 3u);
  EXPECT_EQ(parsed.errors[2].line, 4u);
}

TEST(TraceIo, RejectsMissingOrNegativeSeq) {
  // Stream-health gap detection depends on every record carrying its
  // router_seq; a record without one must not default to seq 0 (which
  // would masquerade as a duplicate of the router's first record).
  std::string text =
      "{\"id\":1,\"router\":0,\"kind\":\"fib\",\"logged_time\":5}\n"
      "{\"id\":2,\"router\":0,\"kind\":\"fib\",\"seq\":-3}\n"
      "{\"id\":3,\"router\":0,\"kind\":\"fib\",\"seq\":4}\n";
  auto parsed = parse_trace_text(text);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].router_seq, 4u);
  ASSERT_EQ(parsed.errors.size(), 2u);
  EXPECT_EQ(parsed.errors[0].line, 1u);
  EXPECT_EQ(parsed.errors[1].line, 2u);
}

TEST(TraceIo, SkipsBlankLines) {
  std::string text = "\n  \n{\"id\":1,\"router\":2,\"kind\":\"send\",\"seq\":0}\n\n";
  auto parsed = parse_trace_text(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].router, 2u);
}

TEST(TraceIo, StreamTraceConsumesLargeInputsIncrementally) {
  // Regression for the buffered reader: a multi-megabyte trace must be
  // consumed line by line, and an early-stopping visitor must leave the
  // stream positioned right after the last line it consumed — proof that
  // nothing slurped the whole input up front.
  constexpr std::size_t kRecords = 50'000;
  std::string text;
  text.reserve(kRecords * 64);
  for (std::size_t i = 0; i < kRecords; ++i) {
    IoRecord record;
    record.id = i + 1;
    record.router = i % 7;
    record.kind = IoKind::kSendAdvert;
    record.router_seq = i;
    record.detail = "pad-" + std::to_string(i);
    text += to_json_line(record);
    text += '\n';
  }

  std::istringstream in(text);
  std::size_t seen = 0;
  IoId last_id = 0;
  bool ok = stream_trace(in, [&](IoRecord&& record) {
    ++seen;
    last_id = record.id;
    return seen < 1000;  // stop early
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(seen, 1000u);
  EXPECT_EQ(last_id, 1000u);

  // The very next line on the stream is record 1001: the reader did not
  // read past what the visitor consumed.
  std::string next_line;
  ASSERT_TRUE(std::getline(in, next_line));
  IoRecord next;
  std::string error;
  ASSERT_EQ(parse_trace_line(next_line, next, error), TraceLineStatus::kRecord) << error;
  EXPECT_EQ(next.id, 1001u);

  // Restarting from that position streams the remainder exactly once.
  std::size_t rest = 1;  // counts the line consumed by getline above
  EXPECT_TRUE(stream_trace(in, [&](IoRecord&&) {
    ++rest;
    return true;
  }));
  EXPECT_EQ(seen + rest, kRecords);
}

TEST(TraceIo, StreamTraceReportsErrorsWithoutStopping) {
  std::string text =
      "{\"id\":1,\"router\":0,\"kind\":\"send\",\"seq\":0}\n"
      "this is not json\n"
      "{\"id\":2,\"router\":0,\"kind\":\"send\",\"seq\":1}\n";
  std::istringstream in(text);
  std::vector<TraceParseError> errors;
  std::size_t seen = 0;
  EXPECT_FALSE(stream_trace(
      in, [&](IoRecord&&) { ++seen; return true; }, &errors));
  EXPECT_EQ(seen, 2u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].line, 2u);
}

TEST(TraceIo, FibResetMarkerSurvivesRoundTrip) {
  IoRecord record;
  record.id = 9;
  record.router = 1;
  record.kind = IoKind::kHardwareStatus;
  record.detail = "cold boot (restart)";
  record.fib_reset = true;

  std::string line = to_json_line(record);
  EXPECT_NE(line.find("fib_reset"), std::string::npos);
  auto parsed = parse_trace_text(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_TRUE(parsed.records[0].fib_reset);
  EXPECT_TRUE(records_equal(record, parsed.records[0]));
}

/// One random record with every optional/conditional field independently
/// present or absent, constrained only by what the JSONL format can
/// represent losslessly (link_up is a kHardwareStatus field; a FibEntry
/// carries next_hop only when forwarding and a session only when external).
IoRecord random_record(Rng& rng, IoId id) {
  static constexpr IoKind kKinds[] = {
      IoKind::kConfigChange, IoKind::kHardwareStatus, IoKind::kRecvAdvert,
      IoKind::kRibUpdate,    IoKind::kFibUpdate,      IoKind::kSendAdvert,
  };
  static constexpr Protocol kProtocols[] = {
      Protocol::kConnected, Protocol::kStatic, Protocol::kEbgp,
      Protocol::kIbgp,      Protocol::kOspf,
  };
  // Escaping stress: quotes, backslashes, tabs, newlines, raw control chars.
  static constexpr std::string_view kDetailChars = "ab \"\\\n\tZ:{},[]\x01\x1f";

  auto random_text = [&](std::size_t max_len) {
    std::string text;
    std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, max_len));
    for (std::size_t i = 0; i < len; ++i) {
      text += kDetailChars[rng.uniform_int(0, kDetailChars.size() - 1)];
    }
    return text;
  };

  IoRecord r;
  r.id = id;
  r.router = static_cast<RouterId>(rng.uniform_int(0, 12));
  r.kind = kKinds[rng.uniform_int(0, 5)];
  r.logged_time = rng.uniform_int(0, 10'000'000);
  r.true_time = rng.chance(0.5) ? r.logged_time : rng.uniform_int(0, 10'000'000);
  r.router_seq = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000));
  r.protocol = kProtocols[rng.uniform_int(0, 4)];
  if (rng.chance(0.5)) r.prefix = churn_prefix(rng.uniform_int(0, 15));
  if (rng.chance(0.5)) r.session = random_text(12);
  if (rng.chance(0.5)) {
    r.peer = rng.chance(0.25) ? kExternalRouter : static_cast<RouterId>(rng.uniform_int(0, 12));
  }
  r.withdraw = rng.chance(0.5);
  if (rng.chance(0.5)) r.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 400));
  if (rng.chance(0.5)) r.detail = random_text(24);
  if (rng.chance(0.5)) r.config_version = static_cast<ConfigVersion>(rng.uniform_int(1, 999));
  if (rng.chance(0.5)) r.link = static_cast<LinkId>(rng.uniform_int(0, 64));
  if (r.kind == IoKind::kHardwareStatus) r.link_up = rng.chance(0.5);
  r.fib_blocked = rng.chance(0.3);
  r.fib_reset = rng.chance(0.3);
  if (rng.chance(0.4)) {
    FibEntry entry;
    entry.prefix = churn_prefix(rng.uniform_int(0, 15));
    static constexpr FibEntry::Action kActions[] = {
        FibEntry::Action::kForward, FibEntry::Action::kExternal,
        FibEntry::Action::kLocal,   FibEntry::Action::kDrop,
    };
    entry.action = kActions[rng.uniform_int(0, 3)];
    if (entry.action == FibEntry::Action::kForward) {
      entry.next_hop = static_cast<RouterId>(rng.uniform_int(0, 12));
    }
    if (entry.action == FibEntry::Action::kExternal) entry.external_session = random_text(8);
    entry.source = kProtocols[rng.uniform_int(0, 4)];
    r.fib_entry = entry;
  }
  if (rng.chance(0.5)) r.message_id = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
  if (rng.chance(0.4)) {
    std::size_t causes = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t i = 0; i < causes; ++i) {
      r.true_causes.push_back(static_cast<IoId>(rng.uniform_int(1, 1'000'000)));
    }
  }
  return r;
}

TEST(TraceIo, FuzzRoundTripCoversEveryOptionalFieldCombination) {
  // Property: write → parse is the identity on any representable record.
  // 500 seeded random records flip every optional field independently, so
  // the combinations (prefix × session × peer × local_pref × config_version
  // × link × fib_entry variants × ground truth) all get exercised together.
  Rng rng(4242);
  std::vector<IoRecord> records;
  for (IoId id = 1; id <= 500; ++id) records.push_back(random_record(rng, id));

  std::ostringstream out;
  write_trace(out, records);
  auto parsed = parse_trace_text(out.str());
  for (const auto& error : parsed.errors) {
    ADD_FAILURE() << "line " << error.line << ": " << error.message;
  }
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(records_equal(records[i], parsed.records[i]))
        << "record " << i << "\n  wrote:  " << to_json_line(records[i])
        << "\n  parsed: " << to_json_line(parsed.records[i]);
  }

  // The redacted form of the same corpus must still parse clean, with the
  // ground-truth fields scrubbed and true_time falling back to logged_time.
  TraceWriteOptions redact;
  redact.redact_ground_truth = true;
  std::ostringstream redacted_out;
  write_trace(redacted_out, records, redact);
  auto redacted = parse_trace_text(redacted_out.str());
  ASSERT_TRUE(redacted.ok());
  ASSERT_EQ(redacted.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(redacted.records[i].true_causes.empty());
    EXPECT_EQ(redacted.records[i].message_id, 0u);
    EXPECT_EQ(redacted.records[i].true_time, redacted.records[i].logged_time);
  }
}

TEST(TraceIo, FibEntrySurvivesRoundTrip) {
  IoRecord record;
  record.id = 7;
  record.router = 3;
  record.kind = IoKind::kFibUpdate;
  record.prefix = *Prefix::parse("203.0.113.0/24");
  FibEntry entry;
  entry.prefix = *record.prefix;
  entry.action = FibEntry::Action::kExternal;
  entry.external_session = "uplink2";
  entry.source = Protocol::kEbgp;
  record.fib_entry = entry;

  auto parsed = parse_trace_text(to_json_line(record));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.records[0].fib_entry.has_value());
  EXPECT_EQ(*parsed.records[0].fib_entry, entry);
}

}  // namespace
}  // namespace hbguard
