#include <gtest/gtest.h>

#include <sstream>

#include "hbguard/capture/trace_io.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

bool records_equal(const IoRecord& a, const IoRecord& b) {
  return a.id == b.id && a.router == b.router && a.kind == b.kind &&
         a.logged_time == b.logged_time && a.true_time == b.true_time &&
         a.router_seq == b.router_seq && a.prefix == b.prefix && a.protocol == b.protocol &&
         a.session == b.session && a.peer == b.peer && a.withdraw == b.withdraw &&
         a.local_pref == b.local_pref && a.detail == b.detail &&
         a.config_version == b.config_version && a.link == b.link && a.link_up == b.link_up &&
         a.fib_entry == b.fib_entry && a.fib_blocked == b.fib_blocked &&
         a.fib_reset == b.fib_reset && a.message_id == b.message_id &&
         a.true_causes == b.true_causes;
}

TEST(TraceIo, RoundTripsAFullScenarioTrace) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  const auto& records = scenario.network->capture().records();
  std::ostringstream out;
  write_trace(out, records);

  auto parsed = parse_trace_text(out.str());
  for (const auto& error : parsed.errors) {
    ADD_FAILURE() << "line " << error.line << ": " << error.message;
  }
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(records_equal(records[i], parsed.records[i]))
        << "record " << i << ": " << records[i].describe() << " vs "
        << parsed.records[i].describe();
  }
}

TEST(TraceIo, ParsedTraceDrivesTheAnalysisPipeline) {
  // The round-tripped trace must be as useful as the live one: same HBG,
  // same root causes.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  std::ostringstream out;
  write_trace(out, scenario.network->capture().records());
  auto parsed = parse_trace_text(out.str());
  ASSERT_TRUE(parsed.ok());

  auto hbg = HbgBuilder::build(parsed.records, RuleMatchingInference());
  IoId fault = kNoIo, cause = kNoIo;
  for (const IoRecord& r : parsed.records) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
    if (r.kind == IoKind::kConfigChange && r.config_version == bad) cause = r.id;
  }
  ASSERT_NE(fault, kNoIo);
  auto roots = hbg.root_causes(fault);
  EXPECT_NE(std::find(roots.begin(), roots.end(), cause), roots.end());
}

TEST(TraceIo, RedactionDropsOracleFields) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  TraceWriteOptions options;
  options.redact_ground_truth = true;
  std::ostringstream out;
  write_trace(out, scenario.network->capture().records(), options);
  std::string text = out.str();
  EXPECT_EQ(text.find("true_causes"), std::string::npos);
  EXPECT_EQ(text.find("true_time"), std::string::npos);
  EXPECT_EQ(text.find("message_id"), std::string::npos);

  auto parsed = parse_trace_text(text);
  ASSERT_TRUE(parsed.ok());
  for (const IoRecord& record : parsed.records) {
    EXPECT_TRUE(record.true_causes.empty());
    EXPECT_EQ(record.message_id, 0u);
    // true_time falls back to logged_time so time-based analysis still works.
    EXPECT_EQ(record.true_time, record.logged_time);
  }
}

TEST(TraceIo, EscapesSpecialCharacters) {
  IoRecord record;
  record.id = 1;
  record.router = 0;
  record.kind = IoKind::kConfigChange;
  record.detail = "set \"desc\" with \\ backslash\nand newline\ttab";
  std::string line = to_json_line(record);

  auto parsed = parse_trace_text(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].detail, record.detail);
}

TEST(TraceIo, ReportsMalformedLinesWithNumbers) {
  std::string text =
      "{\"id\":1,\"router\":0,\"kind\":\"fib\",\"seq\":0,\"logged_time\":5}\n"
      "this is not json\n"
      "{\"id\":2,\"router\":0,\"seq\":1}\n"  // missing kind
      "{\"id\":3,\"router\":0,\"kind\":\"nope\",\"seq\":2}\n";
  auto parsed = parse_trace_text(text);
  EXPECT_EQ(parsed.records.size(), 1u);
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_EQ(parsed.errors[0].line, 2u);
  EXPECT_EQ(parsed.errors[1].line, 3u);
  EXPECT_EQ(parsed.errors[2].line, 4u);
}

TEST(TraceIo, RejectsMissingOrNegativeSeq) {
  // Stream-health gap detection depends on every record carrying its
  // router_seq; a record without one must not default to seq 0 (which
  // would masquerade as a duplicate of the router's first record).
  std::string text =
      "{\"id\":1,\"router\":0,\"kind\":\"fib\",\"logged_time\":5}\n"
      "{\"id\":2,\"router\":0,\"kind\":\"fib\",\"seq\":-3}\n"
      "{\"id\":3,\"router\":0,\"kind\":\"fib\",\"seq\":4}\n";
  auto parsed = parse_trace_text(text);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].router_seq, 4u);
  ASSERT_EQ(parsed.errors.size(), 2u);
  EXPECT_EQ(parsed.errors[0].line, 1u);
  EXPECT_EQ(parsed.errors[1].line, 2u);
}

TEST(TraceIo, SkipsBlankLines) {
  std::string text = "\n  \n{\"id\":1,\"router\":2,\"kind\":\"send\",\"seq\":0}\n\n";
  auto parsed = parse_trace_text(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].router, 2u);
}

TEST(TraceIo, FibResetMarkerSurvivesRoundTrip) {
  IoRecord record;
  record.id = 9;
  record.router = 1;
  record.kind = IoKind::kHardwareStatus;
  record.detail = "cold boot (restart)";
  record.fib_reset = true;

  std::string line = to_json_line(record);
  EXPECT_NE(line.find("fib_reset"), std::string::npos);
  auto parsed = parse_trace_text(line);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_TRUE(parsed.records[0].fib_reset);
  EXPECT_TRUE(records_equal(record, parsed.records[0]));
}

TEST(TraceIo, FibEntrySurvivesRoundTrip) {
  IoRecord record;
  record.id = 7;
  record.router = 3;
  record.kind = IoKind::kFibUpdate;
  record.prefix = *Prefix::parse("203.0.113.0/24");
  FibEntry entry;
  entry.prefix = *record.prefix;
  entry.action = FibEntry::Action::kExternal;
  entry.external_session = "uplink2";
  entry.source = Protocol::kEbgp;
  record.fib_entry = entry;

  auto parsed = parse_trace_text(to_json_line(record));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.records[0].fib_entry.has_value());
  EXPECT_EQ(*parsed.records[0].fib_entry, entry);
}

}  // namespace
}  // namespace hbguard
