#include <gtest/gtest.h>

#include "hbguard/event/simulator.hpp"

namespace hbguard {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksCanReschedule) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_after(10, tick);
  };
  sim.schedule_at(0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, DeadlineStopsExecution) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(30, [&] { ++count; });
  std::size_t dispatched = sim.run(20);
  EXPECT_EQ(dispatched, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, DeadlineAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run(100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(50, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(10, [] {}), std::invalid_argument);
}

TEST(Simulator, StepDispatchesOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, DispatchedCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 7u);
}

}  // namespace
}  // namespace hbguard
