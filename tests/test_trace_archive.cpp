// Property / fuzz tests for the binary trace-archive codec.
//
// Mirrors tests/test_shard_wire.cpp: the archive format carries the same
// parity burden (JSONL and binary must describe the identical record
// stream), so the same two invariants are fuzzed —
//   * round-trip — decode(encode(batch)) reproduces every field of every
//     record exactly, for any batch the capture can produce (and
//     adversarial ones it can't: empty batches, extreme ids/times,
//     interleaved string reuse);
//   * rejection — decoding returns false on any malformed input
//     (truncations at every byte, byte flips, oversized length prefixes,
//     string indexes past the table) instead of fabricating records.
// Plus the storage layer on top: mmap reader, arena store interning, and
// the JSONL converter round trip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "hbguard/capture/trace_archive.hpp"
#include "hbguard/capture/trace_io.hpp"
#include "hbguard/util/wire.hpp"

namespace hbguard {
namespace {

void expect_same(const IoRecord& a, const IoRecord& b, const char* where) {
  EXPECT_EQ(a.id, b.id) << where;
  EXPECT_EQ(a.router, b.router) << where;
  EXPECT_EQ(a.kind, b.kind) << where;
  EXPECT_EQ(a.true_time, b.true_time) << where;
  EXPECT_EQ(a.logged_time, b.logged_time) << where;
  EXPECT_EQ(a.router_seq, b.router_seq) << where;
  EXPECT_EQ(a.prefix, b.prefix) << where;
  EXPECT_EQ(a.protocol, b.protocol) << where;
  EXPECT_EQ(a.session, b.session) << where;
  EXPECT_EQ(a.peer, b.peer) << where;
  EXPECT_EQ(a.withdraw, b.withdraw) << where;
  EXPECT_EQ(a.local_pref, b.local_pref) << where;
  EXPECT_EQ(a.detail, b.detail) << where;
  EXPECT_EQ(a.config_version, b.config_version) << where;
  EXPECT_EQ(a.link, b.link) << where;
  EXPECT_EQ(a.link_up, b.link_up) << where;
  EXPECT_EQ(a.fib_entry, b.fib_entry) << where;
  EXPECT_EQ(a.fib_blocked, b.fib_blocked) << where;
  EXPECT_EQ(a.fib_reset, b.fib_reset) << where;
  EXPECT_EQ(a.message_id, b.message_id) << where;
  EXPECT_EQ(a.true_causes, b.true_causes) << where;
}

std::vector<IoRecord> roundtrip(const std::vector<IoRecord>& batch,
                                TraceArchiveWriteOptions options = {}) {
  std::vector<std::uint8_t> frame;
  encode_archive_frame(batch, frame, options);
  EXPECT_EQ(archive_frame_size(frame), frame.size());
  std::vector<IoRecord> decoded;
  EXPECT_TRUE(decode_archive_frame(frame, decoded));
  return decoded;
}

IoRecord rich_record() {
  IoRecord r;
  r.id = 42;
  r.router = 3;
  r.kind = IoKind::kFibUpdate;
  r.true_time = 1'000'000;
  r.logged_time = 1'000'250;  // differs from true_time
  r.router_seq = 17;
  r.prefix = Prefix(IpAddress(10, 1, 2, 0), 24);
  r.protocol = Protocol::kEbgp;
  r.session = "uplink0";
  r.peer = kExternalRouter;
  r.withdraw = true;
  r.local_pref = 200;
  r.detail = "flap \"quoted\"\nline";
  r.config_version = 7;
  r.link = 12;
  r.link_up = true;
  r.fib_blocked = true;
  r.fib_reset = true;
  FibEntry entry;
  entry.prefix = Prefix(IpAddress(10, 1, 0, 0), 16);
  entry.action = FibEntry::Action::kExternal;
  entry.external_session = "uplink0";
  entry.source = Protocol::kEbgp;
  r.fib_entry = entry;
  r.message_id = 991;
  r.true_causes = {1, 5, 41};
  return r;
}

TEST(TraceArchive, EveryFieldRoundTrips) {
  std::vector<IoRecord> batch = {rich_record()};
  IoRecord forward;
  forward.id = 43;
  forward.router = 1;
  forward.kind = IoKind::kRecvAdvert;
  forward.logged_time = 999'999;
  forward.true_time = 999'999;  // equal: kTrueTimeDiffers path off
  forward.router_seq = 1;
  FibEntry fwd;
  fwd.prefix = Prefix(IpAddress(192, 168, 0, 0), 30);
  fwd.action = FibEntry::Action::kForward;
  fwd.next_hop = 9;
  fwd.source = Protocol::kIbgp;
  forward.fib_entry = fwd;
  batch.push_back(forward);
  batch.push_back(IoRecord{});  // all defaults

  std::vector<IoRecord> decoded = roundtrip(batch);
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same(batch[i], decoded[i], "EveryFieldRoundTrips");
  }
}

TEST(TraceArchive, EmptyBatchRoundTrips) {
  EXPECT_TRUE(roundtrip({}).empty());
}

TEST(TraceArchive, ExtremeFieldValuesRoundTrip) {
  IoRecord a;
  a.id = std::numeric_limits<IoId>::max();
  a.router = kInvalidRouter - 2;
  a.kind = IoKind::kSendAdvert;
  a.true_time = std::numeric_limits<SimTime>::max();
  a.logged_time = std::numeric_limits<SimTime>::min();
  a.router_seq = std::numeric_limits<std::uint64_t>::max();
  a.peer = kInvalidRouter;  // flag boundary: sentinel means "absent"
  a.local_pref = std::numeric_limits<std::uint32_t>::max();
  a.link = kInvalidLink - 1;
  a.true_causes = {std::numeric_limits<IoId>::max(), 0, 1};
  IoRecord b;  // deltas from max back to zero wrap the full u64 range
  b.id = 0;
  b.router = 0;
  b.kind = IoKind::kConfigChange;
  b.true_time = 0;
  b.logged_time = 0;
  b.router_seq = 0;
  std::vector<IoRecord> decoded = roundtrip({a, b});
  ASSERT_EQ(decoded.size(), 2u);
  expect_same(a, decoded[0], "extreme[0]");
  expect_same(b, decoded[1], "extreme[1]");
}

TEST(TraceArchive, DuplicateStringsInternToOneTableEntry) {
  std::vector<IoRecord> batch;
  for (int i = 0; i < 50; ++i) {
    IoRecord r;
    r.id = static_cast<IoId>(i + 1);
    r.kind = IoKind::kRecvAdvert;
    r.session = "uplink0";       // same session every time
    r.detail = "route change";   // same detail every time
    batch.push_back(r);
  }
  std::vector<std::uint8_t> frame;
  encode_archive_frame(batch, frame);
  // One table entry per distinct string: well under one copy per record.
  std::size_t text_bytes = (7 + 12) * 50;
  EXPECT_LT(frame.size(), text_bytes);
  std::vector<IoRecord> decoded;
  ASSERT_TRUE(decode_archive_frame(frame, decoded));
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same(batch[i], decoded[i], "interning");
  }
}

TEST(TraceArchive, RedactionDropsOracleFields) {
  TraceArchiveWriteOptions options;
  options.redact_ground_truth = true;
  std::vector<IoRecord> decoded = roundtrip({rich_record()}, options);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].true_time, decoded[0].logged_time);
  EXPECT_EQ(decoded[0].message_id, 0u);
  EXPECT_TRUE(decoded[0].true_causes.empty());
  // Observable fields survive.
  EXPECT_EQ(decoded[0].session, "uplink0");
  EXPECT_EQ(decoded[0].fib_entry, rich_record().fib_entry);
}

TEST(TraceArchive, TruncatedFramesAreRejectedAtEveryCut) {
  std::vector<IoRecord> batch = {rich_record()};
  std::vector<std::uint8_t> frame;
  encode_archive_frame(batch, frame);
  std::vector<IoRecord> out;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::span<const std::uint8_t> prefix(frame.data(), cut);
    EXPECT_FALSE(decode_archive_frame(prefix, out)) << "cut=" << cut;
  }
  std::vector<std::uint8_t> trailing = frame;
  trailing.push_back(0);
  EXPECT_FALSE(decode_archive_frame(trailing, out));
  EXPECT_TRUE(decode_archive_frame(frame, out));  // the untouched frame is fine
}

TEST(TraceArchive, OversizedLengthPrefixIsRejected) {
  std::vector<std::uint8_t> frame(4 + 5, 0);
  std::uint32_t huge = static_cast<std::uint32_t>(kMaxArchiveFramePayload) + 1;
  frame[0] = static_cast<std::uint8_t>(huge);
  frame[1] = static_cast<std::uint8_t>(huge >> 8);
  frame[2] = static_cast<std::uint8_t>(huge >> 16);
  frame[3] = static_cast<std::uint8_t>(huge >> 24);
  std::vector<IoRecord> out;
  // Hand the decoder a slice claiming a huge payload: it must reject on the
  // length prefix itself, not trust it.
  EXPECT_FALSE(decode_archive_frame(std::span<const std::uint8_t>(frame), out));
}

TEST(TraceArchive, StringIndexPastTableIsRejected) {
  // Hand-assembled frame: empty string table, one record whose flags claim
  // a session, session index 0 — past the (empty) table.
  std::vector<std::uint8_t> payload;
  payload.push_back(1);              // kRecords
  wire::put_varint(payload, 0);      // string_count = 0
  wire::put_varint(payload, 1);      // record_count = 1
  wire::put_varint(payload, 1u << 7);  // flags: has_session
  payload.push_back(0);              // kind/protocol
  for (int i = 0; i < 4; ++i) wire::put_zigzag(payload, 0);
  wire::put_varint(payload, 0);      // session index 0 >= table size 0
  std::vector<std::uint8_t> frame;
  frame.push_back(static_cast<std::uint8_t>(payload.size()));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 16));
  frame.push_back(static_cast<std::uint8_t>(payload.size() >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::vector<IoRecord> out;
  EXPECT_FALSE(decode_archive_frame(frame, out));
}

IoRecord random_record(std::mt19937_64& rng) {
  auto coin = [&] { return (rng() & 1) != 0; };
  IoRecord r;
  r.id = rng();
  r.router = static_cast<RouterId>(rng() % 1000);
  r.kind = static_cast<IoKind>(rng() % 6);
  r.logged_time = static_cast<SimTime>(rng());
  r.true_time = coin() ? r.logged_time : static_cast<SimTime>(rng());
  r.router_seq = rng();
  if (coin()) {
    auto length = static_cast<std::uint8_t>(rng() % 33);
    std::uint32_t mask = length >= 32 ? 0xffffffffu : ~(0xffffffffu >> length);
    r.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(rng()) & mask), length);
  }
  r.protocol = static_cast<Protocol>(rng() % 5);
  if (coin()) r.session = "session-" + std::to_string(rng() % 8);
  if (coin()) r.peer = static_cast<RouterId>(rng() % 100);
  r.withdraw = coin();
  if (coin()) r.local_pref = static_cast<std::uint32_t>(rng());
  if (coin()) r.detail = "detail-" + std::to_string(rng() % 4);
  if (coin()) r.config_version = static_cast<ConfigVersion>(rng() % 1000 + 1);
  if (coin()) r.link = static_cast<LinkId>(rng() % 500);
  r.link_up = coin();
  r.fib_blocked = coin();
  r.fib_reset = coin();
  if (coin()) {
    FibEntry entry;
    auto length = static_cast<std::uint8_t>(rng() % 33);
    std::uint32_t mask = length >= 32 ? 0xffffffffu : ~(0xffffffffu >> length);
    entry.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(rng()) & mask), length);
    entry.action = static_cast<FibEntry::Action>(rng() % 4);
    if (entry.action == FibEntry::Action::kForward) {
      entry.next_hop = static_cast<RouterId>(rng() % 100);
    }
    if (entry.action == FibEntry::Action::kExternal) {
      entry.external_session = "session-" + std::to_string(rng() % 8);
    }
    entry.source = static_cast<Protocol>(rng() % 5);
    r.fib_entry = entry;
  }
  if (coin()) r.message_id = rng();
  if (coin()) {
    std::size_t causes = rng() % 5;
    for (std::size_t i = 0; i < causes; ++i) r.true_causes.push_back(rng());
  }
  return r;
}

TEST(TraceArchive, FuzzRandomBatchesRoundTripExactly) {
  std::mt19937_64 rng(0xA7C417);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::size_t count = rng() % 20;
    std::vector<IoRecord> batch;
    for (std::size_t i = 0; i < count; ++i) batch.push_back(random_record(rng));
    std::vector<IoRecord> decoded = roundtrip(batch);
    ASSERT_EQ(decoded.size(), batch.size()) << "iteration " << iteration;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_same(batch[i], decoded[i], "fuzz");
    }
  }
}

TEST(TraceArchive, FuzzRandomByteFlipsNeverDecodeOutOfBounds) {
  std::mt19937_64 rng(0xF11B5);
  std::vector<IoRecord> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(random_record(rng));
  std::vector<std::uint8_t> clean;
  encode_archive_frame(batch, clean);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<std::uint8_t> frame = clean;
    // Flip payload bytes only — a corrupted length prefix just truncates.
    std::size_t at = 4 + rng() % (frame.size() - 4);
    frame[at] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    std::vector<IoRecord> out;
    // Either rejected or decoded into fully-owned records; both are fine,
    // crashing or reading out of bounds (ASan in CI) is not.
    decode_archive_frame(frame, out);
  }
}

TEST(TraceArchive, FuzzTruncationsOfRandomFramesAreRejected) {
  std::mt19937_64 rng(0xC07);
  std::vector<IoRecord> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(random_record(rng));
  std::vector<std::uint8_t> frame;
  encode_archive_frame(batch, frame);
  std::vector<IoRecord> out;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(
        decode_archive_frame(std::span<const std::uint8_t>(frame.data(), cut), out))
        << "cut=" << cut;
  }
}

// ---- File-level writer/reader ---------------------------------------------

class TraceArchiveFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("trace_archive_test_" + std::to_string(::getpid()) + ".hbgtrc"))
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceArchiveFileTest, WriterReaderRoundTripAcrossFrames) {
  std::mt19937_64 rng(0xF11E);
  std::vector<IoRecord> records;
  for (int i = 0; i < 100; ++i) records.push_back(random_record(rng));
  {
    std::ofstream out(path_, std::ios::binary);
    TraceArchiveWriteOptions options;
    options.records_per_frame = 7;  // force many frames
    TraceArchiveWriter writer(out, options);
    for (const IoRecord& r : records) writer.add(r);
    writer.finish();
    EXPECT_EQ(writer.records(), records.size());
  }
  EXPECT_TRUE(is_trace_archive(path_));

  TraceArchiveReader reader;
  ASSERT_TRUE(reader.open(path_)) << reader.error();
  EXPECT_TRUE(reader.mapped());  // Linux: the mmap path, not the fallback
  std::vector<IoRecord> decoded;
  ASSERT_TRUE(reader.read_all(decoded)) << reader.error();
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_same(records[i], decoded[i], "file");
  }

  // Early stop works and is not an error.
  std::size_t seen = 0;
  ASSERT_TRUE(reader.for_each([&](const ArchiveRecord&) { return ++seen < 10; }));
  EXPECT_EQ(seen, 10u);
}

TEST_F(TraceArchiveFileTest, MissingEndFrameIsDetected) {
  std::vector<std::uint8_t> bytes(kTraceArchiveMagic, kTraceArchiveMagic + 8);
  std::vector<IoRecord> batch = {rich_record()};
  encode_archive_frame(batch, bytes);
  // No end frame.
  {
    std::ofstream out(path_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  TraceArchiveReader reader;
  ASSERT_TRUE(reader.open(path_));
  std::vector<IoRecord> decoded;
  EXPECT_FALSE(reader.read_all(decoded));
  EXPECT_NE(reader.error().find("end frame"), std::string::npos) << reader.error();
}

TEST_F(TraceArchiveFileTest, EndFrameCountMismatchIsDetected) {
  std::vector<std::uint8_t> bytes(kTraceArchiveMagic, kTraceArchiveMagic + 8);
  std::vector<IoRecord> batch = {rich_record()};
  encode_archive_frame(batch, bytes);
  encode_archive_end_frame(5, bytes);  // lies: one record written
  {
    std::ofstream out(path_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  TraceArchiveReader reader;
  ASSERT_TRUE(reader.open(path_));
  std::vector<IoRecord> decoded;
  EXPECT_FALSE(reader.read_all(decoded));
  EXPECT_NE(reader.error().find("mismatch"), std::string::npos) << reader.error();
}

TEST_F(TraceArchiveFileTest, NonArchiveFileIsRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "{\"id\":1}\n";
  }
  EXPECT_FALSE(is_trace_archive(path_));
  TraceArchiveReader reader;
  EXPECT_FALSE(reader.open(path_));
}

TEST_F(TraceArchiveFileTest, ArenaStoreRehomesViewsAndInternsStrings) {
  std::mt19937_64 rng(0xABE);
  std::vector<IoRecord> records;
  for (int i = 0; i < 200; ++i) {
    IoRecord r = random_record(rng);
    r.session = "shared-session";  // every record shares one session name
    records.push_back(r);
  }
  {
    std::ofstream out(path_, std::ios::binary);
    TraceArchiveWriter writer(out);
    for (const IoRecord& r : records) writer.add(r);
  }  // destructor finishes

  ArenaCaptureStore store;
  {
    TraceArchiveReader reader;
    ASSERT_TRUE(reader.open(path_));
    ASSERT_TRUE(reader.for_each([&](const ArchiveRecord& record) {
      store.append(record);
      return true;
    }));
  }  // reader (and its mapping) dies here — the store must own everything

  ASSERT_EQ(store.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_same(records[i], store[i].materialize(), "arena");
  }
  // Interning: every record's session view aliases the same bytes.
  EXPECT_EQ(store[0].session.data(), store[199].session.data());
  EXPECT_GT(store.arena_bytes(), 0u);
  EXPECT_LT(store.interned_strings(), 32u);  // handful of distinct strings
}

TEST_F(TraceArchiveFileTest, JsonlConverterRoundTripsByteIdentically) {
  std::mt19937_64 rng(0x10D1);
  std::vector<IoRecord> records;
  for (int i = 0; i < 60; ++i) {
    IoRecord record = random_record(rng);
    // The binary codec carries full-range 64-bit values, but this trip
    // goes through JSONL, whose reader rejects negative times/seqs —
    // clamp into the JSON-representable range.
    record.id = (record.id & 0x7FFFFFFFFFFFFFFFull) | 1;
    record.logged_time = static_cast<SimTime>(record.logged_time) < 0
                             ? -static_cast<SimTime>(record.logged_time)
                             : record.logged_time;
    record.true_time = record.logged_time;
    record.router_seq &= 0x7FFFFFFFFFFFFFFFull;
    record.message_id &= 0x7FFFFFFFFFFFFFFFull;
    record.true_causes.clear();
    records.push_back(record);
  }

  std::ostringstream jsonl;
  write_trace(jsonl, records);

  // JSONL -> archive file.
  {
    std::istringstream in(jsonl.str());
    std::ofstream out(path_, std::ios::binary);
    ArchiveConvertStats stats;
    std::string error;
    ASSERT_TRUE(convert_jsonl_to_archive(in, out, {}, &stats, &error)) << error;
    EXPECT_EQ(stats.records, records.size());
    EXPECT_EQ(stats.parse_errors, 0u);
  }
  // Archive file -> JSONL, byte-identical to the original serialization.
  std::ostringstream back;
  ArchiveConvertStats stats;
  std::string error;
  ASSERT_TRUE(convert_archive_to_jsonl(path_, back, {}, &stats, &error)) << error;
  EXPECT_EQ(stats.records, records.size());
  EXPECT_EQ(back.str(), jsonl.str());
}

}  // namespace
}  // namespace hbguard
