#include <gtest/gtest.h>

#include "hbguard/sim/network.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"

namespace hbguard {
namespace {

TEST(PaperScenario, ConvergesToPreferredExitViaR2) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  // Fig. 1b end state: R2 exits via its uplink; R1 and R3 forward to R2.
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r2, scenario.r2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));

  const FibEntry* r2_entry = scenario.router2().data_fib().find(scenario.prefix_p);
  ASSERT_NE(r2_entry, nullptr);
  EXPECT_EQ(r2_entry->action, FibEntry::Action::kExternal);
  EXPECT_EQ(r2_entry->external_session, PaperScenario::kUplink2);
}

TEST(PaperScenario, Fig1aOnlyR1RouteUsesR1) {
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r1();
  scenario.network->run_to_convergence();

  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r2, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r1));
}

TEST(PaperScenario, Fig1bArrivalOfBetterRouteShiftsExit) {
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r1();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r2();
  scenario.network->run_to_convergence();

  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(PaperScenario, Fig2MisconfigurationShiftsExitToR1) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  // Policy violated: R2's uplink is still up, but traffic exits via R1.
  EXPECT_TRUE(scenario.router2().uplink_up(PaperScenario::kUplink2));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r2, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r1));
}

TEST(PaperScenario, Feasibility7Lp200OnR1) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.reconfigure_r1_lp200();
  scenario.network->run_to_convergence();

  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r2, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r1));
}

TEST(PaperScenario, UplinkFailureFailsOverToR1) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.fail_uplink2();
  scenario.network->run_to_convergence();

  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r2, scenario.r1));
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r1));

  scenario.restore_uplink2();
  scenario.advertise_p_via_r2();
  scenario.network->run_to_convergence();
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
}

TEST(PaperScenario, WithdrawalRemovesRoutesEverywhere) {
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r2();
  scenario.network->run_to_convergence();
  scenario.withdraw_p_via_r2();
  scenario.network->run_to_convergence();

  EXPECT_EQ(scenario.router1().data_fib().find(scenario.prefix_p), nullptr);
  EXPECT_EQ(scenario.router2().data_fib().find(scenario.prefix_p), nullptr);
  EXPECT_EQ(scenario.router3().data_fib().find(scenario.prefix_p), nullptr);
}

TEST(PaperScenario, LinkFailureReroutesIbgpTraffic) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  // Fail the R3-R2 link: R3 must still reach the R2 exit, now via R1.
  auto link = scenario.network->topology().link_between(scenario.r3, scenario.r2);
  ASSERT_TRUE(link.has_value());
  scenario.network->set_link_state(*link, false);
  scenario.network->run_to_convergence();

  const FibEntry* r3_entry = scenario.router3().data_fib().find(scenario.prefix_p);
  ASSERT_NE(r3_entry, nullptr);
  EXPECT_EQ(r3_entry->action, FibEntry::Action::kForward);
  EXPECT_EQ(r3_entry->next_hop, scenario.r1);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

TEST(PaperScenario, CaptureStreamIsCausallyConsistent) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  const auto& records = scenario.network->capture().records();
  ASSERT_FALSE(records.empty());

  std::set<IoId> seen;
  bool found_fib = false, found_send = false, found_recv = false;
  for (const IoRecord& r : records) {
    // Causes reference strictly earlier records.
    for (IoId cause : r.true_causes) {
      EXPECT_LT(cause, r.id);
      const IoRecord* parent = scenario.network->capture().find(cause);
      ASSERT_NE(parent, nullptr);
      EXPECT_LE(parent->true_time, r.true_time)
          << parent->describe() << " -> " << r.describe();
    }
    seen.insert(r.id);
    found_fib |= r.kind == IoKind::kFibUpdate;
    found_send |= r.kind == IoKind::kSendAdvert;
    found_recv |= r.kind == IoKind::kRecvAdvert;
    // Outputs always have at least one cause; config/hardware inputs none.
    if (!r.input()) {
      EXPECT_FALSE(r.true_causes.empty()) << r.describe();
    }
  }
  EXPECT_TRUE(found_fib);
  EXPECT_TRUE(found_send);
  EXPECT_TRUE(found_recv);
}

TEST(PaperScenario, RecvAdvertsLinkBackToSends) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  const CaptureHub& hub = scenario.network->capture();
  std::size_t internal_recvs = 0;
  for (const IoRecord& r : hub.records()) {
    if (r.kind != IoKind::kRecvAdvert || r.peer == kExternalRouter) continue;
    ++internal_recvs;
    ASSERT_NE(r.message_id, 0u) << r.describe();
    const IoRecord* send = hub.find(r.message_id);
    ASSERT_NE(send, nullptr);
    EXPECT_EQ(send->kind, IoKind::kSendAdvert);
    EXPECT_EQ(send->peer, r.router);
    if (send->prefix && r.prefix) EXPECT_EQ(*send->prefix, *r.prefix);
  }
  EXPECT_GT(internal_recvs, 0u);
}

TEST(PaperScenario, ExternalAdvertsAreProvenanceLeaves) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  bool found = false;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kRecvAdvert && r.peer == kExternalRouter) {
      EXPECT_TRUE(r.true_causes.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PaperScenario, DeterministicReplay) {
  auto run = [] {
    auto scenario = PaperScenario::make();
    scenario.converge_initial();
    scenario.misconfigure_r2_lp10();
    scenario.network->run_to_convergence();
    std::vector<std::tuple<IoId, RouterId, SimTime, std::string>> trace;
    for (const IoRecord& r : scenario.network->capture().records()) {
      trace.emplace_back(r.id, r.router, r.true_time, r.describe());
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(PaperScenario, SoftReconfigDelayDefersDecision) {
  NetworkOptions options;
  auto scenario = PaperScenario::make(options);
  // Give R2 a 20 s soft-reconfiguration delay, as observed in §7.
  scenario.network->apply_config_change(scenario.r2, "enable slow soft reconfiguration",
                                        [](RouterConfig& config) {
                                          config.bgp.quirks.soft_reconfig_delay_us = 20'000'000;
                                        });
  scenario.converge_initial();
  SimTime before = scenario.network->sim().now();
  scenario.misconfigure_r2_lp10();
  // Shortly after the change nothing has moved yet (decision deferred).
  scenario.network->run_for(1'000'000);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r2));
  scenario.network->run_to_convergence();
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r1, scenario.r1));
  EXPECT_GE(scenario.network->sim().now(), before + 20'000'000);
}

TEST(PaperScenario, FibInterceptorBlocksDataPlaneOnly) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();

  // Block every subsequent FIB change on R1 (the §2 strawman).
  scenario.router1().set_fib_interceptor(
      [&](RouterId router, const Prefix&, const FibEntry*) { return router != scenario.r1; });
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  // Control plane moved to R1-exit; R1's data plane still points at R2.
  const FibEntry* control = scenario.router1().control_fib().find(scenario.prefix_p);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->action, FibEntry::Action::kExternal);
  const FibEntry* data = scenario.router1().data_fib().find(scenario.prefix_p);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->action, FibEntry::Action::kForward);
  EXPECT_EQ(data->next_hop, scenario.r2);
}

// ---------------------------------------------------------------------------
// Generated networks & workloads

TEST(Workload, TopologyGenerators) {
  EXPECT_EQ(make_chain_topology(5).link_count(), 4u);
  EXPECT_EQ(make_ring_topology(5).link_count(), 5u);
  EXPECT_EQ(make_full_mesh_topology(5).link_count(), 10u);
  Rng rng(1);
  Topology random = make_random_topology(10, 5, rng);
  EXPECT_EQ(random.router_count(), 10u);
  EXPECT_EQ(random.link_count(), 14u);  // 9 tree + 5 extra
}

TEST(Workload, GeneratedNetworkConvergesAndRoutes) {
  Rng rng(3);
  auto generated = make_ibgp_network(make_random_topology(8, 4, rng), 2);
  generated.network->run_to_convergence();

  // Advertise a prefix at the preferred uplink (uplink1, LP 110).
  Prefix p = churn_prefix(0);
  const UplinkInfo& uplink = generated.uplinks[1];
  generated.network->inject_external_advert(uplink.router, uplink.session, p,
                                            {uplink.peer_as, 65100});
  generated.network->run_to_convergence();

  // Every router must have a FIB entry for p leading to uplink.router.
  for (std::size_t i = 0; i < generated.network->router_count(); ++i) {
    const FibEntry* entry =
        generated.network->router(static_cast<RouterId>(i)).data_fib().find(p);
    ASSERT_NE(entry, nullptr) << "router " << i << " missing route";
  }
  const FibEntry* exit_entry =
      generated.network->router(uplink.router).data_fib().find(p);
  EXPECT_EQ(exit_entry->action, FibEntry::Action::kExternal);
}

TEST(Workload, ChurnRunsToCompletion) {
  Rng rng(5);
  auto generated = make_ibgp_network(make_random_topology(6, 3, rng), 2);
  generated.network->run_to_convergence();

  ChurnOptions options;
  options.prefix_count = 4;
  options.event_count = 30;
  ChurnWorkload churn(generated, options);
  EXPECT_EQ(churn.scheduled_events(), 30u);
  generated.network->run_to_convergence();

  // The capture stream grew substantially and stays causally ordered.
  const auto& records = generated.network->capture().records();
  EXPECT_GT(records.size(), 100u);
  for (const IoRecord& r : records) {
    for (IoId cause : r.true_causes) EXPECT_LT(cause, r.id);
  }
}

TEST(Workload, OspfReconvergesAfterLinkFlap) {
  auto generated = make_ibgp_network(make_ring_topology(6), 1);
  Network& net = *generated.network;
  net.run_to_convergence();

  // All routers can reach each other's loopbacks around the ring.
  const FibEntry* before = net.router(3).data_fib().find(loopback_prefix(0));
  ASSERT_NE(before, nullptr);

  net.set_link_state(0, false);  // break link R1-R2 (ids 0-1)
  net.run_to_convergence();
  const FibEntry* after = net.router(1).data_fib().find(loopback_prefix(0));
  ASSERT_NE(after, nullptr);
  // Router 1 must now reach router 0 the long way round (via router 2).
  EXPECT_EQ(after->action, FibEntry::Action::kForward);
  EXPECT_EQ(after->next_hop, 2u);

  net.set_link_state(0, true);
  net.run_to_convergence();
  const FibEntry* restored = net.router(1).data_fib().find(loopback_prefix(0));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->next_hop, 0u);
}

// ---------------------------------------------------------------------------
// Route reflection (RFC 4456 extension: no iBGP full mesh)

TEST(RouteReflection, SpokesLearnRoutesThroughReflector) {
  auto generated = make_route_reflector_network(4, 1);
  Network& net = *generated.network;
  net.run_to_convergence();

  Prefix p = churn_prefix(0);
  const UplinkInfo& uplink = generated.uplinks[0];  // on spoke S1 (router 1)
  net.inject_external_advert(uplink.router, uplink.session, p, {uplink.peer_as, 65100});
  net.run_to_convergence();

  // Every spoke (peering only with the reflector) must have the route.
  for (RouterId r = 0; r < static_cast<RouterId>(net.router_count()); ++r) {
    const FibEntry* entry = net.router(r).data_fib().find(p);
    ASSERT_NE(entry, nullptr) << "router " << r << " missing reflected route";
    if (r == uplink.router) {
      EXPECT_EQ(entry->action, FibEntry::Action::kExternal);
    } else {
      // All traffic funnels through the star toward the exit spoke.
      EXPECT_EQ(entry->action, FibEntry::Action::kForward);
    }
  }
  // The reflector forwards to the exit spoke directly.
  EXPECT_EQ(net.router(0).data_fib().find(p)->next_hop, uplink.router);
}

TEST(RouteReflection, ReflectorPreservesNextHop) {
  auto generated = make_route_reflector_network(3, 1);
  Network& net = *generated.network;
  net.run_to_convergence();
  Prefix p = churn_prefix(1);
  const UplinkInfo& uplink = generated.uplinks[0];
  net.inject_external_advert(uplink.router, uplink.session, p, {uplink.peer_as, 65100});
  net.run_to_convergence();

  // A non-exit spoke's BGP route must carry the exit spoke as next hop
  // (the reflector did not rewrite it to itself).
  const LocRibEntry* entry = net.router(3).bgp().loc_rib_entry(p);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->route.attrs.next_hop.external);
  EXPECT_EQ(entry->route.attrs.next_hop.router, uplink.router);
  // And the reflection metadata is stamped.
  EXPECT_EQ(entry->route.attrs.originator, uplink.router);
  ASSERT_EQ(entry->route.attrs.cluster_list.size(), 1u);
  EXPECT_EQ(entry->route.attrs.cluster_list[0], 0u);  // the reflector
}

TEST(RouteReflection, WithdrawPropagatesThroughReflector) {
  auto generated = make_route_reflector_network(4, 1);
  Network& net = *generated.network;
  net.run_to_convergence();
  Prefix p = churn_prefix(2);
  const UplinkInfo& uplink = generated.uplinks[0];
  net.inject_external_advert(uplink.router, uplink.session, p, {uplink.peer_as, 65100});
  net.run_to_convergence();
  ASSERT_NE(net.router(4).data_fib().find(p), nullptr);

  net.inject_external_advert(uplink.router, uplink.session, p, {}, /*withdraw=*/true);
  net.run_to_convergence();
  for (RouterId r = 0; r < static_cast<RouterId>(net.router_count()); ++r) {
    EXPECT_EQ(net.router(r).data_fib().find(p), nullptr) << "router " << r;
  }
}

TEST(RouteReflection, PreferredUplinkWinsAcrossClients) {
  // Two uplinks on different spokes; LP 110 (uplink1) beats LP 100
  // (uplink0). With reflection, every spoke converges on the better exit.
  auto generated = make_route_reflector_network(4, 2);
  Network& net = *generated.network;
  net.run_to_convergence();
  Prefix p = churn_prefix(3);
  for (const UplinkInfo& uplink : generated.uplinks) {
    net.inject_external_advert(uplink.router, uplink.session, p, {uplink.peer_as, 65100});
  }
  net.run_to_convergence();

  RouterId preferred_exit = generated.uplinks[1].router;
  const FibEntry* exit_entry = net.router(preferred_exit).data_fib().find(p);
  ASSERT_NE(exit_entry, nullptr);
  EXPECT_EQ(exit_entry->action, FibEntry::Action::kExternal);
  // The other uplink spoke routes across the star to the preferred exit.
  RouterId other = generated.uplinks[0].router;
  const FibEntry* other_entry = net.router(other).data_fib().find(p);
  ASSERT_NE(other_entry, nullptr);
  EXPECT_EQ(other_entry->action, FibEntry::Action::kForward);
  EXPECT_EQ(other_entry->next_hop, 0u);  // via the hub
}

}  // namespace
}  // namespace hbguard
