// Shared test fixtures: scenario policy sets, FIB entry makers, data-plane
// digests, and the seeded churn-network guarded-run harness.
//
// Everything here is deterministic for a given seed — the differential
// harnesses (test_fault_injection.cpp, test_distributed_hbg.cpp) rely on
// replaying the *identical* network, churn and fault plan in every
// configuration they compare.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "hbguard/core/guard.hpp"
#include "hbguard/fault/injector.hpp"
#include "hbguard/fault/plan.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {

/// The three policies of the paper's Fig. 2 walkthrough, bound to a
/// PaperScenario's routers and prefix.
inline PolicyList paper_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

/// FIB entry forwarding `prefix` to a neighbouring router.
inline FibEntry forward_entry(const char* prefix, RouterId next_hop) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kForward;
  e.next_hop = next_hop;
  return e;
}

/// FIB entry exiting `prefix` through an external session.
inline FibEntry external_entry(const char* prefix, const char* session) {
  FibEntry e;
  e.prefix = *Prefix::parse(prefix);
  e.action = FibEntry::Action::kExternal;
  e.external_session = session;
  return e;
}

/// Live data-plane content, excluding as_of (compared runs end at slightly
/// different virtual times because channel deliveries are events).
inline std::string content_digest(const DataPlaneSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [router, view] : snapshot.routers) {
    out << "R" << router << "\n";
    for (const FibEntry& entry : view.entries) out << "  " << entry.describe() << "\n";
    for (const std::string& session : view.failed_uplinks) out << "  down:" << session << "\n";
  }
  return out.str();
}

/// One ReachabilityPolicy per non-zero router's loopback. Loopbacks are
/// originated into OSPF and ignore route churn, so the only legitimate
/// violations are the ones control-plane faults cause.
inline PolicyList loopback_policies(std::size_t router_count) {
  PolicyList policies;
  for (RouterId r = 1; r < router_count; ++r) {
    policies.push_back(std::make_shared<ReachabilityPolicy>(0, loopback_prefix(r)));
  }
  return policies;
}

struct GuardedRun {
  GuardReport report;
  std::string final_data_plane;
  bool degraded_at_end = false;
  std::string health_states;  // per-router, for failure diagnostics
};

/// Everything run_guarded varies beyond the fault plan itself.
struct GuardedRunOptions {
  bool faulty = false;        ///< install delivery channel + play capture faults
  unsigned threads = 1;       ///< guard worker threads
  std::uint64_t seed = 13;    ///< topology/churn seed
  std::size_t routers = 8;
  std::size_t churn_events = 40;
  std::size_t distributed_shards = 0;  ///< GuardOptions::distributed_shards
  /// Last-chance hook over the assembled GuardOptions (traffic scheduling,
  /// incremental toggles, ...) before the Guard is constructed.
  std::function<void(GuardOptions&)> customize;
  /// Post-run hook over the finished Guard, for state GuardedRun does not
  /// carry (scheduler stats, streaming ECs, ...).
  std::function<void(const Guard&)> inspect;
};

/// One guarded run over the same seeded topology + churn. `faulty` installs
/// the delivery channel + stream health and plays the full plan; otherwise
/// the run is the oracle: identical control-plane faults, pristine capture.
inline GuardedRun run_guarded(const FaultPlan& plan, const GuardedRunOptions& run_options) {
  Rng topo_rng(run_options.seed);
  NetworkOptions options;
  options.seed = run_options.seed;
  auto generated =
      make_ibgp_network(make_waxman_topology(run_options.routers, topo_rng), 2, options);
  Network& net = *generated.network;
  net.run_to_convergence();

  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = run_options.churn_events;
  churn_options.config_change_probability = 0;
  churn_options.seed = run_options.seed + 1;
  ChurnWorkload churn(generated, churn_options);

  FaultInjectorOptions injector_options;
  // Stretch the degraded window past one scan interval so every outage is
  // observed by at least one scan.
  injector_options.resync_delay_us = 120'000;
  if (!run_options.faulty) {
    injector_options.install_channel = false;
    injector_options.enable_health = false;
  }
  FaultInjector injector(net, run_options.faulty ? plan : plan.control_only(),
                         injector_options);
  injector.arm();

  GuardOptions guard_options;
  guard_options.repair = RepairMode::kReport;
  guard_options.num_threads = run_options.threads;
  guard_options.distributed_shards = run_options.distributed_shards;
  if (run_options.customize) run_options.customize(guard_options);
  Guard guard(net, loopback_policies(net.router_count()), guard_options);

  // Scan through the fault window, then drain and let grace windows expire.
  for (int i = 0; i < 34; ++i) {
    net.run_for(100'000);
    guard.scan();
  }
  net.run_to_convergence();
  for (int i = 0; i < 3; ++i) {
    net.run_for(200'000);
    guard.scan();
  }

  if (run_options.inspect) run_options.inspect(guard);

  GuardedRun out;
  out.report = guard.report();
  out.final_data_plane = content_digest(take_instant_snapshot(net));
  const StreamHealthTracker* health = net.capture().health();
  out.degraded_at_end = health != nullptr && health->any_degraded();
  if (health != nullptr) {
    std::ostringstream states;
    for (RouterId r = 0; r < net.router_count(); ++r) {
      states << "R" << r << "=" << to_string(health->state(r)) << " ";
    }
    out.health_states = states.str();
  }
  return out;
}

/// Back-compat shim for call sites predating GuardedRunOptions.
inline GuardedRun run_guarded(const FaultPlan& plan, bool faulty, unsigned threads,
                              std::uint64_t seed, std::size_t routers = 8,
                              std::size_t churn_events = 40) {
  GuardedRunOptions options;
  options.faulty = faulty;
  options.threads = threads;
  options.seed = seed;
  options.routers = routers;
  options.churn_events = churn_events;
  return run_guarded(plan, options);
}

}  // namespace hbguard
