#include <gtest/gtest.h>

#include "hbguard/dverify/distributed.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/naive.hpp"

namespace hbguard {
namespace {

PolicyList paper_policies(const PaperScenario& scenario) {
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));
  return policies;
}

TEST(Distributed, SameVerdictsAsCentralized) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  auto snapshot = take_instant_snapshot(*scenario.network);
  auto policies = paper_policies(scenario);
  Verifier central(policies);
  DistributedVerifier distributed(scenario.network->topology(), policies);

  auto central_result = central.verify(snapshot);
  VerifyCost cost;
  auto distributed_result = distributed.verify(snapshot, &cost);
  EXPECT_EQ(central_result.violations.size(), distributed_result.violations.size());
  EXPECT_FALSE(distributed_result.clean());
}

TEST(Distributed, CostModelShapes) {
  // A3's claim: distributed verification sends more (smaller) messages and
  // bounds per-node work below the centralized collector's, at the price of
  // multi-hop latency.
  Rng rng(21);
  auto generated = make_ibgp_network(make_random_topology(12, 6, rng), 2);
  generated.network->run_to_convergence();
  for (std::size_t i = 0; i < 6; ++i) {
    const UplinkInfo& uplink = generated.uplinks[i % generated.uplinks.size()];
    generated.network->inject_external_advert(uplink.router, uplink.session, churn_prefix(i),
                                              {uplink.peer_as, 65100});
  }
  generated.network->run_to_convergence();

  PolicyList policies;
  for (std::size_t i = 0; i < 6; ++i) {
    policies.push_back(std::make_shared<LoopFreedomPolicy>(churn_prefix(i)));
    policies.push_back(std::make_shared<BlackholeFreedomPolicy>(churn_prefix(i)));
  }
  DistributedVerifier verifier(generated.network->topology(), policies);
  auto snapshot = take_instant_snapshot(*generated.network);

  VerifyCost distributed;
  auto result = verifier.verify(snapshot, &distributed);
  EXPECT_TRUE(result.clean());
  VerifyCost centralized = verifier.centralized_cost(snapshot);

  EXPECT_LT(distributed.max_node_work, centralized.max_node_work)
      << "distribution must spread the verification work";
  EXPECT_GT(distributed.messages, centralized.messages)
      << "partial results mean more, smaller messages";
  EXPECT_GE(distributed.latency_us, centralized.latency_us)
      << "hop-by-hop result passing costs latency";
  EXPECT_EQ(distributed.total_work, centralized.total_work)
      << "the same lookups happen either way";
}

TEST(Distributed, PolicyPrefixesDeduplicated) {
  auto scenario = PaperScenario::make();
  auto policies = paper_policies(scenario);
  DistributedVerifier verifier(scenario.network->topology(), policies);
  EXPECT_EQ(verifier.policy_prefixes().size(), 1u);  // all three reference P
}

TEST(Distributed, CleanSnapshotZeroViolationsNonzeroCost) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto snapshot = take_instant_snapshot(*scenario.network);
  DistributedVerifier verifier(scenario.network->topology(), paper_policies(scenario));
  VerifyCost cost;
  auto result = verifier.verify(snapshot, &cost);
  EXPECT_TRUE(result.clean());
  EXPECT_GT(cost.total_work, 0u);
  EXPECT_GT(cost.messages, 0u);  // R1/R3 ship partial results toward R2
}

}  // namespace
}  // namespace hbguard
