#include <gtest/gtest.h>

#include "hbguard/config/parser.hpp"
#include "hbguard/sim/network.hpp"
#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

Topology three_routers() {
  Topology topology;
  topology.add_router("R1", 65000);
  topology.add_router("R2", 65000);
  topology.add_router("R3", 65000);
  topology.add_link(0, 1);
  topology.add_link(1, 2);
  return topology;
}

constexpr const char* kFullConfig = R"(
# R1's configuration
router bgp 65000
  network 203.0.113.0/24
  add-path
  default-local-pref 150
  soft-reconfig-delay 20s
  always-compare-med
  no-prefer-oldest
  neighbor R2 remote-as 65000
  neighbor R2 route-reflector-client
  neighbor R3 remote-as 65000
  neighbor uplink1 external remote-as 64501
  neighbor uplink1 import lp-uplink1
  neighbor uplink1 export out-map
router ospf
  network 10.255.0.1/32
  cost 1 7
ip route 10.9.0.0/16 via R3
ip route 192.0.2.0/24 drop
ip route 0.0.0.0/0 external
redistribute static into bgp
redistribute ospf into bgp policy only-loopbacks
route-map lp-uplink1
  clause permit
    match prefix 0.0.0.0/0
    match neighbor uplink1
    set local-pref 20
    set med 5
    prepend 2
  clause deny
    match prefix-exact 192.168.0.0/16
  default deny
)";

TEST(ConfigParser, ParsesFullConfig) {
  auto topology = three_routers();
  auto result = parse_router_config(kFullConfig, topology);
  for (const auto& error : result.errors) ADD_FAILURE() << error.describe();
  ASSERT_TRUE(result.ok());

  const RouterConfig& config = result.config;
  EXPECT_TRUE(config.bgp.enabled);
  EXPECT_TRUE(config.bgp.add_path);
  EXPECT_EQ(config.bgp.default_local_pref, 150u);
  EXPECT_EQ(config.bgp.quirks.soft_reconfig_delay_us, 20'000'000);
  EXPECT_TRUE(config.bgp.quirks.always_compare_med);
  EXPECT_FALSE(config.bgp.quirks.prefer_oldest_route);
  ASSERT_EQ(config.bgp.originated.size(), 1u);
  EXPECT_EQ(config.bgp.originated[0].to_string(), "203.0.113.0/24");

  ASSERT_EQ(config.bgp.sessions.size(), 3u);
  const BgpSessionConfig* r2 = config.bgp.find_session("R2");
  ASSERT_NE(r2, nullptr);
  EXPECT_FALSE(r2->external);
  EXPECT_EQ(r2->peer, 1u);
  EXPECT_TRUE(r2->rr_client);
  const BgpSessionConfig* uplink = config.bgp.find_session("uplink1");
  ASSERT_NE(uplink, nullptr);
  EXPECT_TRUE(uplink->external);
  EXPECT_EQ(uplink->peer_as, 64501u);
  EXPECT_EQ(uplink->import_policy, "lp-uplink1");
  EXPECT_EQ(uplink->export_policy, "out-map");

  EXPECT_TRUE(config.ospf.enabled);
  ASSERT_EQ(config.ospf.originated.size(), 1u);
  EXPECT_EQ(config.ospf.cost_override.at(1), 7u);

  ASSERT_EQ(config.statics.size(), 3u);
  EXPECT_EQ(config.statics[0].next_hop, 2u);
  EXPECT_FALSE(config.statics[1].next_hop.has_value());
  EXPECT_EQ(config.statics[2].next_hop, kExternalRouter);

  ASSERT_EQ(config.redistributions.size(), 2u);
  EXPECT_EQ(config.redistributions[1].policy, "only-loopbacks");

  const RouteMap* map = config.find_route_map("lp-uplink1");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 2u);
  EXPECT_EQ(map->clauses[0].set_local_pref, 20u);
  EXPECT_EQ(map->clauses[0].set_med, 5u);
  EXPECT_EQ(map->clauses[0].prepend_count, 2);
  EXPECT_EQ(map->clauses[0].match_neighbor, "uplink1");
  EXPECT_TRUE(map->clauses[1].match_exact);
  EXPECT_EQ(map->clauses[1].action, RouteMapClause::Action::kDeny);
  EXPECT_FALSE(map->default_permit);
}

TEST(ConfigParser, RoundTripThroughRenderer) {
  auto topology = three_routers();
  auto first = parse_router_config(kFullConfig, topology);
  ASSERT_TRUE(first.ok());
  std::string rendered = render_router_config(first.config, topology);
  auto second = parse_router_config(rendered, topology);
  for (const auto& error : second.errors) ADD_FAILURE() << error.describe() << "\n" << rendered;
  ASSERT_TRUE(second.ok());
  // Semantically identical after a round trip.
  EXPECT_EQ(render_router_config(second.config, topology), rendered);
}

TEST(ConfigParser, ReportsErrorsWithLineNumbers) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
router bgp 65000
  neighbor R9 remote-as 65000
  bogus-statement here
)", topology);
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_NE(result.errors[0].message.find("unknown router"), std::string::npos);
  EXPECT_EQ(result.errors[1].line, 4u);
}

TEST(ConfigParser, RejectsStatementOutsideSection) {
  auto topology = three_routers();
  auto result = parse_router_config("network 10.0.0.0/8\n", topology);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("outside any section"), std::string::npos);
}

TEST(ConfigParser, RejectsNeighborOptionsBeforeDeclaration) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
router bgp 65000
  neighbor R2 import some-map
)", topology);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("before its remote-as"), std::string::npos);
}

TEST(ConfigParser, RejectsMalformedPrefixAndDuration) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
router bgp 65000
  network 10.0.0.0/40
  soft-reconfig-delay soon
)", topology);
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(ConfigParser, CommunitiesParseAndRender) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
route-map tag-and-filter
  clause permit
    match community 65000:100
    clear-communities
    set community 65000:666
    set community 65000:667
  default deny
)", topology);
  for (const auto& error : result.errors) ADD_FAILURE() << error.describe();
  ASSERT_TRUE(result.ok());
  const RouteMap* map = result.config.find_route_map("tag-and-filter");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 1u);
  EXPECT_EQ(map->clauses[0].match_community, make_community(65000, 100));
  EXPECT_TRUE(map->clauses[0].clear_communities);
  ASSERT_EQ(map->clauses[0].add_communities.size(), 2u);
  EXPECT_EQ(map->clauses[0].add_communities[1], make_community(65000, 667));

  // Round trip.
  std::string rendered = render_router_config(result.config, topology);
  auto again = parse_router_config(rendered, topology);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(render_router_config(again.config, topology), rendered);
}

TEST(ConfigParser, RejectsBadCommunity) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
route-map m
  clause permit
    match community 70000:5
)", topology);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("bad community"), std::string::npos);
}

TEST(ConfigParser, DurationUnits) {
  auto topology = three_routers();
  auto parse_delay = [&](const char* text) {
    std::string config = std::string("router bgp 65000\n  soft-reconfig-delay ") + text + "\n";
    auto result = parse_router_config(config, topology);
    EXPECT_TRUE(result.ok());
    return result.config.bgp.quirks.soft_reconfig_delay_us;
  };
  EXPECT_EQ(parse_delay("25s"), 25'000'000);
  EXPECT_EQ(parse_delay("250ms"), 250'000);
  EXPECT_EQ(parse_delay("1500us"), 1'500);
  EXPECT_EQ(parse_delay("42"), 42);
}

TEST(ConfigParser, CommentsAndBlankLinesIgnored) {
  auto topology = three_routers();
  auto result = parse_router_config(R"(
# full line comment

router bgp 65000   # trailing comment
  add-path         # another
)", topology);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.config.bgp.add_path);
}

TEST(ConfigParser, ParsedConfigDrivesARealNetwork) {
  // End to end: build the paper network from DSL text instead of C++.
  Topology topology;
  topology.add_router("R1", 65000);
  topology.add_router("R2", 65000);
  topology.add_router("R3", 65000);
  topology.add_link(0, 1, 2000);
  topology.add_link(0, 2, 2000);
  topology.add_link(1, 2, 2000);

  const char* r1_text = R"(
router bgp 65000
  neighbor R2 remote-as 65000
  neighbor R3 remote-as 65000
  neighbor uplink1 external remote-as 64501
  neighbor uplink1 import lp1
router ospf
  network 10.255.0.0/32
route-map lp1
  clause permit
    set local-pref 20
)";
  const char* r2_text = R"(
router bgp 65000
  neighbor R1 remote-as 65000
  neighbor R3 remote-as 65000
  neighbor uplink2 external remote-as 64502
  neighbor uplink2 import lp2
router ospf
  network 10.255.0.1/32
route-map lp2
  clause permit
    set local-pref 30
)";
  const char* r3_text = R"(
router bgp 65000
  neighbor R1 remote-as 65000
  neighbor R2 remote-as 65000
router ospf
  network 10.255.0.2/32
)";

  auto net = std::make_unique<Network>(std::move(topology));
  for (auto [id, text] : {std::pair<RouterId, const char*>{0, r1_text}, {1, r2_text},
                          {2, r3_text}}) {
    auto parsed = parse_router_config(text, net->topology());
    ASSERT_TRUE(parsed.ok());
    net->set_initial_config(id, std::move(parsed.config));
  }
  net->start();
  net->run_to_convergence();

  Prefix p = *Prefix::parse("203.0.113.0/24");
  net->inject_external_advert(0, "uplink1", p, {64501, 64999});
  net->inject_external_advert(1, "uplink2", p, {64502, 64999});
  net->run_to_convergence();

  // LP 30 (uplink2 on R2) must win, exactly like the hand-built scenario.
  const FibEntry* r1 = net->router(0).data_fib().find(p);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->action, FibEntry::Action::kForward);
  EXPECT_EQ(r1->next_hop, 1u);
  const FibEntry* r2 = net->router(1).data_fib().find(p);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->action, FibEntry::Action::kExternal);
}

}  // namespace
}  // namespace hbguard
