// Differential tests pinning StreamingEquivalenceClasses byte-identical to
// compute_equivalence_classes.
//
// The streaming maintainer is only allowed to exist because its
// materialized classes are indistinguishable from the batch computation at
// every churn cut point — the verifier memo cache and the early-block
// model key on the signature strings, so a single divergent byte changes
// guard behaviour. Every test here drives churn through
// Snapshot::apply_fib_update + SnapshotDelta exactly as Guard::scan() does,
// then compares the full materialization (signatures, interval lists,
// representatives, sizes, class order) against a scratch batch build, at
// serial and parallel pool sizes.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "fixtures.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/thread_pool.hpp"
#include "hbguard/verify/eqclass.hpp"

namespace hbguard {
namespace {

void expect_identical(const StreamingEquivalenceClasses& streaming,
                      const DataPlaneSnapshot& snapshot, ThreadPool* pool,
                      const char* where) {
  EquivalenceClasses batch = compute_equivalence_classes(snapshot, pool);
  EquivalenceClasses live = streaming.classes();
  ASSERT_EQ(live.atomic_intervals, batch.atomic_intervals) << where;
  ASSERT_EQ(live.classes.size(), batch.classes.size()) << where;
  for (std::size_t i = 0; i < batch.classes.size(); ++i) {
    EXPECT_EQ(live.classes[i].signature, batch.classes[i].signature)
        << where << " class " << i;
    EXPECT_EQ(live.classes[i].intervals, batch.classes[i].intervals)
        << where << " class " << i;
    EXPECT_EQ(live.classes[i].representative.bits(), batch.classes[i].representative.bits())
        << where << " class " << i;
    EXPECT_EQ(live.classes[i].size, batch.classes[i].size) << where << " class " << i;
  }
}

FibEntry entry_for(const Prefix& prefix, std::mt19937_64& rng, std::size_t router_count) {
  FibEntry entry;
  entry.prefix = prefix;
  entry.source = Protocol::kEbgp;
  switch (rng() % 4) {
    case 0:
      entry.action = FibEntry::Action::kForward;
      entry.next_hop = static_cast<RouterId>(rng() % router_count);
      break;
    case 1:
      entry.action = FibEntry::Action::kExternal;
      entry.external_session = "peer" + std::to_string(rng() % 3);
      break;
    case 2:
      entry.action = FibEntry::Action::kLocal;
      break;
    default:
      entry.action = FibEntry::Action::kDrop;
      break;
  }
  return entry;
}

class StreamingEqclassDifferential : public ::testing::TestWithParam<unsigned> {
 protected:
  std::unique_ptr<ThreadPool> pool_ =
      GetParam() <= 1 ? nullptr : std::make_unique<ThreadPool>(GetParam());
};

TEST_P(StreamingEqclassDifferential, RandomChurnRoundsStayByteIdentical) {
  constexpr std::size_t kRouters = 5;
  constexpr std::size_t kPrefixPool = 120;  // full_table scheme: /19s + nested /24s
  std::mt19937_64 rng(0xD1FF + GetParam());

  DataPlaneSnapshot snapshot;
  for (std::size_t r = 0; r < kRouters; ++r) snapshot.routers[static_cast<RouterId>(r)];

  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "empty");

  for (int round = 0; round < 40; ++round) {
    SnapshotDelta delta;
    delta.full = false;
    std::size_t updates = 1 + rng() % 12;
    for (std::size_t u = 0; u < updates; ++u) {
      Prefix prefix = full_table_prefix(rng() % kPrefixPool);
      auto router = static_cast<RouterId>(rng() % kRouters);
      bool withdraw = (rng() % 3) == 0;
      FibEntry entry = entry_for(prefix, rng, kRouters);
      snapshot.apply_fib_update(router, entry, withdraw);
      delta.changed_prefixes.insert(prefix);
    }
    streaming.update(snapshot, delta, pool_.get());
    expect_identical(streaming, snapshot, pool_.get(),
                     ("round " + std::to_string(round)).c_str());
  }
  EXPECT_GT(streaming.stats().incremental_updates, 0u);
  EXPECT_GT(streaming.stats().reused_intervals, 0u);
}

TEST_P(StreamingEqclassDifferential, SplitsAndMergesTrackNestedPrefixes) {
  DataPlaneSnapshot snapshot;
  snapshot.routers[0];
  snapshot.routers[1];
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());

  // Covering /19 appears: one boundary pair.
  Prefix covering = full_table_prefix(0);
  Prefix nested = full_table_prefix(1);
  SnapshotDelta delta;
  delta.full = false;
  delta.changed_prefixes = {covering};
  snapshot.apply_fib_update(0, forward_entry(covering.to_string().c_str(), 1), false);
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "covering installed");
  std::uint64_t splits_before = streaming.stats().splits;

  // Nested /24 splits the covering interval.
  delta.changed_prefixes = {nested};
  snapshot.apply_fib_update(1, external_entry(nested.to_string().c_str(), "up"), false);
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "nested installed");
  EXPECT_GT(streaming.stats().splits, splits_before);

  // Withdrawing the nested prefix merges the split intervals back.
  std::uint64_t merges_before = streaming.stats().merges;
  FibEntry withdraw_entry;
  withdraw_entry.prefix = nested;
  delta.changed_prefixes = {nested};
  snapshot.apply_fib_update(1, withdraw_entry, true);
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "nested withdrawn");
  EXPECT_GT(streaming.stats().merges, merges_before);
}

TEST_P(StreamingEqclassDifferential, InPlaceReplacementRedirtysOnlyThatPrefix) {
  DataPlaneSnapshot snapshot;
  snapshot.routers[0];
  snapshot.routers[1];
  snapshot.routers[2];
  for (std::size_t i = 0; i < 6; ++i) {
    Prefix prefix = full_table_prefix(i);
    snapshot.apply_fib_update(0, forward_entry(prefix.to_string().c_str(), 1), false);
  }
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "seeded");

  // Same prefix set, different next hop: boundaries must not move.
  std::size_t intervals_before = streaming.atomic_intervals();
  Prefix target = full_table_prefix(2);
  SnapshotDelta delta;
  delta.full = false;
  delta.changed_prefixes = {target};
  snapshot.apply_fib_update(0, forward_entry(target.to_string().c_str(), 2), false);
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "replaced");
  EXPECT_EQ(streaming.atomic_intervals(), intervals_before);
}

TEST_P(StreamingEqclassDifferential, SupersetDeltaWithUntouchedPrefixesIsExact) {
  DataPlaneSnapshot snapshot;
  snapshot.routers[0];
  snapshot.routers[1];
  for (std::size_t i = 0; i < 4; ++i) {
    Prefix prefix = full_table_prefix(i);
    snapshot.apply_fib_update(0, forward_entry(prefix.to_string().c_str(), 1), false);
  }
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());

  // Delta names prefixes that did not change (and one absent everywhere):
  // a superset of the actual change set must still converge byte-exactly.
  SnapshotDelta delta;
  delta.full = false;
  delta.changed_prefixes = {full_table_prefix(0), full_table_prefix(1),
                            full_table_prefix(50)};
  snapshot.apply_fib_update(0, forward_entry(full_table_prefix(0).to_string().c_str(), 0),
                            false);
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "superset delta");
}

TEST_P(StreamingEqclassDifferential, FullDeltaFallsBackToRebuild) {
  DataPlaneSnapshot snapshot;
  snapshot.routers[0];
  snapshot.apply_fib_update(0, forward_entry("10.0.0.0/8", 0), false);
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());
  std::uint64_t rebuilds_before = streaming.stats().rebuilds;

  snapshot.routers[0].entries.clear();
  snapshot.routers[0].failed_uplinks.insert("up0");  // not a prefix change
  snapshot.invalidate_lookup_cache();
  SnapshotDelta full;  // defaults to full = true
  streaming.update(snapshot, full, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "full delta");
  EXPECT_GT(streaming.stats().rebuilds, rebuilds_before);
}

TEST_P(StreamingEqclassDifferential, RouterSetChangeFallsBackToRebuild) {
  DataPlaneSnapshot snapshot;
  snapshot.routers[0];
  snapshot.apply_fib_update(0, forward_entry("10.0.0.0/8", 0), false);
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool_.get());

  // A new router appears: non-full delta can no longer be trusted (row
  // shape changed) — the maintainer must rebuild, not corrupt rows.
  snapshot.routers[7];
  SnapshotDelta delta;
  delta.full = false;
  delta.changed_prefixes = {*Prefix::parse("10.0.0.0/8")};
  streaming.update(snapshot, delta, pool_.get());
  expect_identical(streaming, snapshot, pool_.get(), "router added");
}

TEST_P(StreamingEqclassDifferential, ChurnConservesTrafficWeightExactly) {
  // Property fuzz for the weighted-EC invariant: however the interval
  // structure splits and merges under churn, the sum of class
  // traffic_weight equals the sum of weight_of over the snapshot's present
  // prefixes — exactly, in integers — and streaming matches batch.
  constexpr std::size_t kRouters = 4;
  constexpr std::size_t kPrefixPool = 96;
  std::mt19937_64 rng(0x7EAF + GetParam());

  auto weights = std::make_shared<TrafficWeights>();
  for (std::size_t i = 0; i < kPrefixPool; ++i) {
    // Mix of heavy, light and zero-demand prefixes.
    std::uint64_t w = (i % 7 == 0) ? 0 : (rng() % 1'000'000);
    weights->set(full_table_prefix(i), w);
  }

  DataPlaneSnapshot snapshot;
  for (std::size_t r = 0; r < kRouters; ++r) snapshot.routers[static_cast<RouterId>(r)];
  StreamingEquivalenceClasses streaming;
  streaming.set_traffic_weights(weights);
  streaming.rebuild(snapshot, pool_.get());

  auto check = [&](const char* where) {
    EquivalenceClasses live = streaming.classes();
    EquivalenceClasses batch = compute_equivalence_classes(snapshot, weights, pool_.get());
    ASSERT_EQ(live.classes.size(), batch.classes.size()) << where;
    std::uint64_t live_total = 0;
    for (std::size_t i = 0; i < live.classes.size(); ++i) {
      EXPECT_EQ(live.classes[i].traffic_weight, batch.classes[i].traffic_weight)
          << where << " class " << i;
      live_total += live.classes[i].traffic_weight;
    }
    std::uint64_t expected = 0;
    for (const Prefix& prefix : snapshot.all_prefixes()) {
      expected += weights->weight_of(prefix);
    }
    EXPECT_EQ(live_total, expected) << where;
  };
  check("empty");

  for (int round = 0; round < 30; ++round) {
    SnapshotDelta delta;
    delta.full = false;
    std::size_t updates = 1 + rng() % 10;
    for (std::size_t u = 0; u < updates; ++u) {
      Prefix prefix = full_table_prefix(rng() % kPrefixPool);
      auto router = static_cast<RouterId>(rng() % kRouters);
      bool withdraw = (rng() % 3) == 0;
      snapshot.apply_fib_update(router, entry_for(prefix, rng, kRouters), withdraw);
      delta.changed_prefixes.insert(prefix);
    }
    streaming.update(snapshot, delta, pool_.get());
    check(("round " + std::to_string(round)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, StreamingEqclassDifferential,
                         ::testing::Values(1u, 2u, 8u));

// ---- Guard integration ----------------------------------------------------

TEST(StreamingEqclassGuard, ReportDigestIdenticalWithFlagOnAndOff) {
  auto run = [](bool streaming) {
    auto scenario = PaperScenario::make();
    scenario.converge_initial();
    GuardOptions options;
    options.streaming_eqclass = streaming;
    Guard guard(*scenario.network, paper_policies(scenario), options);
    scenario.misconfigure_r2_lp10();
    GuardReport report = guard.run();
    return report.digest();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(StreamingEqclassGuard, MaintainedStateIsReadyAndBatchIdentical) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.streaming_eqclass = true;
  Guard guard(*scenario.network, paper_policies(scenario), options);
  scenario.misconfigure_r2_lp10();
  guard.run();
  ASSERT_TRUE(guard.streaming_classes().ready());
  EquivalenceClasses classes = guard.streaming_classes().classes();
  EXPECT_GT(classes.classes.size(), 0u);
  // The guard ran incremental scans: the state must have been maintained
  // by deltas, not rebuilt every scan.
  EXPECT_GT(guard.streaming_classes().stats().incremental_updates, 0u);
}

}  // namespace
}  // namespace hbguard
