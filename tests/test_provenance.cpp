#include <gtest/gtest.h>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/provenance/distributed_hbg.hpp"
#include "hbguard/provenance/root_cause.hpp"
#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

class ProvenanceFixture : public ::testing::Test {
 protected:
  ProvenanceFixture() : scenario_(PaperScenario::make()) {
    scenario_.converge_initial();
    bad_version_ = scenario_.misconfigure_r2_lp10();
    scenario_.network->run_to_convergence();
    graph_ = HbgBuilder::build(scenario_.network->capture().records(), RuleMatchingInference());
    fault_ = find_fault();
  }

  IoId find_fault() const {
    IoId result = kNoIo;
    for (const IoRecord& r : scenario_.network->capture().records()) {
      if (r.kind == IoKind::kFibUpdate && r.router == scenario_.r1 && r.prefix.has_value() &&
          *r.prefix == scenario_.prefix_p && !r.withdraw &&
          r.detail.find("ext(") != std::string::npos) {
        result = r.id;
      }
    }
    return result;
  }

  PaperScenario scenario_;
  ConfigVersion bad_version_ = kNoVersion;
  HappensBeforeGraph graph_;
  IoId fault_ = kNoIo;
};

TEST_F(ProvenanceFixture, ConfigChangeRankedFirst) {
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph_, fault_);
  ASSERT_FALSE(result.causes.empty());
  EXPECT_EQ(result.causes.front().kind, CauseKind::kConfigChange);
  EXPECT_EQ(result.causes.front().record.config_version, bad_version_);
}

TEST_F(ProvenanceFixture, RevertibleFindsTheBadChange) {
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph_, fault_);
  const RootCause* revertible = result.revertible();
  ASSERT_NE(revertible, nullptr);
  EXPECT_EQ(revertible->record.config_version, bad_version_);
  EXPECT_EQ(revertible->record.router, scenario_.r2);
}

TEST_F(ProvenanceFixture, ChainConnectsCauseToFault) {
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph_, fault_);
  const RootCause* cause = result.revertible();
  ASSERT_NE(cause, nullptr);
  ASSERT_GE(cause->chain.size(), 2u);
  EXPECT_EQ(cause->chain.front(), cause->io);
  EXPECT_EQ(cause->chain.back(), fault_);
}

TEST_F(ProvenanceFixture, AnalyzeAllMergesDuplicates) {
  // Two faults with the same root cause yield one deduplicated cause entry
  // for the config change.
  IoId second_fault = kNoIo;
  for (const IoRecord& r : scenario_.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario_.r3 && r.prefix.has_value() &&
        *r.prefix == scenario_.prefix_p) {
      second_fault = r.id;
    }
  }
  ASSERT_NE(second_fault, kNoIo);
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze_all(graph_, {fault_, second_fault});
  std::size_t config_causes = 0;
  for (const RootCause& cause : result.causes) {
    if (cause.record.config_version == bad_version_) ++config_causes;
  }
  EXPECT_EQ(config_causes, 1u);
}

TEST_F(ProvenanceFixture, RenderMentionsTheChange) {
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph_, fault_);
  std::string report = RootCauseAnalyzer::render(graph_, result);
  EXPECT_NE(report.find("config change"), std::string::npos);
  EXPECT_NE(report.find("local-pref 10"), std::string::npos);
}

TEST_F(ProvenanceFixture, GroundTruthOracleAgrees) {
  auto truth = HbgBuilder::build_ground_truth(scenario_.network->capture().records());
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(truth, fault_);
  const RootCause* revertible = result.revertible();
  ASSERT_NE(revertible, nullptr);
  EXPECT_EQ(revertible->record.config_version, bad_version_);
}

TEST(Provenance, UplinkFailureIsEnvironmental) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.fail_uplink2();
  scenario.network->run_to_convergence();

  auto graph =
      HbgBuilder::build(scenario.network->capture().records(), RuleMatchingInference());
  // R1's FIB flip to its own uplink was caused by the hardware event.
  IoId fault = kNoIo;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r1 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p && !r.withdraw) {
      fault = r.id;
    }
  }
  ASSERT_NE(fault, kNoIo);
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph, fault);
  ASSERT_FALSE(result.causes.empty());
  EXPECT_EQ(result.revertible(), nullptr) << "a hardware event is not revertible";
  bool hardware_cause = false;
  for (const RootCause& cause : result.causes) {
    if (cause.kind == CauseKind::kHardwareStatus && cause.record.router == scenario.r2) {
      hardware_cause = true;
    }
  }
  EXPECT_TRUE(hardware_cause);
}

TEST(Provenance, ExternalAdvertAsLeafCause) {
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  scenario.advertise_p_via_r1();
  scenario.network->run_to_convergence();

  auto graph =
      HbgBuilder::build(scenario.network->capture().records(), RuleMatchingInference());
  IoId fault = kNoIo;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.router == scenario.r3 && r.prefix.has_value() &&
        *r.prefix == scenario.prefix_p) {
      fault = r.id;
    }
  }
  ASSERT_NE(fault, kNoIo);
  RootCauseAnalyzer analyzer;
  auto result = analyzer.analyze(graph, fault);
  bool external = false;
  for (const RootCause& cause : result.causes) {
    if (cause.kind == CauseKind::kExternalAdvert) external = true;
  }
  EXPECT_TRUE(external) << "the eBGP advertisement from outside the domain is the origin";
}

// ---------------------------------------------------------------------------
// Distributed HBG storage (§5)

TEST_F(ProvenanceFixture, DistributedQueryMatchesCentralized) {
  DistributedHbgStore store(graph_);
  EXPECT_EQ(store.shard_count(), 3u);
  EXPECT_GT(store.cross_edge_count(), 0u);

  DistributedQueryStats stats;
  auto distributed_roots = store.root_causes(fault_, 0.0, &stats);
  auto central_roots = graph_.root_causes(fault_);
  EXPECT_EQ(distributed_roots, central_roots);

  // The Fig. 2 chain crosses routers: the query must have shipped partial
  // paths and contacted more than one router.
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GE(stats.routers_contacted, 2u);
  EXPECT_GT(stats.edges_walked, 0u);
}

TEST_F(ProvenanceFixture, DistributedShardsContainOnlyOwnIos) {
  DistributedHbgStore store(graph_);
  for (RouterId router : {scenario_.r1, scenario_.r2, scenario_.r3}) {
    const HappensBeforeGraph* shard = store.subgraph(router);
    ASSERT_NE(shard, nullptr);
    shard->for_each_vertex([&](const IoRecord& record) {
      EXPECT_EQ(record.router, router);
    });
  }
}

TEST_F(ProvenanceFixture, DistributedConfidenceFilterApplies) {
  DistributedHbgStore store(graph_);
  auto strict = store.root_causes(fault_, 0.99);
  auto central = graph_.root_causes(fault_, 0.99);
  EXPECT_EQ(strict, central);
}

TEST(DistributedHbg, LocalOnlyQueryNeedsNoMessages) {
  // A fault whose whole chain lives on one router (e.g. a connected-route
  // FIB install from the initial config) resolves without any messages.
  auto scenario = PaperScenario::make();
  scenario.network->run_to_convergence();
  auto graph = HbgBuilder::build(scenario.network->capture().records(),
                                 RuleMatchingInference());
  IoId local_fault = kNoIo;
  for (const IoRecord& r : scenario.network->capture().records()) {
    if (r.kind == IoKind::kFibUpdate && r.protocol == Protocol::kConnected &&
        r.router == scenario.r1) {
      local_fault = r.id;
    }
  }
  ASSERT_NE(local_fault, kNoIo);
  DistributedHbgStore store(graph);
  DistributedQueryStats stats;
  auto roots = store.root_causes(local_fault, 0.0, &stats);
  EXPECT_EQ(roots, graph.root_causes(local_fault));
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.routers_contacted, 1u);
}

}  // namespace
}  // namespace hbguard
