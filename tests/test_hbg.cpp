#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbg/render.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"

namespace hbguard {
namespace {

IoRecord vertex(IoId id, RouterId router = 0, IoKind kind = IoKind::kFibUpdate) {
  IoRecord r;
  r.id = id;
  r.router = router;
  r.kind = kind;
  return r;
}

class GraphFixture : public ::testing::Test {
 protected:
  // 1 -> 2 -> 4, 3 -> 4, 4 -> 5 (a small DAG with two roots: 1 and 3)
  GraphFixture() {
    for (IoId id = 1; id <= 5; ++id) graph_.add_vertex(vertex(id, id % 2));
    graph_.add_edge({1, 2, 1.0, "a"});
    graph_.add_edge({2, 4, 1.0, "b"});
    graph_.add_edge({3, 4, 0.5, "c"});
    graph_.add_edge({4, 5, 1.0, "d"});
  }
  HappensBeforeGraph graph_;
};

TEST_F(GraphFixture, Counts) {
  EXPECT_EQ(graph_.vertex_count(), 5u);
  EXPECT_EQ(graph_.edge_count(), 4u);
}

TEST_F(GraphFixture, AncestorsClosure) {
  auto up = graph_.ancestors(5);
  EXPECT_EQ(up, (std::vector<IoId>{1, 2, 3, 4}));
  EXPECT_TRUE(graph_.ancestors(1).empty());
}

TEST_F(GraphFixture, DescendantsClosure) {
  auto down = graph_.descendants(1);
  EXPECT_EQ(down, (std::vector<IoId>{2, 4, 5}));
}

TEST_F(GraphFixture, ConfidenceFilterPrunesTraversal) {
  auto up = graph_.ancestors(5, 0.9);
  EXPECT_EQ(up, (std::vector<IoId>{1, 2, 4}));  // edge 3->4 (0.5) filtered out
}

TEST_F(GraphFixture, RootCauses) {
  auto roots = graph_.root_causes(5);
  EXPECT_EQ(roots, (std::vector<IoId>{1, 3}));
  auto self_root = graph_.root_causes(1);
  EXPECT_EQ(self_root, (std::vector<IoId>{1}));
}

TEST_F(GraphFixture, PathFromRoot) {
  auto path = graph_.path_from(1, 5);
  EXPECT_EQ(path, (std::vector<IoId>{1, 2, 4, 5}));
  EXPECT_TRUE(graph_.path_from(5, 1).empty());  // edges are directed
}

TEST_F(GraphFixture, DuplicateEdgeKeepsMaxConfidence) {
  graph_.add_edge({3, 4, 0.9, "c2"});
  EXPECT_EQ(graph_.edge_count(), 4u);  // no new edge
  auto up = graph_.ancestors(5, 0.8);
  EXPECT_TRUE(std::binary_search(up.begin(), up.end(), 3));  // confidence was upgraded
}

TEST_F(GraphFixture, SelfEdgeIgnored) {
  graph_.add_edge({1, 1, 1.0, "loop"});
  EXPECT_EQ(graph_.edge_count(), 4u);
}

TEST_F(GraphFixture, EdgeToUnknownVertexThrows) {
  EXPECT_THROW(graph_.add_edge({1, 99, 1.0, "x"}), std::invalid_argument);
}

TEST_F(GraphFixture, RouterSubgraph) {
  // Routers alternate: vertices 1,3,5 on router 1; 2,4 on router 0.
  auto sub = graph_.router_subgraph(0);
  EXPECT_EQ(sub.vertex_count(), 2u);
  EXPECT_EQ(sub.edge_count(), 1u);  // 2 -> 4
}

TEST_F(GraphFixture, MergeReassemblesSubgraphs) {
  auto sub0 = graph_.router_subgraph(0);
  auto sub1 = graph_.router_subgraph(1);
  HappensBeforeGraph merged;
  merged.merge(sub0);
  merged.merge(sub1);
  EXPECT_EQ(merged.vertex_count(), 5u);
  // Cross-router edges are lost in per-router subgraphs (they are added
  // back from cross-router HBRs at reassembly in the distributed design);
  // same-router edges survive. Only 2->4 is same-router here.
  EXPECT_EQ(merged.edge_count(), 1u);
  merged.add_edge({1, 2, 1.0, "x"});
  merged.add_edge({3, 4, 1.0, "x"});
  EXPECT_EQ(merged.ancestors(5).size(), 0u);  // 4->5 was cross-router
}

TEST_F(GraphFixture, AllLeaves) {
  auto leaves = graph_.all_leaves();
  EXPECT_EQ(std::set<IoId>(leaves.begin(), leaves.end()), (std::set<IoId>{1, 3}));
}

// ---------------------------------------------------------------------------
// End-to-end: Fig. 4 — the HBG of the Fig. 2 scenario names R2's config
// change as the root cause of R1's FIB change.

class Fig4Fixture : public ::testing::Test {
 protected:
  Fig4Fixture() : scenario_(PaperScenario::make()) {
    scenario_.converge_initial();
    config_version_ = scenario_.misconfigure_r2_lp10();
    scenario_.network->run_to_convergence();
    const auto& records = scenario_.network->capture().records();
    graph_ = HbgBuilder::build(records, RuleMatchingInference());

    // R1's FIB update that switched P to the external uplink — the "fault"
    // vertex in Fig. 4.
    for (const IoRecord& r : records) {
      if (r.kind == IoKind::kFibUpdate && r.router == scenario_.r1 && r.prefix.has_value() &&
          *r.prefix == scenario_.prefix_p && !r.withdraw &&
          r.detail.find("ext(uplink1)") != std::string::npos) {
        fault_ = r.id;
      }
    }
    for (const IoRecord& r : records) {
      if (r.kind == IoKind::kConfigChange && r.config_version == config_version_) {
        cause_ = r.id;
      }
    }
  }

  PaperScenario scenario_;
  ConfigVersion config_version_ = kNoVersion;
  HappensBeforeGraph graph_;
  IoId fault_ = kNoIo;
  IoId cause_ = kNoIo;
};

TEST_F(Fig4Fixture, RootCauseIsTheConfigChange) {
  ASSERT_NE(fault_, kNoIo);
  ASSERT_NE(cause_, kNoIo);
  auto roots = graph_.root_causes(fault_);
  EXPECT_NE(std::find(roots.begin(), roots.end(), cause_), roots.end())
      << "the LP=10 config change must be among the root causes of R1's FIB flip";
}

TEST_F(Fig4Fixture, GroundTruthAgrees) {
  auto truth = HbgBuilder::build_ground_truth(scenario_.network->capture().records());
  auto roots = truth.root_causes(fault_);
  EXPECT_NE(std::find(roots.begin(), roots.end(), cause_), roots.end());
}

TEST_F(Fig4Fixture, FaultChainRunsThroughR2) {
  auto path = graph_.path_from(cause_, fault_);
  ASSERT_GE(path.size(), 3u);
  // The chain must pass through at least one R2 I/O (the RIB update and
  // iBGP advertisement of Fig. 4) before reaching R1.
  bool through_r2 = false;
  for (IoId id : path) {
    const IoRecord* r = graph_.record(id);
    ASSERT_NE(r, nullptr);
    if (r->router == scenario_.r2 && id != cause_) through_r2 = true;
  }
  EXPECT_TRUE(through_r2);
  EXPECT_EQ(graph_.record(path.front())->kind, IoKind::kConfigChange);
  EXPECT_EQ(graph_.record(path.back())->kind, IoKind::kFibUpdate);
}

TEST_F(Fig4Fixture, RenderersProduceOutput) {
  std::string dot = to_dot(graph_);
  EXPECT_NE(dot.find("digraph hbg"), std::string::npos);
  EXPECT_NE(dot.find("config change"), std::string::npos);

  std::string timeline = to_timeline(graph_, &scenario_.network->topology());
  EXPECT_NE(timeline.find("=== R1 ==="), std::string::npos);
  EXPECT_NE(timeline.find("=== R2 ==="), std::string::npos);
  EXPECT_NE(timeline.find("cross-router edges"), std::string::npos);

  auto path = graph_.path_from(cause_, fault_);
  std::string chain = render_chain(graph_, path);
  EXPECT_NE(chain.find("cause: R1 config change"), std::string::npos);  // R2 has dense id 1
}

}  // namespace
}  // namespace hbguard
