// Topology generators and churn workloads (the substrate under the scaling
// benches) plus the as-path policy match.
#include <gtest/gtest.h>

#include <set>

#include "hbguard/config/parser.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"

namespace hbguard {
namespace {

TEST(Generators, ChainLinkStructure) {
  Topology topo = make_chain_topology(6);
  ASSERT_EQ(topo.link_count(), 5u);
  for (LinkId l = 0; l < 5; ++l) {
    EXPECT_EQ(topo.link(l).a, l);
    EXPECT_EQ(topo.link(l).b, l + 1);
  }
}

TEST(Generators, RingClosesTheLoop) {
  Topology topo = make_ring_topology(4);
  EXPECT_EQ(topo.link_count(), 4u);
  EXPECT_TRUE(topo.link_between(3, 0).has_value());
}

TEST(Generators, TinyRingDegeneratesToChain) {
  EXPECT_EQ(make_ring_topology(2).link_count(), 1u);
  EXPECT_EQ(make_ring_topology(1).link_count(), 0u);
}

TEST(Generators, FullMeshAllPairs) {
  Topology topo = make_full_mesh_topology(6);
  EXPECT_EQ(topo.link_count(), 15u);
  for (RouterId a = 0; a < 6; ++a) {
    for (RouterId b = a + 1; b < 6; ++b) {
      EXPECT_TRUE(topo.link_between(a, b).has_value());
    }
  }
}

TEST(Generators, RandomTopologyIsConnectedAndDeduplicated) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    Topology topo = make_random_topology(12, 8, rng);
    // No duplicate links.
    std::set<std::pair<RouterId, RouterId>> seen;
    for (const Link& link : topo.links()) {
      auto key = std::make_pair(std::min(link.a, link.b), std::max(link.a, link.b));
      EXPECT_TRUE(seen.insert(key).second) << "duplicate link";
    }
    // Connected: BFS reaches everyone.
    std::set<RouterId> reached{0};
    std::vector<RouterId> frontier{0};
    while (!frontier.empty()) {
      RouterId r = frontier.back();
      frontier.pop_back();
      for (RouterId n : topo.up_neighbors(r)) {
        if (reached.insert(n).second) frontier.push_back(n);
      }
    }
    EXPECT_EQ(reached.size(), topo.router_count());
  }
}

TEST(Generators, RandomTopologyDeterministicPerSeed) {
  auto build = [] {
    Rng rng(42);
    Topology topo = make_random_topology(10, 5, rng);
    std::vector<std::tuple<RouterId, RouterId, SimTime>> links;
    for (const Link& link : topo.links()) links.emplace_back(link.a, link.b, link.delay_us);
    return links;
  };
  EXPECT_EQ(build(), build());
}

TEST(Churn, SchedulesExactlyRequestedEvents) {
  auto generated = make_ibgp_network(make_chain_topology(4), 2);
  generated.network->run_to_convergence();
  ChurnOptions options;
  options.event_count = 17;
  ChurnWorkload churn(generated, options);
  EXPECT_EQ(churn.scheduled_events(), 17u);
  EXPECT_EQ(churn.prefixes().size(), options.prefix_count);
  generated.network->run_to_convergence();  // must drain without hanging
}

TEST(Churn, NoUplinksMeansNoEvents) {
  auto generated = make_ibgp_network(make_chain_topology(3), 0);
  generated.network->run_to_convergence();
  ChurnWorkload churn(generated, {});
  EXPECT_EQ(churn.scheduled_events(), 0u);
}

TEST(Churn, ConfigChurnTouchesOnlyUplinkPolicies) {
  auto generated = make_ibgp_network(make_chain_topology(4), 1);
  Network& net = *generated.network;
  net.run_to_convergence();
  ChurnOptions options;
  options.config_change_probability = 1.0;  // config changes only
  options.event_count = 5;
  ChurnWorkload churn(generated, options);
  net.run_to_convergence();
  // All changes landed on the uplink router and only touched its LP map.
  for (const ConfigChangeRecord& record : net.configs().history()) {
    if (record.parent == kNoVersion) continue;  // initial configs
    EXPECT_EQ(record.router, generated.uplinks[0].router);
    EXPECT_NE(record.description.find("local-pref"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// AS-path policy matching (used to express "avoid transit via AS X").

TEST(AsPathPolicy, MatchContains) {
  RouteMapClause clause;
  clause.match_as_path_contains = 64999;
  PolicyRouteView through{*Prefix::parse("10.0.0.0/8"), 100, 0, {64500, 64999}, "s", {}};
  PolicyRouteView direct{*Prefix::parse("10.0.0.0/8"), 100, 0, {64500}, "s", {}};
  EXPECT_TRUE(clause.matches(through));
  EXPECT_FALSE(clause.matches(direct));
}

TEST(AsPathPolicy, AvoidTransitEndToEnd) {
  // R3 refuses any path transiting AS 64999; both uplinks advertise P with
  // 64999 in the path, so R3 must end up with no route even though its
  // peers have one.
  auto scenario = PaperScenario::make();
  scenario.network->apply_config_change(
      scenario.r3, "avoid AS 64999", [](RouterConfig& config) {
        RouteMap avoid;
        avoid.name = "avoid-64999";
        RouteMapClause deny;
        deny.match_as_path_contains = 64999;
        deny.action = RouteMapClause::Action::kDeny;
        avoid.clauses.push_back(deny);
        config.route_maps["avoid-64999"] = std::move(avoid);
        config.bgp.find_session("ibgp-R1")->import_policy = "avoid-64999";
        config.bgp.find_session("ibgp-R2")->import_policy = "avoid-64999";
      });
  scenario.converge_initial();

  EXPECT_EQ(scenario.router3().data_fib().find(scenario.prefix_p), nullptr);
  EXPECT_NE(scenario.router1().data_fib().find(scenario.prefix_p), nullptr);
}

// ---- Synthetic traffic demand ----

TEST(TrafficDemand, WeightsSumExactlyToTotal) {
  TrafficDemandOptions options;
  options.prefix_count = 1000;
  options.ingress_count = 5;
  options.total_weight = 999'999'937;  // prime: apportionment can't be even
  TrafficDemand demand = make_traffic_demand(options);

  ASSERT_EQ(demand.prefixes.size(), options.prefix_count);
  ASSERT_EQ(demand.prefix_weight.size(), options.prefix_count);
  std::uint64_t sum = 0;
  for (std::uint64_t w : demand.prefix_weight) sum += w;
  EXPECT_EQ(sum, options.total_weight);
  EXPECT_EQ(demand.total, options.total_weight);

  // Demand-matrix columns apportion each prefix's weight exactly.
  ASSERT_EQ(demand.ingress_weight.size(), options.ingress_count);
  for (std::size_t i = 0; i < options.prefix_count; ++i) {
    std::uint64_t column = 0;
    for (std::size_t g = 0; g < options.ingress_count; ++g) {
      column += demand.ingress_weight[g][i];
    }
    EXPECT_EQ(column, demand.prefix_weight[i]) << "column " << i;
  }
}

TEST(TrafficDemand, DeterministicPerSeedAndSensitiveToIt) {
  TrafficDemandOptions options;
  options.prefix_count = 256;
  options.ingress_count = 3;
  TrafficDemand a = make_traffic_demand(options);
  TrafficDemand b = make_traffic_demand(options);
  EXPECT_EQ(a.prefix_weight, b.prefix_weight);
  EXPECT_EQ(a.ingress_weight, b.ingress_weight);

  options.seed += 1;
  TrafficDemand c = make_traffic_demand(options);
  // Zipf prefix weights ignore the seed (rank is deterministic)...
  EXPECT_EQ(a.prefix_weight, c.prefix_weight);
  // ...but the ingress split is seeded.
  EXPECT_NE(a.ingress_weight, c.ingress_weight);
}

TEST(TrafficDemand, ZipfTailIsMonotoneAndHeavyHeaded) {
  TrafficDemandOptions options;
  options.prefix_count = 4096;
  options.zipf_exponent = 1.0;
  TrafficDemand demand = make_traffic_demand(options);

  for (std::size_t i = 1; i < demand.prefix_weight.size(); ++i) {
    EXPECT_GE(demand.prefix_weight[i - 1], demand.prefix_weight[i]) << "rank " << i;
  }
  // Harmonic concentration: the top 1% of ranks carries far more than 1% of
  // the weight (for n=4096, H(41)/H(4096) is ~51%; assert a loose floor).
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < demand.prefix_weight.size() / 100; ++i) {
    head += demand.prefix_weight[i];
  }
  EXPECT_GT(head, demand.total / 3);
}

TEST(TrafficDemand, ZeroExponentIsNearUniform) {
  TrafficDemandOptions options;
  options.prefix_count = 128;
  options.zipf_exponent = 0.0;
  options.total_weight = 128 * 1000 + 57;  // deliberately uneven
  TrafficDemand demand = make_traffic_demand(options);
  // Largest-remainder apportionment of equal shares: every weight within 1.
  for (std::uint64_t w : demand.prefix_weight) {
    EXPECT_GE(w, 1000u);
    EXPECT_LE(w, 1001u);
  }
}

TEST(TrafficDemand, CustomPrefixMapIsUsed) {
  TrafficDemandOptions options;
  options.prefix_count = 8;
  TrafficDemand demand =
      make_traffic_demand(options, [](std::size_t i) { return churn_prefix(i); });
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(demand.prefixes[i], churn_prefix(i));
}

TEST(AsPathPolicy, ParserRoundTrip) {
  Topology topo;
  topo.add_router("R1");
  auto result = parse_router_config(R"(
route-map avoid
  clause deny
    match as-path-contains 64999
)", topo);
  ASSERT_TRUE(result.ok());
  const RouteMap* map = result.config.find_route_map("avoid");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->clauses.at(0).match_as_path_contains, 64999u);
  std::string rendered = render_router_config(result.config, topo);
  auto again = parse_router_config(rendered, topo);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(render_router_config(again.config, topo), rendered);
}

}  // namespace
}  // namespace hbguard
