// Edge cases of the protocol engines and snapshot options not covered by
// the scenario-driven suites.
#include <gtest/gtest.h>

#include "hbguard/core/guard.hpp"
#include "hbguard/hbr/pattern_miner.hpp"
#include "hbguard/proto/bgp/engine.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/snapshot/consistent.hpp"

namespace hbguard {
namespace {

// ---------------------------------------------------------------------------
// BGP engine edge cases (standalone engine, no simulator).

class EngineEdgeFixture : public ::testing::Test {
 protected:
  EngineEdgeFixture() {
    config_.bgp.enabled = true;
    BgpSessionConfig uplink;
    uplink.name = "uplink";
    uplink.external = true;
    uplink.peer_as = 64500;
    config_.bgp.sessions.push_back(uplink);
    BgpSessionConfig ibgp_a;
    ibgp_a.name = "peer-a";
    ibgp_a.peer = 2;
    ibgp_a.peer_as = 65000;
    config_.bgp.sessions.push_back(ibgp_a);
    BgpSessionConfig ibgp_b;
    ibgp_b.name = "peer-b";
    ibgp_b.peer = 3;
    ibgp_b.peer_as = 65000;
    config_.bgp.sessions.push_back(ibgp_b);

    engine_ = std::make_unique<BgpEngine>(
        1, 65000,
        BgpEngine::Callbacks{
            [this](const std::string& session, const BgpUpdateMsg& msg) {
              sent_.emplace_back(session, msg);
            },
            nullptr, [](RouterId) { return std::uint32_t{1}; }, [] { return SimTime{0}; }});
    engine_->set_config(&config_);
    engine_->start();
  }

  BgpUpdateMsg external_advert(const char* prefix, std::uint32_t med = 0) {
    BgpUpdateMsg msg;
    msg.prefix = *Prefix::parse(prefix);
    msg.attrs.as_path = {64500};
    msg.attrs.med = med;
    msg.attrs.next_hop = BgpNextHop::via_external("uplink");
    return msg;
  }

  RouterConfig config_;
  std::unique_ptr<BgpEngine> engine_;
  std::vector<std::pair<std::string, BgpUpdateMsg>> sent_;
};

TEST_F(EngineEdgeFixture, WithdrawOfUnknownPrefixIsNoop) {
  BgpUpdateMsg withdraw;
  withdraw.prefix = *Prefix::parse("203.0.113.0/24");
  withdraw.withdraw = true;
  engine_->handle_update("uplink", withdraw);
  EXPECT_TRUE(sent_.empty());
  EXPECT_TRUE(engine_->loc_rib().empty());
}

TEST_F(EngineEdgeFixture, ExportPolicyCanDenyOnePeerOnly) {
  RouteMap deny_all;
  deny_all.name = "deny";
  RouteMapClause deny;
  deny.action = RouteMapClause::Action::kDeny;
  deny_all.clauses.push_back(deny);
  deny_all.default_permit = false;
  config_.route_maps["deny"] = deny_all;
  config_.bgp.find_session("peer-b")->export_policy = "deny";

  engine_->handle_update("uplink", external_advert("203.0.113.0/24"));
  std::size_t to_a = 0, to_b = 0;
  for (const auto& [session, msg] : sent_) {
    if (session == "peer-a") ++to_a;
    if (session == "peer-b") ++to_b;
  }
  EXPECT_EQ(to_a, 1u);
  EXPECT_EQ(to_b, 0u);
}

TEST_F(EngineEdgeFixture, ExportPolicySetMedVisibleOnWire) {
  RouteMap set_med;
  set_med.name = "med50";
  RouteMapClause clause;
  clause.set_med = 50;
  set_med.clauses.push_back(clause);
  config_.route_maps["med50"] = set_med;
  config_.bgp.find_session("peer-a")->export_policy = "med50";

  engine_->handle_update("uplink", external_advert("203.0.113.0/24"));
  bool found = false;
  for (const auto& [session, msg] : sent_) {
    if (session == "peer-a") {
      EXPECT_EQ(msg.attrs.med, 50u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineEdgeFixture, AdjRibOutTracksWhatWasSent) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24"));
  auto out = engine_->adj_rib_out("peer-a");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix.to_string(), "203.0.113.0/24");

  BgpUpdateMsg withdraw;
  withdraw.prefix = *Prefix::parse("203.0.113.0/24");
  withdraw.withdraw = true;
  engine_->handle_update("uplink", withdraw);
  EXPECT_TRUE(engine_->adj_rib_out("peer-a").empty());
}

TEST_F(EngineEdgeFixture, SessionFlapResendsState) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24"));
  sent_.clear();
  engine_->set_session_state("peer-a", false);
  EXPECT_TRUE(sent_.empty());  // nothing to send on a down session
  engine_->set_session_state("peer-a", true);
  bool readvertised = false;
  for (const auto& [session, msg] : sent_) {
    if (session == "peer-a" && !msg.withdraw) readvertised = true;
  }
  EXPECT_TRUE(readvertised);
}

TEST_F(EngineEdgeFixture, MedChangeOnSamePathTriggersUpdateNotChurn) {
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", 10));
  sent_.clear();
  engine_->handle_update("uplink", external_advert("203.0.113.0/24", 20));
  // Attribute change: one fresh advertisement per iBGP peer, no withdraws.
  std::size_t adverts = 0;
  for (const auto& [session, msg] : sent_) {
    EXPECT_FALSE(msg.withdraw);
    ++adverts;
  }
  EXPECT_EQ(adverts, 2u);
}

// ---------------------------------------------------------------------------
// Snapshot option toggles.

TEST(SnapshotOptions, RequireSendForRecvCanBeDisabled) {
  NetworkOptions options;
  options.capture.loss_probability = 0.25;  // heavy loss: many orphan recvs
  options.seed = 11;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();
  auto records = scenario.network->capture().records();
  auto hbg = HbgBuilder::build(records, RuleMatchingInference());

  ConsistentSnapshotter strict;  // default: require_send_for_recv = true
  ConsistencyReport strict_report;
  strict.build(records, hbg, {}, &strict_report);

  ConsistentSnapshotter::Options lax_options;
  lax_options.require_send_for_recv = false;
  ConsistentSnapshotter lax(lax_options);
  ConsistencyReport lax_report;
  lax.build(records, hbg, {}, &lax_report);

  EXPECT_GE(strict_report.total_rewound(), lax_report.total_rewound())
      << "the strict mode must be at least as conservative";
  EXPECT_EQ(lax_report.unmatched_recvs, 0u);  // the check is off
}

TEST(GuardInference, PluggableCombinedInferenceHealsFig2) {
  // Train a pattern miner on a healthy run, combine with rules, and hand
  // the combination to the guard.
  auto train = PaperScenario::make();
  train.converge_initial();
  PatternMiner::Options miner_options;
  miner_options.min_confidence = 0.9;
  PatternMiner miner(miner_options);
  miner.train(train.network->capture().records());

  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  PolicyList policies;
  policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  policies.push_back(std::make_shared<PreferredExitPolicy>(
      scenario.prefix_p, scenario.r2, PaperScenario::kUplink2, scenario.r1,
      PaperScenario::kUplink1));

  GuardOptions options;
  options.inference = std::make_shared<CombinedInference>(
      std::vector<std::shared_ptr<HbrInferencer>>{
          std::make_shared<RuleMatchingInference>(),
          std::make_shared<PatternMiningInference>(std::move(miner))});
  Guard guard(*scenario.network, policies, options);

  ConfigVersion bad = scenario.misconfigure_r2_lp10();
  guard.run();
  EXPECT_TRUE(scenario.network->configs().record(bad).reverted);
  EXPECT_TRUE(scenario.fib_exits_via(scenario.r3, scenario.r2));
}

}  // namespace
}  // namespace hbguard
