// Determinism and memoization tests for the sharded verifier: parallel runs
// must produce byte-identical reports to serial ones, and the per-EC
// forwarding-graph cache must hit on unchanged behaviour and miss after it
// changes.
#include <gtest/gtest.h>

#include <sstream>

#include "fixtures.hpp"
#include "hbguard/core/guard.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {
namespace {

/// A snapshot with varied behaviour across eight prefixes: delivered,
/// looping, and blackholed destinations so every policy has work to do.
DataPlaneSnapshot mixed_snapshot() {
  DataPlaneSnapshot s;
  for (std::size_t i = 0; i < 8; ++i) {
    std::string prefix = churn_prefix(i).to_string();
    const char* p = prefix.c_str();
    switch (i % 4) {
      case 0:  // clean chain 0 -> 1 -> 2 -> uplink
        s.routers[0].entries.push_back(forward_entry(p, 1));
        s.routers[1].entries.push_back(forward_entry(p, 2));
        s.routers[2].entries.push_back(external_entry(p, "up"));
        break;
      case 1:  // loop 0 -> 1 -> 0
        s.routers[0].entries.push_back(forward_entry(p, 1));
        s.routers[1].entries.push_back(forward_entry(p, 0));
        break;
      case 2:  // blackhole at 1 (route points there, no entry)
        s.routers[0].entries.push_back(forward_entry(p, 1));
        break;
      case 3:  // direct exit from 1 only
        s.routers[1].entries.push_back(external_entry(p, "up"));
        break;
    }
  }
  return s;
}

PolicyList mixed_policies() {
  PolicyList policies;
  for (std::size_t i = 0; i < 8; ++i) {
    Prefix p = churn_prefix(i);
    policies.push_back(std::make_shared<LoopFreedomPolicy>(p));
    policies.push_back(std::make_shared<BlackholeFreedomPolicy>(p));
    if (i % 2 == 0) policies.push_back(std::make_shared<ReachabilityPolicy>(0, p));
  }
  return policies;
}

std::string render(const VerifyResult& result) {
  std::ostringstream out;
  for (const Violation& v : result.violations) out << v.describe() << "\n";
  return out.str();
}

TEST(ParallelVerify, ReportIdenticalAcrossThreadCounts) {
  DataPlaneSnapshot snapshot = mixed_snapshot();
  PolicyList policies = mixed_policies();

  Verifier serial(policies, VerifierOptions{.num_threads = 1});
  std::string baseline = render(serial.verify(snapshot));
  EXPECT_FALSE(baseline.empty());  // the snapshot is deliberately broken

  for (unsigned threads : {2u, 8u}) {
    Verifier parallel(policies, VerifierOptions{.num_threads = threads});
    EXPECT_EQ(render(parallel.verify(snapshot)), baseline)
        << "num_threads=" << threads;
  }
}

TEST(ParallelVerify, MemoizationOffMatchesMemoizationOn) {
  DataPlaneSnapshot snapshot = mixed_snapshot();
  PolicyList policies = mixed_policies();
  Verifier memo(policies, VerifierOptions{.num_threads = 4, .memoize = true});
  Verifier no_memo(policies, VerifierOptions{.num_threads = 4, .memoize = false});
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(render(memo.verify(snapshot)), render(no_memo.verify(snapshot)));
  }
  EXPECT_GT(memo.stats().cache_hits, 0u);
  EXPECT_EQ(no_memo.stats().cache_hits, 0u);
}

TEST(ParallelVerify, CacheHitsOnUnchangedSnapshot) {
  DataPlaneSnapshot snapshot = mixed_snapshot();
  Verifier verifier(mixed_policies(), VerifierOptions{.num_threads = 2});

  verifier.verify(snapshot);
  VerifyStats first = verifier.stats();
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, 8u);  // one graph per destination

  verifier.verify(snapshot);
  VerifyStats second = verifier.stats();
  EXPECT_EQ(second.cache_misses, 8u);  // nothing new to build
  EXPECT_EQ(second.cache_hits, 8u);    // every destination served from cache
}

TEST(ParallelVerify, CacheMissesOnlyForChangedBehaviour) {
  DataPlaneSnapshot snapshot = mixed_snapshot();
  Verifier verifier(mixed_policies(), VerifierOptions{.num_threads = 2});
  verifier.verify(snapshot);

  // Reroute prefix 0: router 1 now exits directly instead of via router 2.
  snapshot.routers[1].entries[0] = external_entry(churn_prefix(0).to_string().c_str(), "up");
  snapshot.invalidate_lookup_cache();

  VerifyResult changed = verifier.verify(snapshot);
  VerifyStats stats = verifier.stats();
  EXPECT_EQ(stats.cache_misses, 9u);  // only prefix 0 rebuilt
  EXPECT_EQ(stats.cache_hits, 7u);    // the other seven reused

  // And the rebuilt graph is actually used: verdicts match a fresh verifier.
  Verifier fresh(mixed_policies(), VerifierOptions{.num_threads = 1});
  EXPECT_EQ(render(changed), render(fresh.verify(snapshot)));
}

TEST(ParallelVerify, ClearCacheForcesRebuild) {
  DataPlaneSnapshot snapshot = mixed_snapshot();
  Verifier verifier(mixed_policies(), VerifierOptions{.num_threads = 2});
  verifier.verify(snapshot);
  verifier.clear_cache();
  verifier.verify(snapshot);
  EXPECT_EQ(verifier.stats().cache_misses, 16u);
  EXPECT_EQ(verifier.stats().cache_hits, 0u);
}

TEST(ParallelVerify, SerialVerifierCreatesNoPool) {
  Verifier verifier(mixed_policies(), VerifierOptions{.num_threads = 1});
  verifier.verify(mixed_snapshot());
  EXPECT_EQ(verifier.thread_pool(), nullptr);
  EXPECT_EQ(verifier.stats().runs, 0u);  // serial path bypasses the counters
}

TEST(ConsistentSnapshotter, ParallelReplayMatchesSerial) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_for(2'000'000);

  std::span<const IoRecord> records = scenario.network->capture().records();
  HappensBeforeGraph hbg = HbgBuilder::build_ground_truth(records);

  ConsistentSnapshotter::Options serial_options;
  ConsistentSnapshotter serial(serial_options);
  DataPlaneSnapshot baseline = serial.build(records, hbg, {});

  for (unsigned threads : {2u, 8u}) {
    ConsistentSnapshotter::Options options;
    options.num_threads = threads;
    ConsistentSnapshotter parallel(options);
    DataPlaneSnapshot snapshot = parallel.build(records, hbg, {});

    ASSERT_EQ(snapshot.routers.size(), baseline.routers.size());
    for (const auto& [router, view] : baseline.routers) {
      const RouterFibView& other = snapshot.routers.at(router);
      EXPECT_EQ(other.entries, view.entries) << "router " << router;
      EXPECT_EQ(other.as_of, view.as_of);
      EXPECT_EQ(other.failed_uplinks, view.failed_uplinks);
      EXPECT_EQ(other.uplink_routes, view.uplink_routes);
    }
  }
}

std::string guarded_run_summary(unsigned num_threads) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  GuardOptions options;
  options.num_threads = num_threads;
  Guard guard(*scenario.network, paper_policies(scenario), options);
  scenario.misconfigure_r2_lp10();
  GuardReport report = guard.run();
  return report.summary();
}

TEST(ParallelVerify, GuardReportByteIdenticalAcrossThreadCounts) {
  // The whole pipeline — snapshotter replay, EC computation, sharded
  // verification — must give the same incidents and the same summary text
  // no matter how many workers it uses.
  std::string baseline = guarded_run_summary(1);
  EXPECT_NE(baseline.find("reverted"), std::string::npos);
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(guarded_run_summary(threads), baseline) << "num_threads=" << threads;
  }
}

}  // namespace
}  // namespace hbguard
