// Compact HBG parity (ISSUE 3 tentpole).
//
// The contract under test: the CSR/index-based HappensBeforeGraph answers
// every query — closures, root causes, shortest paths, subgraphs, merges,
// iteration order — identically to the legacy std::map-based representation
// (kept here as the oracle), regardless of insertion order, duplicate
// edges, append-side buffer state, or when compaction fires; and a Guard
// running on the compact graph emits byte-identical GuardReports at 1/2/8
// threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "hbguard/core/guard.hpp"
#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/rng.hpp"

namespace hbguard {
namespace {

// ---------------------------------------------------------------------------
// Legacy map-based reference implementation (the pre-compaction graph code,
// verbatim semantics: node storage in std::map, per-query std::set closures).

class ReferenceHbg {
 public:
  void add_vertex(IoRecord record) { vertices_.insert_or_assign(record.id, std::move(record)); }

  void add_edge(const HbgEdge& edge) {
    if (!vertices_.contains(edge.from) || !vertices_.contains(edge.to)) {
      throw std::invalid_argument("HBG edge references unknown vertex");
    }
    if (edge.from == edge.to) return;
    auto& out = out_[edge.from];
    for (HbgEdge& existing : out) {
      if (existing.to == edge.to) {
        if (edge.confidence > existing.confidence) {
          existing = edge;
          for (HbgEdge& in : in_[edge.to]) {
            if (in.from == edge.from) in = edge;
          }
        }
        return;
      }
    }
    out.push_back(edge);
    in_[edge.to].push_back(edge);
    ++edge_count_;
  }

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  std::vector<HbgEdge> in_edges(IoId id, double min_confidence = 0.0) const {
    return filter(in_, id, min_confidence);
  }
  std::vector<HbgEdge> out_edges(IoId id, double min_confidence = 0.0) const {
    return filter(out_, id, min_confidence);
  }

  std::set<IoId> ancestors(IoId id, double min_confidence = 0.0) const {
    return closure(id, min_confidence, in_, /*follow_from=*/true);
  }
  std::set<IoId> descendants(IoId id, double min_confidence = 0.0) const {
    return closure(id, min_confidence, out_, /*follow_from=*/false);
  }

  std::vector<IoId> root_causes(IoId id, double min_confidence = 0.0) const {
    if (!vertices_.contains(id)) return {};
    std::set<IoId> up = ancestors(id, min_confidence);
    std::vector<IoId> roots;
    if (up.empty()) {
      if (in_edges(id, min_confidence).empty()) roots.push_back(id);
      return roots;
    }
    for (IoId candidate : up) {
      if (in_edges(candidate, min_confidence).empty()) roots.push_back(candidate);
    }
    std::sort(roots.begin(), roots.end());
    return roots;
  }

  /// Canonical shortest path (the HappensBeforeGraph contract): BFS hop
  /// distances, then backtrack choosing the smallest-id predecessor on a
  /// shortest path — depends only on the edge set, never insertion order.
  std::vector<IoId> path_from(IoId root, IoId id, double min_confidence = 0.0) const {
    if (root == id) return {root};
    std::map<IoId, std::size_t> dist;
    dist[root] = 0;
    std::vector<IoId> queue{root};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      IoId current = queue[head];
      auto it = out_.find(current);
      if (it == out_.end()) continue;
      for (const HbgEdge& edge : it->second) {
        if (edge.confidence < min_confidence) continue;
        if (dist.emplace(edge.to, dist.at(current) + 1).second) queue.push_back(edge.to);
      }
    }
    if (!dist.contains(id)) return {};
    std::vector<IoId> path{id};
    IoId walk = id;
    while (walk != root) {
      std::size_t want = dist.at(walk) - 1;
      IoId best = kNoIo;
      for (const HbgEdge& edge : in_edges(walk, min_confidence)) {
        auto it = dist.find(edge.from);
        if (it == dist.end() || it->second != want) continue;
        if (best == kNoIo || edge.from < best) best = edge.from;
      }
      walk = best;
      path.push_back(walk);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  ReferenceHbg router_subgraph(RouterId router) const {
    ReferenceHbg sub;
    for (const auto& [id, record] : vertices_) {
      if (record.router == router) sub.add_vertex(record);
    }
    for (const auto& [from, edges] : out_) {
      for (const HbgEdge& edge : edges) {
        if (sub.vertices_.contains(edge.from) && sub.vertices_.contains(edge.to)) {
          sub.add_edge(edge);
        }
      }
    }
    return sub;
  }

  void merge(const ReferenceHbg& other) {
    for (const auto& [id, record] : other.vertices_) {
      if (!vertices_.contains(id)) add_vertex(record);
    }
    for (const auto& [from, edges] : other.out_) {
      for (const HbgEdge& edge : edges) add_edge(edge);
    }
  }

  std::vector<IoId> all_leaves(double min_confidence = 0.0) const {
    std::vector<IoId> leaves;
    for (const auto& [id, record] : vertices_) {
      if (in_edges(id, min_confidence).empty()) leaves.push_back(id);
    }
    return leaves;
  }

  /// Edge list in the legacy iteration order (ascending from-id, insertion
  /// order per vertex) — the order renderers depend on.
  std::vector<HbgEdge> edge_list() const {
    std::vector<HbgEdge> out;
    for (const auto& [from, edges] : out_) {
      out.insert(out.end(), edges.begin(), edges.end());
    }
    return out;
  }

  const std::map<IoId, IoRecord>& vertices() const { return vertices_; }

 private:
  static std::vector<HbgEdge> filter(const std::map<IoId, std::vector<HbgEdge>>& adj, IoId id,
                                     double min_confidence) {
    std::vector<HbgEdge> result;
    auto it = adj.find(id);
    if (it == adj.end()) return result;
    for (const HbgEdge& edge : it->second) {
      if (edge.confidence >= min_confidence) result.push_back(edge);
    }
    return result;
  }

  std::set<IoId> closure(IoId id, double min_confidence,
                         const std::map<IoId, std::vector<HbgEdge>>& adj,
                         bool follow_from) const {
    std::set<IoId> seen;
    std::vector<IoId> queue{id};
    while (!queue.empty()) {
      IoId current = queue.back();
      queue.pop_back();
      auto it = adj.find(current);
      if (it == adj.end()) continue;
      for (const HbgEdge& edge : it->second) {
        if (edge.confidence < min_confidence) continue;
        IoId next = follow_from ? edge.from : edge.to;
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    seen.erase(id);
    return seen;
  }

  std::map<IoId, IoRecord> vertices_;
  std::map<IoId, std::vector<HbgEdge>> out_;
  std::map<IoId, std::vector<HbgEdge>> in_;
  std::size_t edge_count_ = 0;
};

// ---------------------------------------------------------------------------
// Helpers.

std::vector<IoId> as_vector(const std::set<IoId>& s) { return {s.begin(), s.end()}; }

std::string edge_digest(const std::vector<HbgEdge>& edges) {
  std::ostringstream out;
  for (const HbgEdge& e : edges) {
    out << e.from << ">" << e.to << "@" << e.confidence << ":" << e.origin << "\n";
  }
  return out.str();
}

/// Assert every query agrees between the oracle and the compact graph for
/// the given ids and confidence thresholds.
void expect_parity(const ReferenceHbg& oracle, const HappensBeforeGraph& compact,
                   const std::vector<IoId>& probe_ids, const std::vector<double>& thresholds) {
  ASSERT_EQ(oracle.vertex_count(), compact.vertex_count());
  ASSERT_EQ(oracle.edge_count(), compact.edge_count());

  // Iteration order: ascending id vertices, legacy-map-order edges.
  std::vector<IoId> oracle_vertex_order;
  for (const auto& [id, record] : oracle.vertices()) oracle_vertex_order.push_back(id);
  std::vector<IoId> compact_vertex_order;
  compact.for_each_vertex(
      [&](const IoRecord& record) { compact_vertex_order.push_back(record.id); });
  ASSERT_EQ(oracle_vertex_order, compact_vertex_order);

  std::vector<HbgEdge> compact_edges;
  compact.for_each_edge([&](const HbgEdge& edge) { compact_edges.push_back(edge); });
  ASSERT_EQ(edge_digest(oracle.edge_list()), edge_digest(compact_edges));

  for (double conf : thresholds) {
    ASSERT_EQ(oracle.all_leaves(conf), compact.all_leaves(conf)) << "conf=" << conf;
    for (IoId id : probe_ids) {
      ASSERT_EQ(as_vector(oracle.ancestors(id, conf)), compact.ancestors(id, conf))
          << "ancestors(" << id << ", " << conf << ")";
      ASSERT_EQ(as_vector(oracle.descendants(id, conf)), compact.descendants(id, conf))
          << "descendants(" << id << ", " << conf << ")";
      ASSERT_EQ(oracle.root_causes(id, conf), compact.root_causes(id, conf))
          << "root_causes(" << id << ", " << conf << ")";
      ASSERT_EQ(edge_digest(oracle.in_edges(id, conf)), edge_digest(compact.in_edges(id, conf)))
          << "in_edges(" << id << ", " << conf << ")";
      ASSERT_EQ(edge_digest(oracle.out_edges(id, conf)),
                edge_digest(compact.out_edges(id, conf)))
          << "out_edges(" << id << ", " << conf << ")";
      for (IoId root : oracle.root_causes(id, conf)) {
        ASSERT_EQ(oracle.path_from(root, id, conf), compact.path_from(root, id, conf))
            << "path_from(" << root << ", " << id << ", " << conf << ")";
      }
    }
  }
}

IoRecord make_record(IoId id, RouterId router) {
  IoRecord r;
  r.id = id;
  r.router = router;
  r.kind = IoKind::kFibUpdate;
  return r;
}

// ---------------------------------------------------------------------------
// Random-DAG property test: random insertion orders (monotone and shuffled),
// duplicate edges with confidence upgrades, self-edges, several origins —
// checked against the oracle before and after explicit compaction.

TEST(HbgCompact, RandomGraphParityAgainstMapOracle) {
  const char* origins[] = {"a", "b", "c", "rib->fib", "send->recv"};
  for (std::uint64_t seed : {1u, 7u, 23u, 99u}) {
    Rng rng(seed);
    std::size_t n = static_cast<std::size_t>(rng.uniform_int(20, 120));

    std::vector<IoId> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i + 1;
    bool shuffled = seed % 2 == 1;
    if (shuffled) rng.shuffle(ids);  // exercise the non-monotone id-order path

    ReferenceHbg oracle;
    HappensBeforeGraph compact;
    for (IoId id : ids) {
      IoRecord record = make_record(id, static_cast<RouterId>(id % 4));
      oracle.add_vertex(record);
      compact.add_vertex(record);
    }

    std::size_t edge_attempts = n * 4;
    for (std::size_t i = 0; i < edge_attempts; ++i) {
      IoId from = static_cast<IoId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
      IoId to = static_cast<IoId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
      if (from > to) std::swap(from, to);  // keep it a DAG (edges go up in id)
      double confidence = rng.uniform_int(1, 10) / 10.0;
      HbgEdge edge{from, to, confidence, origins[rng.uniform_int(0, 4)]};
      oracle.add_edge(edge);  // self-edges ignored, duplicates keep max conf
      compact.add_edge(edge);
    }

    std::vector<IoId> probes;
    for (IoId id = 1; id <= n; id += std::max<std::size_t>(1, n / 17)) probes.push_back(id);
    probes.push_back(n);
    probes.push_back(n + 50);  // unknown vertex: every query must return empty
    std::vector<double> thresholds{0.0, 0.35, 0.8, 1.0};

    expect_parity(oracle, compact, probes, thresholds);
    SCOPED_TRACE("after compact(), pending was " +
                 std::to_string(compact.pending_edge_count()));
    compact.compact();
    EXPECT_EQ(compact.pending_edge_count(), 0u);
    expect_parity(oracle, compact, probes, thresholds);

    // Subgraph + merge round-trip: reassembling per-router subgraphs plus
    // the cross-router edges reproduces every query answer.
    ReferenceHbg oracle_merged;
    HappensBeforeGraph compact_merged;
    for (RouterId router = 0; router < 4; ++router) {
      oracle_merged.merge(oracle.router_subgraph(router));
      compact_merged.merge(compact.router_subgraph(router));
    }
    compact.for_each_edge([&](const HbgEdge& edge) {
      oracle_merged.add_edge(edge);
      compact_merged.add_edge(edge);
    });
    expect_parity(oracle_merged, compact_merged, probes, thresholds);
  }
}

// ---------------------------------------------------------------------------
// Amortized compaction parity: the same random-DAG property, but with a
// per-append half-edge budget so re-packs run as incremental passes that
// interleave with appends, duplicate-confidence upgrades (patched into the
// in-flight copy) and new vertices. Queries must agree with the oracle at
// every checkpoint, including mid-pass, and after draining via compact_step
// or discarding via eager compact().

TEST(HbgCompact, AmortizedCompactionParityAgainstMapOracle) {
  const char* origins[] = {"a", "b", "c", "rib->fib", "send->recv"};
  for (std::size_t budget : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    Rng rng(311 + budget);
    // Big enough that pending crosses the compaction trigger several times.
    const std::size_t n = 700;

    ReferenceHbg oracle;
    HappensBeforeGraph compact;
    compact.set_compact_budget(budget);
    for (IoId id = 1; id <= n; ++id) {
      IoRecord record = make_record(id, static_cast<RouterId>(id % 4));
      oracle.add_vertex(record);
      compact.add_vertex(record);
    }

    std::vector<IoId> probes;
    for (IoId id = 1; id <= n; id += n / 13) probes.push_back(id);
    probes.push_back(n);
    std::vector<double> thresholds{0.0, 0.8};

    bool saw_inflight = false;
    std::size_t edge_attempts = n * 5;
    for (std::size_t i = 0; i < edge_attempts; ++i) {
      IoId from = static_cast<IoId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
      IoId to = static_cast<IoId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
      if (from > to) std::swap(from, to);
      double confidence = rng.uniform_int(1, 10) / 10.0;
      HbgEdge edge{from, to, confidence, origins[rng.uniform_int(0, 4)]};
      oracle.add_edge(edge);
      compact.add_edge(edge);
      saw_inflight |= compact.compaction_in_progress();
      if (i % (edge_attempts / 4) == edge_attempts / 8) {
        SCOPED_TRACE("budget=" + std::to_string(budget) + " checkpoint @" + std::to_string(i) +
                     (compact.compaction_in_progress() ? " (mid-pass)" : ""));
        expect_parity(oracle, compact, probes, thresholds);
      }
    }
    EXPECT_TRUE(saw_inflight) << "budget=" << budget
                              << ": trigger never fired — grow the workload";
    expect_parity(oracle, compact, probes, thresholds);

    // Vertices inserted mid-pass (past the freeze point) must keep their
    // edges across the swap.
    if (!compact.compaction_in_progress()) {
      // Force a pass so the next checks genuinely run mid-flight.
      for (IoId id = 1; id + 1 <= n && !compact.compaction_in_progress(); ++id) {
        HbgEdge edge{id, id + 1, 1.0, "late"};
        oracle.add_edge(edge);
        compact.add_edge(edge);
      }
    }
    if (compact.compaction_in_progress()) {
      IoId fresh = n + 1;
      IoRecord record = make_record(fresh, 0);
      oracle.add_vertex(record);
      compact.add_vertex(record);
      HbgEdge late{1, fresh, 0.5, "late-vertex"};
      oracle.add_edge(late);
      compact.add_edge(late);
      probes.push_back(fresh);

      // Idle-time drain finishes the pass without further appends.
      while (compact.compaction_in_progress()) compact.compact_step(64);
      expect_parity(oracle, compact, probes, thresholds);
    }

    // Eager compact() discards any in-progress pass safely.
    compact.set_compact_budget(1);
    for (IoId id = 1; id + 2 <= n && !compact.compaction_in_progress(); ++id) {
      HbgEdge edge{id, id + 2, 1.0, "discard"};
      oracle.add_edge(edge);
      compact.add_edge(edge);
    }
    compact.compact();
    EXPECT_FALSE(compact.compaction_in_progress());
    EXPECT_EQ(compact.pending_edge_count(), 0u);
    expect_parity(oracle, compact, probes, thresholds);
  }
}

// ---------------------------------------------------------------------------
// Simulator churn-trace parity: inferred edges from a real capture stream,
// fed incrementally (append-side buffer + shared record store) vs the
// oracle fed the same batch edge list.

TEST(HbgCompact, ChurnTraceParityIncrementalVsOracle) {
  Rng topo_rng(51);
  NetworkOptions options;
  options.seed = 51;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = 30;
  churn_options.seed = 52;
  ChurnWorkload churn(generated, churn_options);
  ASSERT_GT(churn.scheduled_events(), 0u);

  // Incremental build in scan-sized slices over the shared capture store.
  Network& net = *generated.network;
  IncrementalHbgBuilder builder;
  builder.attach_store(&net.capture().records());
  std::size_t cursor = 0;
  for (std::size_t step = 0; step < 30; ++step) {
    net.run_for(100'000);
    builder.append(net.capture().records_since(cursor));
    cursor = net.capture().records().size();
  }
  const HappensBeforeGraph& compact = builder.graph();

  // The oracle replays the same records through a fresh engine (the exact
  // edge stream the incremental builder saw).
  const std::vector<IoRecord>& records = net.capture().records();
  ReferenceHbg oracle;
  for (const IoRecord& r : records) oracle.add_vertex(r);
  RuleMatchEngine engine;
  std::vector<InferredHbr> edges;
  for (const IoRecord& r : records) {
    edges.clear();
    engine.add(r, edges);
    for (const InferredHbr& e : edges) oracle.add_edge({e.from, e.to, e.confidence, e.rule});
  }

  std::vector<IoId> probes;
  for (const IoRecord& r : records) {
    if (r.kind == IoKind::kFibUpdate) probes.push_back(r.id);
  }
  ASSERT_FALSE(probes.empty());
  if (probes.size() > 60) {  // cap the O(probes × queries) oracle cost
    std::vector<IoId> sampled;
    for (std::size_t i = 0; i < probes.size(); i += probes.size() / 60) {
      sampled.push_back(probes[i]);
    }
    probes = std::move(sampled);
  }
  expect_parity(oracle, compact, probes, {0.0, 0.9});
}

// ---------------------------------------------------------------------------
// End-to-end: GuardReport digests are identical across 1/2/8 threads (the
// parallel rule matcher and the shared-store graph must not perturb any
// downstream stage), extending the PR 2 parity harness.

std::string run_guard_on_churn(RepairMode mode, unsigned threads, std::uint64_t seed,
                               std::size_t compact_budget = 0) {
  Rng topo_rng(seed);
  NetworkOptions options;
  options.seed = seed;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.event_count = 16;
  churn_options.config_change_probability = 0.2;
  churn_options.seed = seed + 1;
  ChurnWorkload churn(generated, churn_options);

  PolicyList policies;
  for (std::size_t i = 0; i < churn_options.prefix_count; ++i) {
    Prefix p = churn_prefix(i);
    policies.push_back(std::make_shared<LoopFreedomPolicy>(p));
    policies.push_back(std::make_shared<BlackholeFreedomPolicy>(p));
    policies.push_back(std::make_shared<ReachabilityPolicy>(0, p));
  }
  GuardOptions guard_options;
  guard_options.repair = mode;
  guard_options.num_threads = threads;
  guard_options.compact_budget = compact_budget;
  Guard guard(*generated.network, policies, guard_options);
  return guard.run().digest();
}

TEST(HbgCompact, GuardReportParityAcrossThreads) {
  for (RepairMode mode : {RepairMode::kReport, RepairMode::kRevert}) {
    std::string baseline = run_guard_on_churn(mode, 1, 61);
    ASSERT_FALSE(baseline.empty());
    for (unsigned threads : {2u, 8u}) {
      EXPECT_EQ(baseline, run_guard_on_churn(mode, threads, 61))
          << "mode=" << to_string(mode) << " threads=" << threads;
    }
  }
}

// Amortized compaction (GuardOptions::compact_budget) must not perturb the
// report at any budget or thread count: the re-pack preserves per-vertex
// insertion order, so every downstream stage sees identical edge streams.
TEST(HbgCompact, GuardReportParityWithAmortizedCompaction) {
  std::string baseline = run_guard_on_churn(RepairMode::kRevert, 1, 61);
  ASSERT_FALSE(baseline.empty());
  for (std::size_t budget : {std::size_t{4}, std::size_t{64}}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      EXPECT_EQ(baseline, run_guard_on_churn(RepairMode::kRevert, threads, 61, budget))
          << "budget=" << budget << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace hbguard
