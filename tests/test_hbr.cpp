#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "hbguard/hbr/pattern_miner.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/hbr/rules.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {
namespace {

std::span<const IoRecord> trace_of(const PaperScenario& scenario) {
  return scenario.network->capture().records();
}

TEST(GroundTruth, EdgesSkipLostRecords) {
  std::vector<IoRecord> records(2);
  records[0].id = 1;
  records[1].id = 3;
  records[1].true_causes = {1, 2};  // record 2 was lost
  auto edges = ground_truth_edges(records);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, 1u);
  EXPECT_EQ(edges[0].to, 3u);
}

TEST(Score, PerfectInference) {
  std::vector<IoRecord> records(2);
  records[0].id = 1;
  records[1].id = 2;
  records[1].true_causes = {1};
  std::vector<InferredHbr> inferred{{1, 2, 1.0, "x"}};
  auto score = score_inference(records, inferred);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
}

TEST(Score, MixedInference) {
  std::vector<IoRecord> records(3);
  for (int i = 0; i < 3; ++i) records[i].id = static_cast<IoId>(i + 1);
  records[1].true_causes = {1};
  records[2].true_causes = {2};
  std::vector<InferredHbr> inferred{{1, 2, 1.0, "x"}, {1, 3, 1.0, "x"}};  // one right, one wrong
  auto score = score_inference(records, inferred);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.5);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
}

TEST(RuleMatching, HighPrecisionAndRecallOnPaperScenario) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  RuleMatchingInference rules;
  auto inferred = rules.infer(trace_of(scenario));
  auto score = score_inference(trace_of(scenario), inferred);
  EXPECT_GT(score.precision(), 0.8) << "rule matching should rarely invent edges";
  EXPECT_GT(score.recall(), 0.85) << "rule matching should find nearly all true HBRs";
}

TEST(DeclarativeRules, GroupedMatcherIsMorePrecise) {
  // The declarative per-rule scanner emits an edge for every rule whose
  // right-hand side matches, so competing inputs (config vs. recv vs.
  // hardware) each produce edges; the grouped matcher arbitrates to the
  // closest input. Same recall ballpark, much lower precision.
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  auto trace = trace_of(scenario);

  auto declarative = score_inference(trace, DeclarativeRuleInference().infer(trace));
  auto grouped = score_inference(trace, RuleMatchingInference().infer(trace));
  EXPECT_GT(grouped.precision(), declarative.precision());
  EXPECT_GT(declarative.recall(), 0.5) << "declarative rules still find most HBRs";
}

TEST(DeclarativeRules, CustomRuleSetIsHonoured) {
  // Feed a one-rule set: only rib->fib edges may appear.
  std::vector<HbrRule> rules = {{"rib->fib",
                                 {IoKind::kRibUpdate, ProtoClass::kAny, true},
                                 {IoKind::kFibUpdate, ProtoClass::kAny, true},
                                 RuleScope::kSameRouter,
                                 2'000'000,
                                 0}};
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto trace = trace_of(scenario);
  auto edges = DeclarativeRuleInference(rules).infer(trace);
  EXPECT_FALSE(edges.empty());
  for (const InferredHbr& edge : edges) EXPECT_EQ(edge.rule, "rib->fib");
}

TEST(RuleMatching, BeatsTimestampBaseline) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  auto trace = trace_of(scenario);
  auto rule_score = score_inference(trace, RuleMatchingInference().infer(trace));
  auto ts_score = score_inference(trace, TimestampInference().infer(trace));
  EXPECT_GT(rule_score.precision(), ts_score.precision());
  EXPECT_GT(rule_score.f1(), ts_score.f1());
}

TEST(RuleMatching, PrefixFilterBetweenTimestampAndRules) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto trace = trace_of(scenario);
  auto prefix_score = score_inference(trace, PrefixInference().infer(trace));
  auto ts_score = score_inference(trace, TimestampInference().infer(trace));
  EXPECT_GE(prefix_score.precision(), ts_score.precision());
}

TEST(RuleMatching, FindsCrossRouterSendRecvEdges) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  auto trace = trace_of(scenario);
  auto inferred = RuleMatchingInference().infer(trace);

  const CaptureHub& hub = scenario.network->capture();
  std::size_t cross_edges = 0, correct = 0;
  for (const InferredHbr& edge : inferred) {
    if (edge.rule != "send->recv") continue;
    ++cross_edges;
    const IoRecord* to = hub.find(edge.to);
    ASSERT_NE(to, nullptr);
    if (to->message_id == edge.from) ++correct;
  }
  EXPECT_GT(cross_edges, 0u);
  // The vast majority of recvs must be paired with their true send; the
  // rare exceptions are identical messages sent repeatedly (same prefix or
  // same LSA), where "most recent" can pick a sibling transmission.
  EXPECT_GE(correct * 5, cross_edges * 4);
}

TEST(RuleMatching, ConfigToRibCoversSoftReconfigDelay) {
  NetworkOptions options;
  auto scenario = PaperScenario::make(options);
  scenario.network->apply_config_change(scenario.r2, "slow soft reconfig",
                                        [](RouterConfig& config) {
                                          config.bgp.quirks.soft_reconfig_delay_us = 25'000'000;
                                        });
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  auto trace = trace_of(scenario);
  auto inferred = RuleMatchingInference().infer(trace);
  const CaptureHub& hub = scenario.network->capture();

  // Find the misconfiguration record and check a config->rib edge exists
  // from it despite the 25 s gap.
  IoId config_io = kNoIo;
  for (const IoRecord& r : hub.records()) {
    if (r.kind == IoKind::kConfigChange && r.detail.find("local-pref 10") != std::string::npos) {
      config_io = r.id;
    }
  }
  ASSERT_NE(config_io, kNoIo);
  bool found = false;
  for (const InferredHbr& edge : inferred) {
    if (edge.from == config_io && edge.rule == "config->rib") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PatternMining, LearnsAndReproducesCommonChains) {
  // Train on a healthy run...
  auto train_scenario = PaperScenario::make();
  train_scenario.converge_initial();
  PatternMiner::Options options;
  options.min_confidence = 0.5;
  options.min_support = 2;
  PatternMiner miner(options);
  miner.train(trace_of(train_scenario));
  EXPECT_FALSE(miner.patterns().empty());

  // ...infer on a broken run.
  auto test_scenario = PaperScenario::make();
  test_scenario.converge_initial();
  test_scenario.misconfigure_r2_lp10();
  test_scenario.network->run_to_convergence();

  PatternMiningInference inference(std::move(miner));
  auto inferred = inference.infer(trace_of(test_scenario));
  EXPECT_FALSE(inferred.empty());
  auto score = score_inference(trace_of(test_scenario), inferred);
  // Pattern mining is the automation-over-accuracy point in the design
  // space (§4.2 warns about missed HBRs); recall is modest by construction.
  EXPECT_GT(score.recall(), 0.2);
  // Pattern mining is automation-first: it should still be much more
  // precise than the raw timestamp baseline.
  auto ts = score_inference(trace_of(test_scenario),
                            TimestampInference().infer(trace_of(test_scenario)));
  EXPECT_GT(score.precision(), ts.precision());
}

TEST(PatternMining, ParallelScansAreByteIdenticalToSerial) {
  // The miner's candidate scans fan out over a ThreadPool; learned
  // statistics and inferred edge lists must not depend on the worker count
  // (contiguous chunks, per-chunk buffers merged in chunk order).
  auto train_scenario = PaperScenario::make();
  train_scenario.converge_initial();
  auto test_scenario = PaperScenario::make();
  test_scenario.converge_initial();
  test_scenario.misconfigure_r2_lp10();
  test_scenario.network->run_to_convergence();

  auto render = [](const std::vector<InferredHbr>& edges) {
    std::ostringstream out;
    for (const InferredHbr& e : edges) {
      out << e.from << "->" << e.to << "@" << e.confidence << ":" << e.rule << "\n";
    }
    return out.str();
  };

  auto run_with = [&](std::shared_ptr<ThreadPool> pool) {
    PatternMiner::Options options;
    options.min_confidence = 0.5;
    options.min_support = 2;
    PatternMiner miner(options);
    miner.set_thread_pool(std::move(pool));
    // Two train calls: the accumulate-across-calls path must merge the same
    // way chunk counts do.
    miner.train(trace_of(train_scenario));
    miner.train(trace_of(test_scenario));
    return std::make_pair(miner.patterns(), render(miner.infer(trace_of(test_scenario))));
  };

  auto [serial_patterns, serial_edges] = run_with(nullptr);
  ASSERT_FALSE(serial_patterns.empty());
  ASSERT_FALSE(serial_edges.empty());

  for (unsigned threads : {1u, 2u, 8u}) {
    auto [patterns, edges] = run_with(std::make_shared<ThreadPool>(threads));
    EXPECT_EQ(edges, serial_edges) << "threads=" << threads;
    ASSERT_EQ(patterns.size(), serial_patterns.size()) << "threads=" << threads;
    auto expected = serial_patterns.begin();
    for (const auto& [key, stats] : patterns) {
      EXPECT_TRUE(key == expected->first) << "threads=" << threads;
      EXPECT_EQ(stats.pair_count, expected->second.pair_count) << "threads=" << threads;
      EXPECT_EQ(stats.rhs_count, expected->second.rhs_count) << "threads=" << threads;
      ++expected;
    }
  }
}

TEST(PatternMining, ConfidenceThresholdTradesPrecisionForRecall) {
  auto train_scenario = PaperScenario::make();
  train_scenario.converge_initial();

  auto test_scenario = PaperScenario::make();
  test_scenario.converge_initial();
  test_scenario.misconfigure_r2_lp10();
  test_scenario.network->run_to_convergence();
  auto trace = trace_of(test_scenario);

  auto run_at = [&](double threshold) {
    PatternMiner::Options options;
    options.min_confidence = threshold;
    options.min_support = 1;
    PatternMiner miner(options);
    miner.train(trace_of(train_scenario));
    return score_inference(trace, miner.infer(trace));
  };

  auto lax = run_at(0.05);
  auto strict = run_at(0.9);
  EXPECT_GE(strict.precision(), lax.precision());
  EXPECT_GE(lax.recall(), strict.recall());
}

TEST(Combined, UnionImprovesRecallOverRulesAlone) {
  auto train_scenario = PaperScenario::make();
  train_scenario.converge_initial();
  PatternMiner::Options miner_options;
  miner_options.min_confidence = 0.4;
  miner_options.min_support = 2;
  PatternMiner miner(miner_options);
  miner.train(trace_of(train_scenario));

  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();
  auto trace = trace_of(scenario);

  auto rules = std::make_shared<RuleMatchingInference>();
  auto patterns = std::make_shared<PatternMiningInference>(std::move(miner));
  CombinedInference combined({rules, patterns});

  auto rule_score = score_inference(trace, rules->infer(trace));
  auto combined_score = score_inference(trace, combined.infer(trace));
  EXPECT_GE(combined_score.recall(), rule_score.recall());
}

TEST(Combined, DedupesKeepingMaxConfidence) {
  struct Fixed : HbrInferencer {
    std::vector<InferredHbr> edges;
    std::string name() const override { return "fixed"; }
    std::vector<InferredHbr> infer(std::span<const IoRecord>) const override { return edges; }
  };
  auto a = std::make_shared<Fixed>();
  a->edges = {{1, 2, 0.4, "low"}};
  auto b = std::make_shared<Fixed>();
  b->edges = {{1, 2, 0.9, "high"}};
  CombinedInference combined({a, b});
  auto merged = combined.infer({});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].confidence, 0.9);
  EXPECT_EQ(merged[0].rule, "high");
}

TEST(RuleMatching, RobustToClockSkewAndJitter) {
  // Realistic logging imperfections: per-router clock offsets up to 2 ms
  // plus 200 us of per-record noise.
  NetworkOptions options;
  options.capture.clock_offset_us = 2'000;
  options.capture.timestamp_jitter_us = 200;
  auto scenario = PaperScenario::make(options);
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  auto trace = trace_of(scenario);
  MatcherOptions matcher_options;
  matcher_options.local_slack_us = 1'000;
  auto score = score_inference(trace, RuleMatchingInference(matcher_options).infer(trace));
  EXPECT_GT(score.recall(), 0.7) << "clock imperfections shouldn't destroy rule matching";
  EXPECT_GT(score.precision(), 0.7);
}

TEST(RuleMatching, ScalesOnChurnWorkload) {
  Rng rng(11);
  auto generated = make_ibgp_network(make_random_topology(8, 4, rng), 2);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.event_count = 40;
  ChurnWorkload churn(generated, churn_options);
  generated.network->run_to_convergence();

  auto records = generated.network->capture().records();
  auto score = score_inference(records, RuleMatchingInference().infer(records));
  EXPECT_GT(score.precision(), 0.6);
  EXPECT_GT(score.recall(), 0.7);
}

}  // namespace
}  // namespace hbguard
