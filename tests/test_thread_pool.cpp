#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hbguard/util/thread_pool.hpp"

namespace hbguard {
namespace {

TEST(ResolveNumThreads, ZeroMeansHardwareConcurrency) {
  unsigned resolved = resolve_num_threads(0);
  EXPECT_GE(resolved, 1u);
  EXPECT_EQ(resolved, std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ResolveNumThreads, ExplicitValuesPassThrough) {
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_EQ(resolve_num_threads(4), 4u);
  EXPECT_EQ(resolve_num_threads(8), 8u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmittedTasksRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder) {
  // One worker drains the queue strictly in submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i == 7 || i == 40) throw std::runtime_error("index " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 7");
  }
}

TEST(ThreadPool, ParallelForRunsInlineOnSerialPool) {
  // A 1-thread pool executes parallel_for on the calling thread.
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // No explicit wait: destruction must finish every queued task.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroThreadRequestStillWorks) {
  ThreadPool pool(0);  // resolves to hardware concurrency, at least one
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace hbguard
