#include <gtest/gtest.h>

#include "hbguard/net/ip.hpp"
#include "hbguard/net/prefix_trie.hpp"
#include "hbguard/net/topology.hpp"

namespace hbguard {
namespace {

TEST(IpAddress, ParseValid) {
  auto ip = IpAddress::parse("10.1.2.3");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "10.1.2.3");
  EXPECT_EQ(ip->bits(), 0x0a010203u);
}

TEST(IpAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("10.1.2").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(IpAddress::parse("10.1.2.256").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.-4").has_value());
}

TEST(IpAddress, OrderingFollowsNumericValue) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_LT(IpAddress(9, 255, 255, 255), IpAddress(10, 0, 0, 0));
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p(IpAddress(10, 1, 2, 3), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
}

TEST(Prefix, ParseRoundTrip) {
  auto p = Prefix::parse("192.168.128.0/17");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "192.168.128.0/17");
  EXPECT_FALSE(Prefix::parse("192.168.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("192.168.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("bogus/8").has_value());
}

TEST(Prefix, ContainsAndCovers) {
  Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(IpAddress(10, 200, 3, 4)));
  EXPECT_FALSE(p.contains(IpAddress(11, 0, 0, 0)));
  EXPECT_TRUE(p.covers(*Prefix::parse("10.5.0.0/16")));
  EXPECT_TRUE(p.covers(p));
  EXPECT_FALSE(p.covers(*Prefix::parse("0.0.0.0/0")));
}

TEST(Prefix, DefaultRouteCoversEverything) {
  Prefix d = Prefix::default_route();
  EXPECT_TRUE(d.contains(IpAddress(255, 255, 255, 255)));
  EXPECT_TRUE(d.covers(*Prefix::parse("203.0.113.0/24")));
  EXPECT_EQ(d.size(), std::uint64_t{1} << 32);
}

TEST(PrefixTrie, ExactInsertFindErase) {
  PrefixTrie<int> trie;
  Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(trie.insert(p, 1));
  EXPECT_FALSE(trie.insert(p, 2));  // overwrite, not new
  ASSERT_NE(trie.find(p), nullptr);
  EXPECT_EQ(*trie.find(p), 2);
  EXPECT_TRUE(trie.erase(p));
  EXPECT_FALSE(trie.erase(p));
  EXPECT_EQ(trie.find(p), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie<std::string> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), "eight");
  trie.insert(*Prefix::parse("10.1.0.0/16"), "sixteen");
  trie.insert(*Prefix::parse("0.0.0.0/0"), "default");

  const std::string* hit = trie.longest_match(IpAddress(10, 1, 2, 3));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "sixteen");

  hit = trie.longest_match(IpAddress(10, 9, 9, 9));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "eight");

  hit = trie.longest_match(IpAddress(192, 0, 2, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "default");
}

TEST(PrefixTrie, LongestMatchWithoutDefaultReturnsNull) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.longest_match(IpAddress(11, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, HostRouteDepth32) {
  PrefixTrie<int> trie;
  Prefix host = *Prefix::parse("10.255.0.1/32");
  trie.insert(host, 7);
  const int* hit = trie.longest_match(IpAddress(10, 255, 0, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  EXPECT_EQ(trie.longest_match(IpAddress(10, 255, 0, 2)), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAllInsertedPrefixes) {
  PrefixTrie<int> trie;
  std::vector<Prefix> inserted = {
      *Prefix::parse("10.0.0.0/8"),
      *Prefix::parse("10.128.0.0/9"),
      *Prefix::parse("192.168.1.0/24"),
      *Prefix::parse("0.0.0.0/0"),
  };
  for (std::size_t i = 0; i < inserted.size(); ++i) trie.insert(inserted[i], static_cast<int>(i));
  auto prefixes = trie.prefixes();
  EXPECT_EQ(prefixes.size(), inserted.size());
  for (const Prefix& p : inserted) {
    EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), p), prefixes.end())
        << p.to_string() << " missing from for_each output";
  }
}

TEST(PrefixSpaceBoundaries, PartitionsAtomically) {
  std::vector<Prefix> prefixes = {*Prefix::parse("10.0.0.0/8"), *Prefix::parse("10.1.0.0/16")};
  auto bounds = prefix_space_boundaries(prefixes);
  // Expected boundaries: 0, 10.0.0.0, 10.1.0.0, 10.2.0.0, 11.0.0.0
  EXPECT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], IpAddress(10, 0, 0, 0).bits());
  EXPECT_EQ(bounds[2], IpAddress(10, 1, 0, 0).bits());
  EXPECT_EQ(bounds[3], IpAddress(10, 2, 0, 0).bits());
  EXPECT_EQ(bounds[4], IpAddress(11, 0, 0, 0).bits());
}

TEST(PrefixSpaceBoundaries, FullSpacePrefixYieldsOnlyZero) {
  auto bounds = prefix_space_boundaries({Prefix::default_route()});
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0], 0u);
}

TEST(Topology, AddAndQuery) {
  Topology topo;
  RouterId a = topo.add_router("A", 65000);
  RouterId b = topo.add_router("B", 65000);
  RouterId c = topo.add_router("C", 65001);
  LinkId ab = topo.add_link(a, b, 500, 10);
  topo.add_link(b, c);

  EXPECT_EQ(topo.router_count(), 3u);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.router(a).name, "A");
  EXPECT_EQ(topo.router(c).as_number, 65001u);
  EXPECT_EQ(topo.find_router("B"), b);
  EXPECT_FALSE(topo.find_router("Z").has_value());
  ASSERT_TRUE(topo.link_between(a, b).has_value());
  EXPECT_EQ(*topo.link_between(a, b), ab);
  EXPECT_FALSE(topo.link_between(a, c).has_value());
  EXPECT_EQ(topo.link(ab).delay_us, 500);
  EXPECT_EQ(topo.link(ab).igp_cost, 10u);
}

TEST(Topology, DuplicateNameRejected) {
  Topology topo;
  topo.add_router("A");
  EXPECT_THROW(topo.add_router("A"), std::invalid_argument);
}

TEST(Topology, BadLinkEndpointsRejected) {
  Topology topo;
  RouterId a = topo.add_router("A");
  EXPECT_THROW(topo.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, 99), std::invalid_argument);
}

TEST(Topology, UpNeighborsRespectsLinkState) {
  Topology topo;
  RouterId a = topo.add_router("A");
  RouterId b = topo.add_router("B");
  RouterId c = topo.add_router("C");
  LinkId ab = topo.add_link(a, b);
  topo.add_link(a, c);

  auto neighbors = topo.up_neighbors(a);
  EXPECT_EQ(neighbors.size(), 2u);
  topo.set_link_state(ab, false);
  neighbors = topo.up_neighbors(a);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], c);
}

}  // namespace
}  // namespace hbguard
