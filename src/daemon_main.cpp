// hbguardd — long-running guard daemon over Unix-domain sockets.
//
//   hbguardd [options]            serve until a `shutdown` RPC
//   hbguardd --smoke              self-test: serve, stream the Fig. 2 demo
//                                 trace through the ingest socket, assert
//                                 digest parity with the synchronous pass,
//                                 >= 1 clean scan, and a clean shutdown
//   hbguardd --soak <records>     self-benchmark: stream a generated churn
//                                 trace of ~<records> records and report
//                                 ingest rate and scan cadence (EXPERIMENTS
//                                 A12)
//
// Options:
//   --dir <path>          socket directory (default /tmp/hbguardd)
//   --prefix <cidr>       policy prefix (repeatable): loop + blackhole
//                         freedom per prefix
//   --cadence-us <n>      virtual-time scan cadence (default 100000)
//   --on-delta <n>        also scan every <n> ingested records (default off)
//   --threads <n>         guard worker threads (default 1)
//   --compact-budget <n>  amortized HBG compaction budget (default 512)
//   --mode <m>            report | propose (default propose: repairs queue
//                         for `hbgctl live ... repairs approve`)
//   --state-dir <path>    durable WAL + checkpoints here; on restart the
//                         session is recovered byte-identically (default
//                         off: in-memory only)
//   --fsync-interval <n>  WAL entries per group fdatasync (default 256;
//                         0 = no fsync, flush-only)
//   --checkpoint-every <n> checkpoint + WAL rotation cadence in WAL entries
//                         (default 20000; 0 = only at shutdown/SIGHUP)
//   --no-recover          discard any durable state in --state-dir and
//                         start fresh (loud)
//   --coverage-target <f> traffic-weighted scheduling: stop each scan once
//                         this fraction of the destination traffic weight
//                         is covered (0..1; enables scheduling)
//   --scan-budget <n>     hard cap on destinations verified per scan
//                         (enables scheduling; 0 = uncapped)
//   --aging-scans <n>     scans a deferred destination may wait before it
//                         jumps the weight order (default 16)
//
// Signals: SIGTERM/SIGINT exit cleanly through a final checkpoint + WAL
// sync; SIGHUP forces an immediate checkpoint + WAL rotation.
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hbguard/capture/trace_io.hpp"
#include "hbguard/daemon/daemon.hpp"
#include "hbguard/sim/scenario.hpp"
#include "hbguard/sim/workload.hpp"
#include "hbguard/util/logging.hpp"

using namespace hbguard;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hbguardd [--dir <path>] [--prefix <cidr>]... [--cadence-us <n>]\n"
               "                [--on-delta <n>] [--threads <n>] [--compact-budget <n>]\n"
               "                [--mode report|propose] [--state-dir <path>]\n"
               "                [--fsync-interval <n>] [--checkpoint-every <n>]\n"
               "                [--no-recover] [--coverage-target <f>] [--scan-budget <n>]\n"
               "                [--aging-scans <n>] [--smoke] [--soak <records>]\n");
  return 2;
}

GuardDaemon* g_daemon = nullptr;

void handle_exit_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();  // async-signal-safe: atomic + pipe write
}

void handle_sighup(int) {
  if (g_daemon != nullptr) g_daemon->request_checkpoint();
}

// ---- Minimal blocking Unix-socket client (smoke/soak self-drive) ----------

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// One RPC round-trip: send `command`, collect the "." framed response.
std::string rpc(int fd, const std::string& command) {
  if (!send_all(fd, command + "\n")) return {};
  std::string buffer;
  std::string body;
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line == ".") return body;
      if (!line.empty() && line[0] == '.') line.erase(0, 1);  // un-dot-stuff
      body += line;
      body += '\n';
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return body;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Strip trailing newlines before comparing RPC bodies with library output
/// (the line framing normalizes the final newline).
std::string chomp(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::string to_jsonl(const std::vector<IoRecord>& records) {
  std::ostringstream out;
  write_trace(out, records);
  return out.str();
}

struct SelfDrive {
  DaemonOptions options;
  std::vector<IoRecord> trace;
};

/// Serve `drive.options` on a background thread, stream `drive.trace`
/// through the ingest socket, and return the daemon's digest RPC response
/// (empty on transport failure). `status_out`/`shutdown_ok` report the rest
/// of the conversation.
std::string stream_through_daemon(const SelfDrive& drive, std::string* status_out,
                                  bool* shutdown_ok, double* ingest_seconds) {
  GuardDaemon daemon(drive.options);
  if (!daemon.bind()) return {};
  std::thread server([&daemon] { daemon.run(); });

  std::string digest;
  int ingest = connect_unix(daemon.ingest_socket_path());
  if (ingest >= 0) {
    auto start = std::chrono::steady_clock::now();
    send_all(ingest, to_jsonl(drive.trace));
    ::close(ingest);  // EOF: the daemon drains the inbox
    int control = connect_unix(daemon.control_socket_path());
    if (control >= 0) {
      digest = rpc(control, "digest");  // waits for ingest quiescence
      if (ingest_seconds != nullptr) {
        *ingest_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                              .count();
      }
      if (status_out != nullptr) *status_out = rpc(control, "status");
      std::string bye = rpc(control, "shutdown");
      if (shutdown_ok != nullptr) *shutdown_ok = bye.rfind("ok", 0) == 0;
      ::close(control);
    }
  }
  server.join();
  return digest;
}

int run_smoke(DaemonOptions options) {
  auto scenario = PaperScenario::make();
  scenario.converge_initial();
  scenario.misconfigure_r2_lp10();
  scenario.network->run_to_convergence();

  options.socket_dir = "/tmp/hbguardd-smoke-" + std::to_string(::getpid());
  options.session.policies.clear();
  options.session.policies.push_back(std::make_shared<LoopFreedomPolicy>(scenario.prefix_p));
  options.session.policies.push_back(
      std::make_shared<BlackholeFreedomPolicy>(scenario.prefix_p));

  SelfDrive drive{options, scenario.network->capture().records()};
  GuardReport offline = ReplayGuardSession::run_offline(drive.trace, options.session);

  std::string status;
  bool shutdown_ok = false;
  std::string digest = stream_through_daemon(drive, &status, &shutdown_ok, nullptr);

  bool parity = !digest.empty() && chomp(digest) == chomp(offline.digest());
  bool clean_scan = offline.clean_scans >= 1;  // digest parity => daemon saw the same
  std::printf("hbguardd --smoke: %zu records, %zu scans (%zu clean), %zu incident(s)\n",
              drive.trace.size(), offline.scans, offline.clean_scans,
              offline.incidents.size());
  std::printf("  digest parity (socket vs synchronous): %s\n", parity ? "OK" : "MISMATCH");
  std::printf("  >=1 clean scan: %s\n", clean_scan ? "OK" : "FAIL");
  std::printf("  clean shutdown: %s\n", shutdown_ok ? "OK" : "FAIL");
  if (!status.empty()) std::printf("  status: %s", status.c_str());
  return parity && clean_scan && shutdown_ok ? 0 : 1;
}

int run_soak(DaemonOptions options, std::size_t target_records) {
  // Generate churn until the capture holds ~target_records.
  Rng topo_rng(97);
  NetworkOptions net_options;
  net_options.seed = 97;
  auto generated = make_ibgp_network(make_waxman_topology(8, topo_rng), 2, net_options);
  generated.network->run_to_convergence();
  ChurnOptions churn_options;
  churn_options.prefix_count = 4;
  churn_options.seed = 98;
  churn_options.event_count = 64;
  std::size_t rounds = 0;
  while (generated.network->capture().records().size() < target_records && rounds < 64) {
    churn_options.seed = 98 + rounds;
    ChurnWorkload churn(generated, churn_options);
    generated.network->run_to_convergence();
    ++rounds;
  }
  const std::vector<IoRecord>& trace = generated.network->capture().records();

  options.socket_dir = "/tmp/hbguardd-soak-" + std::to_string(::getpid());
  options.session.policies.clear();
  for (std::size_t i = 0; i < churn_options.prefix_count; ++i) {
    Prefix p = churn_prefix(i);
    options.session.policies.push_back(std::make_shared<LoopFreedomPolicy>(p));
    options.session.policies.push_back(std::make_shared<BlackholeFreedomPolicy>(p));
  }

  SelfDrive drive{options, trace};
  std::string status;
  bool shutdown_ok = false;
  double seconds = 0;
  std::string digest = stream_through_daemon(drive, &status, &shutdown_ok, &seconds);
  if (digest.empty() || !shutdown_ok) {
    std::fprintf(stderr, "hbguardd --soak: transport failure\n");
    return 1;
  }

  GuardReport offline = ReplayGuardSession::run_offline(trace, options.session);
  bool parity = chomp(digest) == chomp(offline.digest());
  double rate = seconds > 0 ? static_cast<double>(trace.size()) / seconds : 0;
  std::printf("hbguardd --soak: %zu records in %.3fs end-to-end (%.0f records/s)\n",
              trace.size(), seconds, rate);
  std::printf("  scans: %zu (%zu clean, %zu incidents), cadence %lldus, on-delta %zu\n",
              offline.scans, offline.clean_scans, offline.incidents.size(),
              static_cast<long long>(options.session.scan_every_us),
              options.session.scan_delta_threshold);
  std::printf("  per-scan wall budget: %.2fms (end-to-end / scans)\n",
              offline.scans > 0 ? 1000.0 * seconds / static_cast<double>(offline.scans) : 0.0);
  std::printf("  digest parity under load: %s\n", parity ? "OK" : "MISMATCH");
  if (!status.empty()) std::printf("  status: %s", status.c_str());
  return parity ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions options;
  options.session.guard.repair = RepairMode::kProposeOnly;
  options.session.guard.num_threads = 1;
  options.session.guard.compact_budget = 512;

  bool smoke = false;
  std::size_t soak = 0;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "hbguardd: %s needs a value\n", flag);
        std::exit(usage());
      }
      return args[++i];
    };
    if (args[i] == "--dir") {
      options.socket_dir = next("--dir");
    } else if (args[i] == "--prefix") {
      auto prefix = Prefix::parse(next("--prefix"));
      if (!prefix) {
        std::fprintf(stderr, "hbguardd: bad prefix\n");
        return 2;
      }
      options.session.policies.push_back(std::make_shared<LoopFreedomPolicy>(*prefix));
      options.session.policies.push_back(std::make_shared<BlackholeFreedomPolicy>(*prefix));
    } else if (args[i] == "--cadence-us") {
      options.session.scan_every_us = std::stoll(next("--cadence-us"));
    } else if (args[i] == "--on-delta") {
      options.session.scan_delta_threshold = std::stoull(next("--on-delta"));
    } else if (args[i] == "--threads") {
      options.session.guard.num_threads =
          static_cast<unsigned>(std::stoul(next("--threads")));
    } else if (args[i] == "--compact-budget") {
      options.session.guard.compact_budget = std::stoull(next("--compact-budget"));
    } else if (args[i] == "--mode") {
      std::string mode = next("--mode");
      if (mode == "report") {
        options.session.guard.repair = RepairMode::kReport;
      } else if (mode == "propose") {
        options.session.guard.repair = RepairMode::kProposeOnly;
      } else {
        std::fprintf(stderr, "hbguardd: unknown --mode %s\n", mode.c_str());
        return 2;
      }
    } else if (args[i] == "--state-dir") {
      options.state_dir = next("--state-dir");
    } else if (args[i] == "--fsync-interval") {
      options.fsync_interval = std::stoull(next("--fsync-interval"));
    } else if (args[i] == "--checkpoint-every") {
      options.checkpoint_every = std::stoull(next("--checkpoint-every"));
    } else if (args[i] == "--no-recover") {
      options.recover = false;
    } else if (args[i] == "--coverage-target") {
      options.session.guard.traffic.enabled = true;
      options.session.guard.traffic.coverage_target = std::stod(next("--coverage-target"));
    } else if (args[i] == "--scan-budget") {
      options.session.guard.traffic.enabled = true;
      options.session.guard.traffic.max_items = std::stoull(next("--scan-budget"));
    } else if (args[i] == "--aging-scans") {
      options.session.guard.traffic.aging_scans = std::stoull(next("--aging-scans"));
    } else if (args[i] == "--smoke") {
      smoke = true;
    } else if (args[i] == "--soak") {
      soak = std::stoull(next("--soak"));
    } else {
      return usage();
    }
  }

  if (smoke) return run_smoke(options);
  if (soak > 0) return run_soak(options, soak);

  if (options.session.policies.empty()) {
    std::fprintf(stderr,
                 "hbguardd: no --prefix given; scans will verify an empty policy list\n");
  }
  GuardDaemon daemon(options);
  g_daemon = &daemon;
  struct sigaction action{};
  action.sa_handler = handle_exit_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  action.sa_handler = handle_sighup;
  ::sigaction(SIGHUP, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon
  if (!daemon.bind()) return 1;
  std::printf("hbguardd: ingest %s control %s\n", daemon.ingest_socket_path().c_str(),
              daemon.control_socket_path().c_str());
  int code = daemon.run();
  g_daemon = nullptr;
  return code;
}
