// Verification policies.
//
// A policy checks one operator intent against a data-plane snapshot and
// reports violations. The built-in set covers the properties the paper
// references: loop freedom, blackhole freedom ("traffic is never silently
// lost"), reachability, waypoint traversal ("traffic should never bypass a
// firewall", §5) and the running example's preferred-exit policy ("R2 is
// the preferred exit point when its uplink is up; otherwise R1", §2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hbguard/verify/forwarding_graph.hpp"

namespace hbguard {

struct Violation {
  std::string policy;
  Prefix prefix;
  RouterId router = kInvalidRouter;  // where the offending behaviour shows
  std::string detail;

  std::string describe() const;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// Append violations found in `ctx`'s snapshot to `out`. Policies obtain
  /// forwarding traces via `ctx.trace()` so the sharded verifier can serve
  /// them from pre-computed (and memoized) per-destination graphs; results
  /// are identical to tracing on the fly.
  virtual void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const = 0;
  /// Destination prefixes this policy reasons about (drives the sharded and
  /// distributed verifiers' work partitioning).
  virtual std::vector<Prefix> prefixes() const = 0;

  /// Convenience: evaluate against a bare snapshot (traces on the fly).
  void check(const DataPlaneSnapshot& snapshot, std::vector<Violation>& out) const {
    evaluate(VerifyContext(snapshot), out);
  }
};

/// No forwarding loop for the prefix, from any source.
class LoopFreedomPolicy : public Policy {
 public:
  explicit LoopFreedomPolicy(Prefix prefix) : prefix_(prefix) {}
  std::string name() const override { return "loop-freedom(" + prefix_.to_string() + ")"; }
  void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const override;
  std::vector<Prefix> prefixes() const override { return {prefix_}; }

 private:
  Prefix prefix_;
};

/// Any router holding a route for the prefix must be able to deliver it
/// (no blackholes, drops, or dead uplinks downstream).
class BlackholeFreedomPolicy : public Policy {
 public:
  explicit BlackholeFreedomPolicy(Prefix prefix) : prefix_(prefix) {}
  std::string name() const override { return "blackhole-freedom(" + prefix_.to_string() + ")"; }
  void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const override;
  std::vector<Prefix> prefixes() const override { return {prefix_}; }

 private:
  Prefix prefix_;
};

/// Traffic from `source` for the prefix must reach an exit.
class ReachabilityPolicy : public Policy {
 public:
  ReachabilityPolicy(RouterId source, Prefix prefix) : source_(source), prefix_(prefix) {}
  std::string name() const override {
    return "reachability(R" + std::to_string(source_) + "," + prefix_.to_string() + ")";
  }
  void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const override;
  std::vector<Prefix> prefixes() const override { return {prefix_}; }

 private:
  RouterId source_;
  Prefix prefix_;
};

/// All delivered traffic for the prefix must traverse `waypoint`.
class WaypointPolicy : public Policy {
 public:
  WaypointPolicy(Prefix prefix, RouterId waypoint) : prefix_(prefix), waypoint_(waypoint) {}
  std::string name() const override {
    return "waypoint(" + prefix_.to_string() + ",R" + std::to_string(waypoint_) + ")";
  }
  void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const override;
  std::vector<Prefix> prefixes() const override { return {prefix_}; }

 private:
  Prefix prefix_;
  RouterId waypoint_;
};

/// The paper's running policy: traffic for the prefix exits via
/// (preferred_router, preferred_session) whenever that uplink is up,
/// otherwise via (backup_router, backup_session).
class PreferredExitPolicy : public Policy {
 public:
  PreferredExitPolicy(Prefix prefix, RouterId preferred_router, std::string preferred_session,
                      RouterId backup_router, std::string backup_session)
      : prefix_(prefix),
        preferred_router_(preferred_router),
        preferred_session_(std::move(preferred_session)),
        backup_router_(backup_router),
        backup_session_(std::move(backup_session)) {}
  std::string name() const override { return "preferred-exit(" + prefix_.to_string() + ")"; }
  void evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const override;
  std::vector<Prefix> prefixes() const override { return {prefix_}; }

 private:
  /// Routers that have no route at all for the prefix do not violate this
  /// policy (the route may simply be withdrawn everywhere).
  Prefix prefix_;
  RouterId preferred_router_;
  std::string preferred_session_;
  RouterId backup_router_;
  std::string backup_session_;
};

using PolicyList = std::vector<std::shared_ptr<Policy>>;

}  // namespace hbguard
