#include "hbguard/verify/forwarding_graph.hpp"

#include <set>
#include <sstream>

namespace hbguard {

std::string_view to_string(ForwardOutcome outcome) {
  switch (outcome) {
    case ForwardOutcome::kDelivered: return "delivered";
    case ForwardOutcome::kExternal: return "external";
    case ForwardOutcome::kDropped: return "dropped";
    case ForwardOutcome::kBlackhole: return "blackhole";
    case ForwardOutcome::kLoop: return "loop";
    case ForwardOutcome::kDeadUplink: return "dead-uplink";
  }
  return "?";
}

std::string ForwardTrace::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << " -> ";
    out << "R" << path[i];
  }
  out << " [" << to_string(outcome);
  if (outcome == ForwardOutcome::kExternal) out << " via " << exit_session;
  out << "]";
  return out.str();
}

DestinationForwarding compute_destination_forwarding(const DataPlaneSnapshot& snapshot,
                                                     IpAddress destination) {
  DestinationForwarding forwarding;
  for (const auto& [router, view] : snapshot.routers) {
    forwarding.traces.emplace(router, trace_forwarding(snapshot, router, destination));
  }
  return forwarding;
}

std::string forwarding_signature(const DataPlaneSnapshot& snapshot, IpAddress destination) {
  // Plain string appends: this runs once per destination per verify() and
  // stream formatting would dominate the sharded verifier's serial phase.
  std::string out;
  out.reserve(snapshot.routers.size() * 8);
  for (const auto& [router, view] : snapshot.routers) {
    const FibEntry* entry = snapshot.lookup(router, destination);
    out += std::to_string(router);
    out += ':';
    if (entry == nullptr) {
      out += "-;";
      continue;
    }
    switch (entry->action) {
      case FibEntry::Action::kForward:
        out += 'F';
        out += std::to_string(entry->next_hop);
        break;
      case FibEntry::Action::kExternal:
        out += 'X';
        out += entry->external_session;
        if (!snapshot.uplink_up(router, entry->external_session)) out += '!';
        break;
      case FibEntry::Action::kLocal: out += 'L'; break;
      case FibEntry::Action::kDrop: out += 'D'; break;
    }
    out += ';';
  }
  return out;
}

const ForwardTrace& VerifyContext::trace(RouterId source, IpAddress destination) const {
  if (traces_ != nullptr) {
    auto it = traces_->find(destination.bits());
    if (it != traces_->end()) {
      auto trace_it = it->second->traces.find(source);
      if (trace_it != it->second->traces.end()) return trace_it->second;
    }
  }
  scratch_ = trace_forwarding(*snapshot_, source, destination);
  return scratch_;
}

ForwardTrace trace_forwarding(const DataPlaneSnapshot& snapshot, RouterId source,
                              IpAddress destination) {
  ForwardTrace trace;
  std::set<RouterId> visited;
  RouterId current = source;
  while (true) {
    trace.path.push_back(current);
    if (!visited.insert(current).second) {
      trace.outcome = ForwardOutcome::kLoop;
      return trace;
    }
    const FibEntry* entry = snapshot.lookup(current, destination);
    if (entry == nullptr) {
      trace.outcome = ForwardOutcome::kBlackhole;
      return trace;
    }
    switch (entry->action) {
      case FibEntry::Action::kLocal:
        trace.outcome = ForwardOutcome::kDelivered;
        trace.exit_router = current;
        return trace;
      case FibEntry::Action::kDrop:
        trace.outcome = ForwardOutcome::kDropped;
        return trace;
      case FibEntry::Action::kExternal:
        trace.exit_router = current;
        trace.exit_session = entry->external_session;
        trace.outcome = snapshot.uplink_up(current, entry->external_session)
                            ? ForwardOutcome::kExternal
                            : ForwardOutcome::kDeadUplink;
        return trace;
      case FibEntry::Action::kForward:
        current = entry->next_hop;
        if (!snapshot.routers.contains(current)) {
          trace.path.push_back(current);
          trace.outcome = ForwardOutcome::kBlackhole;
          return trace;
        }
        break;
    }
  }
}

}  // namespace hbguard
