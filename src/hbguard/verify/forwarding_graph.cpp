#include "hbguard/verify/forwarding_graph.hpp"

#include <set>
#include <sstream>

namespace hbguard {

std::string_view to_string(ForwardOutcome outcome) {
  switch (outcome) {
    case ForwardOutcome::kDelivered: return "delivered";
    case ForwardOutcome::kExternal: return "external";
    case ForwardOutcome::kDropped: return "dropped";
    case ForwardOutcome::kBlackhole: return "blackhole";
    case ForwardOutcome::kLoop: return "loop";
    case ForwardOutcome::kDeadUplink: return "dead-uplink";
  }
  return "?";
}

std::string ForwardTrace::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << " -> ";
    out << "R" << path[i];
  }
  out << " [" << to_string(outcome);
  if (outcome == ForwardOutcome::kExternal) out << " via " << exit_session;
  out << "]";
  return out.str();
}

ForwardTrace trace_forwarding(const DataPlaneSnapshot& snapshot, RouterId source,
                              IpAddress destination) {
  ForwardTrace trace;
  std::set<RouterId> visited;
  RouterId current = source;
  while (true) {
    trace.path.push_back(current);
    if (!visited.insert(current).second) {
      trace.outcome = ForwardOutcome::kLoop;
      return trace;
    }
    const FibEntry* entry = snapshot.lookup(current, destination);
    if (entry == nullptr) {
      trace.outcome = ForwardOutcome::kBlackhole;
      return trace;
    }
    switch (entry->action) {
      case FibEntry::Action::kLocal:
        trace.outcome = ForwardOutcome::kDelivered;
        trace.exit_router = current;
        return trace;
      case FibEntry::Action::kDrop:
        trace.outcome = ForwardOutcome::kDropped;
        return trace;
      case FibEntry::Action::kExternal:
        trace.exit_router = current;
        trace.exit_session = entry->external_session;
        trace.outcome = snapshot.uplink_up(current, entry->external_session)
                            ? ForwardOutcome::kExternal
                            : ForwardOutcome::kDeadUplink;
        return trace;
      case FibEntry::Action::kForward:
        current = entry->next_hop;
        if (!snapshot.routers.contains(current)) {
          trace.path.push_back(current);
          trace.outcome = ForwardOutcome::kBlackhole;
          return trace;
        }
        break;
    }
  }
}

}  // namespace hbguard
