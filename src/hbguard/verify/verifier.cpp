#include "hbguard/verify/verifier.hpp"

#include <set>

namespace hbguard {

VerifyResult Verifier::verify(const DataPlaneSnapshot& snapshot) const {
  VerifyResult result;
  for (const auto& policy : policies_) {
    policy->check(snapshot, result.violations);
  }
  return result;
}

VerdictComparison compare_verdicts(const Verifier& verifier, const DataPlaneSnapshot& observed,
                                   const DataPlaneSnapshot& truth) {
  VerdictComparison comparison;
  for (const auto& policy : verifier.policies()) {
    std::vector<Violation> observed_violations;
    policy->check(observed, observed_violations);
    std::vector<Violation> truth_violations;
    policy->check(truth, truth_violations);

    bool observed_flags = !observed_violations.empty();
    bool truth_flags = !truth_violations.empty();
    if (observed_flags == truth_flags) {
      ++comparison.agree;
    } else if (observed_flags) {
      ++comparison.false_alarms;
    } else {
      ++comparison.missed;
    }
  }
  return comparison;
}

}  // namespace hbguard
