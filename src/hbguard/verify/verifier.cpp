#include "hbguard/verify/verifier.hpp"

#include <set>

namespace hbguard {

VerifyResult Verifier::verify(const DataPlaneSnapshot& snapshot) const {
  return verify(snapshot, nullptr, nullptr);
}

VerifyResult Verifier::verify(const DataPlaneSnapshot& snapshot,
                              const SnapshotDelta* delta) const {
  return verify(snapshot, delta, nullptr);
}

VerifyResult Verifier::verify(const DataPlaneSnapshot& snapshot, const SnapshotDelta* delta,
                              const VerifyPlan* plan) const {
  if (resolve_num_threads(options_.num_threads) == 1) return verify_serial(snapshot, plan);
  return verify_sharded(snapshot, delta, plan);
}

bool Verifier::plan_covers(const VerifyPlan* plan, const Policy& policy) {
  if (plan == nullptr) return true;
  for (const Prefix& prefix : policy.prefixes()) {
    if (!plan->covers(representative(prefix).bits())) return false;
  }
  return true;
}

VerifyResult Verifier::verify_serial(const DataPlaneSnapshot& snapshot,
                                     const VerifyPlan* plan) const {
  VerifyResult result;
  for (const auto& policy : policies_) {
    if (!plan_covers(plan, *policy)) {
      ++result.deferred_policies;
      continue;
    }
    ++result.evaluated_policies;
    policy->check(snapshot, result.violations);
  }
  return result;
}

VerifyResult Verifier::verify_sharded(const DataPlaneSnapshot& snapshot,
                                      const SnapshotDelta* delta,
                                      const VerifyPlan* plan) const {
  std::shared_ptr<ThreadPool> pool = thread_pool();

  // The destinations the policy set reasons about, in first-appearance
  // order (stable across runs). Destinations the plan defers are dropped
  // here — no signature, no trace, no cache traffic for them this run.
  std::vector<IpAddress> destinations;
  std::set<std::uint32_t> seen;
  for (const auto& policy : policies_) {
    for (const Prefix& prefix : policy->prefixes()) {
      IpAddress destination = representative(prefix);
      if (plan != nullptr && !plan->covers(destination.bits())) continue;
      if (seen.insert(destination.bits()).second) destinations.push_back(destination);
    }
  }

  // lookup() builds per-router tries lazily and is not safe for concurrent
  // first calls; build them all before fanning out.
  snapshot.warm_lookup_cache();

  // Phase 1 — classify each destination by its behaviour signature and
  // serve unchanged classes from the memo cache (serially: the signature is
  // one lookup per router, ~a path-length factor cheaper than tracing).
  // With a caller-supplied delta, destinations it proves untouched skip
  // even the signature: their graph from the previous verify() is still
  // exact (the signature is a function of per-router lookups and uplink
  // state, both covered by SnapshotDelta::affects).
  VerifyContext::TraceTable table;
  std::vector<std::size_t> miss_indices;
  std::vector<std::string> miss_signatures;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.runs;
    stats_.destinations += destinations.size();
    for (std::size_t i = 0; i < destinations.size(); ++i) {
      std::uint32_t bits = destinations[i].bits();
      if (delta != nullptr && !delta->full && options_.memoize) {
        auto last = last_graphs_.find(bits);
        // The delta only describes changes since the *previous* run; an
        // entry a plan deferred across runs missed deltas this one doesn't
        // cover, so only run-(N-1) graphs are delta-skippable.
        if (last != last_graphs_.end() && last->second.second == stats_.runs - 1 &&
            !delta->affects(destinations[i])) {
          ++stats_.delta_skips;
          table[bits] = last->second.first;
          last->second.second = stats_.runs;  // still exact for the next run
          continue;
        }
      }
      std::string signature = forwarding_signature(snapshot, destinations[i]);
      if (options_.memoize) {
        auto it = cache_.find(signature);
        if (it != cache_.end()) {
          ++stats_.cache_hits;
          table[bits] = it->second;
          last_graphs_[bits] = {it->second, stats_.runs};
          continue;
        }
      }
      ++stats_.cache_misses;
      miss_indices.push_back(i);
      miss_signatures.push_back(std::move(signature));
    }
  }

  // Phase 2 — build the missing forwarding graphs concurrently, one task
  // per destination (results land in per-index slots: no locks, and the
  // merge below is order-independent of scheduling).
  std::vector<DestinationForwardingRef> built(miss_indices.size());
  pool->parallel_for(miss_indices.size(), [&](std::size_t i) {
    built[i] = std::make_shared<DestinationForwarding>(
        compute_destination_forwarding(snapshot, destinations[miss_indices[i]]));
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.memoize && cache_.size() + built.size() > options_.max_cached_classes) {
      cache_.clear();
    }
    for (std::size_t i = 0; i < miss_indices.size(); ++i) {
      std::uint32_t bits = destinations[miss_indices[i]].bits();
      table[bits] = built[i];
      last_graphs_[bits] = {built[i], stats_.runs};
      if (options_.memoize) cache_[miss_signatures[i]] = built[i];
    }
  }

  // Phase 3 — evaluate the covered policies concurrently over the shared
  // graphs, then merge in policy order: byte-identical to the serial
  // report. Deferred policies keep their (empty) slot so the merge order
  // never depends on the plan.
  VerifyContext ctx(snapshot, &table);
  VerifyResult result;
  std::vector<std::vector<Violation>> per_policy(policies_.size());
  std::vector<bool> covered_policy(policies_.size(), true);
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    covered_policy[i] = plan_covers(plan, *policies_[i]);
    if (covered_policy[i]) {
      ++result.evaluated_policies;
    } else {
      ++result.deferred_policies;
    }
  }
  pool->parallel_for(policies_.size(), [&](std::size_t i) {
    if (covered_policy[i]) policies_[i]->evaluate(ctx, per_policy[i]);
  });

  for (std::vector<Violation>& violations : per_policy) {
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(violations.begin()),
                             std::make_move_iterator(violations.end()));
  }
  return result;
}

std::shared_ptr<ThreadPool> Verifier::thread_pool() const {
  unsigned threads = resolve_num_threads(options_.num_threads);
  if (threads == 1) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) pool_ = std::make_shared<ThreadPool>(threads);
  return pool_;
}

VerifyStats Verifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Verifier::clear_cache() const {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  last_graphs_.clear();
}

VerdictComparison compare_verdicts(const Verifier& verifier, const DataPlaneSnapshot& observed,
                                   const DataPlaneSnapshot& truth) {
  VerdictComparison comparison;
  for (const auto& policy : verifier.policies()) {
    std::vector<Violation> observed_violations;
    policy->check(observed, observed_violations);
    std::vector<Violation> truth_violations;
    policy->check(truth, truth_violations);

    bool observed_flags = !observed_violations.empty();
    bool truth_flags = !truth_violations.empty();
    if (observed_flags == truth_flags) {
      ++comparison.agree;
    } else if (observed_flags) {
      ++comparison.false_alarms;
    } else {
      ++comparison.missed;
    }
  }
  return comparison;
}

}  // namespace hbguard
