#include "hbguard/verify/eqclass.hpp"

#include <algorithm>
#include <numeric>

#include "hbguard/net/prefix_trie.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {

namespace {

inline std::uint32_t last_address_of(const Prefix& prefix) {
  std::uint32_t start = prefix.address().bits();
  std::uint8_t length = prefix.length();
  return length >= 32 ? start : (start | (0xffffffffu >> length));
}

/// The boundary point one past `prefix`'s last address, unless the prefix
/// covers the top of the space (then there is no point after it). Mirrors
/// prefix_space_boundaries exactly.
inline bool end_point_of(const Prefix& prefix, std::uint32_t& point) {
  std::uint64_t end = std::uint64_t{prefix.address().bits()} + prefix.size();
  if (end > 0xffffffffULL) return false;
  point = static_cast<std::uint32_t>(end);
  return true;
}

}  // namespace

EquivalenceClasses compute_equivalence_classes(const DataPlaneSnapshot& snapshot,
                                               ThreadPool* pool) {
  // The batch computation *is* a streaming rebuild + materialization: both
  // paths share every byte-affecting step, so the differential guarantee
  // (streaming == batch) holds by construction.
  StreamingEquivalenceClasses streaming;
  streaming.rebuild(snapshot, pool);
  return streaming.classes();
}

EquivalenceClasses compute_equivalence_classes(
    const DataPlaneSnapshot& snapshot, std::shared_ptr<const TrafficWeights> weights,
    ThreadPool* pool) {
  StreamingEquivalenceClasses streaming;
  streaming.set_traffic_weights(std::move(weights));
  streaming.rebuild(snapshot, pool);
  return streaming.classes();
}

std::size_t EquivalenceClasses::class_of(IpAddress ip) const {
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (const auto& [start, end] : classes[i].intervals) {
      if (ip.bits() >= start && ip.bits() <= end) return i;
    }
  }
  return classes.size();  // unreachable for a total partition
}

std::uint32_t StreamingEquivalenceClasses::token_of(const FibEntry* entry) {
  if (entry == nullptr) return 0;  // "-"
  switch (entry->action) {
    case FibEntry::Action::kLocal: return 1;
    case FibEntry::Action::kDrop: return 2;
    case FibEntry::Action::kForward: {
      auto [it, fresh] = forward_tokens_.try_emplace(entry->next_hop, 0);
      if (fresh) {
        it->second = static_cast<std::uint32_t>(token_text_.size());
        token_text_.push_back('F' + std::to_string(entry->next_hop));
      }
      return it->second;
    }
    case FibEntry::Action::kExternal: {
      auto [it, fresh] = external_tokens_.try_emplace(entry->external_session, 0);
      if (fresh) {
        it->second = static_cast<std::uint32_t>(token_text_.size());
        token_text_.push_back('X' + entry->external_session);
      }
      return it->second;
    }
  }
  return 0;
}

std::uint32_t StreamingEquivalenceClasses::intern_row(const std::vector<std::uint32_t>& row) {
  auto it = row_ids_.find(row);
  if (it != row_ids_.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(rows_.size());
  rows_.push_back(row);
  row_ids_.emplace(row, id);
  return id;
}

void StreamingEquivalenceClasses::recompute_rows(const DataPlaneSnapshot& snapshot,
                                                 ThreadPool* pool,
                                                 const std::vector<std::uint32_t>& dirty) {
  if (dirty.empty()) return;
  const std::size_t router_count = routers_.size();
  const bool parallel = pool != nullptr && pool->size() > 1 && dirty.size() > 1;
  if (parallel) snapshot.warm_lookup_cache();  // lazy index build is not thread-safe

  // Process in blocks: the FIB lookups (the dominant cost — one LPM per
  // router per interval) fan out across the pool; tokenizing the resulting
  // entry pointers and interning rows is serial hash-map work, keeping
  // token/class ids deterministic at any thread count.
  constexpr std::size_t kBlock = std::size_t{1} << 16;
  std::vector<const FibEntry*> entries;
  std::vector<std::uint32_t> row(router_count);
  for (std::size_t base = 0; base < dirty.size(); base += kBlock) {
    const std::size_t count = std::min(kBlock, dirty.size() - base);
    entries.assign(count * router_count, nullptr);
    auto fill = [&](std::size_t i) {
      IpAddress destination(bounds_[dirty[base + i]]);
      const FibEntry** out = entries.data() + i * router_count;
      for (std::size_t r = 0; r < router_count; ++r) {
        out[r] = snapshot.lookup(routers_[r], destination);
      }
    };
    if (parallel && count > 1) {
      std::size_t batches = std::min<std::size_t>(count, pool->size() * 4);
      std::size_t per_batch = (count + batches - 1) / batches;
      pool->parallel_for(batches, [&](std::size_t batch) {
        std::size_t lo = batch * per_batch;
        std::size_t hi = std::min(count, lo + per_batch);
        for (std::size_t i = lo; i < hi; ++i) fill(i);
      });
    } else {
      for (std::size_t i = 0; i < count; ++i) fill(i);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const FibEntry** in = entries.data() + i * router_count;
      for (std::size_t r = 0; r < router_count; ++r) row[r] = token_of(in[r]);
      interval_class_[dirty[base + i]] = intern_row(row);
    }
  }
}

void StreamingEquivalenceClasses::rebuild(const DataPlaneSnapshot& snapshot, ThreadPool* pool) {
  routers_.clear();
  routers_.reserve(snapshot.routers.size());
  for (const auto& [router, view] : snapshot.routers) routers_.push_back(router);

  present_ = snapshot.all_prefixes();  // sorted, distinct

  std::vector<std::uint32_t> points;
  points.reserve(present_.size() * 2);
  for (const Prefix& prefix : present_) {
    points.push_back(prefix.address().bits());
    std::uint32_t end = 0;
    if (end_point_of(prefix, end)) points.push_back(end);
  }
  std::sort(points.begin(), points.end());
  refs_.clear();
  for (std::uint32_t point : points) {
    if (!refs_.empty() && refs_.back().first == point) {
      ++refs_.back().second;
    } else {
      refs_.emplace_back(point, 1u);
    }
  }

  bounds_.clear();
  bounds_.reserve(refs_.size() + 1);
  bounds_.push_back(0);
  for (const auto& [point, count] : refs_) {
    if (point != 0) bounds_.push_back(point);
  }

  rows_.clear();
  row_ids_.clear();
  token_text_ = {"-", "L", "D"};
  forward_tokens_.clear();
  external_tokens_.clear();

  interval_class_.assign(bounds_.size(), kDirty);
  std::vector<std::uint32_t> all(bounds_.size());
  std::iota(all.begin(), all.end(), 0u);
  recompute_rows(snapshot, pool, all);

  ready_ = true;
  ++stats_.rebuilds;
}

void StreamingEquivalenceClasses::update(const DataPlaneSnapshot& snapshot,
                                         const SnapshotDelta& delta, ThreadPool* pool) {
  bool router_set_changed = routers_.size() != snapshot.routers.size();
  if (!router_set_changed) {
    std::size_t k = 0;
    for (const auto& [router, view] : snapshot.routers) {
      if (routers_[k++] != router) {
        router_set_changed = true;
        break;
      }
    }
  }
  if (!ready_ || delta.full || router_set_changed) {
    rebuild(snapshot, pool);
    return;
  }
  ++stats_.incremental_updates;
  if (delta.changed_prefixes.empty()) return;

  // 1. Recount presence of each changed prefix (exact match per router —
  // longest-match can be shadowed by a more specific entry) and collect
  // the signed boundary-point deltas of the presence toggles.
  std::vector<std::pair<std::uint32_t, int>> point_deltas;
  std::vector<Prefix> appeared, vanished;  // sorted: set iteration order
  for (const Prefix& prefix : delta.changed_prefixes) {
    bool now = false;
    for (RouterId router : routers_) {
      if (snapshot.exact_entry(router, prefix) != nullptr) {
        now = true;
        break;
      }
    }
    bool was = std::binary_search(present_.begin(), present_.end(), prefix);
    if (now == was) continue;
    (now ? appeared : vanished).push_back(prefix);
    int d = now ? 1 : -1;
    point_deltas.emplace_back(prefix.address().bits(), d);
    std::uint32_t end = 0;
    if (end_point_of(prefix, end)) point_deltas.emplace_back(end, d);
  }
  if (!vanished.empty()) {
    std::vector<Prefix> kept;
    kept.reserve(present_.size() - vanished.size());
    std::set_difference(present_.begin(), present_.end(), vanished.begin(), vanished.end(),
                        std::back_inserter(kept));
    present_ = std::move(kept);
  }
  if (!appeared.empty()) {
    std::vector<Prefix> merged;
    merged.reserve(present_.size() + appeared.size());
    std::set_union(present_.begin(), present_.end(), appeared.begin(), appeared.end(),
                   std::back_inserter(merged));
    present_ = std::move(merged);
  }

  // 2. Merge the point deltas into the refcounts; points whose count
  // crosses zero are boundary insertions (splits) / removals (merges).
  // Point 0 is excluded — bounds_[0] is the implicit base either way.
  std::vector<std::uint32_t> added_points, removed_points;
  if (!point_deltas.empty()) {
    std::sort(point_deltas.begin(), point_deltas.end());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> new_refs;
    new_refs.reserve(refs_.size() + point_deltas.size());
    std::size_t i = 0, j = 0;
    while (i < refs_.size() || j < point_deltas.size()) {
      // Sum all deltas for one point before comparing.
      if (j < point_deltas.size() &&
          (i >= refs_.size() || point_deltas[j].first <= refs_[i].first)) {
        std::uint32_t point = point_deltas[j].first;
        int delta_sum = 0;
        while (j < point_deltas.size() && point_deltas[j].first == point) {
          delta_sum += point_deltas[j].second;
          ++j;
        }
        int count = delta_sum;
        bool existed = i < refs_.size() && refs_[i].first == point;
        if (existed) {
          count += static_cast<int>(refs_[i].second);
          ++i;
        }
        if (count > 0) {
          new_refs.emplace_back(point, static_cast<std::uint32_t>(count));
          if (!existed && point != 0) added_points.push_back(point);
        } else if (existed && point != 0) {
          removed_points.push_back(point);
        }
      } else {
        new_refs.push_back(refs_[i++]);
      }
    }
    refs_ = std::move(new_refs);
  }

  // 3. Splice the boundary changes into the interval arrays in one merge
  // pass. Every emitted interval tentatively carries the class of the *old*
  // interval covering its start — correct for any interval no changed
  // prefix overlaps (an un-dirtied interval can never span a removed
  // boundary: the vanished prefix behind that boundary would have dirtied
  // it).
  if (!added_points.empty() || !removed_points.empty()) {
    stats_.splits += added_points.size();
    stats_.merges += removed_points.size();
    std::vector<std::uint32_t> new_bounds, new_class;
    new_bounds.reserve(bounds_.size() + added_points.size() - removed_points.size());
    new_class.reserve(new_bounds.capacity());
    std::size_t i = 0, a = 0, rm = 0, cover = 0;
    while (i < bounds_.size() || a < added_points.size()) {
      std::uint32_t point;
      bool from_old;
      if (i >= bounds_.size()) {
        point = added_points[a];
        from_old = false;
      } else if (a >= added_points.size() || bounds_[i] < added_points[a]) {
        point = bounds_[i];
        from_old = true;
      } else {
        point = added_points[a];
        from_old = false;
      }
      if (from_old) {
        ++i;
        if (rm < removed_points.size() && removed_points[rm] == point) {
          ++rm;
          continue;  // merged into the preceding interval
        }
      } else {
        ++a;
      }
      while (cover + 1 < bounds_.size() && bounds_[cover + 1] <= point) ++cover;
      new_bounds.push_back(point);
      new_class.push_back(interval_class_[cover]);
    }
    bounds_ = std::move(new_bounds);
    interval_class_ = std::move(new_class);
  }

  // 4. Dirty every interval overlapping a changed prefix — the only places
  // forwarding behaviour can have moved — and re-evaluate just those.
  auto covering_index = [&](std::uint32_t address) {
    auto it = std::upper_bound(bounds_.begin(), bounds_.end(), address);
    return static_cast<std::size_t>(std::distance(bounds_.begin(), it)) - 1;
  };
  for (const Prefix& prefix : delta.changed_prefixes) {
    std::size_t lo = covering_index(prefix.address().bits());
    std::size_t hi = covering_index(last_address_of(prefix));
    for (std::size_t k = lo; k <= hi; ++k) interval_class_[k] = kDirty;
  }
  std::vector<std::uint32_t> dirty;
  for (std::uint32_t k = 0; k < interval_class_.size(); ++k) {
    if (interval_class_[k] == kDirty) dirty.push_back(k);
  }
  stats_.dirty_intervals += dirty.size();
  stats_.reused_intervals += interval_class_.size() - dirty.size();
  recompute_rows(snapshot, pool, dirty);
}

EquivalenceClasses StreamingEquivalenceClasses::classes() const {
  EquivalenceClasses out;
  out.atomic_intervals = bounds_.size();
  // Renumber class keys by first appearance in interval order: identical to
  // the order the legacy batch grouping assigned, so the emitted classes
  // match it byte for byte regardless of the update history.
  std::vector<std::uint32_t> renumber(rows_.size(), kDirty);
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    std::uint32_t key = interval_class_[i];
    std::uint32_t start = bounds_[i];
    std::uint32_t end = (i + 1 < bounds_.size()) ? bounds_[i + 1] - 1 : 0xffffffffu;
    if (renumber[key] == kDirty) {
      renumber[key] = static_cast<std::uint32_t>(out.classes.size());
      EquivalenceClass klass;
      klass.representative = IpAddress(start);
      const std::vector<std::uint32_t>& row = rows_[key];
      klass.signature.reserve(routers_.size() * 8);
      for (std::size_t r = 0; r < routers_.size(); ++r) {
        klass.signature += std::to_string(routers_[r]);
        klass.signature += ':';
        klass.signature += token_text_[row[r]];
        klass.signature += ';';
      }
      out.classes.push_back(std::move(klass));
    }
    EquivalenceClass& klass = out.classes[renumber[key]];
    klass.intervals.emplace_back(start, end);
    klass.size += std::uint64_t{end} - start + 1;
  }
  if (traffic_weights_ != nullptr) {
    // Each live prefix's demand lands on the class containing its network
    // address (the address is inside exactly one atomic interval, so the
    // per-class sums conserve the present prefixes' total weight exactly —
    // tests/test_streaming_eqclass.cpp fuzzes this under split/merge churn).
    for (const Prefix& prefix : present_) {
      std::uint64_t weight = traffic_weights_->weight_of(prefix);
      if (weight == 0) continue;
      auto it = std::upper_bound(bounds_.begin(), bounds_.end(), prefix.address().bits());
      std::size_t interval = static_cast<std::size_t>(std::distance(bounds_.begin(), it)) - 1;
      out.classes[renumber[interval_class_[interval]]].traffic_weight += weight;
    }
  }
  return out;
}

}  // namespace hbguard
