#include "hbguard/verify/eqclass.hpp"

#include <algorithm>
#include <sstream>

#include "hbguard/net/prefix_trie.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {

namespace {
/// Per-router behaviour for one destination, compact and comparable.
std::string behaviour_signature(const DataPlaneSnapshot& snapshot, IpAddress destination) {
  // Plain string appends — signatures are computed for every atomic
  // interval, and stream formatting is the dominant cost at that volume.
  std::string out;
  out.reserve(snapshot.routers.size() * 8);
  for (const auto& [router, view] : snapshot.routers) {
    const FibEntry* entry = snapshot.lookup(router, destination);
    out += std::to_string(router);
    out += ':';
    if (entry == nullptr) {
      out += "-;";
      continue;
    }
    switch (entry->action) {
      case FibEntry::Action::kForward:
        out += 'F';
        out += std::to_string(entry->next_hop);
        break;
      case FibEntry::Action::kExternal:
        out += 'X';
        out += entry->external_session;
        break;
      case FibEntry::Action::kLocal: out += 'L'; break;
      case FibEntry::Action::kDrop: out += 'D'; break;
    }
    out += ';';
  }
  return out;
}
}  // namespace

EquivalenceClasses compute_equivalence_classes(const DataPlaneSnapshot& snapshot,
                                               ThreadPool* pool) {
  EquivalenceClasses result;
  std::vector<std::uint32_t> bounds = prefix_space_boundaries(snapshot.all_prefixes());
  result.atomic_intervals = bounds.size();

  // Signature computation (one FIB lookup per router per interval) is the
  // dominant cost and is independent per interval: shard it into per-thread
  // batches. The grouping below runs in interval order regardless, so the
  // class list is identical to the serial one.
  std::vector<std::string> signatures(bounds.size());
  auto signature_of = [&](std::size_t i) {
    signatures[i] = behaviour_signature(snapshot, IpAddress(bounds[i]));
  };
  if (pool != nullptr && pool->size() > 1 && bounds.size() > 1) {
    snapshot.warm_lookup_cache();
    std::size_t batches = std::min<std::size_t>(bounds.size(), pool->size() * 4);
    std::size_t per_batch = (bounds.size() + batches - 1) / batches;
    pool->parallel_for(batches, [&](std::size_t batch) {
      std::size_t lo = batch * per_batch;
      std::size_t hi = std::min(bounds.size(), lo + per_batch);
      for (std::size_t i = lo; i < hi; ++i) signature_of(i);
    });
  } else {
    for (std::size_t i = 0; i < bounds.size(); ++i) signature_of(i);
  }

  std::map<std::string, std::size_t> by_signature;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    std::uint32_t start = bounds[i];
    std::uint32_t end = (i + 1 < bounds.size()) ? bounds[i + 1] - 1 : 0xffffffffu;
    IpAddress representative(start);
    std::string signature = std::move(signatures[i]);

    auto it = by_signature.find(signature);
    if (it == by_signature.end()) {
      it = by_signature.emplace(signature, result.classes.size()).first;
      EquivalenceClass klass;
      klass.signature = signature;
      klass.representative = representative;
      result.classes.push_back(std::move(klass));
    }
    EquivalenceClass& klass = result.classes[it->second];
    klass.intervals.emplace_back(start, end);
    klass.size += std::uint64_t{end} - start + 1;
  }
  return result;
}

std::size_t EquivalenceClasses::class_of(IpAddress ip) const {
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (const auto& [start, end] : classes[i].intervals) {
      if (ip.bits() >= start && ip.bits() <= end) return i;
    }
  }
  return classes.size();  // unreachable for a total partition
}

}  // namespace hbguard
