#include "hbguard/verify/eqclass.hpp"

#include <sstream>

#include "hbguard/net/prefix_trie.hpp"

namespace hbguard {

namespace {
/// Per-router behaviour for one destination, compact and comparable.
std::string behaviour_signature(const DataPlaneSnapshot& snapshot, IpAddress destination) {
  std::ostringstream out;
  for (const auto& [router, view] : snapshot.routers) {
    const FibEntry* entry = snapshot.lookup(router, destination);
    out << router << ':';
    if (entry == nullptr) {
      out << "-;";
      continue;
    }
    switch (entry->action) {
      case FibEntry::Action::kForward: out << 'F' << entry->next_hop; break;
      case FibEntry::Action::kExternal: out << 'X' << entry->external_session; break;
      case FibEntry::Action::kLocal: out << 'L'; break;
      case FibEntry::Action::kDrop: out << 'D'; break;
    }
    out << ';';
  }
  return out.str();
}
}  // namespace

EquivalenceClasses compute_equivalence_classes(const DataPlaneSnapshot& snapshot) {
  EquivalenceClasses result;
  std::vector<std::uint32_t> bounds = prefix_space_boundaries(snapshot.all_prefixes());
  result.atomic_intervals = bounds.size();

  std::map<std::string, std::size_t> by_signature;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    std::uint32_t start = bounds[i];
    std::uint32_t end = (i + 1 < bounds.size()) ? bounds[i + 1] - 1 : 0xffffffffu;
    IpAddress representative(start);
    std::string signature = behaviour_signature(snapshot, representative);

    auto it = by_signature.find(signature);
    if (it == by_signature.end()) {
      it = by_signature.emplace(signature, result.classes.size()).first;
      EquivalenceClass klass;
      klass.signature = signature;
      klass.representative = representative;
      result.classes.push_back(std::move(klass));
    }
    EquivalenceClass& klass = result.classes[it->second];
    klass.intervals.emplace_back(start, end);
    klass.size += std::uint64_t{end} - start + 1;
  }
  return result;
}

std::size_t EquivalenceClasses::class_of(IpAddress ip) const {
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (const auto& [start, end] : classes[i].intervals) {
      if (ip.bits() >= start && ip.bits() <= end) return i;
    }
  }
  return classes.size();  // unreachable for a total partition
}

}  // namespace hbguard
