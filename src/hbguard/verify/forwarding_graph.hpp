// Per-destination forwarding analysis over a data-plane snapshot.
//
// For a destination address, tracing from a source router follows each
// router's longest-prefix-match next hop until the packet is delivered
// locally, exits the domain via an eBGP uplink, is dropped (null route or
// no matching entry), or revisits a router (forwarding loop).
#pragma once

#include <string>
#include <vector>

#include "hbguard/snapshot/snapshot.hpp"

namespace hbguard {

enum class ForwardOutcome : std::uint8_t {
  kDelivered,   // local delivery at some router
  kExternal,    // left the domain via an uplink
  kDropped,     // explicit null route
  kBlackhole,   // no matching FIB entry at some router
  kLoop,        // revisited a router
  kDeadUplink,  // exited via an uplink the snapshot says is down
};

std::string_view to_string(ForwardOutcome outcome);

struct ForwardTrace {
  std::vector<RouterId> path;  // routers visited, source first
  ForwardOutcome outcome = ForwardOutcome::kBlackhole;
  RouterId exit_router = kInvalidRouter;  // kDelivered/kExternal: where
  std::string exit_session;               // kExternal: which uplink

  bool reaches_exit() const {
    return outcome == ForwardOutcome::kDelivered || outcome == ForwardOutcome::kExternal;
  }
  std::string describe() const;
};

/// Trace a packet for `destination` injected at `source`.
ForwardTrace trace_forwarding(const DataPlaneSnapshot& snapshot, RouterId source,
                              IpAddress destination);

/// A representative address inside a prefix (its network address).
inline IpAddress representative(const Prefix& prefix) {
  return prefix.address();
}

}  // namespace hbguard
