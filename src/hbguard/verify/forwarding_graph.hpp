// Per-destination forwarding analysis over a data-plane snapshot.
//
// For a destination address, tracing from a source router follows each
// router's longest-prefix-match next hop until the packet is delivered
// locally, exits the domain via an eBGP uplink, is dropped (null route or
// no matching entry), or revisits a router (forwarding loop).
//
// The all-sources analysis for one destination (`DestinationForwarding`) is
// the unit the sharded verifier parallelizes and memoizes: every policy
// that reasons about the destination shares one forwarding graph instead of
// re-tracing per policy, and destinations whose network-wide behaviour
// signature is unchanged across churn steps reuse the cached graph.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hbguard/snapshot/snapshot.hpp"

namespace hbguard {

enum class ForwardOutcome : std::uint8_t {
  kDelivered,   // local delivery at some router
  kExternal,    // left the domain via an uplink
  kDropped,     // explicit null route
  kBlackhole,   // no matching FIB entry at some router
  kLoop,        // revisited a router
  kDeadUplink,  // exited via an uplink the snapshot says is down
};

std::string_view to_string(ForwardOutcome outcome);

struct ForwardTrace {
  std::vector<RouterId> path;  // routers visited, source first
  ForwardOutcome outcome = ForwardOutcome::kBlackhole;
  RouterId exit_router = kInvalidRouter;  // kDelivered/kExternal: where
  std::string exit_session;               // kExternal: which uplink

  bool reaches_exit() const {
    return outcome == ForwardOutcome::kDelivered || outcome == ForwardOutcome::kExternal;
  }
  std::string describe() const;
};

/// Trace a packet for `destination` injected at `source`.
ForwardTrace trace_forwarding(const DataPlaneSnapshot& snapshot, RouterId source,
                              IpAddress destination);

/// A representative address inside a prefix (its network address).
inline IpAddress representative(const Prefix& prefix) {
  return prefix.address();
}

/// The destination's forwarding graph: one trace per source router.
struct DestinationForwarding {
  std::map<RouterId, ForwardTrace> traces;
};
using DestinationForwardingRef = std::shared_ptr<const DestinationForwarding>;

/// Trace `destination` from every router in the snapshot.
DestinationForwarding compute_destination_forwarding(const DataPlaneSnapshot& snapshot,
                                                     IpAddress destination);

/// The destination's network-wide behaviour signature: every router's
/// immediate forwarding action (next hop / uplink+state / local / drop /
/// no-route). Two destinations with equal signatures have byte-identical
/// forwarding graphs, so the signature doubles as the memoization key for
/// `DestinationForwarding` — the per-EC cache survives churn steps that
/// leave the class untouched. (Same construction as `verify/eqclass`, plus
/// uplink up/down state, which traces depend on.)
std::string forwarding_signature(const DataPlaneSnapshot& snapshot, IpAddress destination);

/// What a policy sees during evaluation: the snapshot plus, on the sharded
/// path, the pre-computed forwarding graphs for every policy destination.
/// Without a table, traces are computed on the fly — the serial behaviour.
class VerifyContext {
 public:
  using TraceTable = std::map<std::uint32_t, DestinationForwardingRef>;  // by ip bits

  explicit VerifyContext(const DataPlaneSnapshot& snapshot) : snapshot_(&snapshot) {}
  VerifyContext(const DataPlaneSnapshot& snapshot, const TraceTable* traces)
      : snapshot_(&snapshot), traces_(traces) {}

  const DataPlaneSnapshot& snapshot() const { return *snapshot_; }

  /// The forwarding trace for `destination` injected at `source`; served
  /// from the shared table when present, computed otherwise. Identical
  /// results either way (the table is built by `trace_forwarding`).
  ///
  /// Returns a reference so table hits copy nothing (policies call this
  /// once per router). Misses land in a per-context scratch slot, which
  /// makes miss-path calls single-threaded only — the sharded verifier
  /// guarantees hits by tabling every policy destination up front, and the
  /// serial path uses one context per thread.
  const ForwardTrace& trace(RouterId source, IpAddress destination) const;

 private:
  const DataPlaneSnapshot* snapshot_;
  const TraceTable* traces_ = nullptr;
  mutable ForwardTrace scratch_;  // holds the last miss-path trace
};

}  // namespace hbguard
