#include "hbguard/verify/policy.hpp"

namespace hbguard {

std::string Violation::describe() const {
  std::string out = policy + ": " + prefix.to_string();
  if (router != kInvalidRouter) out += " at R" + std::to_string(router);
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

void LoopFreedomPolicy::evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const {
  IpAddress destination = representative(prefix_);
  for (const auto& [router, view] : ctx.snapshot().routers) {
    const ForwardTrace& trace = ctx.trace(router, destination);
    if (trace.outcome == ForwardOutcome::kLoop) {
      out.push_back({name(), prefix_, router, trace.describe()});
    }
  }
}

void BlackholeFreedomPolicy::evaluate(const VerifyContext& ctx,
                                      std::vector<Violation>& out) const {
  IpAddress destination = representative(prefix_);
  for (const auto& [router, view] : ctx.snapshot().routers) {
    if (ctx.snapshot().lookup(router, destination) == nullptr) {
      continue;  // no route: not a blackhole
    }
    const ForwardTrace& trace = ctx.trace(router, destination);
    if (trace.outcome == ForwardOutcome::kBlackhole ||
        trace.outcome == ForwardOutcome::kDropped ||
        trace.outcome == ForwardOutcome::kDeadUplink) {
      out.push_back({name(), prefix_, router, trace.describe()});
    }
  }
}

void ReachabilityPolicy::evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const {
  const ForwardTrace& trace = ctx.trace(source_, representative(prefix_));
  if (!trace.reaches_exit()) {
    out.push_back({name(), prefix_, source_, trace.describe()});
  }
}

void WaypointPolicy::evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const {
  IpAddress destination = representative(prefix_);
  for (const auto& [router, view] : ctx.snapshot().routers) {
    const ForwardTrace& trace = ctx.trace(router, destination);
    if (!trace.reaches_exit()) continue;
    // Traffic originating at the exit itself has no opportunity (or need)
    // to detour through the waypoint.
    if (trace.exit_router == router && trace.path.size() == 1) continue;
    bool through = false;
    for (RouterId hop : trace.path) {
      if (hop == waypoint_) through = true;
    }
    if (!through) {
      out.push_back({name(), prefix_, router, "bypasses waypoint: " + trace.describe()});
    }
  }
}

void PreferredExitPolicy::evaluate(const VerifyContext& ctx, std::vector<Violation>& out) const {
  const DataPlaneSnapshot& snapshot = ctx.snapshot();
  IpAddress destination = representative(prefix_);

  // An exit is *available* when its uplink is up and currently offers a
  // route for the prefix (known from the captured eBGP advertisements on
  // that session — control-plane *inputs*, independent of the FIBs under
  // verification). The policy binds traffic to the preferred exit only
  // while it is available (Fig. 1a: R2's uplink is up but has learned no
  // route — using R1 is correct; Fig. 2: the route is still offered, so
  // exiting via R1 is the violation).
  auto available = [&](RouterId router, const std::string& session) {
    return snapshot.uplink_offers(router, session, prefix_);
  };

  RouterId want_router;
  const std::string* want_session;
  if (available(preferred_router_, preferred_session_)) {
    want_router = preferred_router_;
    want_session = &preferred_session_;
  } else if (available(backup_router_, backup_session_)) {
    want_router = backup_router_;
    want_session = &backup_session_;
  } else {
    return;  // neither exit usable: reachability policies own this case
  }

  for (const auto& [router, view] : snapshot.routers) {
    if (snapshot.lookup(router, destination) == nullptr) continue;
    const ForwardTrace& trace = ctx.trace(router, destination);
    if (trace.outcome != ForwardOutcome::kExternal || trace.exit_router != want_router ||
        trace.exit_session != *want_session) {
      out.push_back({name(), prefix_, router,
                     "expected exit R" + std::to_string(want_router) + " via " + *want_session +
                         ", got " + trace.describe()});
    }
  }
}

}  // namespace hbguard
