// Traffic-weighted verification scheduling (ROADMAP: "serve millions of
// users by verifying what they use first").
//
// The sharded verifier treats every destination as equally urgent; a
// network carrying real traffic does not. TrafficWeights attaches a demand
// weight (requests/sec, bytes/sec — any additive unit) to each prefix, and
// TrafficScheduler orders the verifier's per-scan work by the weight of the
// destinations it covers:
//
//   - kWeighted: heaviest destinations first, so a scan budget (a weight-
//     coverage target and/or a hard item cap) bounds *weighted* time-to-
//     detect: the p99 of detection latency, weighted by the traffic that
//     latency applies to, stays small even when a full sweep does not fit
//     the scan cadence. Aging guarantees no starvation: any destination
//     unverified for `aging_scans` verifying scans is scheduled ahead of
//     the hot set, so every item is verified at least every
//     aging_scans + ceil(N / budget) scans.
//   - kRoundRobin: least-recently-verified first (the unweighted baseline
//     bench_traffic_weighted compares against).
//
// All ordering ties break on destination id, so the planned set — and any
// order-sensitive statistic derived from it — is identical across thread
// counts and insertion orders. With the default options (full coverage, no
// cap) every destination is covered every scan and the planned set equals
// the unscheduled verifier's work exactly; GuardReport digests are
// byte-identical to the pre-scheduler pipeline in that configuration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hbguard/net/ip.hpp"

namespace hbguard {

/// Additive per-prefix demand weights (e.g. from make_traffic_demand).
/// Unknown prefixes weigh 0 — they are still verified, last, via aging.
class TrafficWeights {
 public:
  void set(const Prefix& prefix, std::uint64_t weight);
  /// Exact-match weight; 0 when the prefix carries no known demand.
  std::uint64_t weight_of(const Prefix& prefix) const;
  std::uint64_t total() const { return total_; }
  std::size_t size() const { return weights_.size(); }

 private:
  std::map<Prefix, std::uint64_t> weights_;
  std::uint64_t total_ = 0;
};

enum class SchedulePolicy : std::uint8_t { kWeighted, kRoundRobin };

struct TrafficScheduleOptions {
  /// Master switch; when false the Guard plans nothing and behaves exactly
  /// as before this scheduler existed.
  bool enabled = false;
  SchedulePolicy policy = SchedulePolicy::kWeighted;
  /// Stop scheduling non-aged items once this fraction of the total traffic
  /// weight is covered (1.0 = cover everything; the default keeps reports
  /// byte-identical to the unscheduled pipeline).
  double coverage_target = 1.0;
  /// Hard cap on destinations per scan (0 = unlimited). Applies to aged
  /// items too — the starvation bound assumes N/max_items scans of slack.
  std::size_t max_items = 0;
  /// A destination unverified for this many verifying scans is "aged" and
  /// scheduled ahead of the hot set (no starvation).
  std::size_t aging_scans = 16;
  /// Per-prefix demand; null = uniform (every destination weighs 1).
  std::shared_ptr<const TrafficWeights> weights;
};

/// One scan's work split: what to verify now vs. what to defer.
struct ScheduledScan {
  std::vector<std::uint32_t> covered;   ///< destination bits, ascending
  std::vector<std::uint32_t> deferred;  ///< destination bits, ascending
  std::uint64_t covered_weight = 0;
  std::uint64_t total_weight = 0;
  std::size_t aged_in = 0;  ///< items scheduled by the aging guarantee

  bool full() const { return deferred.empty(); }
  double coverage() const {
    return total_weight == 0 ? 1.0
                             : static_cast<double>(covered_weight) /
                                   static_cast<double>(total_weight);
  }
};

/// Exact weighted histogram of verification gaps, in verifying scans: a
/// destination covered on consecutive scans records gap 1. Gap g bounds the
/// detection latency of any violation that appeared on that destination
/// since its previous verification, so the weighted percentile of this
/// histogram *is* the scheduler's time-to-detect SLA metric (multiply by
/// the scan cadence for wall-clock units).
class DetectionLatencyHistogram {
 public:
  void record(std::uint64_t gap, std::uint64_t weight);
  /// Smallest gap g such that >= p of the recorded weight lies at gaps
  /// <= g. p in [0, 1]; returns 0 when empty.
  std::uint64_t weighted_percentile(double p) const;
  std::uint64_t samples() const { return samples_; }
  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t max_gap() const { return max_gap_; }

 private:
  std::map<std::uint64_t, std::uint64_t> weight_by_gap_;  // exact, gaps are small
  std::uint64_t samples_ = 0;
  std::uint64_t total_weight_ = 0;
  std::uint64_t max_gap_ = 0;
};

struct TrafficScheduleStats {
  std::uint64_t planned_scans = 0;
  std::uint64_t covered_items = 0;   // cumulative
  std::uint64_t deferred_items = 0;  // cumulative
  std::uint64_t aged_items = 0;      // cumulative aged-in count
  std::uint64_t last_deferred = 0;
  double last_coverage = 1.0;
};

/// Priority scheduler over the verifier's destination universe. The Guard
/// calls sync_items() with (destination bits, weight) each scan, plan() to
/// split the scan's work, and mark_verified() after the verifier ran.
///
/// Deterministic by construction: items are kept sorted by id, every
/// ordering breaks ties on id, and no wall-clock input exists — two
/// schedulers fed the same call sequence emit identical plans at any
/// thread count.
class TrafficScheduler {
 public:
  TrafficScheduler() = default;
  explicit TrafficScheduler(TrafficScheduleOptions options) : options_(std::move(options)) {}

  const TrafficScheduleOptions& options() const { return options_; }

  /// Replace the work universe. Items keep their aging state across syncs;
  /// new items start aged (never verified ranks ahead of the hot set). If
  /// every weight is 0 the scheduler falls back to uniform weight 1 —
  /// otherwise a zero-total universe would defer everything but aged items.
  void sync_items(const std::vector<std::pair<std::uint32_t, std::uint64_t>>& items);

  /// Split the next scan's work. Aged items go first (most-starved first),
  /// then the policy order (by weight or LRU), until the coverage target
  /// and item cap are exhausted; the rest is the deferred tail.
  ScheduledScan plan();

  /// Advance ages: `covered` was verified this scan (gap histogram +
  /// reset), everything else starved one more scan. Call exactly once per
  /// verifying scan, with plan()'s covered set.
  void mark_verified(const std::vector<std::uint32_t>& covered);

  std::size_t item_count() const { return items_.size(); }
  const TrafficScheduleStats& stats() const { return stats_; }
  const DetectionLatencyHistogram& detection_latency() const { return latency_; }
  const ScheduledScan& last() const { return last_; }

 private:
  struct Item {
    std::uint32_t bits = 0;
    std::uint64_t weight = 0;
    /// Verifying scans since last covered; new items start at aging_scans.
    std::uint64_t scans_since = 0;
    bool ever_verified = false;  // first coverage has no gap reference
  };

  std::vector<Item> items_;  // sorted by bits
  std::uint64_t total_weight_ = 0;
  TrafficScheduleOptions options_;
  TrafficScheduleStats stats_;
  DetectionLatencyHistogram latency_;
  ScheduledScan last_;
};

}  // namespace hbguard
