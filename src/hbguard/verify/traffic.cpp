#include "hbguard/verify/traffic.hpp"

#include <algorithm>
#include <cmath>

namespace hbguard {

void TrafficWeights::set(const Prefix& prefix, std::uint64_t weight) {
  auto [it, fresh] = weights_.try_emplace(prefix, weight);
  if (!fresh) {
    total_ -= it->second;
    it->second = weight;
  }
  total_ += weight;
}

std::uint64_t TrafficWeights::weight_of(const Prefix& prefix) const {
  auto it = weights_.find(prefix);
  return it != weights_.end() ? it->second : 0;
}

void DetectionLatencyHistogram::record(std::uint64_t gap, std::uint64_t weight) {
  weight_by_gap_[gap] += weight;
  ++samples_;
  total_weight_ += weight;
  max_gap_ = std::max(max_gap_, gap);
}

std::uint64_t DetectionLatencyHistogram::weighted_percentile(double p) const {
  if (total_weight_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Smallest gap whose cumulative weight reaches p of the total. Threshold
  // arithmetic stays integral (ceil of p * total) so percentiles are exact.
  auto threshold =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total_weight_)));
  if (threshold == 0) threshold = 1;
  std::uint64_t cumulative = 0;
  for (const auto& [gap, weight] : weight_by_gap_) {
    cumulative += weight;
    if (cumulative >= threshold) return gap;
  }
  return max_gap_;
}

void TrafficScheduler::sync_items(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& items) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  bool all_zero = true;
  for (const auto& [bits, weight] : sorted) all_zero &= weight == 0;

  std::vector<Item> merged;
  merged.reserve(sorted.size());
  total_weight_ = 0;
  std::size_t old = 0;
  for (const auto& [bits, weight] : sorted) {
    if (!merged.empty() && merged.back().bits == bits) {  // duplicate id: weights add
      merged.back().weight += weight;
      total_weight_ += weight;
      continue;
    }
    while (old < items_.size() && items_[old].bits < bits) ++old;  // dropped item
    Item item;
    item.bits = bits;
    item.weight = all_zero ? 1 : weight;
    if (old < items_.size() && items_[old].bits == bits) {
      item.scans_since = items_[old].scans_since;
      item.ever_verified = items_[old].ever_verified;
    } else {
      item.scans_since = options_.aging_scans;  // never verified: aged in
    }
    total_weight_ += item.weight;
    merged.push_back(item);
  }
  items_ = std::move(merged);
}

ScheduledScan TrafficScheduler::plan() {
  ScheduledScan scan;
  scan.total_weight = total_weight_;

  // Priority order over item indices. Aged items lead (most starved first);
  // the remainder follows the policy. Every tie breaks on destination id,
  // so the plan is a pure function of the scheduler's call history.
  std::vector<std::size_t> order(items_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto aged = [&](const Item& item) { return item.scans_since >= options_.aging_scans; };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = items_[a];
    const Item& ib = items_[b];
    if (options_.policy == SchedulePolicy::kRoundRobin) {
      if (ia.scans_since != ib.scans_since) return ia.scans_since > ib.scans_since;
      return ia.bits < ib.bits;
    }
    bool aa = aged(ia);
    bool ab = aged(ib);
    if (aa != ab) return aa;
    if (aa) {  // both aged: most starved first
      if (ia.scans_since != ib.scans_since) return ia.scans_since > ib.scans_since;
      return ia.bits < ib.bits;
    }
    if (ia.weight != ib.weight) return ia.weight > ib.weight;
    return ia.bits < ib.bits;
  });

  // Integral coverage threshold: covered_weight >= ceil(target * total)
  // means the target is met (exact at target 1.0 — the full-coverage
  // default never defers).
  double target = std::clamp(options_.coverage_target, 0.0, 1.0);
  auto target_weight =
      static_cast<std::uint64_t>(std::ceil(target * static_cast<double>(total_weight_)));
  // A target of exactly 1.0 is not a budget: zero-weight items satisfy the
  // weight threshold vacuously, but a scheduler asked to cover everything
  // must never defer them.
  bool coverage_budgeted = target < 1.0;

  for (std::size_t index : order) {
    const Item& item = items_[index];
    bool is_aged = aged(item);
    bool capped = options_.max_items > 0 && scan.covered.size() >= options_.max_items;
    bool satisfied = coverage_budgeted && scan.covered_weight >= target_weight;
    if (capped || (!is_aged && satisfied)) {
      scan.deferred.push_back(item.bits);
      continue;
    }
    scan.covered.push_back(item.bits);
    scan.covered_weight += item.weight;
    if (is_aged) ++scan.aged_in;
  }
  std::sort(scan.covered.begin(), scan.covered.end());
  std::sort(scan.deferred.begin(), scan.deferred.end());

  ++stats_.planned_scans;
  stats_.covered_items += scan.covered.size();
  stats_.deferred_items += scan.deferred.size();
  stats_.aged_items += scan.aged_in;
  stats_.last_deferred = scan.deferred.size();
  stats_.last_coverage = scan.coverage();
  last_ = scan;
  return scan;
}

void TrafficScheduler::mark_verified(const std::vector<std::uint32_t>& covered) {
  std::size_t c = 0;  // both sides sorted by bits: one merge pass
  for (Item& item : items_) {
    while (c < covered.size() && covered[c] < item.bits) ++c;
    if (c < covered.size() && covered[c] == item.bits) {
      if (item.ever_verified) latency_.record(item.scans_since + 1, item.weight);
      item.ever_verified = true;
      item.scans_since = 0;
    } else {
      ++item.scans_since;
    }
  }
}

}  // namespace hbguard
