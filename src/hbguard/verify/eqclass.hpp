// Packet equivalence classes over a data-plane snapshot (§6, citing [7]).
//
// "Control plane computations tend to be highly repetitive across prefixes.
// Many destinations are treated alike by the network control plane and can
// therefore be grouped into few equivalence classes. Studies have shown
// that even large networks (100K prefixes) often have less than 15
// equivalence classes in total."
//
// The computation partitions the 32-bit destination space into atomic
// intervals induced by every FIB prefix in the snapshot, evaluates each
// interval's network-wide forwarding behaviour (per-router action vector),
// and groups intervals with identical behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hbguard/snapshot/snapshot.hpp"

namespace hbguard {

class ThreadPool;

struct EquivalenceClass {
  /// Atomic [start, end] address intervals (inclusive) in this class.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  /// The shared behaviour: per-router forwarding signature.
  std::string signature;
  /// A representative destination inside the class.
  IpAddress representative;
  /// Total addresses covered.
  std::uint64_t size = 0;
};

struct EquivalenceClasses {
  std::vector<EquivalenceClass> classes;
  std::size_t atomic_intervals = 0;

  /// Index of the class containing `ip`; classes are disjoint and total.
  std::size_t class_of(IpAddress ip) const;
};

/// Compute the network-wide forwarding equivalence classes of a snapshot.
/// With a pool, the atomic intervals are partitioned into per-thread
/// batches whose behaviour signatures are computed concurrently; the
/// grouping pass runs in interval order either way, so the classes (and
/// their order) are identical to the serial result.
EquivalenceClasses compute_equivalence_classes(const DataPlaneSnapshot& snapshot,
                                               ThreadPool* pool = nullptr);

}  // namespace hbguard
