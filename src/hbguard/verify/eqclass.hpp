// Packet equivalence classes over a data-plane snapshot (§6, citing [7]).
//
// "Control plane computations tend to be highly repetitive across prefixes.
// Many destinations are treated alike by the network control plane and can
// therefore be grouped into few equivalence classes. Studies have shown
// that even large networks (100K prefixes) often have less than 15
// equivalence classes in total."
//
// The computation partitions the 32-bit destination space into atomic
// intervals induced by every FIB prefix in the snapshot, evaluates each
// interval's network-wide forwarding behaviour (per-router action vector),
// and groups intervals with identical behaviour.
//
// Internally behaviours are interned *semantic tokens* (one u32 per router
// per interval) rather than signature strings, so million-prefix tables
// cost megabytes, not gigabytes; the string signatures consumers key on
// (verifier memo cache, early-block model) are materialized once per class
// in exactly the legacy format. StreamingEquivalenceClasses maintains the
// same partition incrementally under SnapshotDelta churn: changed prefixes
// split/merge only the affected atomic intervals and re-evaluate only the
// dirty ones, with a full O(intervals) materialization pass guaranteeing
// the emitted classes are byte-identical to the batch computation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "hbguard/snapshot/snapshot.hpp"
#include "hbguard/verify/traffic.hpp"

namespace hbguard {

class ThreadPool;

struct EquivalenceClass {
  /// Atomic [start, end] address intervals (inclusive) in this class.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  /// The shared behaviour: per-router forwarding signature.
  std::string signature;
  /// A representative destination inside the class.
  IpAddress representative;
  /// Total addresses covered.
  std::uint64_t size = 0;
  /// Aggregate demand of the live prefixes rooted in this class (each
  /// present prefix contributes its TrafficWeights entry to the class
  /// containing its network address). 0 unless weights were attached;
  /// summed across classes this conserves the present prefixes' total
  /// weight exactly.
  std::uint64_t traffic_weight = 0;
};

struct EquivalenceClasses {
  std::vector<EquivalenceClass> classes;
  std::size_t atomic_intervals = 0;

  /// Index of the class containing `ip`; classes are disjoint and total.
  std::size_t class_of(IpAddress ip) const;
};

/// Compute the network-wide forwarding equivalence classes of a snapshot.
/// With a pool, the atomic intervals are partitioned into per-thread
/// batches whose behaviour rows are computed concurrently; the grouping
/// pass runs in interval order either way, so the classes (and their
/// order) are identical to the serial result.
EquivalenceClasses compute_equivalence_classes(const DataPlaneSnapshot& snapshot,
                                               ThreadPool* pool = nullptr);

/// As above, additionally aggregating `weights` onto each class's
/// traffic_weight (see EquivalenceClass::traffic_weight).
EquivalenceClasses compute_equivalence_classes(
    const DataPlaneSnapshot& snapshot, std::shared_ptr<const TrafficWeights> weights,
    ThreadPool* pool = nullptr);

struct StreamingEcStats {
  std::uint64_t rebuilds = 0;            // full (batch-equivalent) builds
  std::uint64_t incremental_updates = 0; // delta-driven updates
  std::uint64_t splits = 0;              // atomic-interval boundary insertions
  std::uint64_t merges = 0;              // atomic-interval boundary removals
  std::uint64_t dirty_intervals = 0;     // interval rows re-evaluated (cumulative)
  std::uint64_t reused_intervals = 0;    // interval rows carried over (cumulative)
};

/// Equivalence classes maintained incrementally under snapshot churn.
///
/// State: the sorted atomic-interval boundary points with per-point
/// refcounts (how many live prefixes contribute each point), the presence
/// set of prefixes, and one interned token row per distinct behaviour.
/// update() with a non-full delta only (a) recounts presence for the
/// changed prefixes, (b) splices boundary insertions/removals with one
/// merge pass, and (c) re-evaluates rows for intervals overlapping a
/// changed prefix — everything else carries over. A full delta (or a
/// router-set change) falls back to rebuild().
///
/// classes() renumbers classes by first appearance in interval order, so
/// its result is byte-identical to compute_equivalence_classes() on the
/// same snapshot — the differential tests and bench_internet_scale gate
/// on exactly that.
class StreamingEquivalenceClasses {
 public:
  /// Discard all state and rebuild from `snapshot` (batch equivalent).
  void rebuild(const DataPlaneSnapshot& snapshot, ThreadPool* pool = nullptr);

  /// Fold one scan's delta in. Full deltas (and the first call) rebuild.
  void update(const DataPlaneSnapshot& snapshot, const SnapshotDelta& delta,
              ThreadPool* pool = nullptr);

  /// Materialize the current partition (legacy format, batch-identical).
  EquivalenceClasses classes() const;

  /// Attach per-prefix demand: every materialization aggregates each live
  /// prefix's weight onto the class containing its network address. Null
  /// detaches (classes report traffic_weight 0). Weights do not affect the
  /// partition, signatures, or class order — only the aggregate field.
  void set_traffic_weights(std::shared_ptr<const TrafficWeights> weights) {
    traffic_weights_ = std::move(weights);
  }
  const std::shared_ptr<const TrafficWeights>& traffic_weights() const {
    return traffic_weights_;
  }

  bool ready() const { return ready_; }
  std::size_t atomic_intervals() const { return bounds_.size(); }
  const StreamingEcStats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kDirty = 0xffffffffu;

  std::uint32_t token_of(const FibEntry* entry);
  /// Re-evaluate rows for `dirty` interval indices (parallel lookups,
  /// serial interning) and write their class keys into interval_class_.
  void recompute_rows(const DataPlaneSnapshot& snapshot, ThreadPool* pool,
                      const std::vector<std::uint32_t>& dirty);
  std::uint32_t intern_row(const std::vector<std::uint32_t>& row);

  struct RowHash {
    std::size_t operator()(const std::vector<std::uint32_t>& row) const {
      std::size_t h = 1469598103934665603ull;
      for (std::uint32_t v : row) {
        h ^= v;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  bool ready_ = false;
  std::vector<RouterId> routers_;           // ascending, fixed per rebuild
  std::vector<Prefix> present_;             // sorted union of live prefixes
  /// Sorted (boundary point, refcount): how many live prefixes start or
  /// end at this address. Point 0 is implicit in bounds_ regardless.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> refs_;
  std::vector<std::uint32_t> bounds_;         // interval starts, sorted, [0] == 0
  std::vector<std::uint32_t> interval_class_; // per interval: key into rows_

  std::vector<std::vector<std::uint32_t>> rows_;  // per class key: token row
  std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, RowHash> row_ids_;

  // Semantic-token interner. Fixed ids: 0 = "-" (no route), 1 = "L", 2 = "D".
  std::vector<std::string> token_text_;
  std::unordered_map<std::uint32_t, std::uint32_t> forward_tokens_;  // next_hop -> id
  std::unordered_map<std::string, std::uint32_t> external_tokens_;   // session -> id

  std::shared_ptr<const TrafficWeights> traffic_weights_;
  StreamingEcStats stats_;
};

}  // namespace hbguard
