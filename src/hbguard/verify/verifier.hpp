// The data-plane verifier front end.
//
// Runs a policy list against a snapshot and (for evaluation) classifies the
// verdicts of a possibly-inconsistent snapshot against an oracle snapshot —
// the false-positive/false-negative accounting behind the paper's claim
// that naive distributed snapshots mislead verifiers (§2, §5).
//
// Verification is sharded across a reusable thread pool: the destinations
// the policy set reasons about are partitioned into per-thread batches,
// each batch builds its destinations' forwarding graphs concurrently, and
// the policies are then evaluated concurrently (one task per policy) over
// the shared graphs. Verdicts are merged in policy order, so parallel and
// serial runs produce byte-identical reports. Forwarding graphs are
// memoized across verify() calls keyed on the destination's equivalence-
// class behaviour signature — under churn, destinations whose class is
// untouched by a routing event skip re-tracing entirely.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>

#include "hbguard/util/thread_pool.hpp"
#include "hbguard/verify/policy.hpp"

namespace hbguard {

/// A scan budget from the traffic scheduler (verify/traffic.hpp): the
/// destinations this verify() call must cover. Policies whose destinations
/// are not all covered are deferred — skipped entirely, reported via
/// VerifyResult::deferred_policies. A null plan covers everything.
struct VerifyPlan {
  /// Destination bits to verify, sorted ascending.
  std::vector<std::uint32_t> covered;

  bool covers(std::uint32_t bits) const {
    return std::binary_search(covered.begin(), covered.end(), bits);
  }
};

struct VerifyResult {
  std::vector<Violation> violations;
  /// Policies evaluated / skipped under this call's VerifyPlan (deferred is
  /// 0 on unplanned calls: every policy is evaluated).
  std::size_t evaluated_policies = 0;
  std::size_t deferred_policies = 0;
  bool clean() const { return violations.empty(); }
};

struct VerifierOptions {
  /// Worker threads for sharded verification. 0 = one per hardware thread;
  /// 1 = the exact serial legacy path (no pool, no sharing, no
  /// memoization); N = N workers.
  unsigned num_threads = 0;
  /// Memoize per-EC forwarding graphs across verify() calls (skips
  /// re-tracing destinations whose behaviour signature is unchanged across
  /// churn steps). Only applies to the sharded path.
  bool memoize = true;
  /// Drop the whole memo cache once it holds this many classes (bounds
  /// memory under adversarial churn; normal workloads stay far below).
  std::size_t max_cached_classes = 4096;
};

/// Counters for the sharded path (zero when running serially).
struct VerifyStats {
  std::size_t runs = 0;          // verify() calls
  std::size_t destinations = 0;  // destination evaluations, cumulative
  std::size_t cache_hits = 0;    // forwarding graphs served from the cache
  std::size_t cache_misses = 0;  // forwarding graphs built
  /// Destinations whose graph was reused straight from the previous
  /// verify() because the caller's SnapshotDelta proved them untouched —
  /// these skip even the signature computation the memo cache needs.
  std::size_t delta_skips = 0;

  double hit_rate() const {
    std::size_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

class Verifier {
 public:
  /// `pool` may be shared with other pipeline stages (e.g. the Guard's);
  /// when null and the options call for parallelism, a pool is created
  /// lazily on first use.
  explicit Verifier(PolicyList policies, VerifierOptions options = {},
                    std::shared_ptr<ThreadPool> pool = nullptr)
      : policies_(std::move(policies)), options_(options), pool_(std::move(pool)) {}

  VerifyResult verify(const DataPlaneSnapshot& snapshot) const;

  /// Delta-driven verification: `delta` describes what changed in
  /// `snapshot` since the snapshot passed to the *previous* verify() call
  /// on this verifier (the guard's scan stream satisfies this). Unaffected
  /// destinations reuse the previous call's forwarding graph without even
  /// re-computing their behaviour signature. Results are byte-identical to
  /// verify(snapshot); a null (or full) delta degrades to it exactly. The
  /// serial path (num_threads == 1) ignores the delta.
  VerifyResult verify(const DataPlaneSnapshot& snapshot, const SnapshotDelta* delta) const;

  /// As above, restricted to `plan`'s covered destinations: uncovered
  /// destinations are neither traced nor signature-keyed, and policies
  /// depending on them are deferred. A null plan (or one covering every
  /// policy destination) is byte-identical to the unplanned overloads.
  /// Works on the serial path too (the budget, unlike the delta, is not a
  /// parallel-only optimization).
  VerifyResult verify(const DataPlaneSnapshot& snapshot, const SnapshotDelta* delta,
                      const VerifyPlan* plan) const;

  const PolicyList& policies() const { return policies_; }
  const VerifierOptions& options() const { return options_; }

  VerifyStats stats() const;
  void clear_cache() const;

  /// The pool backing the sharded path (created on demand; null while the
  /// verifier is configured serial).
  std::shared_ptr<ThreadPool> thread_pool() const;

 private:
  VerifyResult verify_serial(const DataPlaneSnapshot& snapshot, const VerifyPlan* plan) const;
  VerifyResult verify_sharded(const DataPlaneSnapshot& snapshot, const SnapshotDelta* delta,
                              const VerifyPlan* plan) const;
  /// True when every destination `policy` reasons about is in `plan` (or
  /// the plan is null).
  static bool plan_covers(const VerifyPlan* plan, const Policy& policy);

  PolicyList policies_;
  VerifierOptions options_;

  mutable std::mutex mutex_;  // guards pool_ creation, cache_, stats_
  mutable std::shared_ptr<ThreadPool> pool_;
  mutable std::map<std::string, DestinationForwardingRef> cache_;  // by signature
  /// Each destination's graph from a previous verify(), stamped with the
  /// run that refreshed it — a SnapshotDelta only proves the *immediately
  /// preceding* run's graph still valid, so delta skips require
  /// `run == stats_.runs - 1`. (Before plans existed every run refreshed
  /// every entry and the stamp was implicit; a deferred destination's entry
  /// can now be arbitrarily stale while deltas it never saw accumulate.)
  /// Keyed by destination bits; bounded by the policy set's destination
  /// count.
  mutable std::map<std::uint32_t, std::pair<DestinationForwardingRef, std::size_t>>
      last_graphs_;
  mutable VerifyStats stats_;
};

/// Compare the verdict drawn from `observed` (e.g. a skewed snapshot) with
/// the verdict from `truth` (the oracle instantaneous snapshot), per policy.
struct VerdictComparison {
  std::size_t agree = 0;            // same verdict (violation or not)
  std::size_t false_alarms = 0;     // observed flags a policy that truth passes
  std::size_t missed = 0;           // observed passes a policy that truth flags
};

VerdictComparison compare_verdicts(const Verifier& verifier, const DataPlaneSnapshot& observed,
                                   const DataPlaneSnapshot& truth);

}  // namespace hbguard
