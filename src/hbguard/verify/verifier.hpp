// The data-plane verifier front end.
//
// Runs a policy list against a snapshot and (for evaluation) classifies the
// verdicts of a possibly-inconsistent snapshot against an oracle snapshot —
// the false-positive/false-negative accounting behind the paper's claim
// that naive distributed snapshots mislead verifiers (§2, §5).
#pragma once

#include "hbguard/verify/policy.hpp"

namespace hbguard {

struct VerifyResult {
  std::vector<Violation> violations;
  bool clean() const { return violations.empty(); }
};

class Verifier {
 public:
  explicit Verifier(PolicyList policies) : policies_(std::move(policies)) {}

  VerifyResult verify(const DataPlaneSnapshot& snapshot) const;

  const PolicyList& policies() const { return policies_; }

 private:
  PolicyList policies_;
};

/// Compare the verdict drawn from `observed` (e.g. a skewed snapshot) with
/// the verdict from `truth` (the oracle instantaneous snapshot), per policy.
struct VerdictComparison {
  std::size_t agree = 0;            // same verdict (violation or not)
  std::size_t false_alarms = 0;     // observed flags a policy that truth passes
  std::size_t missed = 0;           // observed passes a policy that truth flags
};

VerdictComparison compare_verdicts(const Verifier& verifier, const DataPlaneSnapshot& observed,
                                   const DataPlaneSnapshot& truth);

}  // namespace hbguard
