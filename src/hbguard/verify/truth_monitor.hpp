// Continuous ground-truth violation tracking (evaluation instrumentation).
//
// A data-plane snapshot — even a perfectly consistent one — reflects some
// instant at or before "now", so judging its verdicts against the oracle
// state at a single instant penalizes mere staleness. The TruthMonitor
// subscribes to the capture stream and re-evaluates every policy on the
// true (instantaneous) data plane whenever it can have changed, recording
// per-policy violation intervals in virtual time. Snapshot verdicts can
// then be scored against what was actually true anywhere inside the
// snapshot's cut window:
//   * false alarm — the snapshot flags a policy that was never violated in
//     its window (the paper's "loop [that] does not appear in practice");
//   * miss — the snapshot passes a policy violated across its whole window.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hbguard/sim/network.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {

class TruthMonitor {
 public:
  /// Subscribes to the network's capture hub; policies are evaluated after
  /// every event that can change the data plane or environment.
  TruthMonitor(Network& network, PolicyList policies);

  /// True if `policy` was violated at any point in [lo, hi].
  bool violated_in(const std::string& policy, SimTime lo, SimTime hi) const;

  /// True if `policy` was violated for all of [lo, hi].
  bool violated_throughout(const std::string& policy, SimTime lo, SimTime hi) const;

  /// Closed and open violation intervals per policy.
  std::map<std::string, std::vector<std::pair<SimTime, SimTime>>> intervals() const;

  std::size_t evaluations() const { return evaluations_; }

 private:
  void evaluate();

  Network& network_;
  Verifier verifier_;
  /// Closed intervals per policy; kForever marks a still-open violation.
  std::map<std::string, std::vector<std::pair<SimTime, SimTime>>> closed_;
  std::map<std::string, SimTime> open_;  // violation started, not yet ended
  std::size_t evaluations_ = 0;
  SimTime last_evaluated_ = -1;
};

/// Score a snapshot's per-policy verdicts against the recorded truth over
/// the snapshot's cut window [min as_of, max as_of]:
///   false alarm — flagged but never violated in the window;
///   missed      — passed but violated throughout the window;
///   agree       — everything else (verdict defensible for some instant).
struct WindowVerdict {
  std::size_t agree = 0;
  std::size_t false_alarms = 0;
  std::size_t missed = 0;
};

/// `slack_us` widens the window to absorb the offset between a record's
/// logged stamp (which sets the snapshot's as_of) and the simulation instant
/// at which the truth monitor evaluated (router pipeline stamps trail the
/// processing instant by up to a few ms).
WindowVerdict score_against_truth(const Verifier& verifier, const DataPlaneSnapshot& snapshot,
                                  const TruthMonitor& truth, SimTime slack_us = 5'000);

}  // namespace hbguard
