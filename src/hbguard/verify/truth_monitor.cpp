#include "hbguard/verify/truth_monitor.hpp"

#include <set>

#include "hbguard/snapshot/naive.hpp"

namespace hbguard {

TruthMonitor::TruthMonitor(Network& network, PolicyList policies)
    : network_(network), verifier_(std::move(policies)) {
  network_.capture().subscribe([this](const IoRecord& record) {
    // Only FIB updates and hardware events change trace outcomes.
    if (record.kind == IoKind::kFibUpdate || record.kind == IoKind::kHardwareStatus) {
      evaluate();
    }
  });
  evaluate();  // baseline state
}

void TruthMonitor::evaluate() {
  SimTime now = network_.sim().now();
  ++evaluations_;
  last_evaluated_ = now;

  DataPlaneSnapshot snapshot = take_instant_snapshot(network_);
  std::set<std::string> violated_now;
  for (const auto& policy : verifier_.policies()) {
    std::vector<Violation> violations;
    policy->check(snapshot, violations);
    if (!violations.empty()) violated_now.insert(policy->name());
  }

  // Close intervals that ended.
  for (auto it = open_.begin(); it != open_.end();) {
    if (!violated_now.contains(it->first)) {
      closed_[it->first].emplace_back(it->second, now);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  // Open intervals that started.
  for (const std::string& policy : violated_now) {
    if (!open_.contains(policy)) open_[policy] = now;
  }
}

bool TruthMonitor::violated_in(const std::string& policy, SimTime lo, SimTime hi) const {
  auto closed_it = closed_.find(policy);
  if (closed_it != closed_.end()) {
    for (const auto& [start, end] : closed_it->second) {
      if (start <= hi && end >= lo) return true;
    }
  }
  auto open_it = open_.find(policy);
  if (open_it != open_.end() && open_it->second <= hi) return true;
  return false;
}

bool TruthMonitor::violated_throughout(const std::string& policy, SimTime lo, SimTime hi) const {
  auto open_it = open_.find(policy);
  if (open_it != open_.end() && open_it->second <= lo) return true;
  auto closed_it = closed_.find(policy);
  if (closed_it != closed_.end()) {
    for (const auto& [start, end] : closed_it->second) {
      if (start <= lo && end >= hi) return true;
    }
  }
  return false;
}

std::map<std::string, std::vector<std::pair<SimTime, SimTime>>> TruthMonitor::intervals() const {
  auto result = closed_;
  for (const auto& [policy, start] : open_) {
    result[policy].emplace_back(start, Simulator::kForever);
  }
  return result;
}

WindowVerdict score_against_truth(const Verifier& verifier, const DataPlaneSnapshot& snapshot,
                                  const TruthMonitor& truth, SimTime slack_us) {
  SimTime lo = Simulator::kForever, hi = 0;
  for (const auto& [router, view] : snapshot.routers) {
    lo = std::min(lo, view.as_of);
    hi = std::max(hi, view.as_of);
  }
  if (lo > hi) lo = hi;

  WindowVerdict verdict;
  for (const auto& policy : verifier.policies()) {
    std::vector<Violation> violations;
    policy->check(snapshot, violations);
    bool flagged = !violations.empty();
    if (flagged && !truth.violated_in(policy->name(), lo - slack_us, hi + slack_us)) {
      ++verdict.false_alarms;
    } else if (!flagged &&
               truth.violated_throughout(policy->name(), lo - slack_us, hi + slack_us)) {
      ++verdict.missed;
    } else {
      ++verdict.agree;
    }
  }
  return verdict;
}

}  // namespace hbguard
