#include "hbguard/proto/bgp/decision.hpp"

#include <algorithm>
#include <limits>

namespace hbguard {

namespace {

/// Keep only candidates achieving the extreme value of `key`; if that
/// narrows the field, record `why` as the (tentative) deciding reason.
template <typename Key>
void filter_step(std::vector<std::size_t>& alive, const std::vector<BgpRoute>& routes,
                 Key&& key, bool prefer_max, std::string_view why, std::string& reason) {
  if (alive.size() <= 1) return;
  auto value = [&](std::size_t i) { return key(routes[i]); };
  auto extreme = value(alive.front());
  for (std::size_t i : alive) {
    auto v = value(i);
    if (prefer_max ? (v > extreme) : (v < extreme)) extreme = v;
  }
  std::size_t before = alive.size();
  std::erase_if(alive, [&](std::size_t i) { return value(i) != extreme; });
  if (alive.size() < before) reason = std::string(why);
}

}  // namespace

std::optional<std::uint32_t> BestPathSelector::next_hop_metric(const BgpRoute& route) const {
  if (route.attrs.next_hop.external) return 0;
  if (route.attrs.next_hop.router == kInvalidRouter) return std::nullopt;
  return igp_metric_ ? igp_metric_(route.attrs.next_hop.router) : std::optional<std::uint32_t>{0};
}

DecisionResult BestPathSelector::select(const std::vector<BgpRoute>& candidates) const {
  DecisionResult result;
  std::vector<std::size_t> alive;
  std::vector<std::uint32_t> metric(candidates.size(), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    auto m = next_hop_metric(candidates[i]);
    if (!m.has_value()) continue;  // next hop unreachable: path unusable
    metric[i] = *m;
    alive.push_back(i);
  }
  if (alive.empty()) {
    result.reason = "no usable path";
    return result;
  }
  std::string reason = "only usable path";

  filter_step(alive, candidates, [](const BgpRoute& r) { return r.attrs.weight; },
              /*prefer_max=*/true, "higher weight", reason);
  filter_step(alive, candidates, [](const BgpRoute& r) { return r.attrs.local_pref; },
              /*prefer_max=*/true, "higher local-pref", reason);
  filter_step(alive, candidates, [](const BgpRoute& r) { return r.originated ? 1 : 0; },
              /*prefer_max=*/true, "locally originated", reason);
  filter_step(alive, candidates, [](const BgpRoute& r) { return r.attrs.as_path.size(); },
              /*prefer_max=*/false, "shorter AS path", reason);
  filter_step(alive, candidates,
              [](const BgpRoute& r) { return static_cast<int>(r.attrs.origin); },
              /*prefer_max=*/false, "lower origin", reason);

  // MED: compared only among routes from the same neighbor AS unless the
  // always-compare-med quirk is on. With per-AS comparison we eliminate,
  // within each neighbor-AS group, every route whose MED exceeds the group
  // minimum (deterministic-med behaviour).
  if (alive.size() > 1) {
    std::size_t before = alive.size();
    if (quirks_.always_compare_med) {
      filter_step(alive, candidates, [](const BgpRoute& r) { return r.attrs.med; },
                  /*prefer_max=*/false, "lower MED (always-compare)", reason);
    } else {
      std::vector<std::size_t> kept;
      for (std::size_t i : alive) {
        std::uint32_t group_min = std::numeric_limits<std::uint32_t>::max();
        for (std::size_t j : alive) {
          if (candidates[j].neighbor_as() == candidates[i].neighbor_as()) {
            group_min = std::min(group_min, candidates[j].attrs.med);
          }
        }
        if (candidates[i].attrs.med == group_min) kept.push_back(i);
      }
      alive = std::move(kept);
    }
    if (alive.size() < before) reason = "lower MED";
  }

  filter_step(alive, candidates, [](const BgpRoute& r) { return r.ebgp ? 0 : 1; },
              /*prefer_max=*/false, "eBGP over iBGP", reason);
  filter_step(alive, candidates, [&](const BgpRoute& r) {
                return metric[static_cast<std::size_t>(&r - candidates.data())];
              },
              /*prefer_max=*/false, "lower IGP metric to next hop", reason);

  if (quirks_.prefer_oldest_route && alive.size() > 1) {
    bool all_ebgp = std::all_of(alive.begin(), alive.end(),
                                [&](std::size_t i) { return candidates[i].ebgp; });
    if (all_ebgp) {
      filter_step(alive, candidates, [](const BgpRoute& r) { return r.arrival_seq; },
                  /*prefer_max=*/false, "oldest eBGP route", reason);
    }
  }

  result.finalists = alive;
  filter_step(alive, candidates, [](const BgpRoute& r) { return r.peer; },
              /*prefer_max=*/false, "lower peer router-id", reason);
  filter_step(alive, candidates, [](const BgpRoute& r) { return r.attrs.path_id; },
              /*prefer_max=*/false, "lower path-id", reason);

  result.best = alive.front();
  result.reason = std::move(reason);
  if (result.finalists.empty()) result.finalists = {*result.best};
  return result;
}

}  // namespace hbguard
