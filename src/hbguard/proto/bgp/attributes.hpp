// BGP route and path-attribute types.
//
// These model the subset of BGP-4 the paper's scenarios exercise — enough to
// reproduce realistic best-path behaviour, iBGP/eBGP semantics, policy
// interaction, Add-Path, and the vendor quirks that make model-based
// verification diverge from real control planes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbguard/event/simulator.hpp"
#include "hbguard/net/topology.hpp"

namespace hbguard {

enum class BgpOrigin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

std::string_view to_string(BgpOrigin origin);

/// Where traffic for a route should be sent next. Either an internal router
/// (iBGP next-hop-self semantics) or "external" — the eBGP uplink peer
/// outside the administrative domain, identified by the session name.
struct BgpNextHop {
  bool external = false;
  RouterId router = kInvalidRouter;   // valid when !external
  std::string external_session;      // valid when external

  static BgpNextHop internal(RouterId r) { return {false, r, {}}; }
  static BgpNextHop via_external(std::string session) {
    return {true, kExternalRouter, std::move(session)};
  }

  bool operator==(const BgpNextHop&) const = default;
  std::string to_string() const;
};

struct BgpPathAttributes {
  std::uint32_t local_pref = 100;
  std::vector<AsNumber> as_path;
  BgpOrigin origin = BgpOrigin::kIgp;
  std::uint32_t med = 0;
  BgpNextHop next_hop;
  /// Cisco-style weight: local to the router, never advertised. Locally
  /// originated routes get 32768.
  std::uint32_t weight = 0;
  /// BGP communities (RFC 1997), stored as 32-bit asn:value pairs.
  /// Transitive: they cross both iBGP and eBGP sessions unless a policy
  /// strips them.
  std::vector<std::uint32_t> communities;
  /// Add-Path path identifier (0 when add-path is not in use).
  std::uint32_t path_id = 0;
  /// Route reflection (RFC 4456): the router that first injected the route
  /// into iBGP (kInvalidRouter when unset) and the reflection clusters the
  /// route has traversed — used for loop prevention instead of full-mesh.
  RouterId originator = kInvalidRouter;
  std::vector<RouterId> cluster_list;

  bool operator==(const BgpPathAttributes&) const = default;
};

/// A path as stored in an Adj-RIB-In (raw, pre-import-policy — soft
/// reconfiguration re-applies policy over these on config changes).
struct BgpRoute {
  Prefix prefix;
  BgpPathAttributes attrs;
  std::string session;              // session it was learned on ("" = originated)
  RouterId peer = kInvalidRouter;   // internal peer, or kExternalRouter
  AsNumber peer_as = 0;
  bool ebgp = false;                // learned over an eBGP session
  bool originated = false;          // locally originated ("network" statement)
  SimTime received_at = 0;
  std::uint64_t arrival_seq = 0;    // monotone, for oldest-route tie-breaks

  /// First AS on the path — the neighboring AS, used for MED comparability.
  AsNumber neighbor_as() const { return attrs.as_path.empty() ? 0 : attrs.as_path.front(); }

  std::string describe() const;
};

/// The wire message: one prefix announced or withdrawn per message (real BGP
/// batches NLRI; per-prefix messages keep the captured I/O stream — the
/// thing the paper's machinery consumes — maximally informative).
struct BgpUpdateMsg {
  Prefix prefix;
  bool withdraw = false;
  std::uint32_t path_id = 0;        // identifies the path for add-path withdraws
  BgpPathAttributes attrs;          // meaningful when !withdraw

  std::string describe() const;
};

}  // namespace hbguard
