// BGP best-path selection.
//
// Implements the full decision process in vendor order, with the quirk knobs
// from VendorQuirks. Returns a ranked result plus a human-readable reason for
// the winning comparison — the reason strings feed provenance reports and
// let tests pin down *why* a path won, not just which.
//
// Decision order (Cisco IOS-style):
//   1. highest weight (local; originated routes carry 32768)
//   2. highest local preference
//   3. locally originated over learned
//   4. shortest AS path
//   5. lowest origin (IGP < EGP < incomplete)
//   6. lowest MED — only among routes from the same neighbor AS unless
//      quirks.always_compare_med
//   7. eBGP over iBGP
//   8. lowest IGP metric to next hop
//   9. oldest route (eBGP only, iff quirks.prefer_oldest_route)
//  10. lowest peer router id
//  11. lowest path id (add-path determinism backstop)
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hbguard/config/config.hpp"
#include "hbguard/proto/bgp/attributes.hpp"

namespace hbguard {

/// Metric to reach an internal router via the IGP; nullopt = unreachable.
using IgpMetricFn = std::function<std::optional<std::uint32_t>(RouterId)>;

struct DecisionResult {
  /// Index into the candidate vector; nullopt when no candidate is usable
  /// (e.g. all next hops IGP-unreachable).
  std::optional<std::size_t> best;
  /// Which decision step chose the winner, e.g. "higher local-pref".
  std::string reason;
  /// Candidate indices that were still tied entering the final step.
  std::vector<std::size_t> finalists;
};

class BestPathSelector {
 public:
  BestPathSelector(VendorQuirks quirks, IgpMetricFn igp_metric)
      : quirks_(quirks), igp_metric_(std::move(igp_metric)) {}

  /// Select the best path among candidates (all for the same prefix).
  /// Candidates whose next hop is not resolvable via the IGP are ignored,
  /// matching real BGP's next-hop reachability precondition.
  DecisionResult select(const std::vector<BgpRoute>& candidates) const;

  /// IGP metric of a route's next hop (external hops cost 0).
  std::optional<std::uint32_t> next_hop_metric(const BgpRoute& route) const;

 private:
  VendorQuirks quirks_;
  IgpMetricFn igp_metric_;
};

}  // namespace hbguard
