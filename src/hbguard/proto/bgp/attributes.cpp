#include "hbguard/proto/bgp/attributes.hpp"

#include <sstream>

namespace hbguard {

std::string_view to_string(BgpOrigin origin) {
  switch (origin) {
    case BgpOrigin::kIgp: return "IGP";
    case BgpOrigin::kEgp: return "EGP";
    case BgpOrigin::kIncomplete: return "?";
  }
  return "?";
}

std::string BgpNextHop::to_string() const {
  if (external) return "ext(" + external_session + ")";
  if (router == kInvalidRouter) return "none";
  return "R" + std::to_string(router);
}

std::string BgpRoute::describe() const {
  std::ostringstream out;
  out << prefix.to_string() << " via " << attrs.next_hop.to_string() << " LP=" << attrs.local_pref
      << " ASpath=[";
  for (std::size_t i = 0; i < attrs.as_path.size(); ++i) {
    if (i != 0) out << ' ';
    out << attrs.as_path[i];
  }
  out << "] " << (ebgp ? "eBGP" : (originated ? "local" : "iBGP"));
  return out.str();
}

std::string BgpUpdateMsg::describe() const {
  if (withdraw) return "withdraw " + prefix.to_string();
  std::ostringstream out;
  out << "advertise " << prefix.to_string() << " nh=" << attrs.next_hop.to_string()
      << " LP=" << attrs.local_pref << " MED=" << attrs.med;
  if (path_id != 0) out << " pid=" << path_id;
  return out.str();
}

}  // namespace hbguard
