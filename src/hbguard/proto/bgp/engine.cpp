#include "hbguard/proto/bgp/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "hbguard/util/logging.hpp"

namespace hbguard {

namespace {

/// Stable, nonzero Add-Path identifier for a stored route. Originated routes
/// share id 1; learned routes key off their arrival sequence so the id is
/// stable for the lifetime of the stored path.
std::uint32_t add_path_id(const BgpRoute& route) {
  if (route.originated) return 1;
  return static_cast<std::uint32_t>(route.arrival_seq % 0xfffffffdULL) + 2;
}

}  // namespace

BgpEngine::BgpEngine(RouterId self, AsNumber local_as, Callbacks callbacks)
    : self_(self), local_as_cache_(local_as), callbacks_(std::move(callbacks)) {}

void BgpEngine::start() {
  started_ = true;
  reevaluate_all();
}

const LocRibEntry* BgpEngine::loc_rib_entry(const Prefix& prefix) const {
  auto it = loc_rib_.find(prefix);
  return it == loc_rib_.end() ? nullptr : &it->second;
}

std::vector<BgpRoute> BgpEngine::adj_rib_in(const std::string& session) const {
  std::vector<BgpRoute> out;
  auto it = adj_rib_in_.find(session);
  if (it == adj_rib_in_.end()) return out;
  for (const auto& [key, route] : it->second) out.push_back(route);
  return out;
}

std::vector<BgpUpdateMsg> BgpEngine::adj_rib_out(const std::string& session) const {
  std::vector<BgpUpdateMsg> out;
  auto it = adj_rib_out_.find(session);
  if (it == adj_rib_out_.end()) return out;
  for (const auto& [key, attrs] : it->second) {
    BgpUpdateMsg msg;
    msg.prefix = key.first;
    msg.path_id = key.second;
    msg.attrs = attrs;
    out.push_back(std::move(msg));
  }
  return out;
}

bool BgpEngine::session_is_up(const std::string& session) const {
  auto it = session_down_.find(session);
  return it == session_down_.end() || !it->second;
}

void BgpEngine::handle_update(const std::string& session_name, const BgpUpdateMsg& msg) {
  if (config_ == nullptr || !started_) return;
  const BgpSessionConfig* session = bgp().find_session(session_name);
  if (session == nullptr || !session->enabled || !session_is_up(session_name)) {
    HBG_DEBUG << "BGP R" << self_ << ": update on unknown/down session " << session_name;
    return;
  }
  PathKey key{msg.prefix, msg.path_id};
  auto& table = adj_rib_in_[session_name];
  if (msg.withdraw) {
    table.erase(key);
  } else {
    BgpRoute route;
    route.prefix = msg.prefix;
    route.attrs = msg.attrs;
    route.attrs.path_id = msg.path_id;
    route.session = session_name;
    route.peer = session->external ? kExternalRouter : session->peer;
    route.peer_as = session->peer_as;
    route.ebgp = session->is_ebgp(local_as_cache_);
    route.originated = false;
    route.received_at = callbacks_.now ? callbacks_.now() : 0;
    route.arrival_seq = arrival_counter_++;
    table[key] = std::move(route);
  }
  decide_and_export(msg.prefix);
}

void BgpEngine::set_session_state(const std::string& session, bool up) {
  bool was_up = session_is_up(session);
  session_down_[session] = !up;
  if (up == was_up) return;
  if (!up) {
    // Peer loss: everything learned from it is invalid, and our export
    // state toward it is void (a future session re-establishment starts
    // from scratch, as in real BGP).
    std::set<Prefix> affected;
    for (const auto& [key, route] : adj_rib_in_[session]) affected.insert(key.first);
    adj_rib_in_.erase(session);
    adj_rib_out_.erase(session);
    for (const Prefix& prefix : affected) decide_and_export(prefix);
  } else {
    // Session (re-)established: advertise our current state.
    for (const Prefix& prefix : known_prefixes()) decide_and_export(prefix);
  }
}

void BgpEngine::reevaluate_all() {
  if (config_ == nullptr || !started_ || !bgp().enabled) return;
  for (const Prefix& prefix : known_prefixes()) decide_and_export(prefix);
}

void BgpEngine::reset_for_restart() {
  adj_rib_in_.clear();
  adj_rib_out_.clear();
  session_down_.clear();
  loc_rib_.clear();
  extra_originated_.clear();
  arrival_counter_ = 0;
  started_ = false;
}

void BgpEngine::set_extra_originated(std::set<Prefix> prefixes) {
  std::set<Prefix> affected;
  for (const Prefix& p : extra_originated_) {
    if (!prefixes.contains(p)) affected.insert(p);
  }
  for (const Prefix& p : prefixes) {
    if (!extra_originated_.contains(p)) affected.insert(p);
  }
  extra_originated_ = std::move(prefixes);
  if (!started_ || config_ == nullptr || !bgp().enabled) return;
  for (const Prefix& prefix : affected) decide_and_export(prefix);
}

bool BgpEngine::originates(const Prefix& prefix) const {
  if (extra_originated_.contains(prefix)) return true;
  for (const Prefix& p : bgp().originated) {
    if (p == prefix) return true;
  }
  return false;
}

std::set<Prefix> BgpEngine::known_prefixes() const {
  std::set<Prefix> out;
  for (const Prefix& p : bgp().originated) out.insert(p);
  for (const Prefix& p : extra_originated_) out.insert(p);
  for (const auto& [session, table] : adj_rib_in_) {
    for (const auto& [key, route] : table) out.insert(key.first);
  }
  for (const auto& [prefix, entry] : loc_rib_) out.insert(prefix);
  return out;
}

std::optional<BgpRoute> BgpEngine::import(const BgpSessionConfig& session,
                                          const BgpRoute& raw) const {
  BgpRoute route = raw;
  // eBGP loop prevention: a path already containing our AS is rejected.
  if (route.ebgp &&
      std::find(route.attrs.as_path.begin(), route.attrs.as_path.end(), local_as_cache_) !=
          route.attrs.as_path.end()) {
    return std::nullopt;
  }
  // Route-reflection loop prevention (RFC 4456): reject routes that we
  // originated into iBGP or that already crossed our cluster.
  if (!route.ebgp) {
    if (route.attrs.originator == self_) return std::nullopt;
    if (std::find(route.attrs.cluster_list.begin(), route.attrs.cluster_list.end(), self_) !=
        route.attrs.cluster_list.end()) {
      return std::nullopt;
    }
  }
  // Local preference is non-transitive across eBGP: reset to the configured
  // default, then let the import policy override it.
  if (route.ebgp) route.attrs.local_pref = bgp().default_local_pref;
  route.attrs.weight = 0;

  if (!session.import_policy.empty()) {
    const RouteMap* map = config_->find_route_map(session.import_policy);
    if (map != nullptr) {
      PolicyRouteView view{route.prefix,        route.attrs.local_pref,
                           route.attrs.med,     route.attrs.as_path,
                           session.name,        route.attrs.communities};
      if (!map->apply(view)) return std::nullopt;
      route.attrs.local_pref = view.local_pref;
      route.attrs.med = view.med;
      route.attrs.as_path = std::move(view.as_path);
      route.attrs.communities = std::move(view.communities);
      // Import-side prepends use the neighbor's AS.
      for (auto& asn : route.attrs.as_path) {
        if (asn == 0) asn = route.peer_as;
      }
    }
  }
  return route;
}

std::vector<BgpRoute> BgpEngine::gather_candidates(const Prefix& prefix) const {
  std::vector<BgpRoute> candidates;
  if (originates(prefix)) {
    BgpRoute route;
    route.prefix = prefix;
    route.attrs.local_pref = bgp().default_local_pref;
    route.attrs.origin = BgpOrigin::kIgp;
    route.attrs.next_hop = BgpNextHop::internal(self_);
    route.attrs.weight = 32768;  // Cisco: locally sourced routes
    route.originated = true;
    route.peer = self_;
    route.peer_as = local_as_cache_;
    candidates.push_back(std::move(route));
  }
  for (const auto& session : bgp().sessions) {
    if (!session.enabled || !session_is_up(session.name)) continue;
    auto it = adj_rib_in_.find(session.name);
    if (it == adj_rib_in_.end()) continue;
    for (const auto& [key, raw] : it->second) {
      if (!(key.first == prefix)) continue;
      if (auto imported = import(session, raw)) candidates.push_back(std::move(*imported));
    }
  }
  return candidates;
}

void BgpEngine::decide_and_export(const Prefix& prefix) {
  if (!bgp().enabled) return;
  std::vector<BgpRoute> candidates = gather_candidates(prefix);
  BestPathSelector selector(bgp().quirks, callbacks_.igp_metric);
  DecisionResult result = selector.select(candidates);

  auto existing = loc_rib_.find(prefix);
  if (result.best.has_value()) {
    LocRibEntry entry{candidates[*result.best], result.reason};
    bool changed = existing == loc_rib_.end() || !existing->second.same_route(entry);
    if (changed) {
      loc_rib_[prefix] = entry;
      if (callbacks_.loc_rib_changed) callbacks_.loc_rib_changed(prefix, &loc_rib_[prefix]);
    }
  } else if (existing != loc_rib_.end()) {
    loc_rib_.erase(existing);
    if (callbacks_.loc_rib_changed) callbacks_.loc_rib_changed(prefix, nullptr);
  }

  for (const auto& session : bgp().sessions) {
    if (!session.enabled || !session_is_up(session.name)) continue;
    sync_exports(session, prefix, desired_exports(session, prefix, candidates));
  }
}

bool BgpEngine::is_route_reflector() const {
  for (const BgpSessionConfig& session : bgp().sessions) {
    if (session.rr_client && !session.external) return true;
  }
  return false;
}

bool BgpEngine::ibgp_exportable(const BgpSessionConfig& to, const BgpRoute& route) const {
  if (route.ebgp || route.originated) return true;
  // iBGP-learned: only a route reflector may pass it on (RFC 4456) —
  // client routes go everywhere, non-client routes go to clients only.
  if (!is_route_reflector()) return false;
  const BgpSessionConfig* learned_on = bgp().find_session(route.session);
  bool from_client = learned_on != nullptr && learned_on->rr_client;
  return from_client || to.rr_client;
}

std::vector<BgpUpdateMsg> BgpEngine::desired_exports(const BgpSessionConfig& session,
                                                     const Prefix& prefix,
                                                     const std::vector<BgpRoute>& candidates) const {
  std::vector<BgpUpdateMsg> desired;
  bool ibgp_session = !session.is_ebgp(local_as_cache_);

  if (ibgp_session && bgp().add_path) {
    // Add-Path: advertise every exportable path, so iBGP peers have full
    // visibility and convergence is memoryless (§8).
    for (const BgpRoute& route : candidates) {
      if (!ibgp_exportable(session, route)) continue;
      if (route.session == session.name) continue;  // split horizon
      if (auto msg = make_export(session, route)) desired.push_back(std::move(*msg));
    }
    return desired;
  }

  auto it = loc_rib_.find(prefix);
  if (it == loc_rib_.end()) return desired;
  const BgpRoute& best = it->second.route;
  if (best.session == session.name) return desired;  // split horizon
  if (ibgp_session && !ibgp_exportable(session, best)) return desired;
  if (auto msg = make_export(session, best)) desired.push_back(std::move(*msg));
  return desired;
}

std::optional<BgpUpdateMsg> BgpEngine::make_export(const BgpSessionConfig& session,
                                                   const BgpRoute& route) const {
  bool ebgp_session = session.is_ebgp(local_as_cache_);
  bool reflecting = !ebgp_session && !(route.ebgp || route.originated);
  BgpUpdateMsg msg;
  msg.prefix = route.prefix;
  msg.attrs = route.attrs;
  msg.attrs.weight = 0;
  if (reflecting) {
    // RFC 4456: a reflector must not change the next hop; it stamps the
    // originator and prepends its cluster id for loop prevention.
    if (msg.attrs.originator == kInvalidRouter) msg.attrs.originator = route.peer;
    msg.attrs.cluster_list.insert(msg.attrs.cluster_list.begin(), self_);
  } else {
    msg.attrs.next_hop = BgpNextHop::internal(self_);  // next-hop-self
    msg.attrs.originator = kInvalidRouter;
    msg.attrs.cluster_list.clear();
  }
  if (ebgp_session) {
    msg.attrs.as_path.insert(msg.attrs.as_path.begin(), local_as_cache_);
    msg.attrs.local_pref = 100;  // not transmitted over eBGP
    msg.attrs.med = 0;           // MED is not propagated beyond one AS hop
  }
  if (!session.export_policy.empty()) {
    const RouteMap* map = config_->find_route_map(session.export_policy);
    if (map != nullptr) {
      PolicyRouteView view{msg.prefix,      msg.attrs.local_pref,
                           msg.attrs.med,   msg.attrs.as_path,
                           session.name,    msg.attrs.communities};
      if (!map->apply(view)) return std::nullopt;
      msg.attrs.local_pref = view.local_pref;
      msg.attrs.med = view.med;
      msg.attrs.as_path = std::move(view.as_path);
      msg.attrs.communities = std::move(view.communities);
      for (auto& asn : msg.attrs.as_path) {
        if (asn == 0) asn = local_as_cache_;  // export-side prepends
      }
    }
  }
  bool ibgp_add_path = !ebgp_session && bgp().add_path;
  msg.path_id = ibgp_add_path ? add_path_id(route) : 0;
  msg.attrs.path_id = msg.path_id;
  return msg;
}

void BgpEngine::sync_exports(const BgpSessionConfig& session, const Prefix& prefix,
                             std::vector<BgpUpdateMsg> desired) {
  auto& out_table = adj_rib_out_[session.name];

  // Withdraw paths we previously advertised for this prefix but no longer
  // want to.
  std::vector<PathKey> stale;
  for (const auto& [key, attrs] : out_table) {
    if (!(key.first == prefix)) continue;
    bool still_desired = std::any_of(desired.begin(), desired.end(), [&](const BgpUpdateMsg& m) {
      return m.path_id == key.second;
    });
    if (!still_desired) stale.push_back(key);
  }
  for (const PathKey& key : stale) {
    out_table.erase(key);
    BgpUpdateMsg withdraw;
    withdraw.prefix = key.first;
    withdraw.path_id = key.second;
    withdraw.withdraw = true;
    if (callbacks_.send) callbacks_.send(session.name, withdraw);
  }

  // Advertise new or changed paths.
  for (BgpUpdateMsg& msg : desired) {
    PathKey key{msg.prefix, msg.path_id};
    auto it = out_table.find(key);
    if (it != out_table.end() && it->second == msg.attrs) continue;  // unchanged
    out_table[key] = msg.attrs;
    if (callbacks_.send) callbacks_.send(session.name, msg);
  }
}

}  // namespace hbguard
