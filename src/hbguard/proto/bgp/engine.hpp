// Per-router BGP-4 engine.
//
// Maintains raw Adj-RIB-In tables per session (import policy is re-applied
// at decision time, which is exactly what IOS "soft reconfiguration inbound"
// does and what the paper's §7 feasibility study observes), a Loc-RIB of
// best paths, and Adj-RIB-Out state per session for differential export.
//
// The engine is transport-agnostic: the enclosing router shell injects
// received updates and provides callbacks for sending, for Loc-RIB change
// notification (which the RIB manager turns into FIB updates — preserving
// the paper's [install in RIB] → [install in FIB] → [send advertisement]
// happens-before chain), and for IGP next-hop metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hbguard/config/config.hpp"
#include "hbguard/proto/bgp/attributes.hpp"
#include "hbguard/proto/bgp/decision.hpp"

namespace hbguard {

/// The best path currently installed for a prefix, plus the decision reason.
struct LocRibEntry {
  BgpRoute route;
  std::string reason;

  bool same_route(const LocRibEntry& other) const {
    return route.attrs == other.route.attrs && route.session == other.route.session &&
           route.peer == other.route.peer && route.ebgp == other.route.ebgp &&
           route.originated == other.route.originated;
  }
};

class BgpEngine {
 public:
  struct Callbacks {
    /// Transmit an update on a session (shell adds propagation delay and
    /// captures the "send advertisement" I/O). For external sessions the
    /// shell delivers to the scenario's external peer stub.
    std::function<void(const std::string& session, const BgpUpdateMsg&)> send;
    /// Best path for a prefix changed; nullptr entry means withdrawn.
    /// Fired *before* any resulting advertisements are sent.
    std::function<void(const Prefix&, const LocRibEntry*)> loc_rib_changed;
    IgpMetricFn igp_metric;
    std::function<SimTime()> now;
  };

  BgpEngine(RouterId self, AsNumber local_as, Callbacks callbacks);

  /// Point at the live configuration (owned by the ConfigStore). The engine
  /// re-reads it on every decision, so a config change takes effect at the
  /// next soft_reconfigure()/handle_update().
  void set_config(const RouterConfig* config) { config_ = config; }

  /// Originate configured networks and send initial advertisements.
  void start();

  /// Extra locally-originated prefixes (e.g. redistributed statics), on top
  /// of the config's `network` statements. Triggers re-evaluation of
  /// prefixes entering or leaving the set.
  void set_extra_originated(std::set<Prefix> prefixes);

  /// Process an update received on `session`.
  void handle_update(const std::string& session, const BgpUpdateMsg& msg);

  /// Bring a session up/down (peer loss clears its Adj-RIB-In).
  void set_session_state(const std::string& session, bool up);
  bool session_is_up(const std::string& session) const;

  /// Re-run the decision process over every known prefix (config change /
  /// soft reconfiguration, or IGP metric change).
  void reevaluate_all();

  /// Drop all protocol state (RIBs, session liveness, origination) without
  /// firing callbacks — the engine's memory does not survive a device
  /// reboot. start() brings it back up from the config.
  void reset_for_restart();

  const std::map<Prefix, LocRibEntry>& loc_rib() const { return loc_rib_; }
  const LocRibEntry* loc_rib_entry(const Prefix& prefix) const;

  /// Raw routes stored for a session (test/diagnostic introspection).
  std::vector<BgpRoute> adj_rib_in(const std::string& session) const;

  /// What we last advertised on a session (test/diagnostic introspection).
  std::vector<BgpUpdateMsg> adj_rib_out(const std::string& session) const;

  RouterId self() const { return self_; }
  AsNumber local_as() const { return local_as_cache_; }

 private:
  using PathKey = std::pair<Prefix, std::uint32_t>;  // (prefix, path_id)

  const BgpConfig& bgp() const { return config_->bgp; }

  /// All prefixes with any state (originated, learned, or installed).
  std::set<Prefix> known_prefixes() const;

  /// Re-decide one prefix and export the result differentially.
  void decide_and_export(const Prefix& prefix);

  /// Candidates for a prefix: originated + import-filtered Adj-RIB-In.
  std::vector<BgpRoute> gather_candidates(const Prefix& prefix) const;

  /// Apply the import policy of `session` to a raw route; nullopt = denied.
  std::optional<BgpRoute> import(const BgpSessionConfig& session, const BgpRoute& raw) const;

  /// True if any internal session marks its peer as a reflection client.
  bool is_route_reflector() const;

  /// May `route` be advertised on iBGP session `to`? (eBGP-learned and
  /// originated routes always; iBGP-learned only under RFC 4456 reflection.)
  bool ibgp_exportable(const BgpSessionConfig& to, const BgpRoute& route) const;

  /// Desired advertisements for `prefix` on `session` given current state.
  std::vector<BgpUpdateMsg> desired_exports(const BgpSessionConfig& session,
                                            const Prefix& prefix,
                                            const std::vector<BgpRoute>& candidates) const;

  /// Build the advertisement for exporting `route` on `session`;
  /// nullopt = export policy denied.
  std::optional<BgpUpdateMsg> make_export(const BgpSessionConfig& session,
                                          const BgpRoute& route) const;

  /// Diff desired vs Adj-RIB-Out and transmit changes.
  void sync_exports(const BgpSessionConfig& session, const Prefix& prefix,
                    std::vector<BgpUpdateMsg> desired);

  RouterId self_;
  AsNumber local_as_cache_ = 0;
  Callbacks callbacks_;
  const RouterConfig* config_ = nullptr;
  bool started_ = false;

  std::map<std::string, std::map<PathKey, BgpRoute>> adj_rib_in_;
  std::map<std::string, std::map<PathKey, BgpPathAttributes>> adj_rib_out_;
  std::map<std::string, bool> session_down_;  // absent = up
  std::map<Prefix, LocRibEntry> loc_rib_;
  std::set<Prefix> extra_originated_;

  /// Configured + redistributed originations for a prefix test.
  bool originates(const Prefix& prefix) const;
  std::uint64_t arrival_counter_ = 0;
};

}  // namespace hbguard
