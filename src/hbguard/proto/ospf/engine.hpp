// Per-router OSPF engine: LSA origination, flooding, and route computation.
//
// The engine is the IGP substrate under BGP: it resolves iBGP next hops
// (distance_to / first_hop_to) and contributes internal prefix routes to the
// RIB. Like the BGP engine it is transport-agnostic — the router shell
// delivers LSAs and forwards flood requests across links.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "hbguard/config/config.hpp"
#include "hbguard/proto/ospf/lsdb.hpp"
#include "hbguard/proto/ospf/spf.hpp"

namespace hbguard {

class OspfEngine {
 public:
  struct Callbacks {
    /// Send an LSA to one specific neighbor. The engine handles flooding
    /// fan-out and per-neighbor duplicate suppression (the moral equivalent
    /// of OSPF's LSAck-based retransmission suppression).
    std::function<void(const RouterLsa&, RouterId to)> send;
    /// A prefix's OSPF route changed; nullptr = route lost.
    std::function<void(const Prefix&, const OspfRoute*)> route_changed;
    /// IGP reachability changed at all (BGP must re-check next hops).
    std::function<void()> topology_changed;
  };

  OspfEngine(RouterId self, Callbacks callbacks);

  void set_config(const RouterConfig* config) { config_ = config; }

  /// Current up adjacencies as (neighbor, cost) — provided by the shell,
  /// which knows link state and per-link cost overrides.
  using AdjacencyFn = std::function<std::vector<std::pair<RouterId, std::uint32_t>>()>;
  void set_adjacency_source(AdjacencyFn fn) { adjacency_fn_ = std::move(fn); }

  /// Originate our LSA and compute initial routes.
  void start();

  /// An LSA arrived from neighbor `from`.
  void handle_lsa(RouterId from, const RouterLsa& lsa);

  /// Local link state or config changed: re-originate and recompute.
  void refresh();

  /// Drop LSDB/SPF/route state without firing callbacks (device reboot).
  /// own_seq_ survives so post-restart LSAs outrank pre-crash copies held
  /// by neighbors — the same reason real OSPF persists its sequence.
  void reset_for_restart();

  /// Re-send our whole LSDB to `neighbor`, ignoring send-suppression: the
  /// database exchange performed when an adjacency (re)forms, without which
  /// a rebooted neighbor never re-learns LSAs its peers consider "already
  /// sent".
  void resync_adjacency(RouterId neighbor);

  /// IGP distance to an internal router; nullopt if unreachable.
  std::optional<std::uint32_t> distance_to(RouterId router) const;

  /// First-hop neighbor on the shortest path to `router`.
  std::optional<RouterId> first_hop_to(RouterId router) const;

  const SpfResult& spf() const { return spf_; }
  const Lsdb& lsdb() const { return lsdb_; }

 private:
  void originate();
  void recompute();

  /// Flood an LSA to all current up neighbors except `exclude`, suppressing
  /// (neighbor, origin, seq) repeats.
  void flood(const RouterLsa& lsa, RouterId exclude);
  /// Directed send with the same suppression.
  void send_suppressed(const RouterLsa& lsa, RouterId to);

  RouterId self_;
  Callbacks callbacks_;
  const RouterConfig* config_ = nullptr;
  AdjacencyFn adjacency_fn_;
  Lsdb lsdb_;
  SpfResult spf_;
  std::map<Prefix, OspfRoute> routes_;
  /// Highest LSA seq already sent per (neighbor, origin).
  std::map<std::pair<RouterId, RouterId>, std::uint64_t> sent_;
  std::uint64_t own_seq_ = 0;
  bool started_ = false;
};

}  // namespace hbguard
