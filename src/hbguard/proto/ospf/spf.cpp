#include "hbguard/proto/ospf/spf.hpp"

#include <queue>
#include <tuple>

namespace hbguard {

std::optional<std::uint32_t> SpfResult::distance_to(RouterId router) const {
  auto it = nodes.find(router);
  if (it == nodes.end()) return std::nullopt;
  return it->second.distance;
}

std::optional<RouterId> SpfResult::first_hop_to(RouterId router) const {
  auto it = nodes.find(router);
  if (it == nodes.end()) return std::nullopt;
  return it->second.first_hop;
}

SpfResult run_spf(const Lsdb& lsdb, RouterId root) {
  SpfResult result;
  if (lsdb.get(root) == nullptr) return result;

  // (distance, tie-break router id, router, first_hop)
  using QueueEntry = std::tuple<std::uint32_t, RouterId, RouterId, RouterId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier;
  frontier.emplace(0, root, root, root);

  while (!frontier.empty()) {
    auto [dist, tie, router, first_hop] = frontier.top();
    frontier.pop();
    if (result.nodes.contains(router)) continue;
    result.nodes[router] = SpfNode{dist, first_hop};

    const RouterLsa* lsa = lsdb.get(router);
    if (lsa == nullptr) continue;
    for (const auto& [neighbor, cost] : lsa->adjacencies) {
      if (result.nodes.contains(neighbor)) continue;
      // Two-way check: the neighbor must also advertise `router`.
      const RouterLsa* back = lsdb.get(neighbor);
      if (back == nullptr) continue;
      bool two_way = false;
      for (const auto& [peer, back_cost] : back->adjacencies) {
        if (peer == router) {
          two_way = true;
          break;
        }
      }
      if (!two_way) continue;
      RouterId hop = (router == root) ? neighbor : first_hop;
      frontier.emplace(dist + cost, neighbor, neighbor, hop);
    }
  }

  // Prefix routes: lowest cost wins; ties broken by lower origin router id
  // for determinism.
  for (const auto& [router, node] : result.nodes) {
    const RouterLsa* lsa = lsdb.get(router);
    if (lsa == nullptr) continue;
    for (const Prefix& prefix : lsa->prefixes) {
      auto it = result.prefix_routes.find(prefix);
      if (it == result.prefix_routes.end() || node.distance < it->second.cost ||
          (node.distance == it->second.cost && router < it->second.origin_router)) {
        result.prefix_routes[prefix] = OspfRoute{prefix, node.distance, router, node.first_hop};
      }
    }
  }
  return result;
}

}  // namespace hbguard
