#include "hbguard/proto/ospf/engine.hpp"

namespace hbguard {

OspfEngine::OspfEngine(RouterId self, Callbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {}

void OspfEngine::start() {
  started_ = true;
  if (config_ == nullptr || !config_->ospf.enabled) return;
  originate();
  recompute();
}

void OspfEngine::handle_lsa(RouterId from, const RouterLsa& lsa) {
  if (!started_ || config_ == nullptr || !config_->ospf.enabled) return;
  if (lsa.origin == self_) return;  // our own LSA echoed back
  if (!lsdb_.install(lsa)) return;  // stale or duplicate: do not re-flood
  // Record that the sender evidently has this LSA — no need to send it back.
  auto& seen = sent_[{from, lsa.origin}];
  seen = std::max(seen, lsa.seq);
  flood(lsa, from);
  // Database exchange: a neighbor announcing its *first* own LSA (seq 1)
  // just booted; share whatever parts of our LSDB we have not already put
  // on the wire toward it (the suppression cache stands in for OSPF's
  // DBD/LSAck retransmission state).
  if (lsa.origin == from && lsa.seq == 1) {
    lsdb_.for_each([&](const RouterLsa& known) {
      if (known.origin != lsa.origin) send_suppressed(known, from);
    });
  }
  recompute();
}

void OspfEngine::flood(const RouterLsa& lsa, RouterId exclude) {
  if (!adjacency_fn_) return;
  for (const auto& [neighbor, cost] : adjacency_fn_()) {
    if (neighbor == exclude || neighbor == lsa.origin) continue;
    send_suppressed(lsa, neighbor);
  }
}

void OspfEngine::send_suppressed(const RouterLsa& lsa, RouterId to) {
  if (to == lsa.origin) return;  // never send an LSA back to its originator
  auto& sent_seq = sent_[{to, lsa.origin}];
  if (sent_seq >= lsa.seq) return;
  sent_seq = lsa.seq;
  if (callbacks_.send) callbacks_.send(lsa, to);
}

void OspfEngine::refresh() {
  if (!started_ || config_ == nullptr || !config_->ospf.enabled) return;
  originate();
  recompute();
}

void OspfEngine::reset_for_restart() {
  lsdb_ = Lsdb{};
  spf_ = SpfResult{};
  routes_.clear();
  sent_.clear();
  started_ = false;
  // own_seq_ deliberately survives: the next origination must outrank the
  // pre-crash LSA copies neighbors still hold.
}

void OspfEngine::resync_adjacency(RouterId neighbor) {
  if (!started_ || config_ == nullptr || !config_->ospf.enabled) return;
  lsdb_.for_each([&](const RouterLsa& lsa) {
    if (lsa.origin == neighbor) return;
    // Forget what we believe the neighbor has seen — a rebooted neighbor
    // has seen nothing — then send unconditionally.
    sent_.erase({neighbor, lsa.origin});
    send_suppressed(lsa, neighbor);
  });
}

void OspfEngine::originate() {
  RouterLsa lsa;
  lsa.origin = self_;
  lsa.seq = ++own_seq_;
  if (adjacency_fn_) lsa.adjacencies = adjacency_fn_();
  lsa.prefixes = config_->ospf.originated;
  lsdb_.install(lsa);
  flood(lsa, kInvalidRouter);
}

void OspfEngine::recompute() {
  std::map<RouterId, SpfNode> previous_nodes = spf_.nodes;
  spf_ = run_spf(lsdb_, self_);
  bool reachability_changed =
      spf_.nodes.size() != previous_nodes.size() ||
      !std::equal(spf_.nodes.begin(), spf_.nodes.end(), previous_nodes.begin(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first && a.second.distance == b.second.distance &&
                           a.second.first_hop == b.second.first_hop;
                  });

  // Diff prefix routes and notify per-prefix changes (self-originated
  // prefixes are reported too; the RIB prefers its connected/static entries
  // via admin distance).
  std::map<Prefix, OspfRoute> next = spf_.prefix_routes;
  for (const auto& [prefix, route] : next) {
    auto it = routes_.find(prefix);
    bool changed = it == routes_.end() || it->second.first_hop != route.first_hop ||
                   it->second.cost != route.cost ||
                   it->second.origin_router != route.origin_router;
    if (changed && callbacks_.route_changed) callbacks_.route_changed(prefix, &route);
  }
  for (const auto& [prefix, route] : routes_) {
    if (!next.contains(prefix) && callbacks_.route_changed) {
      callbacks_.route_changed(prefix, nullptr);
    }
  }
  routes_ = std::move(next);
  // Only announce IGP change when reachability/paths actually moved —
  // spurious notifications would make BGP re-run its decision process (and
  // pick up pending config changes) ahead of the soft-reconfiguration delay.
  if (reachability_changed && callbacks_.topology_changed) callbacks_.topology_changed();
}

std::optional<std::uint32_t> OspfEngine::distance_to(RouterId router) const {
  return spf_.distance_to(router);
}

std::optional<RouterId> OspfEngine::first_hop_to(RouterId router) const {
  return spf_.first_hop_to(router);
}

}  // namespace hbguard
