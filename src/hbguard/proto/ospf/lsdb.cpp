#include "hbguard/proto/ospf/lsdb.hpp"

namespace hbguard {

bool Lsdb::install(const RouterLsa& lsa) {
  auto it = lsas_.find(lsa.origin);
  if (it != lsas_.end() && it->second.seq >= lsa.seq) return false;
  lsas_[lsa.origin] = lsa;
  return true;
}

const RouterLsa* Lsdb::get(RouterId origin) const {
  auto it = lsas_.find(origin);
  return it == lsas_.end() ? nullptr : &it->second;
}

bool Lsdb::flush(RouterId origin) {
  return lsas_.erase(origin) > 0;
}

void Lsdb::for_each(const std::function<void(const RouterLsa&)>& fn) const {
  for (const auto& [origin, lsa] : lsas_) fn(lsa);
}

}  // namespace hbguard
