// Shortest-path-first (Dijkstra) computation over an OSPF LSDB.
//
// Edges are only considered when both endpoints advertise each other
// (OSPF's two-way connectivity check), so a half-flooded topology never
// yields paths through a dead link.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "hbguard/proto/ospf/lsdb.hpp"

namespace hbguard {

struct SpfNode {
  std::uint32_t distance = 0;
  /// Immediate neighbor of the root on the shortest path (== destination if
  /// directly adjacent; == root for the root itself).
  RouterId first_hop = kInvalidRouter;
};

struct OspfRoute {
  Prefix prefix;
  std::uint32_t cost = 0;
  RouterId origin_router = kInvalidRouter;  // who injected the prefix
  RouterId first_hop = kInvalidRouter;      // next router from the SPF root
};

struct SpfResult {
  std::map<RouterId, SpfNode> nodes;          // reachable routers
  std::map<Prefix, OspfRoute> prefix_routes;  // best route per prefix

  std::optional<std::uint32_t> distance_to(RouterId router) const;
  std::optional<RouterId> first_hop_to(RouterId router) const;
};

/// Run Dijkstra rooted at `root` over the LSDB.
SpfResult run_spf(const Lsdb& lsdb, RouterId root);

}  // namespace hbguard
