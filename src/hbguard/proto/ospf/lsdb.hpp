// OSPF link-state database.
//
// We model a single-area OSPF with router LSAs only: each LSA lists the
// originator's up adjacencies (with costs) and the prefixes it injects.
// Sequence numbers provide the usual newer-LSA-wins flooding semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "hbguard/net/ip.hpp"
#include "hbguard/net/topology.hpp"

namespace hbguard {

struct RouterLsa {
  RouterId origin = kInvalidRouter;
  std::uint64_t seq = 0;
  /// (neighbor router, cost) for each up adjacency.
  std::vector<std::pair<RouterId, std::uint32_t>> adjacencies;
  /// Prefixes originated into OSPF by this router.
  std::vector<Prefix> prefixes;

  bool operator==(const RouterLsa&) const = default;
};

class Lsdb {
 public:
  /// Install if strictly newer than what we have. Returns true if installed.
  bool install(const RouterLsa& lsa);

  /// LSA for a given origin; nullptr if none.
  const RouterLsa* get(RouterId origin) const;

  /// Remove an origin's LSA (max-age flush). Returns true if present.
  bool flush(RouterId origin);

  void for_each(const std::function<void(const RouterLsa&)>& fn) const;

  std::size_t size() const { return lsas_.size(); }

 private:
  std::map<RouterId, RouterLsa> lsas_;
};

}  // namespace hbguard
