// A reusable fixed-size worker pool with a single FIFO task queue.
//
// The verification pipeline is embarrassingly parallel across packet
// equivalence classes and policies (§5's "verification ... can be
// parallelized per destination"), but it is also invoked once per guard
// scan — so the pool must be cheap to reuse, not cheap to create. One pool
// lives for the lifetime of a Verifier/Guard and serves every scan.
//
// Design constraints (see tests/test_thread_pool.cpp):
//   - FIFO dispatch: a single-worker pool executes tasks in submission
//     order, which keeps `num_threads = 1` runs bit-identical to the
//     serial code path.
//   - Exceptions propagate: submit() returns a future that rethrows, and
//     parallel_for() rethrows the first (lowest-index) task exception after
//     all tasks have finished — deterministic regardless of interleaving.
//   - Shutdown drains: the destructor completes every already-queued task
//     before joining (no dropped work, no detached threads).
#pragma once

#include <cstddef>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hbguard {

/// Resolve a thread-count knob: 0 means "all hardware threads", anything
/// else is taken literally. Always returns >= 1.
unsigned resolve_num_threads(unsigned requested);

class ThreadPool {
 public:
  /// `num_threads = 0` starts one worker per hardware thread.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Completes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. The future rethrows any exception the task throws.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(0) ... fn(count-1) across the pool and wait for all of them.
  /// Indices are chunked into one contiguous batch per worker, and the
  /// calling thread helps drain the queue while it waits. With a single
  /// worker (or count <= 1) the calls run inline, in index order. If any
  /// call throws, the exception from the lowest index is rethrown after
  /// every index has run.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace hbguard
