// Deterministic random number generation.
//
// Every stochastic component in hbguard (link delays, capture jitter,
// workload generators) draws from an explicitly seeded Rng so that scenarios
// replay bit-identically — a prerequisite for the paper's §8 determinism
// discussion and for reproducible benchmarks.
#pragma once

#include <cstdint>
#include <algorithm>
#include <random>
#include <vector>

namespace hbguard {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  /// Fork an independent stream (e.g. one per router) so draws in one
  /// component don't perturb another when scenarios are edited.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hbguard
