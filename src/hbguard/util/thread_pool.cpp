#include "hbguard/util/thread_pool.hpp"

#include <algorithm>

namespace hbguard {

unsigned resolve_num_threads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned count = resolve_num_threads(num_threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: queued work is never dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the paired future
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Chunk indices into one contiguous batch per worker: per-index tasks
  // would pay a queue/future round trip each, which dominates when the
  // per-index work is small (or the host has one core). Each batch records
  // its lowest-index exception; every index still runs.
  struct BatchError {
    std::size_t index;
    std::exception_ptr error;
  };
  // More batches than the host can run concurrently just adds wakeups and
  // context switches, so cap at 2x the hardware threads (2x for balance
  // when batch costs are uneven) regardless of how many workers were
  // requested.
  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::size_t batches =
      std::min({static_cast<std::size_t>(size()), count, std::max<std::size_t>(2, 2 * hw)});
  std::size_t chunk = (count + batches - 1) / batches;
  std::vector<BatchError> errors(batches, BatchError{count, nullptr});
  std::vector<std::future<void>> futures;
  futures.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    std::size_t lo = std::min(count, b * chunk);
    std::size_t hi = std::min(count, lo + chunk);
    futures.push_back(submit([&fn, &errors, b, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (errors[b].error == nullptr) errors[b] = {i, std::current_exception()};
        }
      }
    }));
  }

  // Help drain the queue instead of sleeping: with more workers than cores
  // (or a busy pool) the submitting thread is compute capacity too.
  while (true) {
    std::packaged_task<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
  for (std::future<void>& future : futures) future.get();  // batches don't throw

  // Rethrow the lowest-index failure for a deterministic error. Batches
  // cover ascending contiguous ranges, so the first recorded error wins.
  for (const BatchError& error : errors) {
    if (error.error != nullptr) std::rethrow_exception(error.error);
  }
}

}  // namespace hbguard
