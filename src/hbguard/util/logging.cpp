#include "hbguard/util/logging.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hbguard {

namespace {

/// Live labelled RateLimiter sites, so Logger::flush_suppressed() can reach
/// them. Heap-allocated and never destroyed: macro-site limiters are
/// function-local statics with interleaved teardown order, so the registry
/// must outlive every possible unregister call.
class RateLimiterRegistry {
 public:
  static RateLimiterRegistry& instance() {
    static RateLimiterRegistry* registry = new RateLimiterRegistry();
    return *registry;
  }

  void add(RateLimiter* limiter) {
    std::lock_guard lock(mutex_);
    sites_.push_back(limiter);
  }

  void remove(RateLimiter* limiter) {
    std::lock_guard lock(mutex_);
    sites_.erase(std::remove(sites_.begin(), sites_.end(), limiter), sites_.end());
  }

  void flush_all() {
    std::vector<RateLimiter*> sites;
    {
      std::lock_guard lock(mutex_);
      sites = sites_;
    }
    for (RateLimiter* site : sites) site->flush();
  }

 private:
  RateLimiterRegistry() {
    // Touch the logger first: it must outlive every registered site's
    // destructor-time flush.
    Logger::instance();
  }
  std::mutex mutex_;
  std::vector<RateLimiter*> sites_;
};

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::set_time_source(TimeSource source) {
  std::lock_guard lock(mutex_);
  time_source_ = std::move(source);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard lock(mutex_);
  if (sink_) {
    sink_(level, message);
    return;
  }
  if (time_source_) {
    std::fprintf(stderr, "[%s t=%lldus] %.*s\n", std::string(to_string(level)).c_str(),
                 static_cast<long long>(time_source_()), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "[%s] %.*s\n", std::string(to_string(level)).c_str(),
                 static_cast<int>(message.size()), message.data());
  }
}

void Logger::flush_suppressed() { RateLimiterRegistry::instance().flush_all(); }

RateLimiter::RateLimiter(std::uint64_t every_n, std::string site)
    : every_n_(every_n == 0 ? 1 : every_n), site_(std::move(site)) {
  if (!site_.empty()) RateLimiterRegistry::instance().add(this);
}

RateLimiter::~RateLimiter() {
  if (site_.empty()) return;
  RateLimiterRegistry::instance().remove(this);
  flush();
}

std::uint64_t RateLimiter::suppressed() const {
  std::uint64_t seen = counter_.load(std::memory_order_relaxed);
  if (seen == 0) return 0;
  std::uint64_t logged = (seen + every_n_ - 1) / every_n_;
  return seen - logged;
}

void RateLimiter::flush() {
  std::uint64_t total = suppressed();
  std::uint64_t already = reported_.exchange(total, std::memory_order_relaxed);
  if (total <= already || site_.empty()) return;
  Logger::instance().log(LogLevel::kWarn,
                         site_ + ": " + std::to_string(total - already) +
                             " rate-limited warning(s) suppressed (" +
                             std::to_string(counter_.load(std::memory_order_relaxed)) +
                             " total occurrences)");
}

}  // namespace hbguard
