#include "hbguard/util/logging.hpp"

#include <cstdio>

namespace hbguard {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::set_time_source(TimeSource source) {
  std::lock_guard lock(mutex_);
  time_source_ = std::move(source);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard lock(mutex_);
  if (sink_) {
    sink_(level, message);
    return;
  }
  if (time_source_) {
    std::fprintf(stderr, "[%s t=%lldus] %.*s\n", std::string(to_string(level)).c_str(),
                 static_cast<long long>(time_source_()), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "[%s] %.*s\n", std::string(to_string(level)).c_str(),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace hbguard
