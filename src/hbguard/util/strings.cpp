#include "hbguard/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace hbguard {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_duration_us(std::int64_t micros) {
  char buf[64];
  if (micros >= 1'000'000 && micros % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(micros / 1'000'000));
  } else if (micros >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(micros) / 1e6);
  } else if (micros >= 1000 && micros % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(micros / 1000));
  } else if (micros >= 100) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(micros) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros));
  }
  return buf;
}

}  // namespace hbguard
