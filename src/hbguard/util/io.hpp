// EINTR- and short-write-hardened POSIX I/O wrappers.
//
// Every blocking read/write/poll/fsync in the daemon, the CLI clients and
// the WAL goes through these helpers so a signal arriving mid-call (the
// SIGHUP checkpoint trigger, a SIGTERM during shutdown, a profiler) can
// never surface as a spurious short count or EINTR failure in the callers'
// logic. write_file_atomic is the durable-publish primitive shared by the
// checkpoint writer: tmp file + fsync + rename + directory fsync, so a
// crash leaves either the old file or the new one, never a torn hybrid.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hbguard::io {

/// read(2) retrying on EINTR. Returns the byte count (0 at EOF) or -1 with
/// errno set (EAGAIN passes through for non-blocking fds).
ssize_t read_retry(int fd, void* buffer, std::size_t length);

/// Write all of `length` bytes, retrying on EINTR and short writes.
bool write_full(int fd, const void* buffer, std::size_t length);

/// poll(2) retrying on EINTR (the full timeout is re-armed — callers here
/// either block forever or poll in a loop, so drift is irrelevant).
int poll_retry(pollfd* fds, nfds_t count, int timeout_ms);

/// fdatasync(2) retrying on EINTR. True when the data hit stable storage.
bool fsync_retry(int fd);

/// Durably publish `bytes` at `path`: write to `path + ".tmp"`, fsync,
/// rename over `path`, fsync the containing directory. On failure the tmp
/// file is removed and `error` (if non-null) says what happened.
bool write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       std::string* error);

/// Slurp a whole file. Returns false (with `error`) when it cannot be
/// opened or read.
bool read_file(const std::string& path, std::vector<std::uint8_t>& out, std::string* error);

}  // namespace hbguard::io
