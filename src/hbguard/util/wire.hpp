// LEB128 varint + zigzag primitives shared by the binary codecs (the
// distributed-HBG shard exchange in provenance/shard_wire.* and the trace
// archive format in capture/trace_archive.*).
//
// Varints are LEB128 (7 bits per byte, high bit = continue, max 10 bytes);
// signed fields are zigzag-mapped first so small magnitudes of either sign
// stay one byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hbguard::wire {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Advances `pos`; returns false on truncation or a varint longer than 10
/// bytes.
inline bool get_varint(std::span<const std::uint8_t> buffer, std::size_t& pos,
                       std::uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= buffer.size()) return false;
    std::uint8_t byte = buffer[pos++];
    if (shift == 63 && (byte & 0xFE) != 0) return false;  // would overflow 64 bits
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 10 bytes
}

constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

inline void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_varint(out, zigzag(value));
}

inline bool get_zigzag(std::span<const std::uint8_t> buffer, std::size_t& pos,
                       std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(buffer, pos, raw)) return false;
  value = unzigzag(raw);
  return true;
}

}  // namespace hbguard::wire
