#include "hbguard/util/crash_point.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <string>

namespace hbguard {

namespace {

struct CrashSpec {
  std::string tag;
  std::uint64_t trigger = 0;            // 1-based hit count that crashes
  std::atomic<std::uint64_t> hits{0};
};

// Parsed once; the env var is read at first use so posix_spawn'd children
// see whatever the harness set for them. A deque: the atomic hit counters
// make CrashSpec immovable.
std::deque<CrashSpec>& specs() {
  static std::deque<CrashSpec>* parsed = [] {
    auto* out = new std::deque<CrashSpec>();
    const char* env = std::getenv("HBGUARD_CRASH_POINT");
    if (env == nullptr) return out;
    std::string text(env);
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t comma = text.find(',', start);
      std::string item = text.substr(start, comma == std::string::npos ? std::string::npos
                                                                       : comma - start);
      start = comma == std::string::npos ? text.size() : comma + 1;
      std::size_t colon = item.find(':');
      if (colon == std::string::npos || colon == 0) continue;
      std::uint64_t count = std::strtoull(item.c_str() + colon + 1, nullptr, 10);
      if (count == 0) continue;
      auto& spec = out->emplace_back();
      spec.tag = item.substr(0, colon);
      spec.trigger = count;
    }
    return out;
  }();
  return *parsed;
}

}  // namespace

bool crash_point_armed(std::string_view tag) {
  for (CrashSpec& spec : specs()) {
    if (spec.tag != tag) continue;
    return spec.hits.fetch_add(1, std::memory_order_relaxed) + 1 == spec.trigger;
  }
  return false;
}

void crash_now() {
  // _exit, not abort: no signal handlers, no flushing, no unwinding — the
  // harness is asserting recovery from a process that simply vanished.
  ::_exit(137);
}

}  // namespace hbguard
