// Lock-free multi-producer / single-consumer handoff queue.
//
// The distributed-HBG exchange hands encoded ShardMessage frames from the
// shard task that produced them to the shard that will consume them, while
// both are running on the Guard's ThreadPool. A mutex here would make every
// sender serialize on the busiest receiver; instead producers push onto an
// atomic intrusive stack (one CAS per push, no waiting beyond the CAS
// retry) and the single consumer takes the whole batch with one exchange.
//
// Ordering: drain() returns items in push order *per producer* (the stack
// is reversed on drain); interleaving across concurrent producers is
// unspecified. Consumers that need a global order must carry it in the
// items themselves (the exchange carries capture sequence numbers).
//
// The consumer contract: only one thread may call drain() at a time, and
// it must be ordered after the producers it wants to observe (the
// ThreadPool's parallel_for barrier provides exactly that).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace hbguard {

template <typename T>
class HandoffQueue {
 public:
  HandoffQueue() = default;
  ~HandoffQueue() { drain(); }

  HandoffQueue(const HandoffQueue&) = delete;
  HandoffQueue& operator=(const HandoffQueue&) = delete;

  /// Push one item (any thread). Wait-free except for CAS retries under
  /// contention.
  void push(T value) {
    Node* node = new Node{std::move(value), head_.load(std::memory_order_relaxed)};
    while (!head_.compare_exchange_weak(node->next, node, std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Take everything pushed so far (single consumer). Items from one
  /// producer come out in the order that producer pushed them.
  std::vector<T> drain() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    std::size_t count = 0;
    for (Node* walk = node; walk != nullptr; walk = walk->next) ++count;
    std::vector<T> items;
    items.reserve(count);
    while (node != nullptr) {
      items.push_back(std::move(node->value));
      Node* next = node->next;
      delete node;
      node = next;
    }
    std::reverse(items.begin(), items.end());
    return items;
  }

  bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  std::atomic<Node*> head_{nullptr};
};

}  // namespace hbguard
