// Lightweight leveled logger used across hbguard.
//
// The simulator and guard pipeline are single-threaded per run, but tests may
// run scenarios concurrently, so the sink is guarded by a mutex. Log lines
// carry the *virtual* simulation time when one is registered, since wall time
// is meaningless inside a discrete-event run.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hbguard {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide logger. Defaults to kWarn on stderr so tests stay quiet.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  using TimeSource = std::function<std::int64_t()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  /// Register a virtual-time source (microseconds); nullptr to clear.
  void set_time_source(TimeSource source);

  void log(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  std::mutex mutex_;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  TimeSource time_source_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hbguard

#define HBG_LOG(level)                                        \
  if (!::hbguard::Logger::instance().enabled(level)) {        \
  } else                                                      \
    ::hbguard::detail::LogLine(level)

#define HBG_TRACE HBG_LOG(::hbguard::LogLevel::kTrace)
#define HBG_DEBUG HBG_LOG(::hbguard::LogLevel::kDebug)
#define HBG_INFO HBG_LOG(::hbguard::LogLevel::kInfo)
#define HBG_WARN HBG_LOG(::hbguard::LogLevel::kWarn)
#define HBG_ERROR HBG_LOG(::hbguard::LogLevel::kError)
