// Lightweight leveled logger used across hbguard.
//
// The simulator and guard pipeline are single-threaded per run, but tests may
// run scenarios concurrently, so the sink is guarded by a mutex. Log lines
// carry the *virtual* simulation time when one is registered, since wall time
// is meaningless inside a discrete-event run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hbguard {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide logger. Defaults to kWarn on stderr so tests stay quiet.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  using TimeSource = std::function<std::int64_t()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  /// Register a virtual-time source (microseconds); nullptr to clear.
  void set_time_source(TimeSource source);

  void log(LogLevel level, std::string_view message);

  /// Emit one "<site>: N rate-limited warning(s) suppressed" line per
  /// registered RateLimiter site with unreported suppressions. Long-lived
  /// processes (hbguardd) call this at shutdown; each site also self-flushes
  /// when it is destroyed, so plain program exit reports the tallies too.
  void flush_suppressed();

 private:
  Logger() = default;
  std::mutex mutex_;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  TimeSource time_source_;
};

/// Suppresses all but every Nth occurrence of a repeating log site. Fault
/// runs can detect thousands of gaps/duplicates; without this they flood
/// stderr. Thread-safe (capture admission is single-threaded today, but
/// tests drive scenarios concurrently).
///
/// A limiter constructed with a site label registers itself: its suppressed
/// tally is reported by Logger::flush_suppressed() and, finally, by its own
/// destructor — otherwise counts silently vanish at shutdown.
class RateLimiter {
 public:
  explicit RateLimiter(std::uint64_t every_n, std::string site = {});
  ~RateLimiter();
  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// True on occurrences 0, N, 2N, ... — the ones that should be logged.
  bool allow() { return counter_.fetch_add(1, std::memory_order_relaxed) % every_n_ == 0; }

  std::uint64_t seen() const { return counter_.load(std::memory_order_relaxed); }

  /// Occurrences allow() swallowed so far.
  std::uint64_t suppressed() const;

  /// Log this site's not-yet-reported suppressed count (idempotent: a
  /// second flush with no new suppressions emits nothing).
  void flush();

 private:
  std::uint64_t every_n_;
  std::string site_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> reported_{0};  // cumulative suppressions already flushed
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hbguard

#define HBG_LOG(level)                                        \
  if (!::hbguard::Logger::instance().enabled(level)) {        \
  } else                                                      \
    ::hbguard::detail::LogLine(level)

#define HBG_DETAIL_STRINGIZE2(x) #x
#define HBG_DETAIL_STRINGIZE(x) HBG_DETAIL_STRINGIZE2(x)

// Rate-limited variant: logs occurrence 0 of every `n` at this call site,
// skips the rest. Each expansion gets its own counter (static local inside a
// per-site lambda type), labelled file:line so suppressed tallies can be
// flushed at teardown.
#define HBG_LOG_EVERY_N(level, n)                                          \
  if (!::hbguard::Logger::instance().enabled(level)) {                     \
  } else if (([]() -> bool {                                               \
               static ::hbguard::RateLimiter hbg_rl_{                     \
                   n, __FILE__ ":" HBG_DETAIL_STRINGIZE(__LINE__)};        \
               return !hbg_rl_.allow();                                    \
             })()) {                                                       \
  } else                                                                   \
    ::hbguard::detail::LogLine(level)

#define HBG_WARN_EVERY_N(n) HBG_LOG_EVERY_N(::hbguard::LogLevel::kWarn, n)

#define HBG_TRACE HBG_LOG(::hbguard::LogLevel::kTrace)
#define HBG_DEBUG HBG_LOG(::hbguard::LogLevel::kDebug)
#define HBG_INFO HBG_LOG(::hbguard::LogLevel::kInfo)
#define HBG_WARN HBG_LOG(::hbguard::LogLevel::kWarn)
#define HBG_ERROR HBG_LOG(::hbguard::LogLevel::kError)
