// Deterministic crash injection for the kill-recovery harness.
//
// HBGUARD_CRASH_POINT holds comma-separated "tag:count" specs, e.g.
// "post-deliver:37" or "wal-torn:2,mid-scan:5". The count'th time execution
// reaches crash_point(tag) (1-based), the process dies via _exit(137) —
// no destructors, no atexit, no flushes — the closest portable stand-in
// for SIGKILL that can still be planted *inside* a critical section
// (half-written WAL frame, mid-checkpoint, mid-scan). Unset or non-matching
// tags cost one branch on a parsed table.
//
// Instrumented tags in the tree:
//   wal-torn         GuardWal flush: write half a frame, fdatasync, die
//   checkpoint-torn  write_checkpoint: die with a partial tmp file on disk
//   post-deliver     ReplayGuardSession::deliver, after the record landed
//   mid-scan         ReplayGuardSession::scan_at, before the guard scans
//   post-scan        ReplayGuardSession::scan_at, after the guard scanned
#pragma once

#include <string_view>

namespace hbguard {

/// True when this hit is the armed one (the call itself counts the hit).
/// Callers that need to corrupt state *before* dying (torn-frame writes)
/// test this, do the damage, then call crash_now().
bool crash_point_armed(std::string_view tag);

[[noreturn]] void crash_now();

inline void crash_point(std::string_view tag) {
  if (crash_point_armed(tag)) crash_now();
}

}  // namespace hbguard
