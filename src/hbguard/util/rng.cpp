#include "hbguard/util/rng.hpp"

#include <cassert>
#include <stdexcept>

namespace hbguard {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential requires mean > 0");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index on empty weights");
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

Rng Rng::fork() {
  return Rng(engine_());
}

}  // namespace hbguard
