// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hbguard {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join items with a separator; items must be string-convertible via
/// std::string(item) or item.to_string().
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Render microseconds as a compact human string, e.g. "25s", "4ms", "0.1ms".
std::string format_duration_us(std::int64_t micros);

}  // namespace hbguard
