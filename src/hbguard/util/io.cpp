#include "hbguard/util/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hbguard::io {

ssize_t read_retry(int fd, void* buffer, std::size_t length) {
  for (;;) {
    ssize_t n = ::read(fd, buffer, length);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool write_full(int fd, const void* buffer, std::size_t length) {
  const char* data = static_cast<const char*>(buffer);
  while (length > 0) {
    ssize_t n = ::write(fd, data, length);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    length -= static_cast<std::size_t>(n);
  }
  return true;
}

int poll_retry(pollfd* fds, nfds_t count, int timeout_ms) {
  for (;;) {
    int ready = ::poll(fds, count, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    return ready;
  }
}

bool fsync_retry(int fd) {
  for (;;) {
    if (::fdatasync(fd) == 0) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

namespace {

bool fsync_directory_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  bool ok = fsync_retry(fd);
  ::close(fd);
  return ok;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       std::string* error) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (fd < 0) {
    if (error != nullptr) *error = tmp + ": open: " + std::strerror(errno);
    return false;
  }
  bool ok = write_full(fd, bytes.data(), bytes.size()) && fsync_retry(fd);
  int saved = errno;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    if (error != nullptr) *error = tmp + ": write: " + std::strerror(saved);
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = path + ": rename: " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename is durable only once the directory entry is; without this a
  // crash could resurrect the old generation after the caller reported the
  // new one as committed.
  if (!fsync_directory_of(path)) {
    if (error != nullptr) *error = path + ": directory fsync: " + std::strerror(errno);
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out, std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = path + ": open: " + std::strerror(errno);
    return false;
  }
  out.clear();
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t n = read_retry(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (error != nullptr) *error = path + ": read: " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  ::close(fd);
  return true;
}

}  // namespace hbguard::io
