// Bump allocation for ingest-scale record storage.
//
// Parsing a million-record trace archive must not pay a heap allocation (or
// a string copy) per record: the Arena hands out pointer-stable bytes from
// chunked slabs, and the StringInterner stores each distinct string once,
// returning string_views that stay valid for the interner's lifetime.
// Neither runs destructors for the objects placed in them — callers may only
// park trivially-destructible data (the archive record views qualify).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace hbguard {

/// Append-only chunked bump allocator. Allocations are pointer-stable (a
/// chunk is never moved or freed until the arena dies) and O(1) amortized;
/// there is no per-object free. Not thread-safe.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1u << 20) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bytes with the requested alignment (power of two).
  void* allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t)) {
    std::size_t aligned = (used_ + (alignment - 1)) & ~(alignment - 1);
    if (chunks_.empty() || aligned + bytes > chunk_size_) {
      std::size_t size = std::max(chunk_bytes_, bytes + alignment);
      chunks_.push_back(std::make_unique<std::byte[]>(size));
      chunk_size_ = size;
      used_ = 0;
      aligned = 0;
      allocated_bytes_ += size;
    }
    used_ = aligned + bytes;
    return chunks_.back().get() + aligned;
  }

  /// Uninitialized array of `count` trivially-destructible T.
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copy `data` into the arena; the returned view outlives the source.
  std::string_view copy(std::string_view data) {
    if (data.empty()) return {};
    char* out = allocate_array<char>(data.size());
    std::memcpy(out, data.data(), data.size());
    return {out, data.size()};
  }

  /// Total bytes reserved from the heap (capacity, not live objects).
  std::size_t allocated_bytes() const { return allocated_bytes_; }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t chunk_size_ = 0;
  std::size_t used_ = 0;
  std::size_t allocated_bytes_ = 0;
};

/// One stored copy per distinct string, backed by an Arena. Interning the
/// same text twice returns views over the *same* bytes, so a store holding
/// millions of records pays for each session/router name once.
class StringInterner {
 public:
  explicit StringInterner(std::size_t chunk_bytes = 1u << 18) : arena_(chunk_bytes) {}

  std::string_view intern(std::string_view text) {
    if (text.empty()) return {};
    auto it = known_.find(text);
    if (it != known_.end()) return *it;
    std::string_view stored = arena_.copy(text);
    known_.insert(stored);
    return stored;
  }

  std::size_t size() const { return known_.size(); }
  std::size_t allocated_bytes() const { return arena_.allocated_bytes(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };
  Arena arena_;
  std::unordered_set<std::string_view, Hash, std::equal_to<>> known_;
};

}  // namespace hbguard
