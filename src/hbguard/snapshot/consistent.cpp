#include "hbguard/snapshot/consistent.hpp"

#include <algorithm>

#include "hbguard/util/strings.hpp"

namespace hbguard {

ThreadPool* ConsistentSnapshotter::replay_pool() const {
  if (resolve_num_threads(options_.num_threads) == 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) pool_ = std::make_shared<ThreadPool>(options_.num_threads);
  return pool_.get();
}

DataPlaneSnapshot ConsistentSnapshotter::build(std::span<const IoRecord> records,
                                               const HappensBeforeGraph& hbg,
                                               const std::map<RouterId, SimTime>& horizons,
                                               ConsistencyReport* report,
                                               const std::set<RouterId>* lossy_routers) const {
  // Per-router logs in router_seq order, plus how far each log extends
  // (for the lost-send presumption below).
  std::map<RouterId, std::vector<const IoRecord*>> logs;
  std::map<RouterId, SimTime> latest_logged;
  for (const IoRecord& r : records) {
    logs[r.router].push_back(&r);
    SimTime& latest = latest_logged[r.router];
    latest = std::max(latest, r.logged_time);
  }
  for (auto& [router, log] : logs) {
    std::sort(log.begin(), log.end(), [](const IoRecord* a, const IoRecord* b) {
      return a->router_seq < b->router_seq;
    });
  }

  // Initial frontier: the longest log prefix whose records were logged at
  // or before the router's horizon.
  std::map<RouterId, std::size_t> frontier;
  for (const auto& [router, log] : logs) {
    SimTime horizon = Simulator::kForever;
    auto it = horizons.find(router);
    if (it != horizons.end()) horizon = it->second;
    std::size_t count = 0;
    for (const IoRecord* r : log) {
      if (r->logged_time > horizon) break;
      ++count;
    }
    frontier[router] = count;
  }
  std::map<RouterId, std::size_t> initial_frontier = frontier;

  // Index: record id -> (router, position).
  std::map<IoId, std::pair<RouterId, std::size_t>> position;
  for (const auto& [router, log] : logs) {
    for (std::size_t i = 0; i < log.size(); ++i) position[log[i]->id] = {router, i};
  }
  auto included = [&](IoId id) {
    auto it = position.find(id);
    if (it == position.end()) return false;  // unknown (lost) record
    return it->second.second < frontier[it->second.first];
  };

  // Happens-before closure by rewinding routers that are "ahead".
  std::size_t unmatched_recvs = 0;
  std::size_t iterations = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations;
    for (const auto& [router, log] : logs) {
      std::size_t limit = frontier[router];
      for (std::size_t i = 0; i < limit; ++i) {
        const IoRecord& r = *log[i];
        bool must_rewind = false;
        hbg.for_each_in_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
          if (!included(edge.from) && position.contains(edge.from)) {
            // The cause exists but is beyond its router's horizon: we are
            // ahead of that router — rewind past this record.
            must_rewind = true;
            return true;
          }
          return false;
        });
        if (!must_rewind && options_.require_send_for_recv && r.kind == IoKind::kRecvAdvert &&
            r.peer != kExternalRouter && r.peer != kInvalidRouter) {
          bool has_send = false;
          hbg.for_each_in_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
            const IoRecord* parent = hbg.record(edge.from);
            if (parent != nullptr && parent->kind == IoKind::kSendAdvert) {
              has_send = true;
              return true;
            }
            return false;
          });
          if (!has_send) {
            // The send may have been dropped for good by a faulty capture
            // stream rather than being in flight: the sender's stream is
            // known lossy and its log already extends well past this recv,
            // so (per-router seq-order admission) the send can never
            // arrive. The recv is the only surviving evidence of the
            // update — keep it instead of rewinding its router forever.
            auto latest = latest_logged.find(r.peer);
            bool presumed_lost =
                lossy_routers != nullptr && lossy_routers->contains(r.peer) &&
                latest != latest_logged.end() &&
                latest->second >= r.logged_time + options_.lost_send_grace_us;
            if (!presumed_lost) {
              ++unmatched_recvs;
              must_rewind = true;
            }
          }
        }
        if (must_rewind) {
          frontier[router] = i;  // exclude r and everything after it
          changed = true;
          break;
        }
      }
    }
  }

  // Replay each router's included FIB updates and uplink state changes.
  // Replays are independent per router, so they shard across the pool;
  // results are committed to the snapshot in router-id order, keeping
  // parallel builds identical to serial ones.
  std::vector<std::pair<RouterId, const std::vector<const IoRecord*>*>> replay_order;
  replay_order.reserve(logs.size());
  for (const auto& [router, log] : logs) replay_order.emplace_back(router, &log);

  std::vector<RouterFibView> views(replay_order.size());
  auto replay_router = [&](std::size_t index) {
    const auto& [router, log] = replay_order[index];
    RouterFibView view;
    Fib fib;
    for (std::size_t i = 0; i < frontier[router]; ++i) {
      const IoRecord& r = *(*log)[i];
      view.as_of = std::max(view.as_of, r.logged_time);
      if (r.fib_reset) {
        // Checkpoint marker (cold boot / capture resync): void everything
        // replayed so far; subsequent records rebuild the view.
        fib.clear();
        view.failed_uplinks.clear();
        view.uplink_routes.clear();
      }
      if (r.kind == IoKind::kFibUpdate && !r.fib_blocked) {
        if (r.withdraw) {
          if (r.prefix) fib.remove(*r.prefix);
        } else if (r.fib_entry.has_value()) {
          fib.install(*r.fib_entry);
        }
      } else if (r.kind == IoKind::kHardwareStatus && !r.session.empty()) {
        if (r.link_up) {
          view.failed_uplinks.erase(r.session);
        } else {
          view.failed_uplinks.insert(r.session);
          // An uplink failure resets the eBGP session: its offers are gone.
          view.uplink_routes.erase(r.session);
        }
      } else if (r.kind == IoKind::kRecvAdvert && r.peer == kExternalRouter &&
                 r.prefix.has_value()) {
        // Track what each external uplink currently offers.
        if (r.withdraw) {
          view.uplink_routes[r.session].erase(*r.prefix);
        } else {
          view.uplink_routes[r.session].insert(*r.prefix);
        }
      }
    }
    view.entries = fib.entries();
    views[index] = std::move(view);
  };

  ThreadPool* pool = replay_pool();
  if (pool != nullptr && replay_order.size() > 1) {
    pool->parallel_for(replay_order.size(), replay_router);
  } else {
    for (std::size_t i = 0; i < replay_order.size(); ++i) replay_router(i);
  }

  DataPlaneSnapshot snapshot;
  for (std::size_t i = 0; i < replay_order.size(); ++i) {
    snapshot.routers[replay_order[i].first] = std::move(views[i]);
  }

  if (report != nullptr) {
    report->unmatched_recvs = unmatched_recvs;
    report->iterations = iterations;
    for (const auto& [router, count] : initial_frontier) {
      report->rewound[router] = count - frontier[router];
    }
    // In-flux detection: an included internal send whose matching receive
    // (per the HBG's cross-router edges) is beyond the peer's frontier
    // means this prefix has an update mid-propagation at the cut.
    std::map<RouterId, SimTime> frontier_time;
    for (const auto& [router, log] : logs) {
      frontier_time[router] =
          frontier[router] > 0 ? log[frontier[router] - 1]->logged_time : 0;
    }
    for (const auto& [router, log] : logs) {
      for (std::size_t i = 0; i < frontier[router]; ++i) {
        const IoRecord& r = *log[i];
        if (r.kind != IoKind::kSendAdvert || !r.prefix.has_value() ||
            r.peer == kExternalRouter || r.peer == kInvalidRouter) {
          continue;
        }
        // Sends long before the peer's frontier are presumed delivered even
        // when the (imperfect) HBG lacks the edge.
        auto peer_frontier = frontier_time.find(r.peer);
        if (peer_frontier != frontier_time.end() &&
            r.logged_time + options_.in_flux_window_us < peer_frontier->second) {
          continue;
        }
        bool received = false;
        hbg.for_each_out_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
          const IoRecord* child = hbg.record(edge.to);
          if (child != nullptr && child->kind == IoKind::kRecvAdvert && included(edge.to)) {
            received = true;
            return true;
          }
          return false;
        });
        if (!received) report->in_flux.insert(*r.prefix);
      }
    }
  }
  return snapshot;
}

}  // namespace hbguard
