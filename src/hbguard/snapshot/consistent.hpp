// HBG-consistent data-plane snapshots (§5).
//
// "To obtain a consistent snapshot — one that reflects the FIB entries a
// packet would encounter as it traverses the network at a specific instance
// in time — we simply need to ensure that if a FIB snapshot from one router
// was taken after applying a route update U, then the FIB snapshot from
// every other router that had previously received U must also have been
// taken after applying U."
//
// The snapshotter reconstructs every router's FIB by replaying its reported
// FIB-update I/Os up to a per-router horizon (how much of that router's log
// the collector has received), then enforces happens-before closure: if an
// included I/O has an HBG predecessor that is beyond its own router's
// horizon, the *including* router is rewound past the dependent I/O — the
// equivalent of the verifier "waiting until it receives the up-to-date HBG"
// in the paper's §7 example. Received advertisements without a matching
// send in the HBG likewise signal missing I/Os and trigger a rewind.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/snapshot/snapshot.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {

struct ConsistencyReport {
  /// Records excluded per router to restore consistency.
  std::map<RouterId, std::size_t> rewound;
  /// Received advertisements whose send was not found in the HBG.
  std::size_t unmatched_recvs = 0;
  /// Fixpoint iterations used.
  std::size_t iterations = 0;
  /// Prefixes with updates still in flight at the cut: an included internal
  /// send whose matching receive lies beyond the peer's frontier. HB-closure
  /// keeps the cut causally consistent, but *concurrent* updates to the same
  /// prefix can still mix epochs across routers; §5's remedy is to wait, so
  /// verdicts for these prefixes should be deferred to the next snapshot.
  std::set<Prefix> in_flux;

  std::size_t total_rewound() const {
    std::size_t sum = 0;
    for (const auto& [router, count] : rewound) sum += count;
    return sum;
  }
};

class ConsistentSnapshotter {
 public:
  struct Options {
    /// Minimum edge confidence for closure checking (pattern-mined HBRs
    /// below this are ignored, per §4.2's confidence thresholding).
    double min_confidence = 0.9;
    /// Rewind past internal recvs with no matching send edge (§5: a
    /// missing output means "all router I/Os have not been received").
    bool require_send_for_recv = true;
    /// A send without a matched receive marks its prefix in-flux only while
    /// the peer's frontier is within this window of the send — older
    /// unmatched sends are presumed delivered (inference can miss an edge;
    /// real propagation completes in well under this bound).
    SimTime in_flux_window_us = 5'000'000;
    /// A recv whose send is absent is presumed *lost in capture* (rather
    /// than in flight) — and kept — when the sender is a known-lossy
    /// stream AND the sender's log extends at least this far past the
    /// recv: the hub admits per-router records in seq order, so once later
    /// records of the sender are stored the send can never arrive.
    SimTime lost_send_grace_us = 10'000;
    /// Worker threads for the per-router FIB replay (0 = one per hardware
    /// thread, 1 = serial). The happens-before closure itself is inherently
    /// sequential; only the replay shards. Parallel and serial builds
    /// produce identical snapshots.
    unsigned num_threads = 1;
  };

  ConsistentSnapshotter() = default;
  explicit ConsistentSnapshotter(Options options) : options_(options) {}

  /// Share a pool with other pipeline stages (e.g. the Guard's verifier);
  /// without one, a pool is created lazily when the options ask for
  /// parallelism.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) { pool_ = std::move(pool); }

  /// Build a consistent snapshot from the full capture history. `horizons`
  /// gives the logged-time cut per router (records after it have not
  /// reached the collector yet); routers absent from the map are taken in
  /// full. Pass a report pointer for diagnostics. `lossy_routers` (from
  /// StreamHealthTracker::lossy_routers) names streams with records
  /// dropped for good — closure then distinguishes lost sends from
  /// in-flight ones instead of rewinding their receivers forever; null
  /// (the default, and any run without stream health) keeps the strict
  /// behaviour.
  DataPlaneSnapshot build(std::span<const IoRecord> records, const HappensBeforeGraph& hbg,
                          const std::map<RouterId, SimTime>& horizons,
                          ConsistencyReport* report = nullptr,
                          const std::set<RouterId>* lossy_routers = nullptr) const;

 private:
  ThreadPool* replay_pool() const;

  Options options_;
  mutable std::mutex pool_mutex_;  // guards lazy pool creation
  mutable std::shared_ptr<ThreadPool> pool_;
};

}  // namespace hbguard
