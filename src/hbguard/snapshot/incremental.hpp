// Delta-driven HBG-consistent snapshots (§5, §7).
//
// ConsistentSnapshotter rebuilds every router's FIB from the full capture
// history on each call, so a guarded run costs O(trace²). This snapshotter
// maintains the same snapshot *across* scans: it ingests only the records
// captured since the previous scan, folds them into persistent per-router
// FIB replay state, and re-runs the happens-before closure only over the
// log ranges whose verdict could have changed — each router's pending
// suffix (records past its validated frontier) plus any record that gained
// an incoming HBG edge since the last scan.
//
// Why that is enough (and when it is not): with full horizons, the
// closure's fixpoint is the *greatest* frontier vector under which no
// included record depends on a known-but-excluded cause and no included
// internal receive lacks a matching send. Records validated by the
// previous fixpoint stay valid as long as (a) their in-edge sets are
// unchanged and (b) no router's frontier drops below its previous stable
// frontier — both monotone-preserving conditions. New edges targeting the
// stable region void (a) for those records, so their positions are
// re-checked; if any re-check (or cascade) rewinds a router *below* its
// stable frontier, condition (b) is void for everyone and the snapshotter
// falls back to a full scratch-equivalent closure for that scan (counted
// in Stats::closure_fallbacks), rebuilding replay state where the frontier
// regressed. The result is byte-identical to ConsistentSnapshotter::build
// over the full history with empty horizons, every scan.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/snapshot.hpp"

namespace hbguard {

class IncrementalSnapshotter {
 public:
  struct Options {
    /// Minimum edge confidence for closure checking (mirror of
    /// ConsistentSnapshotter::Options::min_confidence).
    double min_confidence = 0.9;
    /// Rewind past internal recvs with no matching send edge.
    bool require_send_for_recv = true;
    /// In-flux window for diagnostic reports (see ConsistentSnapshotter).
    SimTime in_flux_window_us = 5'000'000;
    /// Lost-send presumption window (mirror of
    /// ConsistentSnapshotter::Options::lost_send_grace_us).
    SimTime lost_send_grace_us = 10'000;
  };

  struct Stats {
    std::size_t scans = 0;             // ingest() calls
    std::size_t records_ingested = 0;  // cumulative records folded in
    std::size_t closure_checks = 0;    // record inspections across all closures
    std::size_t closure_fallbacks = 0; // scans that re-ran the closure from scratch
    std::size_t rebuilt_routers = 0;   // replay states rebuilt after a frontier regression
    std::size_t full_deltas = 0;       // scans whose SnapshotDelta degraded to `full`
  };

  IncrementalSnapshotter() = default;
  explicit IncrementalSnapshotter(Options options) : options_(options) {}

  /// Fold the records captured since the previous call (capture order) and
  /// the HBG edges added since then into the maintained snapshot, and
  /// return it. `hbg` must be the live graph containing every ingested
  /// record; the cut is the full-horizon one (every known record is
  /// tentatively included, exactly like ConsistentSnapshotter with empty
  /// horizons). When `delta` is non-null it is filled with what changed
  /// relative to the previous snapshot. When `report` is non-null the
  /// consistency diagnostics are computed (the in-flux pass walks the full
  /// history — request it for debugging, not on the hot path; its
  /// `iterations`/`unmatched_recvs` counters cover this scan's closure
  /// work only, while `rewound` and `in_flux` match the scratch builder).
  /// `lossy_routers` mirrors ConsistentSnapshotter::build's parameter: the
  /// set may only grow between calls (StreamHealthTracker membership is
  /// permanent), which keeps the stable-frontier argument valid — a record
  /// admitted under the lost-send presumption can never turn bad again.
  const DataPlaneSnapshot& ingest(std::span<const IoRecord> new_records,
                                  const HappensBeforeGraph& hbg,
                                  std::span<const HbgEdge> new_edges,
                                  SnapshotDelta* delta = nullptr,
                                  ConsistencyReport* report = nullptr,
                                  const std::set<RouterId>* lossy_routers = nullptr);

  /// The snapshot as of the last ingest (empty before the first).
  const DataPlaneSnapshot& snapshot() const { return snapshot_; }

  const Stats& stats() const { return stats_; }

 private:
  struct RouterState {
    std::vector<IoRecord> log;  // owned copies, router_seq (= capture) order
    /// Validated frontier after the last ingest: records below it passed
    /// closure and are folded into `fib`/the snapshot view.
    std::size_t stable = 0;
    /// Latest logged_time in `log` (monotone; drives the lost-send
    /// presumption exactly like the scratch builder's per-log maximum).
    SimTime latest_logged = 0;
    Fib fib;
  };

  Options options_;
  Stats stats_;
  std::map<RouterId, RouterState> routers_;
  /// Record id -> (router, log position); covers every ingested record.
  std::map<IoId, std::pair<RouterId, std::size_t>> position_;
  DataPlaneSnapshot snapshot_;
};

}  // namespace hbguard
