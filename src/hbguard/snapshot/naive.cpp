#include "hbguard/snapshot/naive.hpp"

namespace hbguard {

const FibEntry* DataPlaneSnapshot::lookup(RouterId router, IpAddress destination) const {
  auto view_it = routers.find(router);
  if (view_it == routers.end()) return nullptr;
  auto cached = fib_cache_.find(router);
  if (cached == fib_cache_.end()) {
    auto fib = std::make_shared<Fib>();
    for (const FibEntry& entry : view_it->second.entries) fib->install(entry);
    cached = fib_cache_.emplace(router, std::move(fib)).first;
  }
  return cached->second->lookup(destination);
}

void DataPlaneSnapshot::warm_lookup_cache() const {
  for (const auto& [router, view] : routers) {
    if (fib_cache_.contains(router)) continue;
    auto fib = std::make_shared<Fib>();
    for (const FibEntry& entry : view.entries) fib->install(entry);
    fib_cache_.emplace(router, std::move(fib));
  }
}

std::vector<Prefix> DataPlaneSnapshot::all_prefixes() const {
  std::set<Prefix> unique;
  for (const auto& [router, view] : routers) {
    for (const FibEntry& entry : view.entries) unique.insert(entry.prefix);
  }
  return {unique.begin(), unique.end()};
}

bool DataPlaneSnapshot::uplink_up(RouterId router, const std::string& session) const {
  auto it = routers.find(router);
  if (it == routers.end()) return true;
  return !it->second.failed_uplinks.contains(session);
}

bool DataPlaneSnapshot::uplink_offers(RouterId router, const std::string& session,
                                      const Prefix& prefix) const {
  if (!uplink_up(router, session)) return false;
  auto it = routers.find(router);
  if (it == routers.end()) return false;
  auto session_it = it->second.uplink_routes.find(session);
  if (session_it == it->second.uplink_routes.end()) return false;
  for (const Prefix& offered : session_it->second) {
    if (offered.covers(prefix)) return true;
  }
  return false;
}

namespace {
RouterFibView view_of(const Router& router, SimTime now) {
  RouterFibView view;
  view.entries = router.data_fib().entries();
  view.as_of = now;
  view.failed_uplinks = router.failed_uplinks();
  view.uplink_routes = router.external_routes();
  return view;
}
}  // namespace

DataPlaneSnapshot take_instant_snapshot(const Network& network) {
  DataPlaneSnapshot snapshot;
  for (std::size_t i = 0; i < network.router_count(); ++i) {
    auto id = static_cast<RouterId>(i);
    snapshot.routers[id] = view_of(network.router(id), network.sim().now());
  }
  return snapshot;
}

NaiveSnapshotter::NaiveSnapshotter(Network& network, SimTime max_skew_us, std::uint64_t seed)
    : network_(network), max_skew_us_(max_skew_us), rng_(seed) {}

void NaiveSnapshotter::request() {
  state_ = std::make_shared<State>();
  state_->pending = network_.router_count();
  for (std::size_t i = 0; i < network_.router_count(); ++i) {
    auto id = static_cast<RouterId>(i);
    SimTime skew = max_skew_us_ > 0 ? rng_.uniform_int(0, max_skew_us_) : 0;
    auto state = state_;
    Network* network = &network_;
    network_.sim().schedule_after(skew, [state, network, id] {
      state->snapshot.routers[id] = view_of(network->router(id), network->sim().now());
      --state->pending;
    });
  }
}

}  // namespace hbguard
