#include "hbguard/snapshot/naive.hpp"

namespace hbguard {

DataPlaneSnapshot::RouterLookupState& DataPlaneSnapshot::state_of(
    RouterId router, const RouterFibView& view) const {
  RouterLookupState& state = lookup_cache_[router];
  if (!state.index_built) {
    std::vector<Prefix> prefixes;
    prefixes.reserve(view.entries.size());
    for (const FibEntry& entry : view.entries) prefixes.push_back(entry.prefix);
    state.index.build(prefixes);
    state.index_built = true;
  }
  return state;
}

const FibEntry* DataPlaneSnapshot::lookup(RouterId router, IpAddress destination) const {
  auto view_it = routers.find(router);
  if (view_it == routers.end()) return nullptr;
  const RouterLookupState& state = state_of(router, view_it->second);
  std::uint32_t position = state.index.lookup(destination);
  if (position == FlatPrefixIndex::kNotFound) return nullptr;
  return &view_it->second.entries[position];
}

const FibEntry* DataPlaneSnapshot::exact_entry(RouterId router, const Prefix& prefix) const {
  auto view_it = routers.find(router);
  if (view_it == routers.end()) return nullptr;
  const RouterLookupState& state = state_of(router, view_it->second);
  std::uint32_t position = state.index.exact(prefix);
  if (position == FlatPrefixIndex::kNotFound) return nullptr;
  return &view_it->second.entries[position];
}

void DataPlaneSnapshot::warm_lookup_cache() const {
  for (const auto& [router, view] : routers) state_of(router, view);
}

bool DataPlaneSnapshot::apply_fib_update(RouterId router, const FibEntry& entry, bool withdraw) {
  auto view_it = routers.find(router);
  if (view_it == routers.end()) return false;
  std::vector<FibEntry>& entries = view_it->second.entries;
  RouterLookupState& state = lookup_cache_[router];
  if (!state.positions_built) {
    state.positions.clear();
    state.positions.reserve(entries.size());
    for (std::uint32_t i = 0; i < entries.size(); ++i) state.positions[entries[i].prefix] = i;
    state.positions_built = true;
  }
  auto pos_it = state.positions.find(entry.prefix);
  if (withdraw) {
    if (pos_it == state.positions.end()) return false;
    std::uint32_t position = pos_it->second;
    state.positions.erase(pos_it);
    if (position + 1 != entries.size()) {
      entries[position] = std::move(entries.back());
      state.positions[entries[position].prefix] = position;
    }
    entries.pop_back();
    state.index.clear();
    state.index_built = false;  // positions shifted; rebuild lazily
    return true;
  }
  if (pos_it != state.positions.end()) {
    if (entries[pos_it->second] == entry) return false;
    // Same prefix, new content: the LPM index maps prefixes to positions
    // and neither changed, so it stays warm.
    entries[pos_it->second] = entry;
    return true;
  }
  state.positions[entry.prefix] = static_cast<std::uint32_t>(entries.size());
  entries.push_back(entry);
  state.index.clear();
  state.index_built = false;
  return true;
}

std::vector<Prefix> DataPlaneSnapshot::all_prefixes() const {
  std::set<Prefix> unique;
  for (const auto& [router, view] : routers) {
    for (const FibEntry& entry : view.entries) unique.insert(entry.prefix);
  }
  return {unique.begin(), unique.end()};
}

bool DataPlaneSnapshot::uplink_up(RouterId router, const std::string& session) const {
  auto it = routers.find(router);
  if (it == routers.end()) return true;
  return !it->second.failed_uplinks.contains(session);
}

bool DataPlaneSnapshot::uplink_offers(RouterId router, const std::string& session,
                                      const Prefix& prefix) const {
  if (!uplink_up(router, session)) return false;
  auto it = routers.find(router);
  if (it == routers.end()) return false;
  auto session_it = it->second.uplink_routes.find(session);
  if (session_it == it->second.uplink_routes.end()) return false;
  for (const Prefix& offered : session_it->second) {
    if (offered.covers(prefix)) return true;
  }
  return false;
}

namespace {
RouterFibView view_of(const Router& router, SimTime now) {
  RouterFibView view;
  view.entries = router.data_fib().entries();
  view.as_of = now;
  view.failed_uplinks = router.failed_uplinks();
  view.uplink_routes = router.external_routes();
  return view;
}
}  // namespace

DataPlaneSnapshot take_instant_snapshot(const Network& network) {
  DataPlaneSnapshot snapshot;
  for (std::size_t i = 0; i < network.router_count(); ++i) {
    auto id = static_cast<RouterId>(i);
    snapshot.routers[id] = view_of(network.router(id), network.sim().now());
  }
  return snapshot;
}

NaiveSnapshotter::NaiveSnapshotter(Network& network, SimTime max_skew_us, std::uint64_t seed)
    : network_(network), max_skew_us_(max_skew_us), rng_(seed) {}

void NaiveSnapshotter::request() {
  state_ = std::make_shared<State>();
  state_->pending = network_.router_count();
  for (std::size_t i = 0; i < network_.router_count(); ++i) {
    auto id = static_cast<RouterId>(i);
    SimTime skew = max_skew_us_ > 0 ? rng_.uniform_int(0, max_skew_us_) : 0;
    auto state = state_;
    Network* network = &network_;
    network_.sim().schedule_after(skew, [state, network, id] {
      state->snapshot.routers[id] = view_of(network->router(id), network->sim().now());
      --state->pending;
    });
  }
}

}  // namespace hbguard
