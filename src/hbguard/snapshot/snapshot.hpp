// Data-plane snapshot types shared by the naive and consistent snapshotters.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "hbguard/event/simulator.hpp"
#include "hbguard/net/prefix_trie.hpp"
#include "hbguard/net/topology.hpp"
#include "hbguard/rib/fib.hpp"

namespace hbguard {

/// One router's FIB state as seen by the verifier, plus environment state
/// (which uplinks are up) needed to evaluate conditional policies.
struct RouterFibView {
  std::vector<FibEntry> entries;
  SimTime as_of = 0;  // the instant this view reflects
  std::set<std::string> failed_uplinks;
  /// Routes currently offered by each external uplink (derived from the
  /// captured eBGP advertisements/withdrawals on that session) — the
  /// environment state conditional policies like preferred-exit need.
  std::map<std::string, std::set<Prefix>> uplink_routes;
};

struct DataPlaneSnapshot {
  std::map<RouterId, RouterFibView> routers;

  /// Longest-prefix-match lookup in `router`'s view; nullptr if no match.
  /// Builds per-router FlatPrefixIndex structures lazily (cached) — ~20
  /// bytes per entry, so million-prefix views stay indexable where the old
  /// per-router PrefixTrie cache would cost hundreds of MB.
  const FibEntry* lookup(RouterId router, IpAddress destination) const;

  /// Exact-match entry for `prefix` in `router`'s view (not longest-match:
  /// a more-specific entry never shadows it); nullptr if absent. The
  /// streaming EC maintainer uses this to recount prefix presence under
  /// churn.
  const FibEntry* exact_entry(RouterId router, const Prefix& prefix) const;

  /// Build every router's lookup index now. Concurrent lookup() calls are
  /// only safe after warming (or mutual exclusion): the lazy index build
  /// mutates the cache. The sharded verifier warms before fanning out.
  void warm_lookup_cache() const;

  /// All prefixes appearing in any router's view.
  std::vector<Prefix> all_prefixes() const;

  bool uplink_up(RouterId router, const std::string& session) const;

  /// True if `router`'s uplink `session` is up and currently offers a route
  /// covering `prefix`.
  bool uplink_offers(RouterId router, const std::string& session, const Prefix& prefix) const;

  /// Install (or, with `withdraw`, remove) `entry.prefix` in `router`'s
  /// view, keeping the cached exact-position map coherent so million-entry
  /// views mutate in O(1) amortized instead of a linear entry scan. An
  /// in-place replacement keeps the LPM index warm; a prefix-set change
  /// drops it (rebuilt lazily on next lookup). Returns true if the view
  /// changed.
  bool apply_fib_update(RouterId router, const FibEntry& entry, bool withdraw);

  /// Lookups build per-router indices lazily; after mutating `routers`
  /// in place, call this to drop the stale indices.
  void invalidate_lookup_cache() const { lookup_cache_.clear(); }

  /// Drop one router's index only — the incremental snapshotter mutates
  /// views router-by-router, and unchanged routers keep their warm indices
  /// across scans.
  void invalidate_lookup_cache(RouterId router) const { lookup_cache_.erase(router); }

 private:
  struct RouterLookupState {
    FlatPrefixIndex index;      // LPM over the view's entries (lazy)
    bool index_built = false;
    /// prefix -> position in entries (lazy; maintained by apply_fib_update).
    std::unordered_map<Prefix, std::uint32_t> positions;
    bool positions_built = false;
  };
  RouterLookupState& state_of(RouterId router, const RouterFibView& view) const;

  mutable std::map<RouterId, RouterLookupState> lookup_cache_;
};

/// What changed between one snapshot and its predecessor in a scan stream.
/// Produced by the incremental snapshotter; consumed by the verifier to
/// invalidate only the affected per-destination memo entries instead of
/// re-keying every destination. A `full` delta (the default) claims
/// nothing, so consumers must treat every destination as changed — correct
/// for the first snapshot and for any fallback rebuild.
struct SnapshotDelta {
  bool full = true;
  /// Prefixes whose FIB entries were installed/removed on some router
  /// since the previous snapshot (a superset of actual changes is fine).
  std::set<Prefix> changed_prefixes;

  /// Could `destination`'s forwarding behaviour have changed? A
  /// destination's per-router action can only move when a FIB entry for a
  /// prefix containing it changed (longest-prefix match), or on a `full`
  /// delta (uplink up/down flips, router-set changes, rebuilds).
  bool affects(IpAddress destination) const {
    if (full) return true;
    for (const Prefix& prefix : changed_prefixes) {
      if (prefix.contains(destination)) return true;
    }
    return false;
  }
};

}  // namespace hbguard
