// Naive (skewed) and oracle snapshotters.
//
// The naive snapshotter models what existing data-plane verifiers do on a
// distributed control plane (§2, Fig. 1c): poll every router's FIB, with
// each response reflecting a slightly different instant. Under churn this
// yields inconsistent global views — phantom loops and missed violations.
//
// The oracle snapshotter reads every FIB at the same virtual instant. It is
// only possible because we own the simulator; it provides the ground truth
// against which verifier verdicts are scored.
#pragma once

#include <memory>

#include "hbguard/sim/network.hpp"
#include "hbguard/snapshot/snapshot.hpp"
#include "hbguard/util/rng.hpp"

namespace hbguard {

/// Ground truth: every router's data-plane FIB right now (impossible on a
/// real network; used for evaluation).
DataPlaneSnapshot take_instant_snapshot(const Network& network);

/// Asynchronous per-router polling with skew: router r's FIB is sampled at
/// now + U(0, max_skew_us). Schedule via request(), run the simulator past
/// the skew window, then read result().
class NaiveSnapshotter {
 public:
  NaiveSnapshotter(Network& network, SimTime max_skew_us, std::uint64_t seed = 1);

  /// Schedule the per-router samples. May be called repeatedly (each call
  /// starts a fresh snapshot).
  void request();

  /// True once every router has been sampled.
  bool complete() const { return state_ != nullptr && state_->pending == 0; }

  const DataPlaneSnapshot& result() const { return state_->snapshot; }

 private:
  struct State {
    DataPlaneSnapshot snapshot;
    std::size_t pending = 0;
  };
  Network& network_;
  SimTime max_skew_us_;
  Rng rng_;
  std::shared_ptr<State> state_;
};

}  // namespace hbguard
