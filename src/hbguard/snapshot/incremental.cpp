#include "hbguard/snapshot/incremental.hpp"

#include <algorithm>

namespace hbguard {

const DataPlaneSnapshot& IncrementalSnapshotter::ingest(std::span<const IoRecord> new_records,
                                                        const HappensBeforeGraph& hbg,
                                                        std::span<const HbgEdge> new_edges,
                                                        SnapshotDelta* delta,
                                                        ConsistencyReport* report,
                                                        const std::set<RouterId>* lossy_routers) {
  ++stats_.scans;
  bool delta_full = stats_.scans == 1;

  // 1. Append the new records. Capture order is per-router router_seq
  // order (the hub assigns sequence numbers monotonically), so appending
  // keeps each log sorted exactly as the scratch builder's sort would.
  for (const IoRecord& record : new_records) {
    auto [it, inserted] = routers_.try_emplace(record.router);
    if (inserted) delta_full = true;  // a new router changes every signature
    it->second.latest_logged = std::max(it->second.latest_logged, record.logged_time);
    it->second.log.push_back(record);
    position_[record.id] = {record.router, it->second.log.size() - 1};
    ++stats_.records_ingested;
  }

  // 2. Lowest index per router whose closure verdict may have changed: the
  // pending suffix (records past the stable frontier — previously rewound
  // or new), lowered to cover stable records that gained an in-edge.
  std::map<RouterId, std::size_t> check_from;
  for (const auto& [router, state] : routers_) check_from[router] = state.stable;
  for (const HbgEdge& edge : new_edges) {
    if (edge.confidence < options_.min_confidence) continue;
    auto pos = position_.find(edge.to);
    if (pos == position_.end()) continue;
    std::size_t& from = check_from[pos->second.first];
    from = std::min(from, pos->second.second);
  }

  // 3. Happens-before closure, restarted from the tentative full-horizon
  // frontier (everything known included) but only *checking* records from
  // check_from upward — everything below is proven stable (see header).
  std::map<RouterId, std::size_t> frontier;
  for (const auto& [router, state] : routers_) frontier[router] = state.log.size();

  auto included = [&](IoId id) {
    auto it = position_.find(id);
    if (it == position_.end()) return false;  // unknown (lost) record
    return it->second.second < frontier[it->second.first];
  };
  std::size_t unmatched_recvs = 0;
  auto bad = [&](const IoRecord& r) {
    ++stats_.closure_checks;
    bool missing_cause = false;
    hbg.for_each_in_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
      if (!included(edge.from) && position_.contains(edge.from)) {
        missing_cause = true;
        return true;
      }
      return false;
    });
    if (missing_cause) return true;
    if (options_.require_send_for_recv && r.kind == IoKind::kRecvAdvert &&
        r.peer != kExternalRouter && r.peer != kInvalidRouter) {
      bool has_send = false;
      hbg.for_each_in_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
        const IoRecord* parent = hbg.record(edge.from);
        if (parent != nullptr && parent->kind == IoKind::kSendAdvert) {
          has_send = true;
          return true;
        }
        return false;
      });
      if (!has_send) {
        // Mirror of the scratch builder's lost-send presumption: a
        // known-lossy sender whose log already extends past this recv can
        // never deliver the matching send — keep the recv.
        auto peer = routers_.find(r.peer);
        bool presumed_lost =
            lossy_routers != nullptr && lossy_routers->contains(r.peer) &&
            peer != routers_.end() &&
            peer->second.latest_logged >= r.logged_time + options_.lost_send_grace_us;
        if (!presumed_lost) {
          ++unmatched_recvs;
          return true;
        }
      }
    }
    return false;
  };

  std::size_t iterations = 0;
  bool fallback = false;
  bool changed = true;
  while (changed && !fallback) {
    changed = false;
    ++iterations;
    for (const auto& [router, state] : routers_) {
      std::size_t limit = frontier[router];
      for (std::size_t i = check_from[router]; i < limit; ++i) {
        if (bad(state.log[i])) {
          frontier[router] = i;
          changed = true;
          // A rewind below the stable frontier voids the other routers'
          // stable prefixes (they may depend on the newly excluded
          // records): fall back to the scratch-equivalent full closure.
          if (i < state.stable) fallback = true;
          break;
        }
      }
      if (fallback) break;
    }
  }

  if (fallback) {
    ++stats_.closure_fallbacks;
    delta_full = true;
    for (const auto& [router, state] : routers_) {
      frontier[router] = state.log.size();
      check_from[router] = 0;
    }
    changed = true;
    while (changed) {
      changed = false;
      ++iterations;
      for (const auto& [router, state] : routers_) {
        std::size_t limit = frontier[router];
        for (std::size_t i = 0; i < limit; ++i) {
          if (bad(state.log[i])) {
            frontier[router] = i;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // 4. Commit: fold [stable, frontier) into each router's persistent FIB
  // replay state. A frontier below the replayed prefix (possible only on
  // fallback scans) rebuilds that router from scratch.
  if (delta != nullptr) {
    delta->full = false;
    delta->changed_prefixes.clear();
  }
  for (auto& [router, state] : routers_) {
    std::size_t cut = frontier[router];
    RouterFibView& view = snapshot_.routers[router];
    bool fib_changed = false;
    if (cut < state.stable) {
      state.fib.clear();
      view = RouterFibView{};
      state.stable = 0;
      fib_changed = true;
      delta_full = true;
      ++stats_.rebuilt_routers;
    }
    for (std::size_t i = state.stable; i < cut; ++i) {
      const IoRecord& r = state.log[i];
      view.as_of = std::max(view.as_of, r.logged_time);
      if (r.fib_reset) {
        // Checkpoint marker (cold boot / capture resync): everything
        // replayed so far for this router is void. The records that follow
        // rebuild the view; cached per-prefix deltas cannot describe a
        // wholesale wipe, so degrade to a full delta.
        state.fib.clear();
        view.failed_uplinks.clear();
        view.uplink_routes.clear();
        fib_changed = true;
        delta_full = true;
      }
      if (r.kind == IoKind::kFibUpdate && !r.fib_blocked) {
        if (r.withdraw) {
          if (r.prefix) {
            state.fib.remove(*r.prefix);
            fib_changed = true;
            if (delta != nullptr) delta->changed_prefixes.insert(*r.prefix);
          }
        } else if (r.fib_entry.has_value()) {
          state.fib.install(*r.fib_entry);
          fib_changed = true;
          if (delta != nullptr) delta->changed_prefixes.insert(r.fib_entry->prefix);
        }
      } else if (r.kind == IoKind::kHardwareStatus && !r.session.empty()) {
        if (r.link_up) {
          view.failed_uplinks.erase(r.session);
        } else {
          view.failed_uplinks.insert(r.session);
          view.uplink_routes.erase(r.session);
        }
        // Uplink up/down state feeds forwarding signatures; there is no
        // per-prefix story for it, so the whole delta degrades to full.
        delta_full = true;
      } else if (r.kind == IoKind::kRecvAdvert && r.peer == kExternalRouter &&
                 r.prefix.has_value()) {
        // Offered-route state is read directly off the snapshot by
        // conditional policies each scan; it does not enter forwarding
        // signatures, so no delta entry is needed.
        if (r.withdraw) {
          view.uplink_routes[r.session].erase(*r.prefix);
        } else {
          view.uplink_routes[r.session].insert(*r.prefix);
        }
      }
    }
    state.stable = cut;
    if (fib_changed) {
      view.entries = state.fib.entries();
      snapshot_.invalidate_lookup_cache(router);
    }
  }
  if (delta_full) ++stats_.full_deltas;
  if (delta != nullptr && delta_full) {
    delta->full = true;
    delta->changed_prefixes.clear();
  }

  if (report != nullptr) {
    report->unmatched_recvs = unmatched_recvs;
    report->iterations = iterations;
    report->rewound.clear();
    report->in_flux.clear();
    for (const auto& [router, state] : routers_) {
      report->rewound[router] = state.log.size() - frontier[router];
    }
    // In-flux detection over the full history — identical to the scratch
    // builder's diagnostic pass (O(trace); only runs when requested).
    std::map<RouterId, SimTime> frontier_time;
    for (const auto& [router, state] : routers_) {
      frontier_time[router] =
          frontier[router] > 0 ? state.log[frontier[router] - 1].logged_time : 0;
    }
    for (const auto& [router, state] : routers_) {
      for (std::size_t i = 0; i < frontier[router]; ++i) {
        const IoRecord& r = state.log[i];
        if (r.kind != IoKind::kSendAdvert || !r.prefix.has_value() ||
            r.peer == kExternalRouter || r.peer == kInvalidRouter) {
          continue;
        }
        auto peer_frontier = frontier_time.find(r.peer);
        if (peer_frontier != frontier_time.end() &&
            r.logged_time + options_.in_flux_window_us < peer_frontier->second) {
          continue;
        }
        bool received = false;
        hbg.for_each_out_edge(r.id, options_.min_confidence, [&](const HbgEdgeView& edge) {
          const IoRecord* child = hbg.record(edge.to);
          if (child != nullptr && child->kind == IoKind::kRecvAdvert && included(edge.to)) {
            received = true;
            return true;
          }
          return false;
        });
        if (!received) report->in_flux.insert(*r.prefix);
      }
    }
  }
  return snapshot_;
}

}  // namespace hbguard
