// Generation-numbered, atomically-written checkpoint files.
//
// A checkpoint binds an opaque payload (the guard's serialized semantic
// state — snapshot/ stays ignorant of its meaning) to the WAL position it
// reflects: recovery = newest valid checkpoint + replay of the WAL suffix
// past its `lsn`. Two mechanisms make a checkpoint trustworthy after a
// crash at any instant:
//
//   * atomic rename — the file is written to `<name>.tmp`, fsynced, then
//     rename(2)d into place and the directory entry fsynced. A reader can
//     never observe a half-written `checkpoint.<generation>`: either the
//     old file is intact or the new one is complete.
//   * generation numbers — each checkpoint gets a fresh monotonically
//     increasing filename instead of overwriting its predecessor. A crash
//     *during* a checkpoint therefore cannot damage the previous good one,
//     and a checkpoint whose payload fails its checksum (or whose lsn
//     claims more WAL than exists — a stale file from an older session)
//     is simply skipped in favour of the next-older generation, down to
//     full WAL replay from zero.
//
// On disk: 8-byte magic "HBGCKP01", u32 body length (LE), body, u64
// FNV-1a checksum of the body (LE). Body: varint format version,
// generation, lsn, fingerprint string, then the payload bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbguard {

inline constexpr char kCheckpointMagic[8] = {'H', 'B', 'G', 'C', 'K', 'P', '0', '1'};
inline constexpr std::uint64_t kCheckpointVersion = 1;

struct Checkpoint {
  std::uint64_t generation = 0;
  /// WAL entries (records + controls) the payload already reflects —
  /// recovery replays the WAL from this entry on.
  std::uint64_t lsn = 0;
  /// Session-config identity; must match the WAL's (and the daemon's).
  std::string fingerprint;
  std::vector<std::uint8_t> payload;
};

std::string checkpoint_path(const std::string& dir, std::uint64_t generation);

/// Atomically write `dir`/checkpoint.<generation> (tmp + fsync + rename +
/// directory fsync). Creates the directory if needed.
bool write_checkpoint(const std::string& dir, const Checkpoint& checkpoint,
                      std::string* error);

/// Read and validate one checkpoint file: magic, framing, checksum,
/// format version. Returns false (with `error`) on any mismatch — a
/// corrupt checkpoint is rejected wholesale.
bool load_checkpoint(const std::string& path, Checkpoint& out, std::string* error);

struct CheckpointFileInfo {
  std::uint64_t generation = 0;
  std::string path;
};

/// Checkpoint files in `dir`, sorted by generation (ascending). Missing
/// directory → empty. Stray `.tmp` leftovers are never listed.
std::vector<CheckpointFileInfo> list_checkpoints(const std::string& dir);

/// Remove all but the newest `keep` checkpoint files (stale-generation
/// GC), plus any orphaned `.tmp` from a crashed write.
void gc_checkpoints(const std::string& dir, std::size_t keep);

}  // namespace hbguard
