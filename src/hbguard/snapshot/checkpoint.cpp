#include "hbguard/snapshot/checkpoint.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "hbguard/util/crash_point.hpp"
#include "hbguard/util/io.hpp"
#include "hbguard/util/wire.hpp"

namespace hbguard {

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (unsigned shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t get_u64(const std::uint8_t* bytes) {
  std::uint64_t value = 0;
  for (unsigned index = 0; index < 8; ++index) {
    value |= static_cast<std::uint64_t>(bytes[index]) << (8 * index);
  }
  return value;
}

}  // namespace

std::string checkpoint_path(const std::string& dir, std::uint64_t generation) {
  char name[40];
  std::snprintf(name, sizeof name, "checkpoint.%08llu",
                static_cast<unsigned long long>(generation));
  return dir + "/" + name;
}

bool write_checkpoint(const std::string& dir, const Checkpoint& checkpoint,
                      std::string* error) {
  ::mkdir(dir.c_str(), 0700);  // EEXIST is fine
  std::vector<std::uint8_t> body;
  wire::put_varint(body, kCheckpointVersion);
  wire::put_varint(body, checkpoint.generation);
  wire::put_varint(body, checkpoint.lsn);
  wire::put_varint(body, checkpoint.fingerprint.size());
  body.insert(body.end(), checkpoint.fingerprint.begin(), checkpoint.fingerprint.end());
  body.insert(body.end(), checkpoint.payload.begin(), checkpoint.payload.end());

  std::vector<std::uint8_t> file;
  file.reserve(sizeof kCheckpointMagic + 4 + body.size() + 8);
  file.insert(file.end(), kCheckpointMagic, kCheckpointMagic + sizeof kCheckpointMagic);
  put_u32(file, static_cast<std::uint32_t>(body.size()));
  file.insert(file.end(), body.begin(), body.end());
  put_u64(file, fnv1a(body));

  std::string path = checkpoint_path(dir, checkpoint.generation);
  if (crash_point_armed("checkpoint-torn")) {
    // Die mid-write: a half-written tmp file on disk, nothing renamed.
    // Recovery must ignore the orphan and use the previous generation.
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
    if (fd >= 0) {
      io::write_full(fd, file.data(), std::max<std::size_t>(1, file.size() / 2));
      io::fsync_retry(fd);
    }
    crash_now();
  }
  return io::write_file_atomic(path, file, error);
}

bool load_checkpoint(const std::string& path, Checkpoint& out, std::string* error) {
  std::vector<std::uint8_t> file;
  if (!io::read_file(path, file, error)) return false;
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };
  if (file.size() < sizeof kCheckpointMagic + 4 + 8 ||
      std::memcmp(file.data(), kCheckpointMagic, sizeof kCheckpointMagic) != 0) {
    return fail("not a checkpoint file");
  }
  std::size_t pos = sizeof kCheckpointMagic;
  std::uint32_t body_size = static_cast<std::uint32_t>(file[pos]) |
                            static_cast<std::uint32_t>(file[pos + 1]) << 8 |
                            static_cast<std::uint32_t>(file[pos + 2]) << 16 |
                            static_cast<std::uint32_t>(file[pos + 3]) << 24;
  pos += 4;
  if (body_size != file.size() - pos - 8) return fail("truncated or oversized body");
  std::span<const std::uint8_t> body(file.data() + pos, body_size);
  if (get_u64(file.data() + pos + body_size) != fnv1a(body)) {
    return fail("checksum mismatch");
  }
  std::size_t at = 0;
  std::uint64_t version = 0;
  std::uint64_t fingerprint_length = 0;
  if (!wire::get_varint(body, at, version) || version != kCheckpointVersion ||
      !wire::get_varint(body, at, out.generation) ||
      !wire::get_varint(body, at, out.lsn) ||
      !wire::get_varint(body, at, fingerprint_length) ||
      fingerprint_length > body.size() - at) {
    return fail("malformed header");
  }
  out.fingerprint.assign(reinterpret_cast<const char*>(body.data()) + at,
                         fingerprint_length);
  at += fingerprint_length;
  out.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(at), body.end());
  return true;
}

std::vector<CheckpointFileInfo> list_checkpoints(const std::string& dir) {
  std::vector<CheckpointFileInfo> out;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return out;
  while (dirent* entry = ::readdir(handle)) {
    std::string_view name(entry->d_name);
    if (!name.starts_with("checkpoint.") || name.size() <= 11) continue;
    std::string_view digits = name.substr(11);
    if (digits.find_first_not_of("0123456789") != std::string_view::npos) continue;
    CheckpointFileInfo info;
    info.generation = std::strtoull(std::string(digits).c_str(), nullptr, 10);
    info.path = dir + "/" + std::string(name);
    out.push_back(std::move(info));
  }
  ::closedir(handle);
  std::sort(out.begin(), out.end(),
            [](const CheckpointFileInfo& a, const CheckpointFileInfo& b) {
              return a.generation < b.generation;
            });
  return out;
}

void gc_checkpoints(const std::string& dir, std::size_t keep) {
  std::vector<CheckpointFileInfo> files = list_checkpoints(dir);
  std::size_t remove = files.size() > keep ? files.size() - keep : 0;
  for (std::size_t index = 0; index < remove; ++index) {
    ::unlink(files[index].path.c_str());
  }
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (dirent* entry = ::readdir(handle)) {
    std::string_view name(entry->d_name);
    if (name.starts_with("checkpoint.") && name.ends_with(".tmp")) {
      ::unlink((dir + "/" + std::string(name)).c_str());
    }
  }
  ::closedir(handle);
}

}  // namespace hbguard
