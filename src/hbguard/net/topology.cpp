#include "hbguard/net/topology.hpp"

#include <stdexcept>

namespace hbguard {

void Topology::reserve(std::size_t routers, std::size_t links) {
  routers_.reserve(routers);
  adjacency_.reserve(routers);
  by_name_.reserve(routers);
  links_.reserve(links);
}

RouterId Topology::add_router(std::string name, AsNumber as_number) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate router name: " + name);
  }
  RouterId id = static_cast<RouterId>(routers_.size());
  RouterInfo info;
  info.id = id;
  info.name = std::move(name);
  info.as_number = as_number;
  // Deterministic loopback in 192.0.2.0/24-style space scaled to router id.
  info.loopback = IpAddress((10u << 24) | (255u << 16) | ((id >> 8) << 8) | (id & 0xff));
  by_name_.emplace(info.name, id);
  routers_.push_back(std::move(info));
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(RouterId a, RouterId b, std::int64_t delay_us, std::uint32_t igp_cost) {
  if (a >= routers_.size() || b >= routers_.size() || a == b) {
    throw std::invalid_argument("add_link: bad endpoints");
  }
  Link link;
  link.id = static_cast<LinkId>(links_.size());
  link.a = a;
  link.b = b;
  link.delay_us = delay_us;
  link.igp_cost = igp_cost;
  links_.push_back(link);
  adjacency_[a].push_back(link.id);
  adjacency_[b].push_back(link.id);
  return link.id;
}

std::optional<RouterId> Topology::find_router(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> Topology::link_between(RouterId a, RouterId b) const {
  for (LinkId lid : adjacency_.at(a)) {
    if (links_[lid].attaches(b)) return lid;
  }
  return std::nullopt;
}

std::vector<RouterId> Topology::up_neighbors(RouterId id) const {
  std::vector<RouterId> out;
  for (LinkId lid : adjacency_.at(id)) {
    const Link& link = links_[lid];
    if (link.up) out.push_back(link.other(id));
  }
  return out;
}

}  // namespace hbguard
