// Binary (Patricia-style, one bit per level) trie keyed by Prefix.
//
// Used by the FIB for longest-prefix-match forwarding and by the verifier to
// compute packet equivalence classes: the set of distinct "trie cuts" across
// all routers' FIBs partitions the IPv4 space into classes that are forwarded
// identically everywhere (paper §6, citing [7]).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "hbguard/net/ip.hpp"

namespace hbguard {

template <typename Value>
class PrefixTrie {
 public:
  /// Insert or overwrite the value at `prefix`. Returns true if new.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = descend_or_create(prefix);
    bool is_new = !node->value.has_value();
    node->value = std::move(value);
    if (is_new) ++size_;
    return is_new;
  }

  /// Remove the value at exactly `prefix`. Returns true if it existed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  Value* find(const Prefix& prefix) {
    return const_cast<Value*>(static_cast<const PrefixTrie*>(this)->find(prefix));
  }

  /// Longest-prefix match for a destination address; nullptr if no entry
  /// (including no default route) covers it.
  const Value* longest_match(IpAddress ip, Prefix* matched = nullptr) const {
    const Node* node = &root_;
    const Value* best = nullptr;
    std::uint8_t depth = 0;
    std::uint8_t best_depth = 0;
    while (true) {
      if (node->value.has_value()) {
        best = &*node->value;
        best_depth = depth;
      }
      if (depth == 32) break;
      bool bit = (ip.bits() >> (31 - depth)) & 1u;
      const Node* next = bit ? node->one.get() : node->zero.get();
      if (next == nullptr) break;
      node = next;
      ++depth;
    }
    if (best != nullptr && matched != nullptr) {
      *matched = Prefix(ip, best_depth);
    }
    return best;
  }

  /// Visit every (prefix, value) pair in lexicographic (DFS) order.
  void for_each(const std::function<void(const Prefix&, const Value&)>& fn) const {
    walk(&root_, 0, 0, fn);
  }

  /// All stored prefixes, DFS order.
  std::vector<Prefix> prefixes() const {
    std::vector<Prefix> out;
    out.reserve(size_);
    for_each([&](const Prefix& p, const Value&) { out.push_back(p); });
    return out;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* descend(const Prefix& prefix) const {
    const Node* node = &root_;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (prefix.address().bits() >> (31 - depth)) & 1u;
      node = bit ? node->one.get() : node->zero.get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(prefix));
  }

  Node* descend_or_create(const Prefix& prefix) {
    Node* node = &root_;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (prefix.address().bits() >> (31 - depth)) & 1u;
      auto& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  void walk(const Node* node, std::uint32_t bits, std::uint8_t depth,
            const std::function<void(const Prefix&, const Value&)>& fn) const {
    if (node->value.has_value()) {
      fn(Prefix(IpAddress(bits), depth), *node->value);
    }
    if (depth == 32) return;
    if (node->zero) walk(node->zero.get(), bits, depth + 1, fn);
    if (node->one) walk(node->one.get(), bits | (1u << (31 - depth)), depth + 1, fn);
  }

  Node root_;
  std::size_t size_ = 0;
};

/// Given a set of prefixes (from any number of FIBs), return the sorted,
/// de-duplicated start addresses of the atomic intervals they induce on the
/// 32-bit address space. Two addresses in the same atomic interval are
/// covered by exactly the same subset of the input prefixes, so forwarding
/// equivalence classes are unions of these intervals. Always contains 0.
std::vector<std::uint32_t> prefix_space_boundaries(const std::vector<Prefix>& prefixes);

}  // namespace hbguard
