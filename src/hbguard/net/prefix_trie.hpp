// Binary (Patricia-style, one bit per level) trie keyed by Prefix.
//
// Used by the FIB for longest-prefix-match forwarding and by the verifier to
// compute packet equivalence classes: the set of distinct "trie cuts" across
// all routers' FIBs partitions the IPv4 space into classes that are forwarded
// identically everywhere (paper §6, citing [7]).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hbguard/net/ip.hpp"

namespace hbguard {

template <typename Value>
class PrefixTrie {
 public:
  /// Insert or overwrite the value at `prefix`. Returns true if new.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = descend_or_create(prefix);
    bool is_new = !node->value.has_value();
    node->value = std::move(value);
    if (is_new) ++size_;
    return is_new;
  }

  /// Remove the value at exactly `prefix`. Returns true if it existed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  Value* find(const Prefix& prefix) {
    return const_cast<Value*>(static_cast<const PrefixTrie*>(this)->find(prefix));
  }

  /// Longest-prefix match for a destination address; nullptr if no entry
  /// (including no default route) covers it.
  const Value* longest_match(IpAddress ip, Prefix* matched = nullptr) const {
    const Node* node = &root_;
    const Value* best = nullptr;
    std::uint8_t depth = 0;
    std::uint8_t best_depth = 0;
    while (true) {
      if (node->value.has_value()) {
        best = &*node->value;
        best_depth = depth;
      }
      if (depth == 32) break;
      bool bit = (ip.bits() >> (31 - depth)) & 1u;
      const Node* next = bit ? node->one.get() : node->zero.get();
      if (next == nullptr) break;
      node = next;
      ++depth;
    }
    if (best != nullptr && matched != nullptr) {
      *matched = Prefix(ip, best_depth);
    }
    return best;
  }

  /// Visit every (prefix, value) pair in lexicographic (DFS) order.
  void for_each(const std::function<void(const Prefix&, const Value&)>& fn) const {
    walk(&root_, 0, 0, fn);
  }

  /// All stored prefixes, DFS order.
  std::vector<Prefix> prefixes() const {
    std::vector<Prefix> out;
    out.reserve(size_);
    for_each([&](const Prefix& p, const Value&) { out.push_back(p); });
    return out;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* descend(const Prefix& prefix) const {
    const Node* node = &root_;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (prefix.address().bits() >> (31 - depth)) & 1u;
      node = bit ? node->one.get() : node->zero.get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(prefix));
  }

  Node* descend_or_create(const Prefix& prefix) {
    Node* node = &root_;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (prefix.address().bits() >> (31 - depth)) & 1u;
      auto& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  void walk(const Node* node, std::uint32_t bits, std::uint8_t depth,
            const std::function<void(const Prefix&, const Value&)>& fn) const {
    if (node->value.has_value()) {
      fn(Prefix(IpAddress(bits), depth), *node->value);
    }
    if (depth == 32) return;
    if (node->zero) walk(node->zero.get(), bits, depth + 1, fn);
    if (node->one) walk(node->one.get(), bits | (1u << (31 - depth)), depth + 1, fn);
  }

  Node root_;
  std::size_t size_ = 0;
};

/// Flat longest-prefix-match index over an *immutable* prefix set.
///
/// PrefixTrie spends ~88 bytes and up to 32 pointer hops per stored prefix;
/// at internet scale (10^6 prefixes per router) that is hundreds of MB and
/// cache-miss city. This index exploits the laminar structure of prefixes
/// (any two are nested or disjoint — they can never partially overlap) to
/// store one 20-byte slot per prefix in a sorted array:
///
///   * slots sorted by (start ascending, length ascending) put every
///     ancestor before its descendants, so one stack sweep computes each
///     slot's parent (nearest enclosing prefix);
///   * every prefix covering address x starts at or before x, so the last
///     slot with start <= x (ties -> longest) is the most specific
///     candidate, and all other covering prefixes are its ancestors: LPM is
///     a binary search plus a parent-chain walk.
///
/// build() is O(n log n); lookup is O(log n + chain) where the chain is
/// bounded by nesting depth (<= 32, in practice ~1-3).
class FlatPrefixIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  /// Build from `prefixes`; the value returned by lookup()/exact() is the
  /// *position* in this span. Duplicate prefixes keep the last position
  /// (mirroring Fib install-overwrite semantics).
  void build(std::span<const Prefix> prefixes);

  /// Position of the longest prefix covering `ip`, or kNotFound.
  std::uint32_t lookup(IpAddress ip) const;

  /// Position of exactly `prefix`, or kNotFound.
  std::uint32_t exact(const Prefix& prefix) const;

  /// Distinct prefixes indexed.
  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  void clear() { slots_.clear(); }

 private:
  struct Slot {
    std::uint32_t start = 0;              // first covered address
    std::uint32_t end = 0;                // last covered address (inclusive)
    std::uint32_t value = kNotFound;      // caller's index
    std::uint32_t parent = kNotFound;     // slot index of nearest enclosing prefix
    std::uint8_t length = 0;
  };
  std::vector<Slot> slots_;  // sorted by (start asc, length asc)
};

/// Given a set of prefixes (from any number of FIBs), return the sorted,
/// de-duplicated start addresses of the atomic intervals they induce on the
/// 32-bit address space. Two addresses in the same atomic interval are
/// covered by exactly the same subset of the input prefixes, so forwarding
/// equivalence classes are unions of these intervals. Always contains 0.
std::vector<std::uint32_t> prefix_space_boundaries(const std::vector<Prefix>& prefixes);

}  // namespace hbguard
