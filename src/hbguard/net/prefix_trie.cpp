#include "hbguard/net/prefix_trie.hpp"

#include <algorithm>

namespace hbguard {

namespace {
inline std::uint32_t last_address(std::uint32_t start, std::uint8_t length) {
  return length >= 32 ? start : start | (0xffffffffu >> length);
}
}  // namespace

void FlatPrefixIndex::build(std::span<const Prefix> prefixes) {
  slots_.clear();
  slots_.reserve(prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    Slot slot;
    slot.start = prefixes[i].address().bits();
    slot.length = prefixes[i].length();
    slot.end = last_address(slot.start, slot.length);
    slot.value = static_cast<std::uint32_t>(i);
    slots_.push_back(slot);
  }
  // (start asc, length asc) puts ancestors before descendants; `value` as
  // the final key makes the later duplicate sort last, so the dedup below
  // keeps it (install-overwrite semantics).
  std::sort(slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.length != b.length) return a.length < b.length;
    return a.value < b.value;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (out > 0 && slots_[out - 1].start == slots_[i].start &&
        slots_[out - 1].length == slots_[i].length) {
      slots_[out - 1].value = slots_[i].value;
      continue;
    }
    slots_[out++] = slots_[i];
  }
  slots_.resize(out);

  // Parent sweep: the stack holds the chain of prefixes enclosing the
  // current position. Laminarity guarantees a stack prefix either encloses
  // the next slot or is wholly before it.
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    while (!stack.empty() && slots_[stack.back()].end < slots_[i].start) stack.pop_back();
    slots_[i].parent = stack.empty() ? kNotFound : stack.back();
    stack.push_back(i);
  }
}

std::uint32_t FlatPrefixIndex::lookup(IpAddress ip) const {
  const std::uint32_t bits = ip.bits();
  // Last slot with start <= bits; the sort order makes it the longest such
  // prefix at that start, i.e. the most specific candidate. Every prefix
  // covering `bits` is an ancestor of it (see header), so walking the
  // parent chain finds the longest cover.
  auto it = std::upper_bound(slots_.begin(), slots_.end(), bits,
                             [](std::uint32_t value, const Slot& slot) {
                               return value < slot.start;
                             });
  if (it == slots_.begin()) return kNotFound;
  std::uint32_t index = static_cast<std::uint32_t>(std::distance(slots_.begin(), it)) - 1;
  while (index != kNotFound && slots_[index].end < bits) index = slots_[index].parent;
  return index == kNotFound ? kNotFound : slots_[index].value;
}

std::uint32_t FlatPrefixIndex::exact(const Prefix& prefix) const {
  const std::uint32_t start = prefix.address().bits();
  const std::uint8_t length = prefix.length();
  auto it = std::lower_bound(slots_.begin(), slots_.end(), prefix,
                             [](const Slot& slot, const Prefix& p) {
                               if (slot.start != p.address().bits())
                                 return slot.start < p.address().bits();
                               return slot.length < p.length();
                             });
  if (it == slots_.end() || it->start != start || it->length != length) return kNotFound;
  return it->value;
}

std::vector<std::uint32_t> prefix_space_boundaries(const std::vector<Prefix>& prefixes) {
  std::vector<std::uint32_t> points;
  points.reserve(prefixes.size() * 2 + 1);
  points.push_back(0);
  for (const Prefix& p : prefixes) {
    std::uint32_t start = p.address().bits();
    points.push_back(start);
    // One past the end of the prefix, unless it wraps (i.e. covers the top
    // of the address space), in which case there is no boundary after it.
    std::uint64_t end = std::uint64_t{start} + p.size();
    if (end <= 0xffffffffULL) points.push_back(static_cast<std::uint32_t>(end));
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace hbguard
