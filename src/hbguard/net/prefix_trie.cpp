#include "hbguard/net/prefix_trie.hpp"

#include <algorithm>

namespace hbguard {

std::vector<std::uint32_t> prefix_space_boundaries(const std::vector<Prefix>& prefixes) {
  std::vector<std::uint32_t> points;
  points.reserve(prefixes.size() * 2 + 1);
  points.push_back(0);
  for (const Prefix& p : prefixes) {
    std::uint32_t start = p.address().bits();
    points.push_back(start);
    // One past the end of the prefix, unless it wraps (i.e. covers the top
    // of the address space), in which case there is no boundary after it.
    std::uint64_t end = std::uint64_t{start} + p.size();
    if (end <= 0xffffffffULL) points.push_back(static_cast<std::uint32_t>(end));
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace hbguard
