#include "hbguard/net/ip.hpp"

#include <charconv>
#include <cstdio>

#include "hbguard/util/strings.hpp"

namespace hbguard {

namespace {
std::optional<std::uint32_t> parse_octet(std::string_view text) {
  if (text.empty() || text.size() > 3) return std::nullopt;
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > 255) return std::nullopt;
  return value;
}
}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    auto octet = parse_octet(part);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  return IpAddress(bits);
}

std::string IpAddress::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xff, (bits_ >> 16) & 0xff,
                (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

Prefix::Prefix(IpAddress address, std::uint8_t length)
    : address_(address.bits() & mask_bits(length)), length_(length) {}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = IpAddress::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  auto len_text = text.substr(slash + 1);
  std::uint32_t len = 0;
  auto [ptr, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix(*ip, static_cast<std::uint8_t>(len));
}

bool Prefix::contains(IpAddress ip) const {
  return (ip.bits() & mask_bits(length_)) == address_.bits();
}

bool Prefix::covers(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.address_);
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace hbguard
