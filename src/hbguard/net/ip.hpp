// IPv4 addresses and prefixes — the vocabulary types of the whole system.
//
// Routes, FIB entries, captured control-plane I/Os and verification
// equivalence classes all key on Prefix, so these are small, trivially
// copyable value types with total ordering and hashing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace hbguard {

/// An IPv4 address stored in host byte order.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t bits) : bits_(bits) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad ("10.0.0.1"); nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(IpAddress, IpAddress) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv4 prefix (address + mask length), canonicalized so host bits are 0.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(IpAddress address, std::uint8_t length);

  /// Parse "10.0.0.0/8"; nullopt on malformed input or length > 32.
  static std::optional<Prefix> parse(std::string_view text);

  /// The default route 0.0.0.0/0.
  static constexpr Prefix default_route() { return Prefix{}; }

  constexpr IpAddress address() const { return address_; }
  constexpr std::uint8_t length() const { return length_; }

  /// True if `ip` is inside this prefix.
  bool contains(IpAddress ip) const;

  /// True if `other` is equal to or strictly inside this prefix.
  bool covers(const Prefix& other) const;

  /// Number of addresses covered (2^(32-length)), saturating at 2^32.
  std::uint64_t size() const { return std::uint64_t{1} << (32 - length_); }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  IpAddress address_;
  std::uint8_t length_ = 0;
};

/// Mask with the top `length` bits set.
constexpr std::uint32_t mask_bits(std::uint8_t length) {
  return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
}

}  // namespace hbguard

template <>
struct std::hash<hbguard::IpAddress> {
  std::size_t operator()(hbguard::IpAddress ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.bits());
  }
};

template <>
struct std::hash<hbguard::Prefix> {
  std::size_t operator()(const hbguard::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{p.address().bits()} << 8) | p.length());
  }
};
