// Physical network topology: routers, interfaces, point-to-point links.
//
// The topology is the shared substrate under the protocol engines (which
// exchange messages across links), the data-plane verifier (which walks FIB
// next-hops along links) and the scenario driver (which fails/restores
// links). Routers are identified by small dense ids so modules can use
// vectors instead of maps on hot paths.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hbguard/net/ip.hpp"

namespace hbguard {

/// Dense router index. Also used as the BGP router-id tie-break unless the
/// router is assigned an explicit loopback address.
using RouterId = std::uint32_t;
inline constexpr RouterId kInvalidRouter = std::numeric_limits<RouterId>::max();

/// Dense link index (undirected point-to-point link between two routers).
using LinkId = std::uint32_t;
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

/// Autonomous system number.
using AsNumber = std::uint32_t;

/// Sentinel for "next hop is outside our administrative domain" — used for
/// eBGP-learned routes whose next hop is the external peer.
inline constexpr RouterId kExternalRouter = kInvalidRouter - 1;

struct Link {
  LinkId id = kInvalidLink;
  RouterId a = kInvalidRouter;
  RouterId b = kInvalidRouter;
  /// One-way propagation delay in microseconds (applied to every message).
  std::int64_t delay_us = 1000;
  /// IGP cost (used by OSPF). Symmetric.
  std::uint32_t igp_cost = 1;
  bool up = true;

  RouterId other(RouterId r) const { return r == a ? b : a; }
  bool attaches(RouterId r) const { return r == a || r == b; }
};

struct RouterInfo {
  RouterId id = kInvalidRouter;
  std::string name;
  AsNumber as_number = 0;
  /// Loopback / router-id address; assigned automatically if unset.
  IpAddress loopback;
};

class Topology {
 public:
  /// Pre-size the router/link stores. The AS-level generators add tens of
  /// thousands of routers; growing the vectors incrementally would be the
  /// dominant cost of construction.
  void reserve(std::size_t routers, std::size_t links);

  /// Add a router; name must be unique. Returns its dense id.
  RouterId add_router(std::string name, AsNumber as_number = 65000);

  /// Add an undirected link. Routers must exist.
  LinkId add_link(RouterId a, RouterId b, std::int64_t delay_us = 1000,
                  std::uint32_t igp_cost = 1);

  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const RouterInfo& router(RouterId id) const { return routers_.at(id); }
  RouterInfo& router(RouterId id) { return routers_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }
  Link& link(LinkId id) { return links_.at(id); }

  /// Router id by name; nullopt if unknown.
  std::optional<RouterId> find_router(const std::string& name) const;

  /// Links attached to a router (up or down).
  const std::vector<LinkId>& links_of(RouterId id) const { return adjacency_.at(id); }

  /// The link between a and b, if any.
  std::optional<LinkId> link_between(RouterId a, RouterId b) const;

  /// Neighbors reachable over *up* links.
  std::vector<RouterId> up_neighbors(RouterId id) const;

  void set_link_state(LinkId id, bool up) { links_.at(id).up = up; }

  const std::vector<RouterInfo>& routers() const { return routers_; }
  const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<RouterInfo> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::unordered_map<std::string, RouterId> by_name_;
};

}  // namespace hbguard
