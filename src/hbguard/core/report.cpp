#include "hbguard/core/report.hpp"

#include <sstream>

namespace hbguard {

char to_char(ScanVerdict verdict) {
  switch (verdict) {
    case ScanVerdict::kPass: return 'P';
    case ScanVerdict::kFail: return 'F';
    case ScanVerdict::kUnknown: return 'U';
    case ScanVerdict::kDeferred: return 'D';
  }
  return '?';
}

std::string GuardReport::summary() const {
  std::ostringstream out;
  out << "guard: " << scans << " scans (" << clean_scans << " clean), " << records_processed
      << " I/Os, " << incidents.size() << " incident(s), " << reverts << " revert(s), "
      << early_reverts << " early-revert(s), " << blocked_updates << " blocked update(s)\n";
  if (degrade.enabled) {
    out << "degraded: " << degrade.degraded_scans << " scan(s) unknown ("
        << degrade.unknown_verdicts << " verdict(s)), gaps=" << degrade.gaps
        << " dup=" << degrade.duplicates << " late=" << degrade.late_records
        << " lost=" << degrade.records_lost << " quarantines=" << degrade.quarantine_windows
        << " resyncs=" << degrade.resyncs << " watchdog=" << degrade.watchdog_fallbacks
        << "\n";
  }
  for (const GuardIncident& incident : incidents) {
    out << "incident @" << incident.detected_at << "us: " << incident.violations.size()
        << " violation(s), action: " << incident.action << "\n";
    for (const Violation& violation : incident.violations) {
      out << "  " << violation.describe() << "\n";
    }
    for (const RootCause& cause : incident.causes) {
      out << "  cause [" << to_string(cause.kind) << "] " << cause.record.label() << "\n";
    }
  }
  return out.str();
}

std::string GuardReport::digest() const {
  std::ostringstream out;
  out << summary();
  if (degrade.enabled) {
    out << "verdicts:";
    for (ScanVerdict verdict : scan_verdicts) out << ' ' << to_char(verdict);
    out << "\n";
  }
  for (const GuardIncident& incident : incidents) {
    out << "@" << incident.detected_at << "|" << incident.action << "\n";
    for (const RootCause& cause : incident.causes) {
      out << "  cause io=" << cause.record.id << " v=" << cause.record.config_version << "\n";
    }
    out << incident.fault_chain << "\n";
  }
  return out.str();
}

}  // namespace hbguard
