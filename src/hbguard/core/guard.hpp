// The integrated verification-and-repair pipeline (Fig. 3).
//
//   CAPTURE CONTROL PLANE I/Os → (HBR inference) → HBG
//        → consistent data-plane snapshot → DATA PLANE VERIFIER
//        → bad FIB updates → TRACE PROVENANCE → root cause
//        → BLOCK I/Os / revert configuration
//
// Guard watches a live Network's capture stream. Each scan builds the HBG
// from observable I/Os (or ground truth, for oracle ablations), assembles a
// consistent snapshot, verifies the policy list, and — on violation —
// traces provenance and repairs according to the configured mode:
//
//   kReport     diagnose only (§6's "report the configuration change as
//               problematic to the operator")
//   kBlock      veto policy-violating FIB updates before they reach the
//               data plane (§2's strawman; causes control/data divergence)
//   kRevert     revert the root-cause configuration change (§6)
//   kEarlyBlock kRevert, plus a learned equivalence-class model that
//               predicts violations from config-change inputs and reverts
//               them before FIB fallout propagates (§6's most advanced
//               mitigation)
#pragma once

#include <memory>
#include <optional>

#include "hbguard/hbg/builder.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/provenance/root_cause.hpp"
#include "hbguard/repair/blocker.hpp"
#include "hbguard/repair/early_block.hpp"
#include "hbguard/repair/reverter.hpp"
#include "hbguard/sim/network.hpp"
#include "hbguard/snapshot/consistent.hpp"
#include "hbguard/snapshot/incremental.hpp"
#include "hbguard/verify/eqclass.hpp"
#include "hbguard/verify/verifier.hpp"

#include "hbguard/core/report.hpp"

namespace hbguard {

struct GuardPersistentState;  // core/guard_state.hpp

//   kProposeOnly kReport's diagnosis plus an explicit repair queue: each
//               incident's best revertible root cause becomes a
//               RepairProposal that an operator approves (executing the
//               revert), declines, or rolls back — the interactive mode
//               hbguardd's `repairs` RPC drives.
enum class RepairMode : std::uint8_t { kReport, kBlock, kRevert, kEarlyBlock, kProposeOnly };

std::string_view to_string(RepairMode mode);

/// A repair the guard diagnosed but deliberately did not execute
/// (RepairMode::kProposeOnly). Proposals are identified by a stable id and
/// live outside GuardReport::digest() — the report records only the
/// incident and the actions actually taken.
struct RepairProposal {
  enum class Status : std::uint8_t { kPending, kApproved, kDeclined };

  std::uint64_t id = 0;
  SimTime proposed_at = 0;
  /// The offending configuration change to revert.
  ConfigVersion cause_version = kNoVersion;
  RouterId router = kInvalidRouter;
  std::string description;  // the offending change's own description
  std::string fault_chain;  // rendered cause→fault chain (Fig. 4 style)
  Status status = Status::kPending;
  /// The version the approved revert created (kNoVersion until approved).
  ConfigVersion executed_version = kNoVersion;
};

std::string_view to_string(RepairProposal::Status status);

struct GuardOptions {
  RepairMode repair = RepairMode::kRevert;
  /// Worker threads for the pipeline's parallel stages (sharded
  /// verification, per-router snapshot replay, EC computation). One pool is
  /// created per Guard and reused by every scan. 0 = one worker per
  /// hardware thread; 1 = the exact serial legacy behaviour. Reports are
  /// byte-identical for every setting (see tests/test_parallel_verify.cpp).
  unsigned num_threads = 0;
  /// Minimum HBG edge confidence used for snapshots and provenance.
  double min_confidence = 0.9;
  /// Virtual time between scans of the capture stream.
  SimTime scan_interval_us = 100'000;
  /// Use the simulator's ground-truth causes instead of inference (oracle
  /// ablation).
  bool use_ground_truth_hbg = false;
  /// Maintain the HBG incrementally across scans (pay only for new I/Os)
  /// rather than rebuilding from the full history each scan.
  bool incremental_hbg = true;
  /// Maintain the consistent snapshot incrementally across scans: persist
  /// per-router FIB replay state, ingest only records past each router's
  /// frontier, and re-run happens-before closure only where the frontier
  /// or incoming HBG edges changed. Scan-stream snapshots (and hence
  /// reports) are byte-identical to scratch builds; flip off to get the
  /// legacy rebuild-from-history behaviour. Requires the incremental HBG
  /// path — scratch HBG modes (ground truth, custom inference,
  /// incremental_hbg = false) always build scratch snapshots.
  bool incremental_snapshot = true;
  /// Custom HBR inference (e.g. CombinedInference with a trained pattern
  /// miner). Non-null forces scratch (non-incremental) graph builds.
  std::shared_ptr<HbrInferencer> inference;
  /// > 0: maintain a sharded DistributedHbgStore (§5) alongside the live
  /// HBG — per-shard rule matching over each shard's own tap stream,
  /// cross-router HBRs exchanged as ShardMessages — and answer incident
  /// provenance through its distributed queries. Reports stay
  /// byte-identical to the single-graph pipeline at any shard count (see
  /// tests/test_distributed_hbg.cpp); construction/query communication
  /// costs are exposed via distributed_store() and
  /// distributed_query_stats(), outside the report digest. Requires the
  /// rules-based incremental HBG path (ground truth, custom inference and
  /// incremental_hbg = false scans ignore this knob).
  std::size_t distributed_shards = 0;
  /// > 0: amortize the incremental HBG's CSR re-pack under this per-append
  /// half-edge budget instead of re-packing eagerly inside one add_edge
  /// (stop-the-world O(E)). Reports are byte-identical either way — the
  /// re-pack preserves per-vertex insertion order — but a long-running
  /// ingestion path (hbguardd) must bound its worst-case append latency.
  std::size_t compact_budget = 0;
  /// Maintain packet equivalence classes incrementally across scans: the
  /// guard keeps a StreamingEquivalenceClasses instance warm and applies
  /// each scan's SnapshotDelta instead of recomputing all classes from the
  /// full table. Materialized classes are byte-identical to
  /// compute_equivalence_classes at every cut point (see
  /// tests/test_streaming_eqclass.cpp); the win is on million-prefix
  /// tables where a scan touches a handful of prefixes. Exposed via
  /// streaming_classes(); off by default (the EC model consumers pay for
  /// classes only on demand).
  bool streaming_eqclass = false;
  /// Traffic-weighted verification scheduling (verify/traffic.hpp). When
  /// enabled, each verifying scan plans its destination set — heaviest
  /// traffic first, aged destinations ahead of everything — and a scan
  /// budget (coverage_target / max_items) may defer a tail of destinations
  /// to later scans; a clean-but-incomplete scan reports
  /// ScanVerdict::kDeferred. With the default full budget the plan covers
  /// every destination and reports are byte-identical to the unscheduled
  /// pipeline (tests/test_traffic_weighted.cpp pins the digests at 1/2/8
  /// threads). Incident causes are re-ranked by affected traffic weight
  /// when demand weights are attached, so repairs (reverts, proposals) fix
  /// the heaviest-traffic root cause first. Coverage/latency metrics live
  /// on traffic_scheduler(), outside GuardReport::digest(). The
  /// scheduler's aging state is deliberately not checkpointed: a recovered
  /// guard starts with every destination aged, i.e. conservatively
  /// re-verifies everything before re-entering budgeted operation.
  TrafficScheduleOptions traffic;
  /// Give up on run() after this many scans without quiescence.
  std::size_t max_scans = 10'000;
  MatcherOptions matcher;
  ConsistentSnapshotter::Options snapshot;
};

class Guard {
 public:
  Guard(Network& network, PolicyList policies, GuardOptions options = {});
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Drive the network to convergence under guard: alternately dispatch
  /// `scan_interval_us` of simulation and scan. Repairs inject new events
  /// (reverts) which are themselves processed. Returns when the simulator
  /// is idle and the last scan took no action.
  GuardReport run();

  /// One scan over the capture stream; returns the violations seen (empty
  /// when the snapshot is clean). Repairs fire as a side effect per the
  /// configured mode.
  std::vector<Violation> scan();

  const GuardReport& report() const { return report_; }
  const EarlyBlockModel& early_block_model() const { return early_model_; }

  // ---- Repair proposals (RepairMode::kProposeOnly) ----

  /// Outcome of an operator action on a proposal; `message` is
  /// human-readable either way.
  struct ProposalOutcome {
    bool ok = false;
    std::string message;
  };

  const std::vector<RepairProposal>& proposals() const { return proposals_; }
  /// Execute a pending proposal's revert. Fails (with a message) when the
  /// proposal is unknown, already settled, or its config version is not
  /// hosted by this guard's network — e.g. a replayed trace, where the
  /// rollback must be applied to the real device out of band.
  ProposalOutcome approve_proposal(std::uint64_t id);
  /// Dismiss a pending proposal (the change was intended; §6's "the
  /// operator can simply adapt the policy accordingly").
  ProposalOutcome decline_proposal(std::uint64_t id);
  /// Roll back an approved proposal's executed revert (reinstate the
  /// original change); the proposal is then declined.
  ProposalOutcome revert_repair(std::uint64_t id);

  RepairMode repair_mode() const { return options_.repair; }
  /// Switch between the diagnose-only modes (kReport ↔ kProposeOnly) at
  /// runtime — hbguardd's `mode` RPC. The actuating modes wire up
  /// blockers/models at construction and are refused, in either direction.
  bool set_repair_mode(RepairMode mode);

  // ---- Checkpoint support (see core/guard_state.hpp) ----

  /// Snapshot the semantic state (report, proposals, dedup/flag scalars).
  GuardPersistentState export_state() const;
  /// Restore a snapshot onto a freshly constructed Guard (recovery): the
  /// caches and ingest cursors stay empty, so the next scan rebuilds them
  /// with one incremental-from-empty ingest of the capture history — a
  /// path the incremental-vs-scratch parity tests prove digest-identical.
  void import_state(GuardPersistentState state);
  /// Sharded-verification counters (EC memo cache hits/misses per scan).
  VerifyStats verifier_stats() const { return verifier_.stats(); }
  /// Incremental-snapshot counters (all zero when scans run scratch).
  const IncrementalSnapshotter::Stats& snapshot_stats() const {
    return incremental_snapshotter_.stats();
  }
  /// The sharded store maintained when distributed_shards > 0 (nullptr
  /// otherwise) — storage/communication accounting lives here.
  const DistributedHbgStore* distributed_store() const { return distributed_store_.get(); }
  /// Communication cost of every distributed provenance query so far.
  const DistributedQueryStats& distributed_query_stats() const {
    return distributed_query_stats_;
  }

  /// Build the current HBG (for rendering/inspection; copies in
  /// incremental mode).
  HappensBeforeGraph current_hbg() const;

  /// The streaming EC state maintained when options.streaming_eqclass is
  /// set (ready() is false otherwise, and until the first verifying scan).
  const StreamingEquivalenceClasses& streaming_classes() const { return streaming_classes_; }

  /// Traffic-weighted scheduling state (options.traffic). Weighted
  /// coverage, deferral counts and the detection-latency histogram are
  /// operator telemetry — hbguardd's status surfaces them — and live
  /// outside GuardReport::digest().
  bool traffic_scheduling() const { return options_.traffic.enabled; }
  const TrafficScheduler& traffic_scheduler() const { return traffic_scheduler_; }

 private:
  /// The live graph used by scans: the incremental builder's (after
  /// ingesting new records) or a scratch rebuild.
  const HappensBeforeGraph& live_hbg();
  /// True when this guard's scans feed the incremental snapshotter rather
  /// than rebuilding from history (needs the incremental HBG for its edge
  /// deltas).
  bool incremental_snapshot_active() const;
  /// True when scans maintain (and query) the sharded distributed store —
  /// requires the same rules-based incremental path the store's engines
  /// mirror, so its answers provably match the live HBG's.
  bool distributed_active() const;
  /// Map each violation to the most recent FIB-update I/O that produced
  /// the offending entry (served from the per-prefix index maintained by
  /// scan()).
  std::vector<IoId> violating_fib_updates(const std::vector<Violation>& violations) const;
  /// The single most recent FIB-update I/O behind one violation (kNoIo when
  /// the capture has none for its prefix).
  IoId latest_violating_update(const Violation& violation) const;
  /// Sync the scheduler with the policy destination universe and plan this
  /// scan's covered set; nullopt when scheduling is disabled.
  std::optional<ScheduledScan> plan_traffic_scan();
  /// Stable-sort `provenance.causes` by the traffic weight of the
  /// violating I/Os each cause explains (heaviest first), so downstream
  /// repair selection reverts the heaviest-traffic cause first.
  void rank_causes_by_traffic(ProvenanceResult& provenance,
                              const std::vector<Violation>& violations) const;

  void learn_early_block(const ProvenanceResult& provenance,
                         const std::vector<Violation>& violations, bool violated);
  std::optional<RevertAction> try_early_block();

  Network& network_;
  /// Shared across the verifier, snapshotter and EC computation; null when
  /// `num_threads == 1` (serial legacy mode).
  std::shared_ptr<ThreadPool> pool_;
  Verifier verifier_;
  GuardOptions options_;
  RuleMatchingInference rules_;
  ConsistentSnapshotter snapshotter_;
  RootCauseAnalyzer analyzer_;
  ConfigReverter reverter_;
  std::unique_ptr<VerifyingBlocker> blocker_;  // kBlock mode only
  EarlyBlockModel early_model_;
  GuardReport report_;

  IncrementalHbgBuilder incremental_builder_;
  std::size_t ingested_ = 0;             // records fed to the incremental builder
  HappensBeforeGraph scratch_hbg_;       // non-incremental scan graph

  /// Sharded §5 store (distributed_shards > 0 on the incremental path).
  std::unique_ptr<DistributedHbgStore> distributed_store_;
  std::size_t distributed_cursor_ = 0;  // records fed to the sharded store
  DistributedQueryStats distributed_query_stats_;

  IncrementalSnapshotter incremental_snapshotter_;
  /// HBG edges added by the incremental builder since the last snapshot
  /// ingest (the closure-invalidation delta).
  std::vector<HbgEdge> pending_hbg_edges_;
  std::size_t snapshot_cursor_ = 0;   // records fed to the incremental snapshotter
  std::size_t early_cursor_ = 0;      // records walked by try_early_block
  std::size_t fib_index_cursor_ = 0;  // records folded into the FIB-update index
  /// Latest FIB-update I/O per prefix (and per router+prefix), in capture
  /// order — replaces the per-violation linear rescans of the capture.
  std::map<Prefix, IoId> latest_fib_update_;
  std::map<std::pair<RouterId, Prefix>, IoId> latest_fib_update_by_router_;

  /// Stream-health transition count at the last scan; a change trips the
  /// scan watchdog (full re-verify, EC cache cleared).
  std::uint64_t last_health_transitions_ = 0;
  /// A degraded scan skipped verification after ingesting its snapshot
  /// delta; the next verifying scan must not trust its stale delta.
  bool pending_full_verify_ = false;

  /// Incremental EC state (options.streaming_eqclass). Updated on every
  /// verifying scan with the same delta the verifier sees — degraded scans
  /// skip it, and the pending-full-verify escalation that protects the
  /// verifier protects this state identically.
  StreamingEquivalenceClasses streaming_classes_;

  /// Priority scheduler over the policy destination universe
  /// (options.traffic.enabled); idle otherwise. Ages advance only on
  /// verifying scans (degraded scans verified nothing, so they don't count
  /// toward the starvation bound).
  TrafficScheduler traffic_scheduler_;

  /// kProposeOnly repair queue (stable ids; never removed, only settled).
  std::vector<RepairProposal> proposals_;
  std::uint64_t next_proposal_id_ = 1;

  std::set<ConfigVersion> early_checked_;
  /// Config changes awaiting a benign label (cleared on clean converged
  /// scans, when their keys are fed to the early-block model as benign).
  std::map<ConfigVersion, std::vector<EarlyBlockKey>> pending_benign_;
  std::string last_violation_signature_;  // dedup repeat incident reports
  bool repair_in_flight_ = false;         // suppress repeat repairs mid-convergence
};

}  // namespace hbguard
