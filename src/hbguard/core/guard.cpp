#include "hbguard/core/guard.hpp"

#include <algorithm>
#include <sstream>

#include "hbguard/core/guard_state.hpp"
#include "hbguard/util/logging.hpp"

namespace hbguard {

std::string_view to_string(RepairMode mode) {
  switch (mode) {
    case RepairMode::kReport: return "report";
    case RepairMode::kBlock: return "block";
    case RepairMode::kRevert: return "revert";
    case RepairMode::kEarlyBlock: return "early-block";
    case RepairMode::kProposeOnly: return "propose-only";
  }
  return "?";
}

std::string_view to_string(RepairProposal::Status status) {
  switch (status) {
    case RepairProposal::Status::kPending: return "pending";
    case RepairProposal::Status::kApproved: return "approved";
    case RepairProposal::Status::kDeclined: return "declined";
  }
  return "?";
}

namespace {

// The snapshotter inherits the Guard-wide thread knob so one setting
// parallelizes the whole pipeline.
ConsistentSnapshotter::Options snapshot_options(const GuardOptions& options) {
  ConsistentSnapshotter::Options snap = options.snapshot;
  snap.num_threads = options.num_threads;
  return snap;
}

// The incremental snapshotter mirrors the scratch builder's consistency
// knobs so the two paths stay byte-equivalent.
IncrementalSnapshotter::Options incremental_snapshot_options(const GuardOptions& options) {
  IncrementalSnapshotter::Options snap;
  snap.min_confidence = options.snapshot.min_confidence;
  snap.require_send_for_recv = options.snapshot.require_send_for_recv;
  snap.in_flux_window_us = options.snapshot.in_flux_window_us;
  return snap;
}

}  // namespace

Guard::Guard(Network& network, PolicyList policies, GuardOptions options)
    : network_(network),
      pool_(resolve_num_threads(options.num_threads) == 1
                ? nullptr
                : std::make_shared<ThreadPool>(options.num_threads)),
      verifier_(policies, VerifierOptions{options.num_threads}, pool_),
      options_(options),
      rules_(options.matcher),
      snapshotter_(snapshot_options(options)),
      analyzer_(RootCauseAnalyzer::Options{options.min_confidence}),
      reverter_(network),
      incremental_builder_(options.matcher),
      incremental_snapshotter_(incremental_snapshot_options(options)),
      traffic_scheduler_(options.traffic) {
  snapshotter_.set_thread_pool(pool_);
  // Annotate streaming ECs with the demand so operators (and the weighted
  // bench) read per-class traffic totals straight off classes().
  if (options_.traffic.weights != nullptr) {
    streaming_classes_.set_traffic_weights(options_.traffic.weights);
  }
  // The batch matcher fans candidate matching out over the shared pool; the
  // HBG and match engine reference the capture store instead of copying
  // records (the hub outlives the guard and its store only grows).
  rules_.set_thread_pool(pool_);
  incremental_builder_.attach_store(&network.capture().records());
  incremental_builder_.set_compact_budget(options_.compact_budget);
  if (distributed_active()) {
    DistributedHbgStore::Options store_options;
    store_options.num_shards = options_.distributed_shards;
    store_options.matcher = options_.matcher;
    distributed_store_ = std::make_unique<DistributedHbgStore>(store_options);
    distributed_store_->attach_store(&network.capture().records());
  }
  if (options_.repair == RepairMode::kBlock) {
    blocker_ = std::make_unique<VerifyingBlocker>(network, std::move(policies));
  }
}

Guard::~Guard() = default;

HappensBeforeGraph Guard::current_hbg() const {
  const std::vector<IoRecord>& store = network_.capture().records();
  std::span<const IoRecord> records = store;
  if (options_.use_ground_truth_hbg) return HbgBuilder::build_ground_truth(records, &store);
  if (options_.inference != nullptr) {
    return HbgBuilder::build(records, *options_.inference, &store);
  }
  if (options_.incremental_hbg && incremental_builder_.records_ingested() > 0) {
    return incremental_builder_.graph();  // copy of the live graph
  }
  return HbgBuilder::build(records, rules_, &store);
}

const HappensBeforeGraph& Guard::live_hbg() {
  std::span<const IoRecord> records = network_.capture().records();
  bool scratch = options_.use_ground_truth_hbg || options_.inference != nullptr ||
                 !options_.incremental_hbg;
  if (scratch) {
    const std::vector<IoRecord>* store = &network_.capture().records();
    if (options_.use_ground_truth_hbg) {
      scratch_hbg_ = HbgBuilder::build_ground_truth(records, store);
    } else if (options_.inference != nullptr) {
      scratch_hbg_ = HbgBuilder::build(records, *options_.inference, store);
    } else {
      scratch_hbg_ = HbgBuilder::build(records, rules_, store);
    }
    return scratch_hbg_;
  }
  if (records.size() > ingested_) {
    // Collect the edge delta for the incremental snapshotter's closure
    // invalidation; cleared when a snapshot ingest consumes it.
    incremental_builder_.append(records.subspan(ingested_),
                                incremental_snapshot_active() ? &pending_hbg_edges_ : nullptr);
    ingested_ = records.size();
  }
  return incremental_builder_.graph();
}

bool Guard::incremental_snapshot_active() const {
  return options_.incremental_snapshot && options_.incremental_hbg &&
         !options_.use_ground_truth_hbg && options_.inference == nullptr;
}

bool Guard::distributed_active() const {
  return options_.distributed_shards > 0 && options_.incremental_hbg &&
         !options_.use_ground_truth_hbg && options_.inference == nullptr;
}

GuardReport Guard::run() {
  std::size_t last_blocked = 0;
  while (report_.scans < options_.max_scans) {
    network_.run_for(options_.scan_interval_us);
    std::size_t incidents_before = report_.incidents.size();
    std::vector<Violation> violations = scan();

    // Blocking mode: vetoes happen inside the interceptor; surface them as
    // incidents when new blocks appeared.
    if (blocker_ != nullptr && blocker_->blocked_count() > last_blocked) {
      GuardIncident incident;
      incident.detected_at = network_.sim().now();
      incident.action = "blocked " + std::to_string(blocker_->blocked_count() - last_blocked) +
                        " FIB update(s) before installation";
      report_.incidents.push_back(std::move(incident));
      last_blocked = blocker_->blocked_count();
      report_.blocked_updates = last_blocked;
    }

    bool acted = report_.incidents.size() != incidents_before;
    if (network_.sim().idle() && !acted) {
      if (violations.empty() || !repair_in_flight_) break;
    }
  }
  return report_;
}

IoId Guard::latest_violating_update(const Violation& violation) const {
  // Served from the per-prefix index scan() maintains from the capture
  // delta — the last matching update in capture order, exactly what the
  // old full rescan returned.
  auto latest_fib_update = [&](RouterId router, const Prefix& prefix) -> IoId {
    if (router != kInvalidRouter) {
      auto it = latest_fib_update_by_router_.find({router, prefix});
      return it != latest_fib_update_by_router_.end() ? it->second : kNoIo;
    }
    auto it = latest_fib_update_.find(prefix);
    return it != latest_fib_update_.end() ? it->second : kNoIo;
  };
  IoId io = latest_fib_update(violation.router, violation.prefix);
  if (io == kNoIo) io = latest_fib_update(kInvalidRouter, violation.prefix);
  return io;
}

std::vector<IoId> Guard::violating_fib_updates(const std::vector<Violation>& violations) const {
  std::vector<IoId> out;
  for (const Violation& violation : violations) {
    IoId io = latest_violating_update(violation);
    if (io != kNoIo && std::find(out.begin(), out.end(), io) == out.end()) out.push_back(io);
  }
  return out;
}

std::optional<ScheduledScan> Guard::plan_traffic_scan() {
  if (!options_.traffic.enabled) return std::nullopt;
  // The destination universe is the policies' representative addresses —
  // exactly the keys the sharded verifier builds forwarding graphs for.
  // Weights come from the attached demand, summed per destination (distinct
  // prefixes can share a representative); without demand every destination
  // weighs 1 and the scheduler degenerates to deterministic round-robin
  // order over ids.
  const TrafficWeights* weights = options_.traffic.weights.get();
  std::map<std::uint32_t, std::uint64_t> universe;
  for (const auto& policy : verifier_.policies()) {
    for (const Prefix& prefix : policy->prefixes()) {
      std::uint64_t weight = weights != nullptr ? weights->weight_of(prefix) : 1;
      universe[representative(prefix).bits()] += weight;
    }
  }
  traffic_scheduler_.sync_items({universe.begin(), universe.end()});
  return traffic_scheduler_.plan();
}

void Guard::rank_causes_by_traffic(ProvenanceResult& provenance,
                                   const std::vector<Violation>& violations) const {
  // Each violation's traffic weight lands on its latest violating FIB
  // update; a cause inherits the weight of every violating I/O on its
  // chain. Stable sort so equal-weight causes keep the analyzer's
  // most-actionable-first order — and a run whose causes are already
  // weight-sorted is left untouched.
  const TrafficWeights& weights = *options_.traffic.weights;
  std::map<IoId, std::uint64_t> io_weight;
  for (const Violation& violation : violations) {
    IoId io = latest_violating_update(violation);
    if (io != kNoIo) io_weight[io] += weights.weight_of(violation.prefix);
  }
  std::vector<std::pair<std::uint64_t, RootCause>> ranked;
  ranked.reserve(provenance.causes.size());
  for (RootCause& cause : provenance.causes) {
    std::uint64_t total = 0;
    for (IoId io : cause.chain) {
      auto it = io_weight.find(io);
      if (it != io_weight.end()) total += it->second;
    }
    auto it = io_weight.find(cause.io);
    if (it != io_weight.end() &&
        std::find(cause.chain.begin(), cause.chain.end(), cause.io) == cause.chain.end()) {
      total += it->second;
    }
    ranked.emplace_back(total, std::move(cause));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    provenance.causes[i] = std::move(ranked[i].second);
  }
}

namespace {
std::string violation_signature(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) out << v.policy << '|' << v.router << ';';
  return out.str();
}
}  // namespace

std::vector<Violation> Guard::scan() {
  CaptureHub& capture = network_.capture();
  // Expire gap grace windows first: abandoned buffers append to the store
  // now, so this scan sees them (and the cursors below stay consistent).
  capture.tick_health(network_.sim().now());
  ++report_.scans;
  report_.records_processed = capture.records().size();

  // Telemetry health: copy the tracker's counters into the report and note
  // whether any stream's view is currently unreliable.
  const StreamHealthTracker* health = capture.health();
  bool degraded = false;
  bool health_flipped = false;
  std::set<RouterId> lossy;
  if (health != nullptr) {
    // Streams with records gone for good: the snapshotters use this to keep
    // receives whose matching send was dropped in capture (it can never
    // arrive) instead of rewinding the receiving router forever.
    lossy = health->lossy_routers();
    report_.degrade.enabled = true;
    const StreamHealthStats& hs = health->stats();
    report_.degrade.gaps = hs.gaps_detected;
    report_.degrade.duplicates = hs.duplicates_dropped;
    report_.degrade.late_records = hs.late_dropped;
    report_.degrade.records_lost = hs.records_lost;
    report_.degrade.quarantine_windows = hs.quarantines;
    report_.degrade.resyncs = hs.resyncs;
    degraded = health->any_degraded();
    health_flipped = health->transitions() != last_health_transitions_;
    last_health_transitions_ = health->transitions();
  }

  // Fold the capture delta into the per-prefix FIB-update index before any
  // early return, so provenance lookups later this scan see every record.
  for (const IoRecord& r : capture.records_since(fib_index_cursor_)) {
    if (r.kind == IoKind::kFibUpdate && r.prefix.has_value()) {
      latest_fib_update_[*r.prefix] = r.id;
      latest_fib_update_by_router_[{r.router, *r.prefix}] = r.id;
    }
  }
  fib_index_cursor_ = capture.records().size();

  const HappensBeforeGraph& hbg = live_hbg();

  // Mirror the capture delta into the sharded store: per-shard rule
  // matching over each shard's own stream, cross-router HBRs exchanged as
  // ShardMessages (§5). Incident provenance below is answered through its
  // distributed queries.
  if (distributed_store_ != nullptr) {
    std::span<const IoRecord> all = capture.records();
    if (all.size() > distributed_cursor_) {
      distributed_store_->append(all.subspan(distributed_cursor_), pool_.get());
      // Queries follow within this scan, so run the quiescence barrier on
      // the pool instead of letting the first query do it serially.
      distributed_store_->quiesce(pool_.get());
      distributed_cursor_ = all.size();
    }
  }

  // Skip predictive blocking while degraded: it learns and predicts from
  // replayed state that is known-stale right now.
  if (options_.repair == RepairMode::kEarlyBlock && !repair_in_flight_ && !degraded) {
    if (auto action = try_early_block()) {
      GuardIncident incident;
      incident.detected_at = network_.sim().now();
      incident.action = "early-reverted v" + std::to_string(action->reverted) +
                        " (predicted violation from learned EC behaviour)";
      report_.incidents.push_back(std::move(incident));
      ++report_.early_reverts;
      repair_in_flight_ = true;
      report_.scan_verdicts.push_back(ScanVerdict::kUnknown);  // no verify ran
      return {};
    }
  }

  // Snapshot + verify. The incremental path feeds only new records (and
  // the HBG edge delta) into persistent replay state, then hands the
  // verifier the changed-prefix set so untouched destinations skip
  // re-keying; the scratch path rebuilds from the full history.
  // Scan watchdog: a health flip (gap opened/healed, quarantine entered or
  // left) means frontiers may have rewound or a router's replayed view was
  // wholesale reset — drop incremental trust for this scan and re-verify
  // everything from the rebuilt snapshot.
  if (health_flipped) {
    ++report_.degrade.watchdog_fallbacks;
    verifier_.clear_cache();
    pending_full_verify_ = true;
  }

  VerifyResult result;
  std::optional<ScheduledScan> sched;
  if (incremental_snapshot_active()) {
    SnapshotDelta delta;
    const DataPlaneSnapshot& snapshot = incremental_snapshotter_.ingest(
        capture.records_since(snapshot_cursor_), hbg, pending_hbg_edges_, &delta, nullptr,
        &lossy);
    snapshot_cursor_ = capture.records().size();
    pending_hbg_edges_.clear();
    if (degraded) {
      // At least one router's stream has an open gap or is quarantined: any
      // PASS/FAIL would be built on a view known to be unreliable. Keep the
      // replay state warm but report this scan as unknown.
      ++report_.degrade.degraded_scans;
      report_.degrade.unknown_verdicts += verifier_.policies().size();
      report_.scan_verdicts.push_back(ScanVerdict::kUnknown);
      pending_full_verify_ = true;  // this scan's delta was never verified
      return {};
    }
    if (pending_full_verify_) {
      delta.full = true;
      delta.changed_prefixes.clear();
      pending_full_verify_ = false;
    }
    // Same delta, same trust rules as the verifier: a degraded scan above
    // returned before this point, and its stale delta arrives here as full.
    if (options_.streaming_eqclass) streaming_classes_.update(snapshot, delta, pool_.get());
    sched = plan_traffic_scan();
    VerifyPlan plan;
    if (sched.has_value()) plan.covered = sched->covered;
    result = verifier_.verify(snapshot, &delta, sched.has_value() ? &plan : nullptr);
  } else {
    if (degraded) {
      ++report_.degrade.degraded_scans;
      report_.degrade.unknown_verdicts += verifier_.policies().size();
      report_.scan_verdicts.push_back(ScanVerdict::kUnknown);
      return {};
    }
    pending_full_verify_ = false;
    DataPlaneSnapshot snapshot =
        snapshotter_.build(capture.records(), hbg, {}, nullptr, &lossy);
    if (options_.streaming_eqclass) streaming_classes_.rebuild(snapshot, pool_.get());
    sched = plan_traffic_scan();
    VerifyPlan plan;
    if (sched.has_value()) plan.covered = sched->covered;
    result = verifier_.verify(snapshot, nullptr, sched.has_value() ? &plan : nullptr);
  }
  if (sched.has_value()) traffic_scheduler_.mark_verified(sched->covered);
  // A clean budgeted scan that deferred a tail is not a full PASS: the
  // covered weight is verified, the tail was never looked at. Report it as
  // kDeferred and skip the clean-scan side effects (clean_scans, benign
  // flush, repair_in_flight reset) — those assert full-network health.
  bool deferred_tail = sched.has_value() && !sched->full();
  report_.scan_verdicts.push_back(result.clean() ? (deferred_tail ? ScanVerdict::kDeferred
                                                                  : ScanVerdict::kPass)
                                                 : ScanVerdict::kFail);

  if (result.clean()) {
    if (deferred_tail) return {};
    ++report_.clean_scans;
    repair_in_flight_ = false;
    // Configuration changes that reached a clean converged state were
    // benign: feed the early-block model.
    if (network_.sim().idle()) {
      for (auto it = pending_benign_.begin(); it != pending_benign_.end();) {
        for (const EarlyBlockKey& key : it->second) early_model_.observe(key, false);
        it = pending_benign_.erase(it);
      }
    }
    return {};
  }

  if (repair_in_flight_) return result.violations;  // converging after a repair

  std::string signature = violation_signature(result.violations);
  if (signature == last_violation_signature_) {
    return result.violations;  // already reported; nothing new to do
  }
  last_violation_signature_ = signature;

  GuardIncident incident;
  incident.detected_at = network_.sim().now();
  incident.violations = result.violations;

  std::vector<IoId> fib_ios = violating_fib_updates(result.violations);
  // Distributed mode answers provenance through the sharded store's
  // shard-local walks (paying messages per cross-shard edge); the result is
  // byte-identical to the global-graph analysis, so the incident — and the
  // report digest — does not depend on the deployment shape.
  ProvenanceResult provenance =
      distributed_store_ != nullptr
          ? analyzer_.analyze_all(*distributed_store_, fib_ios, &distributed_query_stats_)
          : analyzer_.analyze_all(hbg, fib_ios);
  // With demand attached, rank causes by affected traffic so the repair
  // path below reverts the heaviest-traffic root cause first. Uniform runs
  // (no weights) keep the analyzer's order — and their digests — untouched.
  if (options_.traffic.enabled && options_.traffic.weights != nullptr) {
    rank_causes_by_traffic(provenance, result.violations);
  }
  incident.causes = provenance.causes;
  incident.fault_chain = RootCauseAnalyzer::render(hbg, provenance);

  switch (options_.repair) {
    case RepairMode::kReport:
    case RepairMode::kBlock:
      incident.action = "reported";
      break;
    case RepairMode::kProposeOnly: {
      const RootCause* candidate = nullptr;
      for (const RootCause& cause : provenance.causes) {
        if (cause.kind != CauseKind::kConfigChange) continue;
        if (cause.record.config_version == kNoVersion) continue;
        // One live proposal per offending version.
        bool seen = false;
        for (const RepairProposal& p : proposals_) {
          if (p.cause_version == cause.record.config_version &&
              p.status != RepairProposal::Status::kDeclined) {
            seen = true;
            break;
          }
        }
        if (seen) continue;
        // When the change is hosted by this network's config store, apply
        // the executing reverter's rules (skip initial configs and changes
        // already undone). Replayed traces aren't hosted; still propose —
        // the rollback happens out of band.
        const auto& history = network_.configs().history();
        if (cause.record.config_version - 1 < history.size()) {
          const ConfigChangeRecord& rec = history[cause.record.config_version - 1];
          if (rec.reverted || rec.parent == kNoVersion) continue;
        }
        candidate = &cause;
        break;
      }
      if (candidate != nullptr) {
        RepairProposal proposal;
        proposal.id = next_proposal_id_++;
        proposal.proposed_at = network_.sim().now();
        proposal.cause_version = candidate->record.config_version;
        proposal.router = candidate->record.router;
        proposal.description = candidate->record.detail;
        proposal.fault_chain = incident.fault_chain;
        incident.action = "proposed revert of v" +
                          std::to_string(candidate->record.config_version) + " on R" +
                          std::to_string(candidate->record.router) + " (proposal #" +
                          std::to_string(proposal.id) + ", awaiting approval)";
        proposals_.push_back(std::move(proposal));
      } else {
        incident.action = "reported (no revertible cause)";
      }
      break;
    }
    case RepairMode::kRevert:
    case RepairMode::kEarlyBlock: {
      learn_early_block(provenance, result.violations, /*violated=*/true);
      auto action = reverter_.revert_root_cause(provenance);
      if (action.has_value()) {
        incident.action = "reverted v" + std::to_string(action->reverted) + " on R" +
                          std::to_string(action->router);
        ++report_.reverts;
        repair_in_flight_ = true;
      } else {
        incident.action = "reported (no revertible cause)";
      }
      break;
    }
  }
  report_.incidents.push_back(std::move(incident));
  return result.violations;
}

Guard::ProposalOutcome Guard::approve_proposal(std::uint64_t id) {
  for (RepairProposal& p : proposals_) {
    if (p.id != id) continue;
    if (p.status != RepairProposal::Status::kPending) {
      return {false, "proposal #" + std::to_string(id) + " already " +
                         std::string(to_string(p.status))};
    }
    const auto& history = network_.configs().history();
    if (p.cause_version == kNoVersion || p.cause_version - 1 >= history.size()) {
      return {false, "config v" + std::to_string(p.cause_version) +
                         " is not hosted by this guard's network (replayed trace); apply "
                         "the rollback to the device out of band"};
    }
    const ConfigChangeRecord& rec = history[p.cause_version - 1];
    if (rec.reverted) {
      p.status = RepairProposal::Status::kDeclined;
      return {false, "config v" + std::to_string(p.cause_version) + " was already reverted"};
    }
    std::string description = "revert of v" + std::to_string(p.cause_version) + " (" +
                              rec.description + ") — operator-approved proposal #" +
                              std::to_string(id);
    p.executed_version = network_.revert_config_change(p.cause_version, description);
    p.status = RepairProposal::Status::kApproved;
    ++report_.reverts;
    repair_in_flight_ = true;
    return {true, "approved: " + description + " (new v" +
                      std::to_string(p.executed_version) + ")"};
  }
  return {false, "no proposal #" + std::to_string(id)};
}

Guard::ProposalOutcome Guard::decline_proposal(std::uint64_t id) {
  for (RepairProposal& p : proposals_) {
    if (p.id != id) continue;
    if (p.status != RepairProposal::Status::kPending) {
      return {false, "proposal #" + std::to_string(id) + " already " +
                         std::string(to_string(p.status))};
    }
    p.status = RepairProposal::Status::kDeclined;
    return {true, "declined proposal #" + std::to_string(id)};
  }
  return {false, "no proposal #" + std::to_string(id)};
}

Guard::ProposalOutcome Guard::revert_repair(std::uint64_t id) {
  for (RepairProposal& p : proposals_) {
    if (p.id != id) continue;
    if (p.status != RepairProposal::Status::kApproved || p.executed_version == kNoVersion) {
      return {false, "proposal #" + std::to_string(id) + " has no executed repair to roll back"};
    }
    std::string description = "roll back repair of proposal #" + std::to_string(id) +
                              " (reinstate v" + std::to_string(p.cause_version) + ")";
    network_.revert_config_change(p.executed_version, description);
    p.status = RepairProposal::Status::kDeclined;
    p.executed_version = kNoVersion;
    repair_in_flight_ = true;
    return {true, description};
  }
  return {false, "no proposal #" + std::to_string(id)};
}

bool Guard::set_repair_mode(RepairMode mode) {
  auto diagnostic = [](RepairMode m) {
    return m == RepairMode::kReport || m == RepairMode::kProposeOnly;
  };
  if (!diagnostic(mode) || !diagnostic(options_.repair)) return false;
  options_.repair = mode;
  return true;
}

GuardPersistentState Guard::export_state() const {
  GuardPersistentState state;
  state.report = report_;
  state.proposals = proposals_;
  state.next_proposal_id = next_proposal_id_;
  state.last_violation_signature = last_violation_signature_;
  state.repair_in_flight = repair_in_flight_;
  state.pending_full_verify = pending_full_verify_;
  state.last_health_transitions = last_health_transitions_;
  return state;
}

void Guard::import_state(GuardPersistentState state) {
  report_ = std::move(state.report);
  proposals_ = std::move(state.proposals);
  next_proposal_id_ = state.next_proposal_id;
  last_violation_signature_ = std::move(state.last_violation_signature);
  repair_in_flight_ = state.repair_in_flight;
  pending_full_verify_ = state.pending_full_verify;
  last_health_transitions_ = state.last_health_transitions;
}

void Guard::learn_early_block(const ProvenanceResult& provenance,
                              const std::vector<Violation>& violations, bool violated) {
  for (const RootCause& cause : provenance.causes) {
    if (cause.kind != CauseKind::kConfigChange) continue;
    // Equivalence-class signatures from the *pre-change* data plane: replay
    // the capture up to just before the change was logged.
    std::map<RouterId, SimTime> horizons;
    for (std::size_t i = 0; i < network_.router_count(); ++i) {
      horizons[static_cast<RouterId>(i)] = cause.record.logged_time - 1;
    }
    const HappensBeforeGraph& hbg = live_hbg();
    DataPlaneSnapshot before =
        snapshotter_.build(network_.capture().records(), hbg, horizons);
    EquivalenceClasses classes = compute_equivalence_classes(before, pool_.get());

    std::string change_signature = normalize_change_description(cause.record.detail);
    for (const Violation& violation : violations) {
      std::size_t index = classes.class_of(representative(violation.prefix));
      std::string ec_signature =
          index < classes.classes.size() ? classes.classes[index].signature : "";
      early_model_.observe({cause.record.router, change_signature, ec_signature}, violated);
    }
    pending_benign_.erase(cause.record.config_version);
  }
}

std::optional<RevertAction> Guard::try_early_block() {
  // Walk only records past the persistent cursor: each record is examined
  // exactly once across the guard's lifetime (the capture is append-only).
  // On an early return the cursor already points past the triggering
  // record, so the next call resumes where this one stopped — the same
  // order the old full rescan produced via its config_version dedup.
  std::span<const IoRecord> records = network_.capture().records();
  while (early_cursor_ < records.size()) {
    const IoRecord& record = records[early_cursor_++];
    if (record.kind != IoKind::kConfigChange) continue;
    if (record.config_version == kNoVersion || early_checked_.contains(record.config_version)) {
      continue;
    }
    early_checked_.insert(record.config_version);
    const ConfigChangeRecord& change = network_.configs().record(record.config_version);
    if (change.parent == kNoVersion || change.reverted) continue;  // initial or already undone
    if (change.description.starts_with("revert")) continue;        // our own repairs

    // Pre-change data plane and its equivalence classes.
    std::map<RouterId, SimTime> horizons;
    for (std::size_t i = 0; i < network_.router_count(); ++i) {
      horizons[static_cast<RouterId>(i)] = record.logged_time - 1;
    }
    const HappensBeforeGraph& hbg = live_hbg();
    DataPlaneSnapshot before = snapshotter_.build(records, hbg, horizons);
    EquivalenceClasses classes = compute_equivalence_classes(before, pool_.get());

    std::string change_signature = normalize_change_description(record.detail);
    std::vector<EarlyBlockKey> keys;
    bool predicted_violation = false;
    for (const auto& policy : verifier_.policies()) {
      for (const Prefix& prefix : policy->prefixes()) {
        std::size_t index = classes.class_of(representative(prefix));
        std::string ec_signature =
            index < classes.classes.size() ? classes.classes[index].signature : "";
        EarlyBlockKey key{record.router, change_signature, ec_signature};
        keys.push_back(key);
        auto prediction = early_model_.predict(key);
        if (prediction.has_value() && *prediction >= 0.5) predicted_violation = true;
      }
    }

    if (predicted_violation) {
      RevertAction action;
      action.reverted = record.config_version;
      action.router = record.router;
      action.description = "early revert of v" + std::to_string(record.config_version);
      action.new_version =
          network_.revert_config_change(record.config_version, action.description);
      return action;
    }
    pending_benign_[record.config_version] = std::move(keys);
  }
  return std::nullopt;
}

}  // namespace hbguard
