#include "hbguard/core/guard_state.hpp"

#include "hbguard/capture/trace_archive.hpp"
#include "hbguard/util/wire.hpp"

namespace hbguard {

namespace {

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  wire::put_varint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

bool get_string(std::span<const std::uint8_t> buffer, std::size_t& pos, std::string& out) {
  std::uint64_t length = 0;
  if (!wire::get_varint(buffer, pos, length)) return false;
  if (length > buffer.size() - pos) return false;
  out.assign(reinterpret_cast<const char*>(buffer.data()) + pos, length);
  pos += length;
  return true;
}

bool get_bool(std::span<const std::uint8_t> buffer, std::size_t& pos, bool& out) {
  if (pos >= buffer.size()) return false;
  std::uint8_t byte = buffer[pos++];
  if (byte > 1) return false;
  out = byte != 0;
  return true;
}

void encode_violation(std::vector<std::uint8_t>& out, const Violation& violation) {
  put_string(out, violation.policy);
  wire::put_varint(out, violation.prefix.address().bits());
  wire::put_varint(out, violation.prefix.length());
  wire::put_varint(out, violation.router);
  put_string(out, violation.detail);
}

bool decode_violation(std::span<const std::uint8_t> buffer, std::size_t& pos,
                      Violation& out) {
  std::uint64_t bits = 0;
  std::uint64_t length = 0;
  std::uint64_t router = 0;
  if (!get_string(buffer, pos, out.policy) || !wire::get_varint(buffer, pos, bits) ||
      !wire::get_varint(buffer, pos, length) || !wire::get_varint(buffer, pos, router) ||
      bits > 0xFFFF'FFFF || length > 32 || router > kInvalidRouter) {
    return false;
  }
  out.prefix = Prefix(IpAddress(static_cast<std::uint32_t>(bits)),
                      static_cast<std::uint8_t>(length));
  out.router = static_cast<RouterId>(router);
  return get_string(buffer, pos, out.detail);
}

void encode_cause(std::vector<std::uint8_t>& out, const RootCause& cause) {
  wire::put_varint(out, cause.io);
  out.push_back(static_cast<std::uint8_t>(cause.kind));
  encode_archive_frame({&cause.record, 1}, out);  // self-delimiting (u32 prefix)
  wire::put_varint(out, cause.chain.size());
  for (IoId io : cause.chain) wire::put_varint(out, io);
}

bool decode_cause(std::span<const std::uint8_t> buffer, std::size_t& pos, RootCause& out) {
  if (!wire::get_varint(buffer, pos, out.io)) return false;
  if (pos >= buffer.size()) return false;
  std::uint8_t kind = buffer[pos++];
  if (kind > static_cast<std::uint8_t>(CauseKind::kOther)) return false;
  out.kind = static_cast<CauseKind>(kind);
  std::span<const std::uint8_t> rest = buffer.subspan(pos);
  std::size_t frame_size = archive_frame_size(rest);
  if (frame_size < 5 || frame_size > rest.size()) return false;
  std::vector<IoRecord> records;
  if (!decode_archive_frame(rest.subspan(0, frame_size), records) || records.size() != 1) {
    return false;
  }
  out.record = std::move(records.front());
  pos += frame_size;
  std::uint64_t count = 0;
  if (!wire::get_varint(buffer, pos, count)) return false;
  if (count > buffer.size() - pos) return false;  // each chain entry is ≥ 1 byte
  out.chain.resize(count);
  for (IoId& io : out.chain) {
    if (!wire::get_varint(buffer, pos, io)) return false;
  }
  return true;
}

void encode_incident(std::vector<std::uint8_t>& out, const GuardIncident& incident) {
  wire::put_zigzag(out, incident.detected_at);
  wire::put_varint(out, incident.violations.size());
  for (const Violation& violation : incident.violations) encode_violation(out, violation);
  wire::put_varint(out, incident.causes.size());
  for (const RootCause& cause : incident.causes) encode_cause(out, cause);
  put_string(out, incident.action);
  put_string(out, incident.fault_chain);
}

bool decode_incident(std::span<const std::uint8_t> buffer, std::size_t& pos,
                     GuardIncident& out) {
  if (!wire::get_zigzag(buffer, pos, out.detected_at)) return false;
  std::uint64_t count = 0;
  if (!wire::get_varint(buffer, pos, count)) return false;
  if (count > buffer.size() - pos) return false;
  out.violations.resize(count);
  for (Violation& violation : out.violations) {
    if (!decode_violation(buffer, pos, violation)) return false;
  }
  if (!wire::get_varint(buffer, pos, count)) return false;
  if (count > buffer.size() - pos) return false;
  out.causes.resize(count);
  for (RootCause& cause : out.causes) {
    if (!decode_cause(buffer, pos, cause)) return false;
  }
  return get_string(buffer, pos, out.action) && get_string(buffer, pos, out.fault_chain);
}

void encode_proposal(std::vector<std::uint8_t>& out, const RepairProposal& proposal) {
  wire::put_varint(out, proposal.id);
  wire::put_zigzag(out, proposal.proposed_at);
  wire::put_varint(out, proposal.cause_version);
  wire::put_varint(out, proposal.router);
  put_string(out, proposal.description);
  put_string(out, proposal.fault_chain);
  out.push_back(static_cast<std::uint8_t>(proposal.status));
  wire::put_varint(out, proposal.executed_version);
}

bool decode_proposal(std::span<const std::uint8_t> buffer, std::size_t& pos,
                     RepairProposal& out) {
  std::uint64_t router = 0;
  if (!wire::get_varint(buffer, pos, out.id) ||
      !wire::get_zigzag(buffer, pos, out.proposed_at) ||
      !wire::get_varint(buffer, pos, out.cause_version) ||
      !wire::get_varint(buffer, pos, router) || router > kInvalidRouter ||
      !get_string(buffer, pos, out.description) ||
      !get_string(buffer, pos, out.fault_chain)) {
    return false;
  }
  out.router = static_cast<RouterId>(router);
  if (pos >= buffer.size()) return false;
  std::uint8_t status = buffer[pos++];
  if (status > static_cast<std::uint8_t>(RepairProposal::Status::kDeclined)) return false;
  out.status = static_cast<RepairProposal::Status>(status);
  return wire::get_varint(buffer, pos, out.executed_version);
}

}  // namespace

void encode_guard_state(const GuardPersistentState& state, std::vector<std::uint8_t>& out) {
  const GuardReport& report = state.report;
  wire::put_varint(out, report.scans);
  wire::put_varint(out, report.records_processed);
  wire::put_varint(out, report.reverts);
  wire::put_varint(out, report.early_reverts);
  wire::put_varint(out, report.blocked_updates);
  wire::put_varint(out, report.clean_scans);
  out.push_back(report.degrade.enabled ? 1 : 0);
  wire::put_varint(out, report.degrade.gaps);
  wire::put_varint(out, report.degrade.duplicates);
  wire::put_varint(out, report.degrade.late_records);
  wire::put_varint(out, report.degrade.records_lost);
  wire::put_varint(out, report.degrade.quarantine_windows);
  wire::put_varint(out, report.degrade.resyncs);
  wire::put_varint(out, report.degrade.degraded_scans);
  wire::put_varint(out, report.degrade.unknown_verdicts);
  wire::put_varint(out, report.degrade.watchdog_fallbacks);
  wire::put_varint(out, report.scan_verdicts.size());
  for (ScanVerdict verdict : report.scan_verdicts) {
    out.push_back(static_cast<std::uint8_t>(verdict));
  }
  wire::put_varint(out, report.incidents.size());
  for (const GuardIncident& incident : report.incidents) encode_incident(out, incident);

  wire::put_varint(out, state.proposals.size());
  for (const RepairProposal& proposal : state.proposals) encode_proposal(out, proposal);
  wire::put_varint(out, state.next_proposal_id);
  put_string(out, state.last_violation_signature);
  out.push_back(state.repair_in_flight ? 1 : 0);
  out.push_back(state.pending_full_verify ? 1 : 0);
  wire::put_varint(out, state.last_health_transitions);
}

bool decode_guard_state(std::span<const std::uint8_t> bytes, GuardPersistentState& state) {
  state = GuardPersistentState{};
  GuardReport& report = state.report;
  std::size_t pos = 0;
  std::uint64_t value = 0;
  auto get_size = [&](std::size_t& out) {
    if (!wire::get_varint(bytes, pos, value)) return false;
    out = static_cast<std::size_t>(value);
    return true;
  };
  if (!get_size(report.scans) || !get_size(report.records_processed) ||
      !get_size(report.reverts) || !get_size(report.early_reverts) ||
      !get_size(report.blocked_updates) || !get_size(report.clean_scans)) {
    return false;
  }
  DegradeStats& degrade = report.degrade;
  if (!get_bool(bytes, pos, degrade.enabled) ||
      !wire::get_varint(bytes, pos, degrade.gaps) ||
      !wire::get_varint(bytes, pos, degrade.duplicates) ||
      !wire::get_varint(bytes, pos, degrade.late_records) ||
      !wire::get_varint(bytes, pos, degrade.records_lost) ||
      !wire::get_varint(bytes, pos, degrade.quarantine_windows) ||
      !wire::get_varint(bytes, pos, degrade.resyncs) ||
      !wire::get_varint(bytes, pos, degrade.degraded_scans) ||
      !wire::get_varint(bytes, pos, degrade.unknown_verdicts) ||
      !wire::get_varint(bytes, pos, degrade.watchdog_fallbacks)) {
    return false;
  }
  std::uint64_t count = 0;
  if (!wire::get_varint(bytes, pos, count)) return false;
  if (count > bytes.size() - pos) return false;
  report.scan_verdicts.resize(count);
  for (ScanVerdict& verdict : report.scan_verdicts) {
    std::uint8_t byte = bytes[pos++];
    if (byte > static_cast<std::uint8_t>(ScanVerdict::kDeferred)) return false;
    verdict = static_cast<ScanVerdict>(byte);
  }
  if (!wire::get_varint(bytes, pos, count)) return false;
  if (count > bytes.size() - pos) return false;
  report.incidents.resize(count);
  for (GuardIncident& incident : report.incidents) {
    if (!decode_incident(bytes, pos, incident)) return false;
  }
  if (!wire::get_varint(bytes, pos, count)) return false;
  if (count > bytes.size() - pos) return false;
  state.proposals.resize(count);
  for (RepairProposal& proposal : state.proposals) {
    if (!decode_proposal(bytes, pos, proposal)) return false;
  }
  if (!wire::get_varint(bytes, pos, state.next_proposal_id) ||
      !get_string(bytes, pos, state.last_violation_signature) ||
      !get_bool(bytes, pos, state.repair_in_flight) ||
      !get_bool(bytes, pos, state.pending_full_verify) ||
      !wire::get_varint(bytes, pos, state.last_health_transitions)) {
    return false;
  }
  return pos == bytes.size();
}

}  // namespace hbguard
