// Guard incident reporting.
#pragma once

#include <string>
#include <vector>

#include "hbguard/event/simulator.hpp"
#include "hbguard/provenance/root_cause.hpp"
#include "hbguard/verify/policy.hpp"

namespace hbguard {

struct GuardIncident {
  SimTime detected_at = 0;
  std::vector<Violation> violations;
  std::vector<RootCause> causes;
  /// What the guard did: "reverted v7", "blocked 3 updates",
  /// "early-reverted v9", or "reported".
  std::string action;
  /// Rendered cause→fault chain (Fig. 4 style).
  std::string fault_chain;
};

struct GuardReport {
  std::vector<GuardIncident> incidents;
  std::size_t scans = 0;
  std::size_t records_processed = 0;
  std::size_t reverts = 0;
  std::size_t early_reverts = 0;
  std::size_t blocked_updates = 0;
  /// Scans whose snapshot was consistent and violation-free.
  std::size_t clean_scans = 0;

  std::string summary() const;

  /// Canonical full serialization — every field, every incident, every
  /// fault chain. Two pipeline configurations (scratch vs incremental
  /// snapshots, any thread count) are byte-equivalent iff their digests
  /// are equal; the parity tests and bench_guard_scan gate on this.
  std::string digest() const;
};

}  // namespace hbguard
