// Guard incident reporting.
#pragma once

#include <string>
#include <vector>

#include "hbguard/event/simulator.hpp"
#include "hbguard/provenance/root_cause.hpp"
#include "hbguard/verify/policy.hpp"

namespace hbguard {

struct GuardIncident {
  SimTime detected_at = 0;
  std::vector<Violation> violations;
  std::vector<RootCause> causes;
  /// What the guard did: "reverted v7", "blocked 3 updates",
  /// "early-reverted v9", or "reported".
  std::string action;
  /// Rendered cause→fault chain (Fig. 4 style).
  std::string fault_chain;
};

/// Per-scan outcome. kUnknown means the guard refused to verify: its view of
/// at least one router was degraded (open capture gap or quarantine), so a
/// PASS/FAIL would have been built on unreliable state. kDeferred means the
/// covered portion of a traffic-budgeted scan was clean but the scheduler
/// deferred a tail of destinations — a PASS claim would overreach (the
/// deferred destinations were not looked at), while the covered weight is
/// genuinely verified. Scans that find violations report kFail regardless
/// of deferral.
enum class ScanVerdict : std::uint8_t { kPass, kFail, kUnknown, kDeferred };

char to_char(ScanVerdict verdict);

/// Telemetry-degradation counters, populated only when the capture hub has
/// stream health enabled. `enabled` gates their appearance in summary() and
/// digest() so fault-free runs stay byte-identical to pre-fault behaviour.
struct DegradeStats {
  bool enabled = false;
  std::uint64_t gaps = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t late_records = 0;
  std::uint64_t records_lost = 0;
  std::uint64_t quarantine_windows = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t degraded_scans = 0;    // scans skipped with kUnknown verdicts
  std::uint64_t unknown_verdicts = 0;  // policy verdicts degraded to unknown
  std::uint64_t watchdog_fallbacks = 0;  // health flips forcing scratch verify
};

struct GuardReport {
  std::vector<GuardIncident> incidents;
  std::size_t scans = 0;
  std::size_t records_processed = 0;
  std::size_t reverts = 0;
  std::size_t early_reverts = 0;
  std::size_t blocked_updates = 0;
  /// Scans whose snapshot was consistent and violation-free.
  std::size_t clean_scans = 0;
  DegradeStats degrade;
  /// One verdict per scan, in scan order.
  std::vector<ScanVerdict> scan_verdicts;

  std::string summary() const;

  /// Canonical full serialization — every field, every incident, every
  /// fault chain. Two pipeline configurations (scratch vs incremental
  /// snapshots, any thread count) are byte-equivalent iff their digests
  /// are equal; the parity tests and bench_guard_scan gate on this.
  std::string digest() const;
};

}  // namespace hbguard
