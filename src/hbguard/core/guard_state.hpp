// Serializable guard state for checkpoints.
//
// GuardPersistentState is the *semantic* slice of a Guard: the report (the
// digest's sole input), the kProposeOnly repair queue, and the few scalars
// that steer future scans (incident dedup signature, repair-in-flight and
// pending-full-verify flags, the health-transition watermark). Everything
// else a Guard holds — incremental HBG, snapshotter frontiers, verifier
// caches, FIB-update index, ingest cursors — is provably digest-transparent
// (the incremental-vs-scratch parity tests gate byte-identity), so a
// restored guard simply starts those caches empty: its first scan is one
// incremental-from-empty ingest of the capture history, a case those same
// parity tests already cover.
//
// The encoding is the varint/zigzag style of util/wire.hpp; each cause's
// IoRecord rides as a single-record trace-archive frame so the checkpoint
// reuses (and stays as strict as) the PR 8 codec.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hbguard/core/guard.hpp"

namespace hbguard {

struct GuardPersistentState {
  GuardReport report;
  std::vector<RepairProposal> proposals;
  std::uint64_t next_proposal_id = 1;
  std::string last_violation_signature;
  bool repair_in_flight = false;
  bool pending_full_verify = false;
  std::uint64_t last_health_transitions = 0;
};

/// Append the encoded state to `out`.
void encode_guard_state(const GuardPersistentState& state, std::vector<std::uint8_t>& out);

/// Decode exactly `bytes` (trailing bytes are an error). Returns false on
/// any truncation, overrun, or out-of-range enum — a corrupt checkpoint
/// must be rejected wholesale, never half-applied.
bool decode_guard_state(std::span<const std::uint8_t> bytes, GuardPersistentState& state);

}  // namespace hbguard
