#include "hbguard/model_verifier/model.hpp"

#include <map>
#include <queue>
#include <set>

#include "hbguard/config/policy.hpp"
#include "hbguard/verify/forwarding_graph.hpp"

namespace hbguard {

namespace {

struct ModelRoute {
  Prefix prefix;
  std::uint32_t local_pref = 100;
  std::size_t as_path_len = 0;
  RouterId exit_router = kInvalidRouter;
  std::string exit_session;
};

/// Simplified decision: LP desc, AS-path length asc, exit router id asc.
bool better(const ModelRoute& a, const ModelRoute& b) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path_len != b.as_path_len) return a.as_path_len < b.as_path_len;
  return a.exit_router < b.exit_router;
}

/// IGP next hop from `from` toward `to` over up links (uniform costs in the
/// model — cost overrides are a vendor detail it ignores).
std::map<RouterId, RouterId> first_hops(const Topology& topology, RouterId from) {
  std::map<RouterId, RouterId> hop;
  std::queue<RouterId> frontier;
  std::set<RouterId> seen{from};
  frontier.push(from);
  while (!frontier.empty()) {
    RouterId current = frontier.front();
    frontier.pop();
    for (LinkId lid : topology.links_of(current)) {
      const Link& link = topology.link(lid);
      if (!link.up) continue;
      RouterId next = link.other(current);
      if (!seen.insert(next).second) continue;
      hop[next] = current == from ? next : hop[current];
      frontier.push(next);
    }
  }
  return hop;
}

}  // namespace

DataPlaneSnapshot ControlPlaneModel::predict(
    const Topology& topology, const ConfigStore& configs,
    const std::vector<AssumedExternalRoute>& external_routes) const {
  // Per prefix: the model's view of each border router's candidate, after
  // applying the configured import policy (the model does understand
  // route-maps — local-pref is the core of most policies).
  std::map<Prefix, std::vector<ModelRoute>> candidates;
  for (const AssumedExternalRoute& route : external_routes) {
    const RouterConfig& config = configs.current(route.router);
    const BgpSessionConfig* session = config.bgp.find_session(route.session);
    if (session == nullptr || !session->enabled) continue;

    ModelRoute model_route;
    model_route.prefix = route.prefix;
    model_route.as_path_len = route.as_path.size();
    model_route.exit_router = route.router;
    model_route.exit_session = route.session;
    model_route.local_pref = config.bgp.default_local_pref;

    if (!session->import_policy.empty()) {
      const RouteMap* map = config.find_route_map(session->import_policy);
      if (map != nullptr) {
        PolicyRouteView view{route.prefix, model_route.local_pref, route.med,
                             route.as_path, route.session};
        if (!map->apply(view)) continue;  // denied
        model_route.local_pref = view.local_pref;
        model_route.as_path_len = view.as_path.size();
      }
    }
    candidates[route.prefix].push_back(std::move(model_route));
  }

  // Network-wide best per prefix (full-mesh iBGP: every router learns every
  // border router's candidate and applies the same simplified decision).
  DataPlaneSnapshot snapshot;
  for (const RouterInfo& info : topology.routers()) {
    snapshot.routers[info.id];  // ensure present even if empty
  }

  for (const auto& [prefix, routes] : candidates) {
    if (routes.empty()) continue;
    const ModelRoute* best = &routes.front();
    for (const ModelRoute& route : routes) {
      if (better(route, *best)) best = &route;
    }
    // Install: exit router sends out its uplink; everyone else forwards
    // along IGP shortest paths toward the exit.
    for (const RouterInfo& info : topology.routers()) {
      FibEntry entry;
      entry.prefix = prefix;
      entry.source = Protocol::kEbgp;
      if (info.id == best->exit_router) {
        entry.action = FibEntry::Action::kExternal;
        entry.external_session = best->exit_session;
      } else {
        auto hops = first_hops(topology, info.id);
        auto it = hops.find(best->exit_router);
        if (it == hops.end()) continue;  // partitioned: no route predicted
        entry.action = FibEntry::Action::kForward;
        entry.next_hop = it->second;
      }
      snapshot.routers[info.id].entries.push_back(entry);
    }
  }
  return snapshot;
}

std::size_t count_fib_divergence(const DataPlaneSnapshot& a, const DataPlaneSnapshot& b,
                                 const std::vector<Prefix>& prefixes) {
  std::size_t divergent = 0;
  std::set<RouterId> routers;
  for (const auto& [router, view] : a.routers) routers.insert(router);
  for (const auto& [router, view] : b.routers) routers.insert(router);

  for (const Prefix& prefix : prefixes) {
    IpAddress destination = representative(prefix);
    for (RouterId router : routers) {
      const FibEntry* ea = a.lookup(router, destination);
      const FibEntry* eb = b.lookup(router, destination);
      bool same;
      if (ea == nullptr || eb == nullptr) {
        same = ea == eb;
      } else {
        same = ea->action == eb->action && ea->next_hop == eb->next_hop &&
               ea->external_session == eb->external_session;
      }
      if (!same) ++divergent;
    }
  }
  return divergent;
}

}  // namespace hbguard
