// Baseline: a Batfish-style control-plane *model* verifier (§2).
//
// "Other control plane verifiers model all protocols and path selection
// criteria used in this network, but ignore vendor-specific implementation
// details that may apply in other scenarios — e.g., differences in BGP path
// selection rules across vendors."
//
// This model predicts the converged data plane from configurations and an
// assumed set of external routes, using a deliberately *simplified* BGP
// decision process: highest local-pref, shortest AS path, lowest peer
// router-id. It ignores MED semantics, the weight attribute, oldest-route
// tie-breaking and IGP metrics — precisely the vendor details the real
// control plane (our simulator) honours. Bench A6 measures where the
// model's predicted FIBs diverge from the simulated ground truth.
#pragma once

#include <string>
#include <vector>

#include "hbguard/config/config_store.hpp"
#include "hbguard/snapshot/snapshot.hpp"

namespace hbguard {

struct AssumedExternalRoute {
  RouterId router = kInvalidRouter;  // which border router hears it
  std::string session;               // on which uplink
  Prefix prefix;
  std::vector<AsNumber> as_path;
  std::uint32_t med = 0;
};

class ControlPlaneModel {
 public:
  /// Predict the stable data plane for the given configurations and
  /// assumed external routes.
  DataPlaneSnapshot predict(const Topology& topology, const ConfigStore& configs,
                            const std::vector<AssumedExternalRoute>& external_routes) const;
};

/// Count prefix/router pairs where two snapshots forward differently.
std::size_t count_fib_divergence(const DataPlaneSnapshot& a, const DataPlaneSnapshot& b,
                                 const std::vector<Prefix>& prefixes);

}  // namespace hbguard
