// Distributed data-plane verification (§5, "Distributed verification").
//
// "The basic idea is to pass partial verification results between network
// routers ... each router uses its local FIB snapshot to conduct parts of
// the verification. ... This approach adds time overhead, due to the delay
// in passing partial verification results between routers, but the approach
// avoids the potential for bottlenecks at a centralized verifier."
//
// The distributed verifier produces the same verdicts as the centralized
// one (both analyze the same snapshot); what differs is the cost model. We
// account messages, payload bytes, per-node work and the critical-path
// latency for both deployments so bench A3 can chart the tradeoff.
#pragma once

#include <map>

#include "hbguard/net/topology.hpp"
#include "hbguard/verify/verifier.hpp"

namespace hbguard {

struct VerifyCost {
  std::size_t messages = 0;       // partial-result / snapshot-upload messages
  std::size_t payload_entries = 0;  // FIB entries (or partial results) moved
  std::size_t max_node_work = 0;  // busiest node's lookup count
  std::size_t total_work = 0;     // total lookups network-wide
  SimTime latency_us = 0;         // critical-path latency (virtual)
};

class DistributedVerifier {
 public:
  /// `topology` supplies link delays for the latency model. `options`
  /// configures the shared thread pool: each policy prefix's per-router
  /// transfer-function evaluation is an independent unit of work, so the
  /// cost model shards per prefix across the pool and merges partial costs
  /// in prefix order (identical totals to the serial evaluation).
  DistributedVerifier(const Topology& topology, PolicyList policies,
                      VerifierOptions options = {});

  /// Verify like the centralized verifier (same verdicts) while costing the
  /// distributed execution: per destination, each router applies its own
  /// transfer function and ships the partial result one hop downstream.
  VerifyResult verify(const DataPlaneSnapshot& snapshot, VerifyCost* cost = nullptr) const;

  /// Cost of the centralized deployment on the same snapshot: every router
  /// uploads its FIB to one collector that performs all the work.
  VerifyCost centralized_cost(const DataPlaneSnapshot& snapshot) const;

  /// Destinations the policy set cares about.
  std::vector<Prefix> policy_prefixes() const;

 private:
  /// Per-prefix slice of the distributed cost model (merged in prefix
  /// order; `latency_us` maxes, the counters sum).
  struct PrefixCost {
    VerifyCost cost;
    std::map<RouterId, std::size_t> node_work;
  };
  PrefixCost prefix_cost(const DataPlaneSnapshot& snapshot, const Prefix& prefix) const;

  const Topology& topology_;
  Verifier verifier_;
  PolicyList policies_;
};

}  // namespace hbguard
