#include "hbguard/dverify/distributed.hpp"

#include <algorithm>
#include <set>

namespace hbguard {

DistributedVerifier::DistributedVerifier(const Topology& topology, PolicyList policies,
                                         VerifierOptions options)
    : topology_(topology), verifier_(policies, options), policies_(std::move(policies)) {}

std::vector<Prefix> DistributedVerifier::policy_prefixes() const {
  std::set<Prefix> unique;
  for (const auto& policy : policies_) {
    for (const Prefix& p : policy->prefixes()) unique.insert(p);
  }
  return {unique.begin(), unique.end()};
}

DistributedVerifier::PrefixCost DistributedVerifier::prefix_cost(
    const DataPlaneSnapshot& snapshot, const Prefix& prefix) const {
  // Per destination, a verification token starts at every router, each hop
  // applies that router's transfer function (one lookup) and ships the
  // partial result across the link.
  PrefixCost partial;
  IpAddress destination = representative(prefix);
  for (const auto& [source, view] : snapshot.routers) {
    ForwardTrace trace = trace_forwarding(snapshot, source, destination);
    SimTime path_latency = 0;
    for (std::size_t i = 0; i < trace.path.size(); ++i) {
      RouterId hop = trace.path[i];
      ++partial.node_work[hop];
      ++partial.cost.total_work;
      if (i + 1 < trace.path.size()) {
        ++partial.cost.messages;
        ++partial.cost.payload_entries;  // one partial result forwarded
        auto link = topology_.link_between(hop, trace.path[i + 1]);
        path_latency += link.has_value() ? topology_.link(*link).delay_us : 1000;
      }
    }
    partial.cost.latency_us = std::max(partial.cost.latency_us, path_latency);
  }
  return partial;
}

VerifyResult DistributedVerifier::verify(const DataPlaneSnapshot& snapshot,
                                         VerifyCost* cost) const {
  VerifyResult result = verifier_.verify(snapshot);
  if (cost == nullptr) return result;

  // Cost the distributed execution, sharding the per-router transfer-
  // function evaluation per prefix across the verifier's pool. Partial
  // costs merge in prefix order — sums and maxes, so the totals equal the
  // serial evaluation's exactly.
  std::vector<Prefix> prefixes = policy_prefixes();
  std::vector<PrefixCost> partials(prefixes.size());
  std::shared_ptr<ThreadPool> pool = verifier_.thread_pool();
  if (pool != nullptr && prefixes.size() > 1) {
    snapshot.warm_lookup_cache();
    pool->parallel_for(prefixes.size(), [&](std::size_t i) {
      partials[i] = prefix_cost(snapshot, prefixes[i]);
    });
  } else {
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      partials[i] = prefix_cost(snapshot, prefixes[i]);
    }
  }

  *cost = VerifyCost{};
  std::map<RouterId, std::size_t> node_work;
  for (const PrefixCost& partial : partials) {
    cost->messages += partial.cost.messages;
    cost->payload_entries += partial.cost.payload_entries;
    cost->total_work += partial.cost.total_work;
    cost->latency_us = std::max(cost->latency_us, partial.cost.latency_us);
    for (const auto& [router, work] : partial.node_work) node_work[router] += work;
  }
  for (const auto& [router, work] : node_work) {
    cost->max_node_work = std::max(cost->max_node_work, work);
  }
  return result;
}

VerifyCost DistributedVerifier::centralized_cost(const DataPlaneSnapshot& snapshot) const {
  VerifyCost cost;
  // Every router uploads its entire FIB view to the collector.
  SimTime max_upload_delay = 0;
  for (const auto& [router, view] : snapshot.routers) {
    ++cost.messages;
    cost.payload_entries += view.entries.size();
    // Latency: one hop to the collector, approximated by the router's
    // cheapest attached link (the collector sits inside the network).
    SimTime best = 1000;
    for (LinkId lid : topology_.links_of(router)) {
      best = std::min<SimTime>(best == 1000 ? topology_.link(lid).delay_us : best,
                               topology_.link(lid).delay_us);
    }
    max_upload_delay = std::max(max_upload_delay, best);
  }
  cost.latency_us = max_upload_delay;

  // The collector performs every lookup itself.
  for (const Prefix& prefix : policy_prefixes()) {
    IpAddress destination = representative(prefix);
    for (const auto& [source, view] : snapshot.routers) {
      ForwardTrace trace = trace_forwarding(snapshot, source, destination);
      cost.total_work += trace.path.size();
    }
  }
  cost.max_node_work = cost.total_work;  // all on one node
  return cost;
}

}  // namespace hbguard
