#include "hbguard/dverify/distributed.hpp"

#include <algorithm>
#include <set>

namespace hbguard {

DistributedVerifier::DistributedVerifier(const Topology& topology, PolicyList policies)
    : topology_(topology), verifier_(policies), policies_(std::move(policies)) {}

std::vector<Prefix> DistributedVerifier::policy_prefixes() const {
  std::set<Prefix> unique;
  for (const auto& policy : policies_) {
    for (const Prefix& p : policy->prefixes()) unique.insert(p);
  }
  return {unique.begin(), unique.end()};
}

VerifyResult DistributedVerifier::verify(const DataPlaneSnapshot& snapshot,
                                         VerifyCost* cost) const {
  VerifyResult result = verifier_.verify(snapshot);
  if (cost == nullptr) return result;

  // Cost the distributed execution: per destination, a verification token
  // starts at every router, each hop applies that router's transfer
  // function (one lookup) and ships the partial result across the link.
  *cost = VerifyCost{};
  std::map<RouterId, std::size_t> node_work;
  for (const Prefix& prefix : policy_prefixes()) {
    IpAddress destination = representative(prefix);
    for (const auto& [source, view] : snapshot.routers) {
      ForwardTrace trace = trace_forwarding(snapshot, source, destination);
      SimTime path_latency = 0;
      for (std::size_t i = 0; i < trace.path.size(); ++i) {
        RouterId hop = trace.path[i];
        ++node_work[hop];
        ++cost->total_work;
        if (i + 1 < trace.path.size()) {
          ++cost->messages;
          ++cost->payload_entries;  // one partial result forwarded
          auto link = topology_.link_between(hop, trace.path[i + 1]);
          path_latency += link.has_value() ? topology_.link(*link).delay_us : 1000;
        }
      }
      cost->latency_us = std::max(cost->latency_us, path_latency);
    }
  }
  for (const auto& [router, work] : node_work) {
    cost->max_node_work = std::max(cost->max_node_work, work);
  }
  return result;
}

VerifyCost DistributedVerifier::centralized_cost(const DataPlaneSnapshot& snapshot) const {
  VerifyCost cost;
  // Every router uploads its entire FIB view to the collector.
  SimTime max_upload_delay = 0;
  for (const auto& [router, view] : snapshot.routers) {
    ++cost.messages;
    cost.payload_entries += view.entries.size();
    // Latency: one hop to the collector, approximated by the router's
    // cheapest attached link (the collector sits inside the network).
    SimTime best = 1000;
    for (LinkId lid : topology_.links_of(router)) {
      best = std::min<SimTime>(best == 1000 ? topology_.link(lid).delay_us : best,
                               topology_.link(lid).delay_us);
    }
    max_upload_delay = std::max(max_upload_delay, best);
  }
  cost.latency_us = max_upload_delay;

  // The collector performs every lookup itself.
  for (const Prefix& prefix : policy_prefixes()) {
    IpAddress destination = representative(prefix);
    for (const auto& [source, view] : snapshot.routers) {
      ForwardTrace trace = trace_forwarding(snapshot, source, destination);
      cost.total_work += trace.path.size();
    }
  }
  cost.max_node_work = cost.total_work;  // all on one node
  return cost;
}

}  // namespace hbguard
