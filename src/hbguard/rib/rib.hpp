// Multi-protocol RIB with administrative-distance arbitration.
//
// Each protocol contributes at most one candidate route per prefix; the RIB
// picks the winner (lowest admin distance, then lowest metric), resolves its
// next hop to an immediate neighbor (recursive resolution for iBGP routes
// whose protocol next hop is a distant router), and installs/withdraws FIB
// entries. The rib_changed / fib_changed callbacks are the interposition
// points where the capture layer records the paper's RIB-update and
// FIB-update I/Os.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "hbguard/config/config.hpp"
#include "hbguard/net/topology.hpp"
#include "hbguard/rib/fib.hpp"

namespace hbguard {

/// A protocol's candidate route for a prefix.
struct RibRoute {
  Prefix prefix;
  Protocol protocol = Protocol::kConnected;
  std::uint32_t metric = 0;
  /// Protocol-level next hop: an internal router (possibly distant, e.g.
  /// an iBGP next hop), an external uplink session, local delivery or drop.
  FibEntry::Action action = FibEntry::Action::kDrop;
  RouterId next_hop_router = kInvalidRouter;
  std::string external_session;
  /// Human-readable provenance detail (e.g. BGP decision reason) carried
  /// into captured I/O records.
  std::string detail;

  bool operator==(const RibRoute&) const = default;
};

class RibManager {
 public:
  struct Callbacks {
    /// A protocol's RIB candidate changed (nullptr = withdrawn).
    std::function<void(const Prefix&, Protocol, const RibRoute*)> rib_changed;
    /// The FIB entry for a prefix changed (nullptr = removed).
    std::function<void(const Prefix&, const FibEntry*)> fib_changed;
    /// Resolve a (possibly distant) internal router to the adjacent
    /// neighbor to forward through; nullopt = unreachable via the IGP.
    std::function<std::optional<RouterId>(RouterId)> resolve_first_hop;
  };

  RibManager(RouterId self, AdminDistances distances, Callbacks callbacks);

  /// Upsert/withdraw a protocol's candidate for a prefix; recomputes the
  /// FIB entry for that prefix.
  void update(Protocol protocol, const Prefix& prefix, std::optional<RibRoute> route);

  /// Re-resolve every installed FIB entry (IGP paths changed under us).
  void reresolve_all();

  /// Drop all candidates and FIB entries without firing callbacks (device
  /// reboot — the shell clears its data-plane copy separately).
  void reset_for_restart() {
    rib_.clear();
    fib_.clear();
  }

  void set_distances(AdminDistances distances) { distances_ = distances; }

  const Fib& fib() const { return fib_; }

  /// The winning RIB route for a prefix, if any.
  const RibRoute* best(const Prefix& prefix) const;

  /// All candidates for a prefix (diagnostics).
  std::map<Protocol, RibRoute> candidates(const Prefix& prefix) const;

 private:
  void recompute(const Prefix& prefix);

  /// Resolve a winning RIB route to a concrete FIB entry; nullopt when the
  /// next hop cannot be resolved (route stays in RIB but not FIB).
  std::optional<FibEntry> resolve(const RibRoute& route) const;

  RouterId self_;
  AdminDistances distances_;
  Callbacks callbacks_;
  std::map<Prefix, std::map<Protocol, RibRoute>> rib_;
  Fib fib_;
};

}  // namespace hbguard
