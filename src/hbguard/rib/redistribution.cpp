#include "hbguard/rib/redistribution.hpp"

namespace hbguard {

bool RedistributionEngine::redistributes_into_bgp(Protocol from) const {
  if (config_ == nullptr) return false;
  for (const Redistribution& r : config_->redistributions) {
    bool into_bgp = r.into == Protocol::kEbgp || r.into == Protocol::kIbgp;
    if (into_bgp && r.from == from) return true;
  }
  return false;
}

void RedistributionEngine::on_rib_change(const Prefix& prefix, Protocol protocol,
                                         const RibRoute* route) {
  if (protocol == Protocol::kEbgp || protocol == Protocol::kIbgp) return;  // no BGP->BGP
  auto& prefixes = sources_[protocol];
  bool changed = route != nullptr ? prefixes.insert(prefix).second : prefixes.erase(prefix) > 0;
  if (changed && redistributes_into_bgp(protocol)) recompute_and_notify();
}

void RedistributionEngine::refresh() {
  recompute_and_notify();
}

void RedistributionEngine::recompute_and_notify() {
  std::set<Prefix> next;
  if (config_ != nullptr) {
    for (const Redistribution& r : config_->redistributions) {
      if (r.into != Protocol::kEbgp && r.into != Protocol::kIbgp) continue;
      auto it = sources_.find(r.from);
      if (it == sources_.end()) continue;
      for (const Prefix& prefix : it->second) {
        if (!r.policy.empty()) {
          const RouteMap* map = config_->find_route_map(r.policy);
          if (map != nullptr) {
            PolicyRouteView view{prefix, 100, 0, {}, ""};
            if (!map->apply(view)) continue;
          }
        }
        next.insert(prefix);
      }
    }
  }
  if (next == into_bgp_) return;
  into_bgp_ = std::move(next);
  if (callbacks_.bgp_originated_changed) callbacks_.bgp_originated_changed(into_bgp_);
}

}  // namespace hbguard
