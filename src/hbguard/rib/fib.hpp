// Forwarding information base.
//
// FIB entries are the control plane's final output — the thing the paper's
// verifier checks and the thing its repair machinery may block. Lookups are
// longest-prefix match over a binary trie.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hbguard/config/config.hpp"
#include "hbguard/net/prefix_trie.hpp"
#include "hbguard/net/topology.hpp"

namespace hbguard {

struct FibEntry {
  enum class Action : std::uint8_t {
    kForward,   // to an adjacent internal router
    kExternal,  // out an eBGP uplink (leaves the administrative domain)
    kLocal,     // delivered locally (originated prefix)
    kDrop,      // discard (null route)
  };

  Prefix prefix;
  Action action = Action::kDrop;
  RouterId next_hop = kInvalidRouter;  // kForward: the adjacent router
  std::string external_session;        // kExternal: which uplink
  Protocol source = Protocol::kConnected;

  bool operator==(const FibEntry&) const = default;
  std::string describe() const;
};

class Fib {
 public:
  /// Install or replace the entry for its prefix. Returns the previous
  /// entry if one existed.
  std::optional<FibEntry> install(const FibEntry& entry);

  /// Remove the entry for `prefix`. Returns the removed entry if any.
  std::optional<FibEntry> remove(const Prefix& prefix);

  /// Longest-prefix-match lookup; nullptr if nothing matches.
  const FibEntry* lookup(IpAddress destination) const;

  /// Exact-prefix fetch.
  const FibEntry* find(const Prefix& prefix) const;

  std::vector<FibEntry> entries() const;
  std::size_t size() const { return trie_.size(); }
  void clear() { trie_.clear(); }

 private:
  PrefixTrie<FibEntry> trie_;
};

}  // namespace hbguard
