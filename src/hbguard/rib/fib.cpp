#include "hbguard/rib/fib.hpp"

namespace hbguard {

std::string FibEntry::describe() const {
  switch (action) {
    case Action::kForward:
      return prefix.to_string() + " -> R" + std::to_string(next_hop);
    case Action::kExternal:
      return prefix.to_string() + " -> ext(" + external_session + ")";
    case Action::kLocal:
      return prefix.to_string() + " -> local";
    case Action::kDrop:
      return prefix.to_string() + " -> drop";
  }
  return prefix.to_string() + " -> ?";
}

std::optional<FibEntry> Fib::install(const FibEntry& entry) {
  std::optional<FibEntry> previous;
  if (const FibEntry* existing = trie_.find(entry.prefix)) previous = *existing;
  trie_.insert(entry.prefix, entry);
  return previous;
}

std::optional<FibEntry> Fib::remove(const Prefix& prefix) {
  std::optional<FibEntry> previous;
  if (const FibEntry* existing = trie_.find(prefix)) previous = *existing;
  trie_.erase(prefix);
  return previous;
}

const FibEntry* Fib::lookup(IpAddress destination) const {
  return trie_.longest_match(destination);
}

const FibEntry* Fib::find(const Prefix& prefix) const {
  return trie_.find(prefix);
}

std::vector<FibEntry> Fib::entries() const {
  std::vector<FibEntry> out;
  out.reserve(trie_.size());
  trie_.for_each([&](const Prefix&, const FibEntry& entry) { out.push_back(entry); });
  return out;
}

}  // namespace hbguard
