// Route redistribution between protocols.
//
// Watches RIB candidate changes for a source protocol and computes the set
// of prefixes to inject into a target protocol (in this codebase: into BGP
// as locally originated networks). Redistribution is one of the "route
// selection mechanisms" the paper's §4.1 lists as generating additional
// happens-before relationships: [install P from proto A] → [originate P
// into proto B].
#pragma once

#include <functional>
#include <map>
#include <set>

#include "hbguard/config/config.hpp"
#include "hbguard/rib/rib.hpp"

namespace hbguard {

class RedistributionEngine {
 public:
  struct Callbacks {
    /// The set of extra BGP-originated prefixes changed.
    std::function<void(const std::set<Prefix>&)> bgp_originated_changed;
  };

  explicit RedistributionEngine(Callbacks callbacks) : callbacks_(std::move(callbacks)) {}

  void set_config(const RouterConfig* config) { config_ = config; }

  /// Feed every RIB candidate change through here (from RibManager's
  /// rib_changed callback).
  void on_rib_change(const Prefix& prefix, Protocol protocol, const RibRoute* route);

  /// Re-derive everything after a config change.
  void refresh();

  /// Drop derived state without firing callbacks (device reboot).
  void reset_for_restart() {
    sources_.clear();
    into_bgp_.clear();
  }

  const std::set<Prefix>& bgp_originated() const { return into_bgp_; }

 private:
  bool redistributes_into_bgp(Protocol from) const;
  void recompute_and_notify();

  Callbacks callbacks_;
  const RouterConfig* config_ = nullptr;
  /// Live candidates per source protocol.
  std::map<Protocol, std::set<Prefix>> sources_;
  std::set<Prefix> into_bgp_;
};

}  // namespace hbguard
