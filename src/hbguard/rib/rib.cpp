#include "hbguard/rib/rib.hpp"

namespace hbguard {

RibManager::RibManager(RouterId self, AdminDistances distances, Callbacks callbacks)
    : self_(self), distances_(distances), callbacks_(std::move(callbacks)) {}

void RibManager::update(Protocol protocol, const Prefix& prefix, std::optional<RibRoute> route) {
  auto& per_proto = rib_[prefix];
  auto it = per_proto.find(protocol);
  if (route.has_value()) {
    if (it != per_proto.end() && it->second == *route) return;  // no change
    per_proto[protocol] = *route;
    if (callbacks_.rib_changed) callbacks_.rib_changed(prefix, protocol, &per_proto[protocol]);
  } else {
    if (it == per_proto.end()) return;
    per_proto.erase(it);
    if (callbacks_.rib_changed) callbacks_.rib_changed(prefix, protocol, nullptr);
  }
  recompute(prefix);
  if (per_proto.empty()) rib_.erase(prefix);
}

void RibManager::reresolve_all() {
  for (const auto& [prefix, per_proto] : rib_) recompute(prefix);
}

const RibRoute* RibManager::best(const Prefix& prefix) const {
  auto it = rib_.find(prefix);
  if (it == rib_.end()) return nullptr;
  const RibRoute* winner = nullptr;
  for (const auto& [protocol, route] : it->second) {
    if (winner == nullptr) {
      winner = &route;
      continue;
    }
    std::uint8_t d_new = distances_.of(protocol);
    std::uint8_t d_old = distances_.of(winner->protocol);
    if (d_new < d_old || (d_new == d_old && route.metric < winner->metric)) {
      winner = &route;
    }
  }
  return winner;
}

std::map<Protocol, RibRoute> RibManager::candidates(const Prefix& prefix) const {
  auto it = rib_.find(prefix);
  return it == rib_.end() ? std::map<Protocol, RibRoute>{} : it->second;
}

std::optional<FibEntry> RibManager::resolve(const RibRoute& route) const {
  FibEntry entry;
  entry.prefix = route.prefix;
  entry.source = route.protocol;
  entry.action = route.action;
  switch (route.action) {
    case FibEntry::Action::kLocal:
    case FibEntry::Action::kDrop:
      return entry;
    case FibEntry::Action::kExternal:
      entry.external_session = route.external_session;
      return entry;
    case FibEntry::Action::kForward: {
      if (route.next_hop_router == self_) {
        entry.action = FibEntry::Action::kLocal;
        return entry;
      }
      if (!callbacks_.resolve_first_hop) {
        entry.next_hop = route.next_hop_router;
        return entry;
      }
      auto hop = callbacks_.resolve_first_hop(route.next_hop_router);
      if (!hop.has_value()) return std::nullopt;  // next hop unreachable
      entry.next_hop = *hop;
      return entry;
    }
  }
  return std::nullopt;
}

void RibManager::recompute(const Prefix& prefix) {
  const RibRoute* winner = best(prefix);
  std::optional<FibEntry> desired;
  if (winner != nullptr) desired = resolve(*winner);

  const FibEntry* installed = fib_.find(prefix);
  if (desired.has_value()) {
    if (installed != nullptr && *installed == *desired) return;
    fib_.install(*desired);
    if (callbacks_.fib_changed) callbacks_.fib_changed(prefix, fib_.find(prefix));
  } else if (installed != nullptr) {
    fib_.remove(prefix);
    if (callbacks_.fib_changed) callbacks_.fib_changed(prefix, nullptr);
  }
}

}  // namespace hbguard
