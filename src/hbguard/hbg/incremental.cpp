#include "hbguard/hbg/incremental.hpp"

namespace hbguard {

std::size_t IncrementalHbgBuilder::append(std::span<const IoRecord> records,
                                          std::vector<HbgEdge>* new_edges) {
  std::vector<InferredHbr> edges;
  std::size_t added = 0;
  for (const IoRecord& record : records) {
    graph_.add_vertex(record);
    edges.clear();
    engine_.add(record, edges);
    for (const InferredHbr& edge : edges) {
      if (graph_.has_vertex(edge.from) && graph_.has_vertex(edge.to)) {
        HbgEdge hbg_edge{edge.from, edge.to, edge.confidence, edge.rule};
        graph_.add_edge(hbg_edge);
        if (new_edges != nullptr) new_edges->push_back(std::move(hbg_edge));
        ++added;
      }
    }
  }
  return added;
}

}  // namespace hbguard
