#include "hbguard/hbg/incremental.hpp"

#include <functional>

namespace hbguard {

namespace {
// Subspan test via std::less for a guaranteed total order on pointers even
// when `records` does not point into `store`.
bool within(std::span<const IoRecord> records, const std::vector<IoRecord>& store) {
  std::less_equal<const IoRecord*> le;
  return !records.empty() && !store.empty() && le(store.data(), records.data()) &&
         le(records.data() + records.size(), store.data() + store.size());
}
}  // namespace

std::size_t IncrementalHbgBuilder::append(std::span<const IoRecord> records,
                                          std::vector<HbgEdge>* new_edges) {
  const std::vector<IoRecord>* store = graph_.record_store();
  std::size_t base = 0;
  bool shared = store != nullptr && within(records, *store);
  if (shared) base = static_cast<std::size_t>(records.data() - store->data());

  std::vector<InferredHbr> edges;
  std::size_t added = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const IoRecord& record = records[i];
    if (shared) {
      graph_.add_vertex_ref(record.id, static_cast<std::uint32_t>(base + i));
    } else {
      graph_.add_vertex(record);
    }
    edges.clear();
    engine_.add(record, edges);
    for (const InferredHbr& edge : edges) {
      if (graph_.has_vertex(edge.from) && graph_.has_vertex(edge.to)) {
        HbgEdge hbg_edge{edge.from, edge.to, edge.confidence, edge.rule};
        graph_.add_edge(hbg_edge);
        if (new_edges != nullptr) new_edges->push_back(std::move(hbg_edge));
        ++added;
      }
    }
  }
  return added;
}

}  // namespace hbguard
