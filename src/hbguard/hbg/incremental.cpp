#include "hbguard/hbg/incremental.hpp"

namespace hbguard {

std::size_t IncrementalHbgBuilder::append(std::span<const IoRecord> records) {
  std::vector<InferredHbr> edges;
  std::size_t added = 0;
  for (const IoRecord& record : records) {
    graph_.add_vertex(record);
    edges.clear();
    engine_.add(record, edges);
    for (const InferredHbr& edge : edges) {
      if (graph_.has_vertex(edge.from) && graph_.has_vertex(edge.to)) {
        graph_.add_edge({edge.from, edge.to, edge.confidence, edge.rule});
        ++added;
      }
    }
  }
  return added;
}

}  // namespace hbguard
