// The happens-before graph (HBG, §4.3).
//
// "Vertices correspond to specific control plane I/Os, and directed edges
// represent HBRs." The graph supports the queries the rest of the system
// needs: parents/children, confidence-filtered ancestor closures (for
// provenance), leaf roots (root causes), per-router subgraphs (for the
// distributed mode of §5), and descendant closures (for blast-radius
// estimates during repair).
//
// Storage is index-based, not node-based. IoIds are 1-based capture ids, so
// they map to contiguous vertex indices through a flat id→index table, and
// adjacency lives in CSR-style arrays:
//
//   - Each direction keeps a compacted CSR segment (offsets + half-edge
//     array) plus a small append-side buffer of linked half-edges. add_edge
//     appends to the buffer; when the buffer outgrows a fraction of the
//     compacted segment the graph re-packs both into fresh CSR arrays
//     (amortized O(E) over any insertion sequence). Per-vertex insertion
//     order is preserved across compactions, so iteration order — and with
//     it every traversal and render — is independent of when compaction
//     happened.
//   - Vertices hold only the IoId plus an index into a record store: either
//     the shared CaptureHub record vector (attach_record_store +
//     add_vertex_ref; no copies, the hub's append-only vector is the single
//     owner) or this graph's own owned-record array (add_vertex). The two
//     can mix per vertex, e.g. after merging foreign subgraphs.
//   - Per-edge origin strings ("recv-advert->rib", "truth", ...) are
//     interned into a small pool; a half-edge is 16 bytes.
//
// Traversals reuse epoch-stamped visited/parent arrays and a scratch BFS
// queue instead of allocating per query, and return sorted vectors. The
// scratch state makes concurrent traversals on the SAME graph instance
// unsafe; every pipeline stage queries the graph from one thread (the
// parallel stages shard over snapshots/ECs, not the HBG).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "hbguard/capture/io_record.hpp"
#include "hbguard/hbr/inference.hpp"

namespace hbguard {

struct HbgEdge {
  IoId from = kNoIo;
  IoId to = kNoIo;
  double confidence = 1.0;
  std::string origin;  // rule/pattern name, or "truth"
};

/// Lightweight non-owning edge as handed to for_each_* callbacks; `origin`
/// points into the graph's intern pool and is valid for the callback's
/// duration only.
struct HbgEdgeView {
  IoId from = kNoIo;
  IoId to = kNoIo;
  double confidence = 1.0;
  std::string_view origin;
};

class HappensBeforeGraph {
 public:
  using VertexIndex = std::uint32_t;
  static constexpr VertexIndex kNoVertexIndex = 0xFFFFFFFFu;

  /// Share a record store (typically &CaptureHub::records()) instead of
  /// copying records into the graph. The store must outlive the graph and
  /// may only grow (indices stay valid across vector reallocation). Must be
  /// called before the first add_vertex_ref.
  void attach_record_store(const std::vector<IoRecord>* store) { external_store_ = store; }
  const std::vector<IoRecord>* record_store() const { return external_store_; }

  /// Add a vertex that references `(*record_store())[store_index]` instead
  /// of holding a copy.
  void add_vertex_ref(IoId id, std::uint32_t store_index);
  /// Add a vertex holding an owned copy of `record`.
  void add_vertex(IoRecord record);
  /// Both endpoints must already be vertices; duplicate (from,to) pairs keep
  /// the higher-confidence edge.
  void add_edge(const HbgEdge& edge) {
    add_edge(edge.from, edge.to, edge.confidence, edge.origin);
  }
  void add_edge(IoId from, IoId to, double confidence, std::string_view origin);

  bool has_vertex(IoId id) const { return index_of(id) != kNoVertexIndex; }
  const IoRecord* record(IoId id) const;

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edge_total_; }

  /// Immediate predecessors/successors with confidence >= min_confidence,
  /// materialized (allocates; prefer the for_each_* overloads on hot paths).
  std::vector<HbgEdge> in_edges(IoId id, double min_confidence = 0.0) const;
  std::vector<HbgEdge> out_edges(IoId id, double min_confidence = 0.0) const;

  /// Allocation-free edge iteration. `fn` takes `const HbgEdgeView&`; a
  /// callback returning bool stops the scan when it returns true.
  template <typename Fn>
  void for_each_in_edge(IoId id, double min_confidence, Fn&& fn) const {
    VertexIndex v = index_of(id);
    if (v == kNoVertexIndex) return;
    scan_adjacency(in_, v, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      return invoke_edge_fn(fn, make_view(half.other, v, half));
    });
  }
  template <typename Fn>
  void for_each_out_edge(IoId id, double min_confidence, Fn&& fn) const {
    VertexIndex v = index_of(id);
    if (v == kNoVertexIndex) return;
    scan_adjacency(out_, v, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      return invoke_edge_fn(fn, make_view(v, half.other, half));
    });
  }

  /// True when `id` has at least one in-edge at or above `min_confidence` —
  /// the root/leaf test, without materializing the edge list.
  bool has_in_edge(IoId id, double min_confidence = 0.0) const;

  /// Transitive closure of predecessors (excludes `id` itself), ascending.
  std::vector<IoId> ancestors(IoId id, double min_confidence = 0.0) const;
  /// Transitive closure of successors (excludes `id` itself), ascending.
  std::vector<IoId> descendants(IoId id, double min_confidence = 0.0) const;

  /// Ancestors of `id` that themselves have no predecessors — the root
  /// causes in §6's sense. If `id` itself has no predecessors it is its own
  /// root.
  std::vector<IoId> root_causes(IoId id, double min_confidence = 0.0) const;

  /// One shortest path (in hops) from `root` to `id` following edges
  /// forward; empty if unreachable. Used for fault-chain reports (Fig. 4).
  /// Canonical: among equal-length paths the one whose predecessors have
  /// the smallest ids wins, so the answer depends only on the edge set —
  /// a sharded store holding the same edges reproduces it exactly.
  std::vector<IoId> path_from(IoId root, IoId id, double min_confidence = 0.0) const;

  /// The sub-HBG of one router's I/Os plus edges among them — what that
  /// router would store in the distributed deployment (§5). Shares this
  /// graph's record store when one is attached.
  HappensBeforeGraph router_subgraph(RouterId router) const;

  /// Merge another (sub)graph into this one (distributed reassembly).
  /// Records are shared when both graphs reference the same store, copied
  /// otherwise.
  void merge(const HappensBeforeGraph& other);

  /// Vertex iteration in ascending IoId order (matching capture order for
  /// graphs built from a capture stream).
  void for_each_vertex(const std::function<void(const IoRecord&)>& fn) const;
  /// Edge iteration grouped by source vertex in ascending IoId order,
  /// per-vertex edges in insertion order. The materializing overload copies
  /// the origin string per edge; the view overload does not.
  void for_each_edge(const std::function<void(const HbgEdge&)>& fn) const;
  template <typename Fn>
  void for_each_edge_view(Fn&& fn) const {
    for (VertexIndex v : id_order()) {
      scan_adjacency(out_, v, [&](const HalfEdge& half) {
        fn(make_view(v, half.other, half));
        return false;
      });
    }
  }

  /// All vertices with no in-edges (potential root causes network-wide),
  /// ascending.
  std::vector<IoId> all_leaves(double min_confidence = 0.0) const;

  /// Re-pack the append-side edge buffers into the CSR segments now
  /// (otherwise triggered automatically as the buffers grow). Discards any
  /// in-progress amortized pass and re-packs from the live structures, so
  /// it is safe at any point.
  void compact();
  /// Append-side buffer occupancy (diagnostics/tests).
  std::size_t pending_edge_count() const { return out_.pending.size(); }

  /// Amortize compaction: instead of re-packing the whole CSR inside one
  /// add_edge call (stop-the-world O(E)), spread the re-pack across
  /// subsequent add_edge calls, copying at most `budget` half-edges per
  /// call. 0 (the default) keeps the eager behaviour. Because per-vertex
  /// insertion order is preserved either way, every query — and every
  /// downstream report digest — is byte-identical to eager compaction (see
  /// tests/test_hbg_compact.cpp). A long-running ingester (hbguardd) sets a
  /// budget so no single append pays the full re-pack latency.
  void set_compact_budget(std::size_t budget) { compact_budget_ = budget; }
  std::size_t compact_budget() const { return compact_budget_; }
  /// An amortized re-pack is currently mid-flight (diagnostics/tests).
  bool compaction_in_progress() const { return inflight_.active; }
  /// Advance an in-flight amortized re-pack by up to `budget` half-edge
  /// copies without adding an edge — idle-time maintenance for a
  /// long-running ingester. No-op when no pass is active.
  void compact_step(std::size_t budget);

 private:
  static constexpr std::uint32_t kOwnedRecordBit = 0x80000000u;
  static constexpr std::uint32_t kNoPending = 0xFFFFFFFFu;

  struct VertexSlot {
    IoId id = kNoIo;
    std::uint32_t store_index = 0;  // kOwnedRecordBit => owned_records_
  };
  struct HalfEdge {
    VertexIndex other = kNoVertexIndex;  // to (out direction) / from (in)
    std::uint32_t origin = 0;            // intern-pool index
    double confidence = 1.0;
  };
  struct PendingEdge {
    HalfEdge half;
    VertexIndex src = kNoVertexIndex;  // owning vertex (for pass-leftover rebuild)
    std::uint32_t next = kNoPending;   // chain per source vertex, in order
  };
  struct Adjacency {
    std::vector<std::uint32_t> offsets;  // CSR; size = compacted vertices + 1
    std::vector<HalfEdge> csr;
    std::vector<PendingEdge> pending;
    std::vector<std::uint32_t> head;  // per vertex, first pending (kNoPending)
    std::vector<std::uint32_t> tail;  // per vertex, last pending
  };

  VertexIndex index_of(IoId id) const {
    return id < id_to_index_.size() ? id_to_index_[static_cast<std::size_t>(id)]
                                    : kNoVertexIndex;
  }
  const IoRecord& record_at(VertexIndex v) const {
    std::uint32_t idx = vertices_[v].store_index;
    return (idx & kOwnedRecordBit) != 0 ? owned_records_[idx & ~kOwnedRecordBit]
                                        : (*external_store_)[idx];
  }
  HbgEdgeView make_view(VertexIndex from, VertexIndex to, const HalfEdge& half) const {
    return {vertices_[from].id, vertices_[to].id, half.confidence, origin_pool_[half.origin]};
  }
  template <typename Fn>
  static bool invoke_edge_fn(Fn&& fn, const HbgEdgeView& view) {
    if constexpr (std::is_same_v<std::invoke_result_t<Fn&, const HbgEdgeView&>, bool>) {
      return fn(view);
    } else {
      fn(view);
      return false;
    }
  }

  /// Iterate v's half-edges: CSR segment first, then the pending chain —
  /// together the per-vertex insertion order. `fn` returns true to stop.
  template <typename Fn>
  void scan_adjacency(const Adjacency& adj, VertexIndex v, Fn&& fn) const {
    if (v + 1 < adj.offsets.size()) {
      for (std::uint32_t i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
        if (fn(adj.csr[i])) return;
      }
    }
    if (v < adj.head.size()) {
      for (std::uint32_t p = adj.head[v]; p != kNoPending; p = adj.pending[p].next) {
        if (fn(adj.pending[p].half)) return;
      }
    }
  }

  /// In-progress amortized re-pack. The pass freezes the vertex count and
  /// per-direction pending sizes at start, then copies vertices — CSR
  /// segment first, then the frozen prefix of the pending chain — into side
  /// arrays, at most `compact_budget_` half-edges per add_edge call. The
  /// live structures are never mutated mid-pass (queries keep using them);
  /// when a direction's copy completes it is swapped in and the post-freeze
  /// chain suffix is re-appended as the new pending buffer. Edges appended
  /// (or vertices inserted) during the pass land past the freeze point and
  /// survive the swap untouched.
  struct InflightCompaction {
    bool active = false;
    int stage = 0;                    // 0 = out_, 1 = in_
    VertexIndex next_vertex = 0;      // first vertex not yet copied (this stage)
    VertexIndex frozen_vertices = 0;  // vertex count at pass start
    std::size_t frozen_pending[2] = {0, 0};  // pending sizes at pass start
    std::vector<std::uint32_t> offsets;      // side arrays for the stage
    std::vector<HalfEdge> csr;
  };

  VertexIndex insert_vertex(IoId id, std::uint32_t store_index);
  void append_half(Adjacency& adj, VertexIndex v, const HalfEdge& half);
  HalfEdge* find_half(Adjacency& adj, VertexIndex v, VertexIndex other);
  void compact_adjacency(Adjacency& adj);
  std::uint32_t intern_origin(std::string_view origin);
  void maybe_compact();
  void start_compaction();
  void advance_compaction(std::size_t budget);
  /// Install the completed stage's side arrays into `adj`, keeping the
  /// post-freeze pending suffix as the new append buffer.
  void swap_compacted(Adjacency& adj, std::size_t frozen_pending);
  /// Mirror a confidence upgrade into the in-flight copy when the touched
  /// half-edge was already copied by the active stage.
  void patch_inflight(int stage, VertexIndex v, const HalfEdge& updated);

  /// Vertex indices in ascending-id order; the identity sequence while ids
  /// were appended monotonically (the capture-stream case), a cached
  /// permutation otherwise.
  const std::vector<VertexIndex>& id_order() const;

  std::uint32_t next_epoch() const;

  std::vector<VertexSlot> vertices_;
  std::vector<VertexIndex> id_to_index_;  // id -> vertex index
  std::vector<IoRecord> owned_records_;
  const std::vector<IoRecord>* external_store_ = nullptr;
  Adjacency out_;
  Adjacency in_;
  std::size_t edge_total_ = 0;
  std::size_t compact_budget_ = 0;  // 0 = eager compaction
  InflightCompaction inflight_;
  std::vector<std::string> origin_pool_;
  std::map<std::string, std::uint32_t, std::less<>> origin_ids_;

  bool ids_monotone_ = true;  // every vertex appended with a larger id
  mutable std::vector<VertexIndex> id_order_cache_;
  mutable bool id_order_dirty_ = false;

  // Epoch-stamped traversal scratch (reused across queries; see header
  // comment on single-threaded traversal).
  mutable std::vector<std::uint32_t> visit_epoch_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<VertexIndex> bfs_queue_;
  mutable std::vector<std::uint32_t> bfs_dist_;
};

}  // namespace hbguard
