// The happens-before graph (HBG, §4.3).
//
// "Vertices correspond to specific control plane I/Os, and directed edges
// represent HBRs." The graph supports the queries the rest of the system
// needs: parents/children, confidence-filtered ancestor closures (for
// provenance), leaf roots (root causes), per-router subgraphs (for the
// distributed mode of §5), and descendant closures (for blast-radius
// estimates during repair).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hbguard/capture/io_record.hpp"
#include "hbguard/hbr/inference.hpp"

namespace hbguard {

struct HbgEdge {
  IoId from = kNoIo;
  IoId to = kNoIo;
  double confidence = 1.0;
  std::string origin;  // rule/pattern name, or "truth"
};

class HappensBeforeGraph {
 public:
  void add_vertex(IoRecord record);
  /// Both endpoints must already be vertices; duplicate (from,to) pairs keep
  /// the higher-confidence edge.
  void add_edge(HbgEdge edge);

  bool has_vertex(IoId id) const { return vertices_.contains(id); }
  const IoRecord* record(IoId id) const;

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edge_total_; }

  /// Immediate predecessors/successors with confidence >= min_confidence.
  std::vector<const HbgEdge*> in_edges(IoId id, double min_confidence = 0.0) const;
  std::vector<const HbgEdge*> out_edges(IoId id, double min_confidence = 0.0) const;

  /// Transitive closure of predecessors (excludes `id` itself).
  std::set<IoId> ancestors(IoId id, double min_confidence = 0.0) const;
  /// Transitive closure of successors (excludes `id` itself).
  std::set<IoId> descendants(IoId id, double min_confidence = 0.0) const;

  /// Ancestors of `id` that themselves have no predecessors — the root
  /// causes in §6's sense. If `id` itself has no predecessors it is its own
  /// root.
  std::vector<IoId> root_causes(IoId id, double min_confidence = 0.0) const;

  /// One shortest path (in hops) from `root` to `id` following edges
  /// forward; empty if unreachable. Used for fault-chain reports (Fig. 4).
  std::vector<IoId> path_from(IoId root, IoId id, double min_confidence = 0.0) const;

  /// The sub-HBG of one router's I/Os plus edges among them — what that
  /// router would store in the distributed deployment (§5).
  HappensBeforeGraph router_subgraph(RouterId router) const;

  /// Merge another (sub)graph into this one (distributed reassembly).
  void merge(const HappensBeforeGraph& other);

  void for_each_vertex(const std::function<void(const IoRecord&)>& fn) const;
  void for_each_edge(const std::function<void(const HbgEdge&)>& fn) const;

  /// All vertices with no in-edges (potential root causes network-wide).
  std::vector<IoId> all_leaves(double min_confidence = 0.0) const;

 private:
  std::map<IoId, IoRecord> vertices_;
  std::map<IoId, std::vector<HbgEdge>> out_;  // keyed by from
  std::map<IoId, std::vector<HbgEdge>> in_;   // keyed by to
  std::size_t edge_total_ = 0;
};

}  // namespace hbguard
