// HBG construction from a capture stream.
#pragma once

#include <span>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/hbr/inference.hpp"

namespace hbguard {

class HbgBuilder {
 public:
  /// Build an HBG whose edges come from an inference strategy (what the
  /// system can do in practice). When `store` is non-null, `records` must be
  /// a subspan of `*store` (typically &CaptureHub::records()); the graph then
  /// references the store instead of copying every record.
  static HappensBeforeGraph build(std::span<const IoRecord> records,
                                  const HbrInferencer& inferencer,
                                  const std::vector<IoRecord>* store = nullptr);

  /// Build the ground-truth HBG from the simulator's cause links
  /// (evaluation oracle; impossible on real routers).
  static HappensBeforeGraph build_ground_truth(std::span<const IoRecord> records,
                                               const std::vector<IoRecord>* store = nullptr);
};

}  // namespace hbguard
