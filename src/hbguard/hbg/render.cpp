#include "hbguard/hbg/render.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "hbguard/util/strings.hpp"

namespace hbguard {

std::string to_dot(const HappensBeforeGraph& graph, double min_confidence) {
  std::ostringstream out;
  out << "digraph hbg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  graph.for_each_vertex([&](const IoRecord& record) {
    const char* color = record.input() ? "lightblue" : "white";
    if (record.kind == IoKind::kConfigChange || record.kind == IoKind::kHardwareStatus) {
      color = "orange";
    }
    out << "  n" << record.id << " [label=\"" << record.label() << "\", style=filled, fillcolor="
        << color << "];\n";
  });
  graph.for_each_edge_view([&](const HbgEdgeView& edge) {
    if (edge.confidence < min_confidence) return;
    out << "  n" << edge.from << " -> n" << edge.to << " [label=\"" << edge.origin;
    if (edge.confidence < 1.0) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), " %.2f", edge.confidence);
      out << buf;
    }
    out << "\"];\n";
  });
  out << "}\n";
  return out.str();
}

std::string to_timeline(const HappensBeforeGraph& graph, const Topology* topology,
                        double min_confidence) {
  // Group vertices per router, ordered by true event time.
  std::map<RouterId, std::vector<const IoRecord*>> lanes;
  graph.for_each_vertex([&](const IoRecord& record) { lanes[record.router].push_back(&record); });
  for (auto& [router, records] : lanes) {
    std::sort(records.begin(), records.end(), [](const IoRecord* a, const IoRecord* b) {
      return a->true_time != b->true_time ? a->true_time < b->true_time : a->id < b->id;
    });
  }

  auto router_name = [&](RouterId id) -> std::string {
    if (id == kExternalRouter) return "external";
    if (topology != nullptr && id < topology->router_count()) return topology->router(id).name;
    return "R" + std::to_string(id);
  };

  std::ostringstream out;
  for (const auto& [router, records] : lanes) {
    out << "=== " << router_name(router) << " ===\n";
    SimTime previous = records.empty() ? 0 : records.front()->true_time;
    for (const IoRecord* record : records) {
      SimTime gap = record->true_time - previous;
      previous = record->true_time;
      out << "  +" << format_duration_us(gap) << "  [" << to_string(record->kind) << "] "
          << record->label() << "\n";
    }
  }

  out << "=== cross-router edges ===\n";
  graph.for_each_edge_view([&](const HbgEdgeView& edge) {
    if (edge.confidence < min_confidence) return;
    const IoRecord* from = graph.record(edge.from);
    const IoRecord* to = graph.record(edge.to);
    if (from == nullptr || to == nullptr || from->router == to->router) return;
    out << "  " << router_name(from->router) << " #" << edge.from << " -> "
        << router_name(to->router) << " #" << edge.to << "  (+"
        << format_duration_us(to->true_time - from->true_time) << ", " << edge.origin << ")\n";
  });
  return out.str();
}

std::string render_chain(const HappensBeforeGraph& graph, const std::vector<IoId>& path) {
  std::ostringstream out;
  SimTime previous = 0;
  bool first = true;
  for (IoId id : path) {
    const IoRecord* record = graph.record(id);
    if (record == nullptr) continue;
    if (first) {
      out << "  cause: " << record->label() << "\n";
      first = false;
    } else {
      out << "    +" << format_duration_us(record->true_time - previous) << " -> "
          << record->label() << "\n";
    }
    previous = record->true_time;
  }
  return out.str();
}

}  // namespace hbguard
