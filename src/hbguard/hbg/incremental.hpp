// Incremental happens-before graph construction.
//
// Wraps RuleMatchEngine and a HappensBeforeGraph so an online consumer (the
// Guard) pays only for new I/Os on each scan instead of rebuilding the
// graph from the full history — the paper's "construction ... of the HBG
// can also be distributed [and continuous]".
#pragma once

#include <span>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/hbr/incremental.hpp"

namespace hbguard {

class IncrementalHbgBuilder {
 public:
  explicit IncrementalHbgBuilder(MatcherOptions options = {}) : engine_(options) {}

  /// Share the capture record store (typically &CaptureHub::records()) with
  /// the graph and match engine so neither copies records. The store must
  /// outlive this builder and only grow; spans passed to append must then be
  /// subspans of the store. Call before the first append.
  void attach_store(const std::vector<IoRecord>* store) {
    graph_.attach_record_store(store);
    engine_.attach_store(store);
  }

  /// Ingest records (capture order; ids must be new). Returns the number
  /// of edges added. When `new_edges` is non-null, every added edge is also
  /// appended there — the delta a downstream incremental consumer (e.g. the
  /// incremental snapshotter's closure) needs to know which vertices gained
  /// causes. Note edges may target *older* records (late-cause and channel
  /// matching under clock noise), not just the records in this batch.
  std::size_t append(std::span<const IoRecord> records,
                     std::vector<HbgEdge>* new_edges = nullptr);

  // -- Shard-scoped hooks (distributed construction, §5) ------------------
  //
  // A DistributedHbgStore shard is one of these builders restricted to the
  // shard's own tap stream: the engine runs same-router rules only (the
  // channel pass is stitched from exchanged ShardMessages instead), and
  // externally matched edges — cross-channel pairs the shard learns about
  // via its inbox — are appended through add_matched_edge.

  /// Turn the engine's internal send→recv channel pass off (shard-local
  /// matching). Call before the first append.
  void set_channel_matching(bool enabled) { engine_.set_channel_matching(enabled); }

  /// Append an edge matched outside the engine (e.g. a channel pair the
  /// distributed exchange produced). Returns false when either endpoint is
  /// not a vertex of this shard's graph.
  bool add_matched_edge(const HbgEdge& edge) {
    if (!graph_.has_vertex(edge.from) || !graph_.has_vertex(edge.to)) return false;
    graph_.add_edge(edge);
    return true;
  }

  /// Amortize the graph's CSR re-pack under a per-append half-edge budget
  /// (0 = eager). See HappensBeforeGraph::set_compact_budget.
  void set_compact_budget(std::size_t budget) { graph_.set_compact_budget(budget); }

  /// Direct access to the underlying graph for shard adoption — splitting
  /// an already-built global HBG into per-shard slices copies vertices and
  /// edges in without running the engine at all.
  HappensBeforeGraph& graph_mutable() { return graph_; }

  const HappensBeforeGraph& graph() const { return graph_; }
  std::size_t records_ingested() const { return engine_.records_seen(); }

 private:
  RuleMatchEngine engine_;
  HappensBeforeGraph graph_;
};

}  // namespace hbguard
