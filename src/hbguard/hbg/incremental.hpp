// Incremental happens-before graph construction.
//
// Wraps RuleMatchEngine and a HappensBeforeGraph so an online consumer (the
// Guard) pays only for new I/Os on each scan instead of rebuilding the
// graph from the full history — the paper's "construction ... of the HBG
// can also be distributed [and continuous]".
#pragma once

#include <span>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/hbr/incremental.hpp"

namespace hbguard {

class IncrementalHbgBuilder {
 public:
  explicit IncrementalHbgBuilder(MatcherOptions options = {}) : engine_(options) {}

  /// Share the capture record store (typically &CaptureHub::records()) with
  /// the graph and match engine so neither copies records. The store must
  /// outlive this builder and only grow; spans passed to append must then be
  /// subspans of the store. Call before the first append.
  void attach_store(const std::vector<IoRecord>* store) {
    graph_.attach_record_store(store);
    engine_.attach_store(store);
  }

  /// Ingest records (capture order; ids must be new). Returns the number
  /// of edges added. When `new_edges` is non-null, every added edge is also
  /// appended there — the delta a downstream incremental consumer (e.g. the
  /// incremental snapshotter's closure) needs to know which vertices gained
  /// causes. Note edges may target *older* records (late-cause and channel
  /// matching under clock noise), not just the records in this batch.
  std::size_t append(std::span<const IoRecord> records,
                     std::vector<HbgEdge>* new_edges = nullptr);

  const HappensBeforeGraph& graph() const { return graph_; }
  std::size_t records_ingested() const { return engine_.records_seen(); }

 private:
  RuleMatchEngine engine_;
  HappensBeforeGraph graph_;
};

}  // namespace hbguard
