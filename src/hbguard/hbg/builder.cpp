#include "hbguard/hbg/builder.hpp"

namespace hbguard {

HappensBeforeGraph HbgBuilder::build(std::span<const IoRecord> records,
                                     const HbrInferencer& inferencer) {
  HappensBeforeGraph graph;
  for (const IoRecord& record : records) graph.add_vertex(record);
  for (const InferredHbr& edge : inferencer.infer(records)) {
    if (graph.has_vertex(edge.from) && graph.has_vertex(edge.to)) {
      graph.add_edge({edge.from, edge.to, edge.confidence, edge.rule});
    }
  }
  return graph;
}

HappensBeforeGraph HbgBuilder::build_ground_truth(std::span<const IoRecord> records) {
  HappensBeforeGraph graph;
  for (const IoRecord& record : records) graph.add_vertex(record);
  for (const InferredHbr& edge : ground_truth_edges(records)) {
    if (graph.has_vertex(edge.from) && graph.has_vertex(edge.to)) {
      graph.add_edge({edge.from, edge.to, 1.0, "truth"});
    }
  }
  return graph;
}

}  // namespace hbguard
