#include "hbguard/hbg/builder.hpp"

namespace hbguard {

namespace {

void add_vertices(HappensBeforeGraph& graph, std::span<const IoRecord> records,
                  const std::vector<IoRecord>* store) {
  if (store != nullptr && !records.empty()) {
    graph.attach_record_store(store);
    // `records` is a subspan of *store, so pointer arithmetic against the
    // store's base yields the records' store indices.
    std::size_t base = static_cast<std::size_t>(records.data() - store->data());
    for (std::size_t i = 0; i < records.size(); ++i) {
      graph.add_vertex_ref(records[i].id, static_cast<std::uint32_t>(base + i));
    }
    return;
  }
  for (const IoRecord& record : records) graph.add_vertex(record);
}

}  // namespace

HappensBeforeGraph HbgBuilder::build(std::span<const IoRecord> records,
                                     const HbrInferencer& inferencer,
                                     const std::vector<IoRecord>* store) {
  HappensBeforeGraph graph;
  add_vertices(graph, records, store);
  for (const InferredHbr& edge : inferencer.infer(records)) {
    if (graph.has_vertex(edge.from) && graph.has_vertex(edge.to)) {
      graph.add_edge(edge.from, edge.to, edge.confidence, edge.rule);
    }
  }
  graph.compact();
  return graph;
}

HappensBeforeGraph HbgBuilder::build_ground_truth(std::span<const IoRecord> records,
                                                  const std::vector<IoRecord>* store) {
  HappensBeforeGraph graph;
  add_vertices(graph, records, store);
  for (const InferredHbr& edge : ground_truth_edges(records)) {
    if (graph.has_vertex(edge.from) && graph.has_vertex(edge.to)) {
      graph.add_edge(edge.from, edge.to, 1.0, "truth");
    }
  }
  graph.compact();
  return graph;
}

}  // namespace hbguard
