#include "hbguard/hbg/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace hbguard {

void HappensBeforeGraph::add_vertex(IoRecord record) {
  vertices_.insert_or_assign(record.id, std::move(record));
}

void HappensBeforeGraph::add_edge(HbgEdge edge) {
  if (!vertices_.contains(edge.from) || !vertices_.contains(edge.to)) {
    throw std::invalid_argument("HBG edge references unknown vertex");
  }
  if (edge.from == edge.to) return;
  auto& outs = out_[edge.from];
  for (HbgEdge& existing : outs) {
    if (existing.to == edge.to) {
      if (edge.confidence > existing.confidence) {
        existing.confidence = edge.confidence;
        existing.origin = edge.origin;
        for (HbgEdge& in_edge : in_[edge.to]) {
          if (in_edge.from == edge.from) {
            in_edge.confidence = edge.confidence;
            in_edge.origin = edge.origin;
          }
        }
      }
      return;
    }
  }
  outs.push_back(edge);
  in_[edge.to].push_back(std::move(edge));
  ++edge_total_;
}

const IoRecord* HappensBeforeGraph::record(IoId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? nullptr : &it->second;
}

std::vector<const HbgEdge*> HappensBeforeGraph::in_edges(IoId id, double min_confidence) const {
  std::vector<const HbgEdge*> result;
  auto it = in_.find(id);
  if (it == in_.end()) return result;
  for (const HbgEdge& edge : it->second) {
    if (edge.confidence >= min_confidence) result.push_back(&edge);
  }
  return result;
}

std::vector<const HbgEdge*> HappensBeforeGraph::out_edges(IoId id, double min_confidence) const {
  std::vector<const HbgEdge*> result;
  auto it = out_.find(id);
  if (it == out_.end()) return result;
  for (const HbgEdge& edge : it->second) {
    if (edge.confidence >= min_confidence) result.push_back(&edge);
  }
  return result;
}

namespace {
std::set<IoId> closure(IoId start, double min_confidence,
                       const std::function<std::vector<const HbgEdge*>(IoId)>& step,
                       const std::function<IoId(const HbgEdge&)>& next) {
  std::set<IoId> visited;
  std::deque<IoId> frontier{start};
  while (!frontier.empty()) {
    IoId current = frontier.front();
    frontier.pop_front();
    for (const HbgEdge* edge : step(current)) {
      if (edge->confidence < min_confidence) continue;
      IoId n = next(*edge);
      if (visited.insert(n).second) frontier.push_back(n);
    }
  }
  visited.erase(start);
  return visited;
}
}  // namespace

std::set<IoId> HappensBeforeGraph::ancestors(IoId id, double min_confidence) const {
  return closure(
      id, min_confidence, [&](IoId v) { return in_edges(v, min_confidence); },
      [](const HbgEdge& e) { return e.from; });
}

std::set<IoId> HappensBeforeGraph::descendants(IoId id, double min_confidence) const {
  return closure(
      id, min_confidence, [&](IoId v) { return out_edges(v, min_confidence); },
      [](const HbgEdge& e) { return e.to; });
}

std::vector<IoId> HappensBeforeGraph::root_causes(IoId id, double min_confidence) const {
  std::vector<IoId> roots;
  auto up = ancestors(id, min_confidence);
  if (up.empty()) {
    if (in_edges(id, min_confidence).empty()) roots.push_back(id);
    return roots;
  }
  for (IoId ancestor : up) {
    if (in_edges(ancestor, min_confidence).empty()) roots.push_back(ancestor);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::vector<IoId> HappensBeforeGraph::path_from(IoId root, IoId id, double min_confidence) const {
  if (root == id) return {root};
  std::map<IoId, IoId> parent;
  std::deque<IoId> frontier{root};
  parent[root] = root;
  while (!frontier.empty()) {
    IoId current = frontier.front();
    frontier.pop_front();
    for (const HbgEdge* edge : out_edges(current, min_confidence)) {
      if (parent.contains(edge->to)) continue;
      parent[edge->to] = current;
      if (edge->to == id) {
        std::vector<IoId> path{id};
        IoId walk = id;
        while (walk != root) {
          walk = parent[walk];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(edge->to);
    }
  }
  return {};
}

HappensBeforeGraph HappensBeforeGraph::router_subgraph(RouterId router) const {
  HappensBeforeGraph sub;
  for (const auto& [id, record] : vertices_) {
    if (record.router == router) sub.add_vertex(record);
  }
  for (const auto& [from, edges] : out_) {
    for (const HbgEdge& edge : edges) {
      if (sub.has_vertex(edge.from) && sub.has_vertex(edge.to)) sub.add_edge(edge);
    }
  }
  return sub;
}

void HappensBeforeGraph::merge(const HappensBeforeGraph& other) {
  other.for_each_vertex([&](const IoRecord& record) {
    if (!has_vertex(record.id)) add_vertex(record);
  });
  other.for_each_edge([&](const HbgEdge& edge) { add_edge(edge); });
}

void HappensBeforeGraph::for_each_vertex(const std::function<void(const IoRecord&)>& fn) const {
  for (const auto& [id, record] : vertices_) fn(record);
}

void HappensBeforeGraph::for_each_edge(const std::function<void(const HbgEdge&)>& fn) const {
  for (const auto& [from, edges] : out_) {
    for (const HbgEdge& edge : edges) fn(edge);
  }
}

std::vector<IoId> HappensBeforeGraph::all_leaves(double min_confidence) const {
  std::vector<IoId> leaves;
  for (const auto& [id, record] : vertices_) {
    if (in_edges(id, min_confidence).empty()) leaves.push_back(id);
  }
  return leaves;
}

}  // namespace hbguard
