#include "hbguard/hbg/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hbguard {

namespace {
// Compaction trigger: re-pack once the append-side buffer holds at least
// this many edges AND at least a quarter of the compacted segment — i.e.
// each compaction grows the CSR by >= 25%, so total re-pack work stays
// O(E) amortized over any insertion sequence.
constexpr std::size_t kCompactMinPending = 1024;
}  // namespace

HappensBeforeGraph::VertexIndex HappensBeforeGraph::insert_vertex(IoId id,
                                                                  std::uint32_t store_index) {
  if (id >= id_to_index_.size()) {
    id_to_index_.resize(static_cast<std::size_t>(id) + 1, kNoVertexIndex);
  }
  VertexIndex v = static_cast<VertexIndex>(vertices_.size());
  if (!vertices_.empty() && vertices_.back().id >= id) ids_monotone_ = false;
  vertices_.push_back({id, store_index});
  id_to_index_[static_cast<std::size_t>(id)] = v;
  id_order_dirty_ = true;
  return v;
}

void HappensBeforeGraph::add_vertex(IoRecord record) {
  VertexIndex v = index_of(record.id);
  if (v != kNoVertexIndex) {
    // Replace semantics (a re-added vertex keeps its edges, new content).
    std::uint32_t& slot = vertices_[v].store_index;
    if ((slot & kOwnedRecordBit) != 0) {
      owned_records_[slot & ~kOwnedRecordBit] = std::move(record);
    } else {
      slot = kOwnedRecordBit | static_cast<std::uint32_t>(owned_records_.size());
      owned_records_.push_back(std::move(record));
    }
    return;
  }
  IoId id = record.id;
  std::uint32_t slot = kOwnedRecordBit | static_cast<std::uint32_t>(owned_records_.size());
  owned_records_.push_back(std::move(record));
  insert_vertex(id, slot);
}

void HappensBeforeGraph::add_vertex_ref(IoId id, std::uint32_t store_index) {
  if (external_store_ == nullptr) {
    throw std::logic_error("add_vertex_ref requires an attached record store");
  }
  VertexIndex v = index_of(id);
  if (v != kNoVertexIndex) {
    vertices_[v].store_index = store_index;
    return;
  }
  insert_vertex(id, store_index);
}

std::uint32_t HappensBeforeGraph::intern_origin(std::string_view origin) {
  auto it = origin_ids_.find(origin);
  if (it != origin_ids_.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(origin_pool_.size());
  origin_pool_.emplace_back(origin);
  origin_ids_.emplace(origin_pool_.back(), id);
  return id;
}

void HappensBeforeGraph::append_half(Adjacency& adj, VertexIndex v, const HalfEdge& half) {
  if (adj.head.size() < vertices_.size()) {
    adj.head.resize(vertices_.size(), kNoPending);
    adj.tail.resize(vertices_.size(), kNoPending);
  }
  std::uint32_t slot = static_cast<std::uint32_t>(adj.pending.size());
  adj.pending.push_back({half, v, kNoPending});
  if (adj.head[v] == kNoPending) {
    adj.head[v] = slot;
  } else {
    adj.pending[adj.tail[v]].next = slot;
  }
  adj.tail[v] = slot;
}

HappensBeforeGraph::HalfEdge* HappensBeforeGraph::find_half(Adjacency& adj, VertexIndex v,
                                                            VertexIndex other) {
  if (v + 1 < adj.offsets.size()) {
    for (std::uint32_t i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
      if (adj.csr[i].other == other) return &adj.csr[i];
    }
  }
  if (v < adj.head.size()) {
    for (std::uint32_t p = adj.head[v]; p != kNoPending; p = adj.pending[p].next) {
      if (adj.pending[p].half.other == other) return &adj.pending[p].half;
    }
  }
  return nullptr;
}

void HappensBeforeGraph::add_edge(IoId from, IoId to, double confidence,
                                  std::string_view origin) {
  VertexIndex f = index_of(from);
  VertexIndex t = index_of(to);
  if (f == kNoVertexIndex || t == kNoVertexIndex) {
    throw std::invalid_argument("HBG edge references unknown vertex");
  }
  if (from == to) return;
  if (HalfEdge* existing = find_half(out_, f, t)) {
    if (confidence > existing->confidence) {
      std::uint32_t origin_id = intern_origin(origin);
      existing->confidence = confidence;
      existing->origin = origin_id;
      HalfEdge* back = find_half(in_, t, f);
      back->confidence = confidence;
      back->origin = origin_id;
      if (inflight_.active) {
        // The upgraded half may already have been copied into the in-flight
        // side arrays; mirror it there so the swap installs current values.
        patch_inflight(0, f, {t, origin_id, confidence});
        patch_inflight(1, t, {f, origin_id, confidence});
      }
    }
    return;
  }
  std::uint32_t origin_id = intern_origin(origin);
  append_half(out_, f, {t, origin_id, confidence});
  append_half(in_, t, {f, origin_id, confidence});
  ++edge_total_;
  maybe_compact();
}

void HappensBeforeGraph::maybe_compact() {
  if (compact_budget_ > 0) {
    if (inflight_.active) {
      advance_compaction(compact_budget_);
      return;
    }
    if (out_.pending.size() >= kCompactMinPending &&
        out_.pending.size() * 4 >= out_.csr.size()) {
      start_compaction();
      advance_compaction(compact_budget_);
    }
    return;
  }
  if (out_.pending.size() >= kCompactMinPending &&
      out_.pending.size() * 4 >= out_.csr.size()) {
    compact();
  }
}

void HappensBeforeGraph::start_compaction() {
  inflight_.active = true;
  inflight_.stage = 0;
  inflight_.next_vertex = 0;
  inflight_.frozen_vertices = static_cast<VertexIndex>(vertices_.size());
  inflight_.frozen_pending[0] = out_.pending.size();
  inflight_.frozen_pending[1] = in_.pending.size();
  inflight_.offsets.clear();
  inflight_.offsets.reserve(inflight_.frozen_vertices + 1);
  inflight_.offsets.push_back(0);
  inflight_.csr.clear();
  inflight_.csr.reserve(out_.csr.size() + out_.pending.size());
}

void HappensBeforeGraph::advance_compaction(std::size_t budget) {
  while (inflight_.active && budget > 0) {
    Adjacency& adj = inflight_.stage == 0 ? out_ : in_;
    std::size_t frozen_pending = inflight_.frozen_pending[inflight_.stage];
    if (inflight_.next_vertex == inflight_.frozen_vertices) {
      swap_compacted(adj, frozen_pending);
      if (inflight_.stage == 1) {
        inflight_ = InflightCompaction{};
        return;
      }
      inflight_.stage = 1;
      inflight_.next_vertex = 0;
      inflight_.offsets.clear();
      inflight_.offsets.push_back(0);
      inflight_.csr.clear();
      inflight_.csr.reserve(in_.csr.size() + inflight_.frozen_pending[1]);
      continue;
    }
    // Copy one vertex: CSR segment, then the frozen prefix of its pending
    // chain (chain slots are monotone, so the frozen entries are a prefix).
    VertexIndex v = inflight_.next_vertex++;
    std::size_t copied = 0;
    if (v + 1 < adj.offsets.size()) {
      for (std::uint32_t i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
        inflight_.csr.push_back(adj.csr[i]);
        ++copied;
      }
    }
    if (v < adj.head.size()) {
      for (std::uint32_t p = adj.head[v]; p != kNoPending && p < frozen_pending;
           p = adj.pending[p].next) {
        inflight_.csr.push_back(adj.pending[p].half);
        ++copied;
      }
    }
    inflight_.offsets.push_back(static_cast<std::uint32_t>(inflight_.csr.size()));
    budget -= std::min(budget, std::max<std::size_t>(copied, 1));
  }
}

void HappensBeforeGraph::swap_compacted(Adjacency& adj, std::size_t frozen_pending) {
  adj.offsets = std::move(inflight_.offsets);
  adj.csr = std::move(inflight_.csr);
  // Post-freeze appends become the new pending buffer, same relative order.
  std::vector<PendingEdge> leftover(adj.pending.begin() + frozen_pending, adj.pending.end());
  adj.pending.clear();
  adj.head.assign(vertices_.size(), kNoPending);
  adj.tail.assign(vertices_.size(), kNoPending);
  for (const PendingEdge& edge : leftover) append_half(adj, edge.src, edge.half);
}

void HappensBeforeGraph::compact_step(std::size_t budget) {
  if (inflight_.active && budget > 0) advance_compaction(budget);
}

void HappensBeforeGraph::patch_inflight(int stage, VertexIndex v, const HalfEdge& updated) {
  if (stage != inflight_.stage) return;  // not yet started, or already swapped in
  if (v >= inflight_.next_vertex) return;
  for (std::uint32_t i = inflight_.offsets[v]; i < inflight_.offsets[v + 1]; ++i) {
    if (inflight_.csr[i].other == updated.other) {
      inflight_.csr[i] = updated;
      return;
    }
  }
}

void HappensBeforeGraph::compact_adjacency(Adjacency& adj) {
  std::size_t n = vertices_.size();
  std::vector<std::uint32_t> offsets(n + 1, 0);
  for (VertexIndex v = 0; v < n; ++v) {
    std::uint32_t degree = 0;
    scan_adjacency(adj, v, [&](const HalfEdge&) {
      ++degree;
      return false;
    });
    offsets[v + 1] = offsets[v] + degree;
  }
  std::vector<HalfEdge> csr(offsets[n]);
  for (VertexIndex v = 0; v < n; ++v) {
    std::uint32_t cursor = offsets[v];
    scan_adjacency(adj, v, [&](const HalfEdge& half) {
      csr[cursor++] = half;
      return false;
    });
  }
  adj.offsets = std::move(offsets);
  adj.csr = std::move(csr);
  adj.pending.clear();
  adj.head.clear();
  adj.tail.clear();
}

void HappensBeforeGraph::compact() {
  // An amortized pass never mutates the live structures before its swap, so
  // discarding it mid-flight is always safe: the live CSR + chains still
  // hold every edge in per-vertex insertion order.
  inflight_ = InflightCompaction{};
  compact_adjacency(out_);
  compact_adjacency(in_);
}

const IoRecord* HappensBeforeGraph::record(IoId id) const {
  VertexIndex v = index_of(id);
  return v == kNoVertexIndex ? nullptr : &record_at(v);
}

std::vector<HbgEdge> HappensBeforeGraph::in_edges(IoId id, double min_confidence) const {
  std::vector<HbgEdge> result;
  for_each_in_edge(id, min_confidence, [&](const HbgEdgeView& e) {
    result.push_back({e.from, e.to, e.confidence, std::string(e.origin)});
  });
  return result;
}

std::vector<HbgEdge> HappensBeforeGraph::out_edges(IoId id, double min_confidence) const {
  std::vector<HbgEdge> result;
  for_each_out_edge(id, min_confidence, [&](const HbgEdgeView& e) {
    result.push_back({e.from, e.to, e.confidence, std::string(e.origin)});
  });
  return result;
}

bool HappensBeforeGraph::has_in_edge(IoId id, double min_confidence) const {
  VertexIndex v = index_of(id);
  if (v == kNoVertexIndex) return false;
  bool found = false;
  scan_adjacency(in_, v, [&](const HalfEdge& half) {
    if (half.confidence < min_confidence) return false;
    found = true;
    return true;
  });
  return found;
}

std::uint32_t HappensBeforeGraph::next_epoch() const {
  if (visit_epoch_.size() < vertices_.size()) visit_epoch_.resize(vertices_.size(), 0);
  if (++epoch_ == 0) {
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0);
    epoch_ = 1;
  }
  return epoch_;
}

namespace {
/// BFS closure over one adjacency direction into `queue` (start at [0]),
/// marking visits in `visit` with `epoch`.
template <typename Scan>
void bfs_closure(std::vector<HappensBeforeGraph::VertexIndex>& queue,
                 std::vector<std::uint32_t>& visit, std::uint32_t epoch,
                 HappensBeforeGraph::VertexIndex start, const Scan& scan_neighbors) {
  queue.clear();
  queue.push_back(start);
  visit[start] = epoch;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    scan_neighbors(queue[head], [&](HappensBeforeGraph::VertexIndex next) {
      if (visit[next] != epoch) {
        visit[next] = epoch;
        queue.push_back(next);
      }
    });
  }
}
}  // namespace

std::vector<IoId> HappensBeforeGraph::ancestors(IoId id, double min_confidence) const {
  VertexIndex s = index_of(id);
  if (s == kNoVertexIndex) return {};
  std::uint32_t epoch = next_epoch();
  bfs_closure(bfs_queue_, visit_epoch_, epoch, s, [&](VertexIndex v, auto&& visit) {
    scan_adjacency(in_, v, [&](const HalfEdge& half) {
      if (half.confidence >= min_confidence) visit(half.other);
      return false;
    });
  });
  std::vector<IoId> result;
  result.reserve(bfs_queue_.size() - 1);
  for (std::size_t i = 1; i < bfs_queue_.size(); ++i) result.push_back(vertices_[bfs_queue_[i]].id);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<IoId> HappensBeforeGraph::descendants(IoId id, double min_confidence) const {
  VertexIndex s = index_of(id);
  if (s == kNoVertexIndex) return {};
  std::uint32_t epoch = next_epoch();
  bfs_closure(bfs_queue_, visit_epoch_, epoch, s, [&](VertexIndex v, auto&& visit) {
    scan_adjacency(out_, v, [&](const HalfEdge& half) {
      if (half.confidence >= min_confidence) visit(half.other);
      return false;
    });
  });
  std::vector<IoId> result;
  result.reserve(bfs_queue_.size() - 1);
  for (std::size_t i = 1; i < bfs_queue_.size(); ++i) result.push_back(vertices_[bfs_queue_[i]].id);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<IoId> HappensBeforeGraph::root_causes(IoId id, double min_confidence) const {
  VertexIndex s = index_of(id);
  if (s == kNoVertexIndex) return {};
  std::uint32_t epoch = next_epoch();
  bfs_closure(bfs_queue_, visit_epoch_, epoch, s, [&](VertexIndex v, auto&& visit) {
    scan_adjacency(in_, v, [&](const HalfEdge& half) {
      if (half.confidence >= min_confidence) visit(half.other);
      return false;
    });
  });
  auto rootless = [&](VertexIndex v) {
    bool found = false;
    scan_adjacency(in_, v, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      found = true;
      return true;
    });
    return !found;
  };
  std::vector<IoId> roots;
  if (bfs_queue_.size() == 1) {
    // No ancestors: `id` is its own root iff it has no (filtered) parents.
    if (rootless(s)) roots.push_back(id);
    return roots;
  }
  for (std::size_t i = 1; i < bfs_queue_.size(); ++i) {
    VertexIndex v = bfs_queue_[i];
    if (rootless(v)) roots.push_back(vertices_[v].id);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::vector<IoId> HappensBeforeGraph::path_from(IoId root, IoId id, double min_confidence) const {
  // Canonical shortest path: BFS fixes the hop distances, then the path is
  // reconstructed backwards picking the smallest-id predecessor on a
  // shortest path at every step. The result depends only on the edge *set*
  // (never on per-vertex insertion order), so any representation holding
  // the same edges — including a sharded distributed store — reproduces
  // the exact same fault chain.
  if (root == id) return {root};
  VertexIndex rs = index_of(root);
  VertexIndex target = index_of(id);
  if (rs == kNoVertexIndex || target == kNoVertexIndex) return {};
  std::uint32_t epoch = next_epoch();
  if (bfs_dist_.size() < vertices_.size()) bfs_dist_.resize(vertices_.size());
  bfs_queue_.clear();
  bfs_queue_.push_back(rs);
  visit_epoch_[rs] = epoch;
  bfs_dist_[rs] = 0;
  bool found = false;
  for (std::size_t head = 0; head < bfs_queue_.size() && !found; ++head) {
    VertexIndex current = bfs_queue_[head];
    scan_adjacency(out_, current, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      if (visit_epoch_[half.other] == epoch) return false;
      visit_epoch_[half.other] = epoch;
      bfs_dist_[half.other] = bfs_dist_[current] + 1;
      if (half.other == target) {
        found = true;
        return true;
      }
      bfs_queue_.push_back(half.other);
      return false;
    });
  }
  if (!found) return {};
  // Every vertex at distance < dist(target) was already discovered and
  // stamped when the target turned up (BFS visits whole levels in order),
  // so the backtrack below always finds a predecessor.
  std::vector<IoId> path{vertices_[target].id};
  VertexIndex walk = target;
  while (walk != rs) {
    std::uint32_t want = bfs_dist_[walk] - 1;
    VertexIndex best = kNoVertexIndex;
    scan_adjacency(in_, walk, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      if (visit_epoch_[half.other] != epoch || bfs_dist_[half.other] != want) return false;
      if (best == kNoVertexIndex || vertices_[half.other].id < vertices_[best].id) {
        best = half.other;
      }
      return false;
    });
    walk = best;
    path.push_back(vertices_[walk].id);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const std::vector<HappensBeforeGraph::VertexIndex>& HappensBeforeGraph::id_order() const {
  if (id_order_dirty_ || id_order_cache_.size() != vertices_.size()) {
    id_order_cache_.resize(vertices_.size());
    std::iota(id_order_cache_.begin(), id_order_cache_.end(), 0u);
    if (!ids_monotone_) {
      std::sort(id_order_cache_.begin(), id_order_cache_.end(),
                [&](VertexIndex a, VertexIndex b) { return vertices_[a].id < vertices_[b].id; });
    }
    id_order_dirty_ = false;
  }
  return id_order_cache_;
}

HappensBeforeGraph HappensBeforeGraph::router_subgraph(RouterId router) const {
  HappensBeforeGraph sub;
  sub.external_store_ = external_store_;
  for (VertexIndex v : id_order()) {
    const IoRecord& rec = record_at(v);
    if (rec.router != router) continue;
    std::uint32_t slot = vertices_[v].store_index;
    if ((slot & kOwnedRecordBit) != 0 || external_store_ == nullptr) {
      sub.add_vertex(rec);
    } else {
      sub.add_vertex_ref(vertices_[v].id, slot);
    }
  }
  for (VertexIndex v : id_order()) {
    scan_adjacency(out_, v, [&](const HalfEdge& half) {
      IoId from = vertices_[v].id;
      IoId to = vertices_[half.other].id;
      if (sub.has_vertex(from) && sub.has_vertex(to)) {
        sub.add_edge(from, to, half.confidence, origin_pool_[half.origin]);
      }
      return false;
    });
  }
  return sub;
}

void HappensBeforeGraph::merge(const HappensBeforeGraph& other) {
  bool share = external_store_ != nullptr && other.external_store_ == external_store_;
  for (VertexIndex v : other.id_order()) {
    IoId id = other.vertices_[v].id;
    if (has_vertex(id)) continue;
    std::uint32_t slot = other.vertices_[v].store_index;
    if (share && (slot & kOwnedRecordBit) == 0) {
      add_vertex_ref(id, slot);
    } else {
      add_vertex(other.record_at(v));
    }
  }
  other.for_each_edge_view(
      [&](const HbgEdgeView& e) { add_edge(e.from, e.to, e.confidence, e.origin); });
}

void HappensBeforeGraph::for_each_vertex(const std::function<void(const IoRecord&)>& fn) const {
  for (VertexIndex v : id_order()) fn(record_at(v));
}

void HappensBeforeGraph::for_each_edge(const std::function<void(const HbgEdge&)>& fn) const {
  for_each_edge_view([&](const HbgEdgeView& e) {
    fn(HbgEdge{e.from, e.to, e.confidence, std::string(e.origin)});
  });
}

std::vector<IoId> HappensBeforeGraph::all_leaves(double min_confidence) const {
  std::vector<IoId> leaves;
  for (VertexIndex v : id_order()) {
    bool found = false;
    scan_adjacency(in_, v, [&](const HalfEdge& half) {
      if (half.confidence < min_confidence) return false;
      found = true;
      return true;
    });
    if (!found) leaves.push_back(vertices_[v].id);
  }
  return leaves;
}

}  // namespace hbguard
