// HBG renderers: GraphViz dot output and the per-router "swim lane" ASCII
// format of the paper's Fig. 5 (router columns, events top-to-bottom with
// inter-event latencies).
#pragma once

#include <string>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/net/topology.hpp"

namespace hbguard {

/// GraphViz dot text for the whole HBG (Fig. 4 style).
std::string to_dot(const HappensBeforeGraph& graph, double min_confidence = 0.0);

/// Fig. 5 style: one column per router, events in time order annotated with
/// the latency since the previous event on that router; cross-router edges
/// listed below. `topology` provides router names; pass nullptr to use
/// "R<id>".
std::string to_timeline(const HappensBeforeGraph& graph, const Topology* topology = nullptr,
                        double min_confidence = 0.0);

/// A compact textual fault chain: the path from a root cause to a violating
/// I/O, one line per hop with latency annotations.
std::string render_chain(const HappensBeforeGraph& graph, const std::vector<IoId>& path);

}  // namespace hbguard
