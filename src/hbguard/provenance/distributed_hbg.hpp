// Distributed HBG storage, construction and provenance queries (§5).
//
// "Each router can store its own happens-before subgraph containing that
// router's control plane I/Os. Partial paths through the HBG can be passed
// to neighboring routers that can expand the paths based on their
// happens-before subgraph."
//
// DistributedHbgStore shards the happens-before graph by router (or by a
// fixed shard count, several routers per shard). Construction itself is
// sharded: every shard runs the same-router matching rules over only its
// own tap stream — one local-only RuleMatchEngine per shard, fanned out
// over a ThreadPool — and appends into its own CSR-backed
// HappensBeforeGraph. Same-router rules read nothing but the record's own
// router log, so per-shard matching emits exactly the edges a global
// engine would.
//
// Cross-router HBRs (send→recv) are the only edges whose endpoints can
// live on different shards. They are matched by the *receiving* shard,
// which replays the engine's FIFO channel semantics over its local channel
// events merged with everything other shards sent it. The exchange is an
// asynchronous pipeline:
//
//   append   each shard appends its own records and, for every send whose
//            receiver lives elsewhere, queues a ShardMessage in a
//            per-receiver outbox; full outboxes are encoded into binary
//            shard_wire frames (varint + delta + interned channel keys)
//            and handed off to the receiver's lock-free inbox. Receivers
//            drain and decode opportunistically. No shard ever waits for
//            another shard's matching pass.
//   quiesce  the explicit barrier before queries: remaining outboxes
//            flush, inboxes drain, and every shard sorts its buffered
//            events by capture sequence and runs the deferred cross-match
//            (ShardChannelMatcher). Matched pairs that stay within one
//            shard become ordinary graph edges; pairs that span shards are
//            stored as remote-parent entries (cross_in) on the receiver
//            and remote-child entries (cross_out) on the sender.
//
// With Options::transport = Transport::kLoopback the matching pass runs
// behind a real process boundary: each shard spawns a matcher process and
// every channel event reaches it only as encoded frames over an AF_UNIX
// socketpair (see shard_exchange.hpp) — the §5 "passing messages between
// routers" deployment, differentially proven byte-identical to the
// single-graph oracle by tests/test_distributed_hbg.cpp.
//
// The exchange is counted exactly: ConstructionStats::wire_bytes is the
// actual encoded size of the cross-shard frames (not an estimate), with
// encode/decode time and frame counts alongside. Provenance queries
// (root_causes, ancestors, path_from) run shard-local, pay one message per
// cross-shard edge traversal, and return byte-identical answers to the
// single global graph.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/hbr/rule_matcher.hpp"
#include "hbguard/provenance/shard_exchange.hpp"
#include "hbguard/provenance/shard_wire.hpp"
#include "hbguard/util/handoff_queue.hpp"

namespace hbguard {

class ThreadPool;

struct DistributedQueryStats {
  std::size_t messages = 0;           // partial paths shipped across shards
  std::size_t routers_contacted = 0;  // distinct routers involved
  std::size_t edges_walked = 0;       // total HBG edges traversed

  DistributedQueryStats& operator+=(const DistributedQueryStats& other) {
    messages += other.messages;
    routers_contacted = std::max(routers_contacted, other.routers_contacted);
    edges_walked += other.edges_walked;
    return *this;
  }
};

class DistributedHbgStore {
 public:
  struct Options {
    /// Number of shards; 0 = one shard per router (the paper's §5
    /// deployment). With a fixed count routers map round-robin
    /// (router % num_shards).
    std::size_t num_shards = 0;

    /// How channel events reach a shard's matching pass.
    enum class Transport : std::uint8_t {
      /// Encoded frames hand off through in-memory lock-free inboxes; the
      /// deferred cross-match runs on the construction ThreadPool.
      kInProcess,
      /// Each shard spawns a matcher process behind an AF_UNIX socketpair;
      /// all events travel as wire frames. Same answers, real process
      /// boundary.
      kLoopback,
    };
    Transport transport = Transport::kInProcess;

    /// ShardMessages per encoded exchange frame: outboxes flush when they
    /// reach this size (and at the quiescence barrier).
    std::size_t exchange_batch = 64;

    MatcherOptions matcher;
  };
  using Transport = Options::Transport;

  /// Communication cost paid while building the sharded graph. Counters
  /// other than records_ingested are folded in at the quiescence barrier.
  struct ConstructionStats {
    std::size_t records_ingested = 0;
    std::size_t messages = 0;     // ShardMessages exchanged (cross-shard sends)
    std::size_t frames = 0;       // encoded cross-shard frames carrying them
    std::size_t wire_bytes = 0;   // actual encoded bytes of those frames
    std::size_t cross_edges = 0;  // matched send→recv pairs spanning shards
    /// kLoopback only: bytes of receiver-local events shipped to the
    /// spawned matchers. Harness traffic, not §5 wire cost — kept separate.
    std::size_t loopback_local_bytes = 0;
    std::uint64_t encode_ns = 0;  // time spent encoding exchange frames
    std::uint64_t decode_ns = 0;  // time spent decoding them
  };

  /// Resident-storage accounting for one router's slice of the graph.
  struct RouterStorage {
    std::size_t ios = 0;             // vertices owned by the router
    std::size_t local_edges = 0;     // edges stored at the router (by head)
    std::size_t cross_in_edges = 0;  // remote-parent entries
    std::size_t inbox_messages = 0;  // construction messages retained
    std::size_t storage_bytes = 0;   // resident bytes (encoded inbox share)
  };

  /// Streaming construction: attach the capture store, then append record
  /// batches as they arrive (the Guard feeds its scan deltas).
  DistributedHbgStore();
  explicit DistributedHbgStore(Options options);

  /// Adoption: shard an already-built global HBG (any inference, including
  /// ground truth). No engines run; the edge partition is taken as-is.
  explicit DistributedHbgStore(const HappensBeforeGraph& global);
  DistributedHbgStore(const HappensBeforeGraph& global, Options options);

  ~DistributedHbgStore();
  DistributedHbgStore(DistributedHbgStore&&) = default;
  DistributedHbgStore& operator=(DistributedHbgStore&&) = default;

  /// Share the capture record store so shard vertices hold indices instead
  /// of copies. Call before the first append.
  void attach_store(const std::vector<IoRecord>* store);

  /// Ingest a capture-order batch. Per-shard rule matching fans out over
  /// `pool` (nullptr = serial) and cross-shard sends enter the exchange
  /// pipeline; the cross-match itself is deferred until quiesce(). Results
  /// are identical at any thread count and any batch chunking.
  void append(std::span<const IoRecord> records, ThreadPool* pool = nullptr);

  /// The explicit quiescence barrier: flush every outbox, drain every
  /// inbox, run the deferred cross-match, and deliver cross-shard edges.
  /// Queries call this implicitly (serially) if it was skipped; callers
  /// holding a pool should invoke it themselves so the barrier parallelizes
  /// across shards. Idempotent.
  void quiesce(ThreadPool* pool = nullptr);

  /// True when every exchanged event has been matched (no pending frames,
  /// events or partial outboxes).
  bool quiescent() const { return quiescent_; }

  // -- Provenance queries (byte-identical to the global graph) ------------
  //
  // Safe to call concurrently only on a quiescent store: the first query
  // after an append runs the (serial) quiescence barrier.

  /// Backward traversal from `fault` to its provenance leaves — the same
  /// answer HappensBeforeGraph::root_causes gives, computed by distributed
  /// expansion (one message per cross-shard edge).
  std::vector<IoId> root_causes(IoId fault, double min_confidence = 0.0,
                                DistributedQueryStats* stats = nullptr) const;

  /// Ancestor closure of `fault` (excludes the fault itself), ascending —
  /// identical to HappensBeforeGraph::ancestors.
  std::vector<IoId> ancestors(IoId fault, double min_confidence = 0.0,
                              DistributedQueryStats* stats = nullptr) const;

  /// Canonical shortest cause→fault chain — identical to
  /// HappensBeforeGraph::path_from (which is insertion-order independent
  /// for exactly this reason).
  std::vector<IoId> path_from(IoId root, IoId fault, double min_confidence = 0.0,
                              DistributedQueryStats* stats = nullptr) const;

  /// Resolve a record through its owning shard (nullptr when unknown).
  const IoRecord* record(IoId id) const;

  // -- Introspection / accounting -----------------------------------------

  /// The subgraph stored by the shard holding `router`'s I/Os. With
  /// per-router sharding (num_shards = 0) this is exactly the router's own
  /// slice.
  const HappensBeforeGraph* subgraph(RouterId router) const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Matched send→recv edges whose endpoints live on different shards.
  std::size_t cross_edge_count() const { return cross_edge_total_; }
  /// Valid once quiescent (exchange counters fold in at the barrier).
  const ConstructionStats& construction_stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// The message index one shard retained: every cross-shard send it
  /// decoded, in frame-arrival order (unspecified across concurrent
  /// senders; contents are deterministic).
  const std::vector<ShardMessage>& inbox(std::size_t shard) const {
    return shards_[shard]->inbox;
  }
  /// Actual encoded bytes of the frames `shard` received.
  std::size_t inbox_wire_bytes(std::size_t shard) const {
    return shards_[shard]->inbox_wire_bytes;
  }

  /// Per-router resident-byte accounting over every shard (§5 "each router
  /// can store its own happens-before subgraph"). Inbox bytes are the real
  /// encoded frame bytes, apportioned evenly over a frame's messages.
  std::map<RouterId, RouterStorage> per_router_storage() const;

 private:
  /// One per-receiver outbox of not-yet-encoded cross-shard sends.
  struct Outbox {
    std::vector<ShardMessage> pending;
  };

  struct Shard {
    IncrementalHbgBuilder builder;
    ShardChannelMatcher matcher;  // in-process deferred cross-match state

    // Exchange state. `outboxes[r]` buffers sends for shard r; full ones
    // encode into frames pushed onto the receiver's lock-free inbox.
    std::vector<Outbox> outboxes;
    HandoffQueue<std::vector<std::uint8_t>> inbox_frames;
    std::vector<ShardMessage> local_events;   // own events awaiting the match
    std::vector<ShardMessage> remote_events;  // decoded inbox events (in-process)

    // Retained message index + exact accounting. Router byte shares are the
    // received frames' real sizes apportioned over their messages.
    std::vector<ShardMessage> inbox;
    std::size_t inbox_wire_bytes = 0;
    std::map<RouterId, std::size_t> inbox_router_bytes;
    std::size_t sent_messages = 0;
    std::size_t sent_frames = 0;
    std::size_t sent_wire_bytes = 0;
    std::size_t local_wire_bytes = 0;  // kLoopback: encoded local events
    std::uint64_t encode_ns = 0;
    std::uint64_t decode_ns = 0;

    std::map<IoId, std::vector<HbgEdge>> cross_in;   // remote parents by local recv
    std::map<IoId, std::vector<HbgEdge>> cross_out;  // remote children by local send
    // Per-append scratch (serial routing phase fills, parallel phase
    // drains):
    std::vector<std::uint32_t> batch;  // indices into the append span
    std::vector<std::pair<std::uint32_t, HbgEdge>> emitted_cross;  // (send shard, edge)

    LoopbackMatcherProcess loopback;  // kLoopback matcher process

    Shard(const MatcherOptions& matcher_options, SimTime slack)
        : builder(matcher_options), matcher(slack) {
      builder.set_channel_matching(false);
    }
  };

  std::uint32_t shard_of(RouterId router) const { return router_shard_[router]; }
  std::uint32_t assign_shard(RouterId router);
  Shard& new_shard();
  RouterId owner_of(IoId id) const {
    return id < owner_.size() ? owner_[id] : kInvalidRouter;
  }
  void owner_set(IoId id, RouterId router);

  void ingest_shard_batch(std::uint32_t shard_index, std::span<const IoRecord> records,
                          std::uint64_t seq_base);
  void queue_local_event(std::uint32_t shard_index, ShardMessage message);
  void flush_outbox(std::uint32_t shard_index, std::uint32_t receiver);
  void drain_shard_inbox(Shard& shard);
  void match_shard(std::uint32_t shard_index);
  void apply_matches(std::uint32_t shard_index, std::span<const ShardMatch> matches);
  void deliver_cross_edges();  // serial tail of quiesce
  void fold_exchange_stats();
  /// Queries on a non-quiescent store run the barrier serially first.
  void ensure_quiescent() const;

  Options options_;
  const std::vector<IoRecord>* store_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Dense maps: RouterId → shard (kNoShard = unassigned), IoId → owner.
  std::vector<std::uint32_t> router_shard_;
  std::vector<RouterId> owner_;
  std::size_t cross_edge_total_ = 0;
  /// False on the adoption path: no engines run, so no matcher children
  /// spawn and no exchange state is touched.
  bool streaming_ = true;
  bool quiescent_ = true;
  ConstructionStats stats_;

  static constexpr std::uint32_t kNoShard = 0xFFFFFFFFu;
};

}  // namespace hbguard
