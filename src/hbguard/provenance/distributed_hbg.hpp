// Distributed HBG storage, construction and provenance queries (§5).
//
// "Each router can store its own happens-before subgraph containing that
// router's control plane I/Os. Partial paths through the HBG can be passed
// to neighboring routers that can expand the paths based on their
// happens-before subgraph."
//
// DistributedHbgStore shards the happens-before graph by router (or by a
// fixed shard count, several routers per shard). Construction itself is
// sharded: every shard runs the same-router matching rules over only its
// own tap stream — one local-only RuleMatchEngine per shard, fanned out
// over a ThreadPool — and appends into its own CSR-backed
// HappensBeforeGraph. Same-router rules read nothing but the record's own
// router log, so per-shard matching emits exactly the edges a global
// engine would.
//
// Cross-router HBRs (send→recv) are the only edges whose endpoints can
// live on different shards. They are stitched by the *receiving* shard:
// every send whose receiver lives on another shard is exchanged as an
// explicit ShardMessage into the receiver's inbox, and the receiver
// replays the engine's FIFO channel semantics over its local channel
// events merged with the inbox. Matched pairs that stay within one shard
// become ordinary graph edges; pairs that span shards are stored as
// remote-parent entries (cross_in) on the receiver and remote-child
// entries (cross_out) on the sender — the message index provenance
// queries resolve remote parents through.
//
// The exchange is counted exactly — messages and bytes on the wire during
// construction, per-router resident bytes afterwards — reproducing the
// feasibility accounting §5 calls for. Provenance queries (root_causes,
// ancestors, path_from) run shard-local, pay one message per cross-shard
// edge traversal, and return byte-identical answers to the single global
// graph (see tests/test_distributed_hbg.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "hbguard/hbg/graph.hpp"
#include "hbguard/hbg/incremental.hpp"
#include "hbguard/hbr/rule_matcher.hpp"

namespace hbguard {

class ThreadPool;

struct DistributedQueryStats {
  std::size_t messages = 0;           // partial paths shipped across shards
  std::size_t routers_contacted = 0;  // distinct routers involved
  std::size_t edges_walked = 0;       // total HBG edges traversed

  DistributedQueryStats& operator+=(const DistributedQueryStats& other) {
    messages += other.messages;
    routers_contacted = std::max(routers_contacted, other.routers_contacted);
    edges_walked += other.edges_walked;
    return *this;
  }
};

/// One send I/O exchanged between shards during construction: everything
/// the receiving shard needs to run its FIFO channel matching as if it had
/// seen the send locally.
struct ShardMessage {
  IoId send_io = kNoIo;
  RouterId from_router = kInvalidRouter;
  RouterId to_router = kInvalidRouter;
  SimTime logged_time = 0;
  std::string channel;  // FIFO channel key (RuleMatchEngine::channel_key)

  /// Serialized size on the wire: the fixed fields plus the channel key.
  std::size_t wire_bytes() const {
    return sizeof(IoId) + 2 * sizeof(RouterId) + sizeof(SimTime) + channel.size();
  }
};

class DistributedHbgStore {
 public:
  struct Options {
    /// Number of shards; 0 = one shard per router (the paper's §5
    /// deployment). With a fixed count routers map round-robin
    /// (router % num_shards).
    std::size_t num_shards = 0;
    MatcherOptions matcher;
  };

  /// Communication cost paid while building the sharded graph.
  struct ConstructionStats {
    std::size_t records_ingested = 0;
    std::size_t messages = 0;     // ShardMessages exchanged (cross-shard sends)
    std::size_t wire_bytes = 0;   // sum of their serialized sizes
    std::size_t cross_edges = 0;  // matched send→recv pairs spanning shards
  };

  /// Resident-storage estimate for one router's slice of the graph.
  struct RouterStorage {
    std::size_t ios = 0;             // vertices owned by the router
    std::size_t local_edges = 0;     // edges stored at the router (by head)
    std::size_t cross_in_edges = 0;  // remote-parent entries
    std::size_t inbox_messages = 0;  // construction messages retained
    std::size_t storage_bytes = 0;   // estimated resident bytes
  };

  /// Streaming construction: attach the capture store, then append record
  /// batches as they arrive (the Guard feeds its scan deltas).
  DistributedHbgStore();
  explicit DistributedHbgStore(Options options);

  /// Adoption: shard an already-built global HBG (any inference, including
  /// ground truth). No engines run; the edge partition is taken as-is.
  explicit DistributedHbgStore(const HappensBeforeGraph& global);
  DistributedHbgStore(const HappensBeforeGraph& global, Options options);

  /// Share the capture record store so shard vertices hold indices instead
  /// of copies. Call before the first append.
  void attach_store(const std::vector<IoRecord>* store);

  /// Ingest a capture-order batch. Per-shard rule matching and channel
  /// stitching fan out over `pool` (nullptr = serial; results are
  /// identical at any thread count).
  void append(std::span<const IoRecord> records, ThreadPool* pool = nullptr);

  // -- Provenance queries (byte-identical to the global graph) ------------

  /// Backward traversal from `fault` to its provenance leaves — the same
  /// answer HappensBeforeGraph::root_causes gives, computed by distributed
  /// expansion (one message per cross-shard edge).
  std::vector<IoId> root_causes(IoId fault, double min_confidence = 0.0,
                                DistributedQueryStats* stats = nullptr) const;

  /// Ancestor closure of `fault` (excludes the fault itself), ascending —
  /// identical to HappensBeforeGraph::ancestors.
  std::vector<IoId> ancestors(IoId fault, double min_confidence = 0.0,
                              DistributedQueryStats* stats = nullptr) const;

  /// Canonical shortest cause→fault chain — identical to
  /// HappensBeforeGraph::path_from (which is insertion-order independent
  /// for exactly this reason).
  std::vector<IoId> path_from(IoId root, IoId fault, double min_confidence = 0.0,
                              DistributedQueryStats* stats = nullptr) const;

  /// Resolve a record through its owning shard (nullptr when unknown).
  const IoRecord* record(IoId id) const;

  // -- Introspection / accounting -----------------------------------------

  /// The subgraph stored by the shard holding `router`'s I/Os. With
  /// per-router sharding (num_shards = 0) this is exactly the router's own
  /// slice.
  const HappensBeforeGraph* subgraph(RouterId router) const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Matched send→recv edges whose endpoints live on different shards.
  std::size_t cross_edge_count() const { return cross_edge_total_; }
  const ConstructionStats& construction_stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// The message index one shard retained (its inbox, in arrival order).
  const std::vector<ShardMessage>& inbox(std::size_t shard) const {
    return shards_[shard]->inbox;
  }

  /// Per-router resident-byte accounting over every shard (§5 "each router
  /// can store its own happens-before subgraph").
  std::map<RouterId, RouterStorage> per_router_storage() const;

 private:
  /// FIFO channel state, receiver-owned; replicates
  /// RuleMatchEngine::match_channels exactly (including the
  /// skip-too-late-receive semantics) over (id, logged_time) pairs.
  struct PendingIo {
    IoId id = kNoIo;
    SimTime logged_time = 0;
  };
  struct ChannelState {
    std::deque<PendingIo> unmatched_sends;
    std::deque<PendingIo> unmatched_recvs;
  };
  /// One send/recv routed to its receiving shard for this batch.
  struct ChannelEvent {
    std::string key;
    IoId id = kNoIo;
    SimTime logged_time = 0;
    RouterId sender_router = kInvalidRouter;
    bool is_send = false;
  };

  struct Shard {
    IncrementalHbgBuilder builder;
    std::map<std::string, ChannelState> channels;
    std::vector<ShardMessage> inbox;  // retained message index
    std::size_t inbox_bytes = 0;
    std::map<IoId, std::vector<HbgEdge>> cross_in;   // remote parents by local recv
    std::map<IoId, std::vector<HbgEdge>> cross_out;  // remote children by local send
    // Per-append scratch (serial routing phase fills, parallel phases
    // drain):
    std::vector<std::uint32_t> batch;  // indices into the append span
    std::vector<ChannelEvent> events;
    std::vector<InferredHbr> edge_scratch;
    std::vector<std::pair<std::uint32_t, HbgEdge>> emitted_cross;  // (send shard, edge)

    explicit Shard(const MatcherOptions& matcher) : builder(matcher) {
      builder.set_channel_matching(false);
    }
  };

  std::uint32_t shard_of(RouterId router) const;
  std::uint32_t assign_shard(RouterId router);
  Shard& new_shard();
  void ingest_shard_batch(Shard& shard, std::span<const IoRecord> records);
  void stitch_shard_channels(std::uint32_t shard_index);

  Options options_;
  const std::vector<IoRecord>* store_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<RouterId, std::uint32_t> router_shard_;
  std::map<IoId, RouterId> owner_;
  std::size_t cross_edge_total_ = 0;
  ConstructionStats stats_;
};

}  // namespace hbguard
