// Distributed HBG storage and provenance queries (§5).
//
// "Each router can store its own happens-before subgraph containing that
// router's control plane I/Os. Partial paths through the HBG can be passed
// to neighboring routers that can expand the paths based on their
// happens-before subgraph."
//
// DistributedHbgStore splits a (conceptually global) HBG into per-router
// subgraphs plus an index of cross-router edges, then answers provenance
// queries by walking: local expansion is free, every cross-router edge
// traversal ships a partial path to the owning router (one message). The
// results are identical to the centralized traversal; the stats expose the
// communication cost the distributed deployment pays.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "hbguard/hbg/graph.hpp"

namespace hbguard {

struct DistributedQueryStats {
  std::size_t messages = 0;           // partial paths shipped across routers
  std::size_t routers_contacted = 0;  // distinct routers involved
  std::size_t edges_walked = 0;       // total HBG edges traversed
};

class DistributedHbgStore {
 public:
  /// Shard a global HBG into per-router subgraphs + cross-edge index.
  explicit DistributedHbgStore(const HappensBeforeGraph& global);

  /// Backward traversal from `fault` to its provenance leaves — the same
  /// answer HappensBeforeGraph::root_causes gives, computed by distributed
  /// expansion.
  std::vector<IoId> root_causes(IoId fault, double min_confidence = 0.0,
                                DistributedQueryStats* stats = nullptr) const;

  /// The subgraph a given router stores (its own I/Os and edges among them).
  const HappensBeforeGraph* subgraph(RouterId router) const;

  std::size_t shard_count() const { return subgraphs_.size(); }
  std::size_t cross_edge_count() const { return cross_edge_total_; }

 private:
  std::map<RouterId, HappensBeforeGraph> subgraphs_;
  /// Cross-router edges indexed by destination vertex.
  std::map<IoId, std::vector<HbgEdge>> cross_in_;
  std::map<IoId, RouterId> owner_;
  std::size_t cross_edge_total_ = 0;
};

}  // namespace hbguard
