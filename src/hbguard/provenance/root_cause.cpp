#include "hbguard/provenance/root_cause.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "hbguard/hbg/render.hpp"

namespace hbguard {

std::string_view to_string(CauseKind kind) {
  switch (kind) {
    case CauseKind::kConfigChange: return "config-change";
    case CauseKind::kHardwareStatus: return "hardware";
    case CauseKind::kExternalAdvert: return "external-advert";
    case CauseKind::kInitialConfig: return "initial-config";
    case CauseKind::kOther: return "other";
  }
  return "?";
}

CauseKind classify_cause(const IoRecord& record) {
  switch (record.kind) {
    case IoKind::kConfigChange:
      return record.detail == "initial configuration" ? CauseKind::kInitialConfig
                                                      : CauseKind::kConfigChange;
    case IoKind::kHardwareStatus:
      return CauseKind::kHardwareStatus;
    case IoKind::kRecvAdvert:
      return record.peer == kExternalRouter ? CauseKind::kExternalAdvert : CauseKind::kOther;
    default:
      return CauseKind::kOther;
  }
}

namespace {
/// Rank: actionable first (config change), then hardware, external,
/// initial config, other; ties broken by recency (newest first).
int rank_of(CauseKind kind) {
  switch (kind) {
    case CauseKind::kConfigChange: return 0;
    case CauseKind::kHardwareStatus: return 1;
    case CauseKind::kExternalAdvert: return 2;
    case CauseKind::kInitialConfig: return 3;
    case CauseKind::kOther: return 4;
  }
  return 5;
}
}  // namespace

const RootCause* ProvenanceResult::revertible() const {
  for (const RootCause& cause : causes) {
    if (cause.kind == CauseKind::kConfigChange) return &cause;
  }
  return nullptr;
}

ProvenanceResult RootCauseAnalyzer::analyze(const HappensBeforeGraph& hbg,
                                            IoId violating_io) const {
  return analyze_all(hbg, {violating_io});
}

ProvenanceResult RootCauseAnalyzer::analyze_all(const HappensBeforeGraph& hbg,
                                                const std::vector<IoId>& violating) const {
  ProvenanceResult result;
  result.faults = violating;
  std::set<IoId> seen;
  for (IoId fault : violating) {
    if (hbg.record(fault) == nullptr) continue;
    for (IoId root : hbg.root_causes(fault, options_.min_confidence)) {
      if (!seen.insert(root).second) continue;
      const IoRecord* record = hbg.record(root);
      if (record == nullptr) continue;
      RootCause cause;
      cause.io = root;
      cause.record = *record;
      cause.kind = classify_cause(*record);
      cause.chain = hbg.path_from(root, fault, options_.min_confidence);
      result.causes.push_back(std::move(cause));
    }
  }
  std::sort(result.causes.begin(), result.causes.end(),
            [](const RootCause& a, const RootCause& b) {
              int ra = rank_of(a.kind), rb = rank_of(b.kind);
              if (ra != rb) return ra < rb;
              return a.record.true_time > b.record.true_time;  // newest first
            });
  return result;
}

ProvenanceResult RootCauseAnalyzer::analyze_all(const DistributedHbgStore& store,
                                                const std::vector<IoId>& violating,
                                                DistributedQueryStats* stats) const {
  ProvenanceResult result;
  result.faults = violating;
  std::set<IoId> seen;
  DistributedQueryStats query_stats;
  for (IoId fault : violating) {
    if (store.record(fault) == nullptr) continue;
    std::vector<IoId> roots = store.root_causes(fault, options_.min_confidence,
                                                stats != nullptr ? &query_stats : nullptr);
    if (stats != nullptr) *stats += query_stats;
    for (IoId root : roots) {
      if (!seen.insert(root).second) continue;
      const IoRecord* record = store.record(root);
      if (record == nullptr) continue;
      RootCause cause;
      cause.io = root;
      cause.record = *record;
      cause.kind = classify_cause(*record);
      cause.chain = store.path_from(root, fault, options_.min_confidence,
                                    stats != nullptr ? &query_stats : nullptr);
      if (stats != nullptr) *stats += query_stats;
      result.causes.push_back(std::move(cause));
    }
  }
  std::sort(result.causes.begin(), result.causes.end(),
            [](const RootCause& a, const RootCause& b) {
              int ra = rank_of(a.kind), rb = rank_of(b.kind);
              if (ra != rb) return ra < rb;
              return a.record.true_time > b.record.true_time;  // newest first
            });
  return result;
}

std::string RootCauseAnalyzer::render(const HappensBeforeGraph& hbg,
                                      const ProvenanceResult& result) {
  std::ostringstream out;
  out << result.causes.size() << " root cause(s) for " << result.faults.size()
      << " violating I/O(s):\n";
  for (const RootCause& cause : result.causes) {
    out << "- [" << to_string(cause.kind) << "] " << cause.record.label() << "\n";
    if (cause.chain.size() > 1) out << render_chain(hbg, cause.chain);
  }
  return out.str();
}

}  // namespace hbguard
