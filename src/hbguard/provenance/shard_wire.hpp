// Binary wire codec for the distributed-HBG shard exchange (§5).
//
// Cross-router happens-before facts travel between shards as batches of
// ShardMessages. This codec turns a batch into one self-delimiting frame:
//
//   +----------------+--------------------------------------------------+
//   | u32 len (LE)   | payload, `len` bytes                             |
//   +----------------+--------------------------------------------------+
//   payload := u8 type, body
//
//   type 1  kCrossBatch   cross-shard sends — the §5 wire traffic
//   type 2  kLocalBatch   loopback transport: receiver-local events
//   type 3  kFlush        barrier: stitch buffered events, reply kMatches
//   type 4  kMatches      matched (send, recv) pairs, matcher → store
//   type 5  kShutdown     loopback matcher process: exit cleanly
//
//   batch body (types 1, 2):
//     varint key_count                 interned channel-key table,
//     key_count x { varint len, bytes }  first-appearance order
//     varint event_count
//     event_count x {
//       u8 flags                       type 2 only (bit0 = is_send);
//                                      type 1 events are always sends
//       varint key_index
//       zigzag Δseq  zigzag Δio  zigzag Δfrom  zigzag Δto  zigzag Δtime
//     }                                deltas vs the previous event in the
//                                      frame (first event vs zero)
//   match body (type 4):
//     varint match_count
//     match_count x { zigzag Δsend_io, zigzag Δrecv_io }
//
// Varints are LEB128 (7 bits per byte, high bit = continue, max 10 bytes);
// signed fields are zigzag-mapped first. Channel keys repeat heavily inside
// a batch (every message on one BGP session shares its key) and ids/times
// are near-monotone, so delta + interning shrinks a message to a few bytes
// — ConstructionStats::wire_bytes reports the *actual* encoded frame
// sizes, not an estimate.
//
// decode_shard_frame rejects anything malformed — truncated frames, key
// indexes past the table, counts that overrun the payload, trailing bytes —
// by returning false and leaving no partial state in `out` beyond what it
// already parsed into cleared vectors. See tests/test_shard_wire.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hbguard/capture/io_record.hpp"
#include "hbguard/util/wire.hpp"

namespace hbguard {

/// One FIFO channel event exchanged between shards during distributed HBG
/// construction: everything the receiving shard's matcher needs to replay
/// the engine's channel semantics as if it had seen the record locally.
struct ShardMessage {
  std::uint64_t seq = 0;  // global capture-order sequence of the record
  IoId io = kNoIo;        // the send (or, loopback-local, recv) record
  RouterId from_router = kInvalidRouter;  // channel-upstream (sending) router
  RouterId to_router = kInvalidRouter;    // channel-downstream (receiving) router
  SimTime logged_time = 0;
  bool is_send = true;
  std::string channel;  // FIFO channel key (RuleMatchEngine::channel_key)

  bool operator==(const ShardMessage&) const = default;
};

/// One matched send→recv pair reported back by a shard matcher.
struct ShardMatch {
  IoId send_io = kNoIo;
  IoId recv_io = kNoIo;

  bool operator==(const ShardMatch&) const = default;
};

enum class ShardFrameType : std::uint8_t {
  kCrossBatch = 1,
  kLocalBatch = 2,
  kFlush = 3,
  kMatches = 4,
  kShutdown = 5,
};

/// Append one complete frame (length prefix + payload) for `batch` to
/// `out`. `type` must be kCrossBatch or kLocalBatch. kCrossBatch requires
/// every event to be a send (is_send is implied on the wire and asserted).
void encode_shard_frame(ShardFrameType type, std::span<const ShardMessage> batch,
                        std::vector<std::uint8_t>& out);

/// Append one kMatches frame to `out`.
void encode_match_frame(std::span<const ShardMatch> matches, std::vector<std::uint8_t>& out);

/// Append one bodyless control frame (kFlush / kShutdown) to `out`.
void encode_control_frame(ShardFrameType type, std::vector<std::uint8_t>& out);

struct DecodedShardFrame {
  ShardFrameType type = ShardFrameType::kFlush;
  std::vector<ShardMessage> events;   // kCrossBatch / kLocalBatch
  std::vector<ShardMatch> matches;    // kMatches
};

/// Decode exactly one complete frame. `frame` must span the whole frame
/// (length prefix included) and nothing more. Returns false on any
/// truncation or malformed content.
bool decode_shard_frame(std::span<const std::uint8_t> frame, DecodedShardFrame& out);

/// Total size of the frame starting at `buffer` (prefix + payload), or 0
/// while fewer than 4 bytes are available. Streaming readers call this to
/// find the cut point before handing the slice to decode_shard_frame.
std::size_t shard_frame_size(std::span<const std::uint8_t> buffer);

/// Frames larger than this are rejected outright (a corrupt or hostile
/// length prefix must not trigger a giant allocation).
inline constexpr std::size_t kMaxShardFramePayload = 1u << 24;

// The varint/zigzag primitives the codec builds on live in util/wire.hpp
// (shared with the trace archive codec in capture/trace_archive.*) and
// remain reachable as hbguard::wire for the property tests.

}  // namespace hbguard
