#include "hbguard/provenance/shard_wire.hpp"

#include <cassert>
#include <unordered_map>

namespace hbguard {

namespace {

using wire::get_varint;
using wire::get_zigzag;
using wire::put_varint;
using wire::put_zigzag;

/// Reserve the 4-byte length prefix; returns its offset so seal_frame can
/// patch the payload size in once the payload is written.
std::size_t open_frame(std::vector<std::uint8_t>& out) {
  std::size_t at = out.size();
  out.insert(out.end(), 4, 0);
  return at;
}

void seal_frame(std::vector<std::uint8_t>& out, std::size_t prefix_at) {
  std::size_t payload = out.size() - prefix_at - 4;
  assert(payload <= kMaxShardFramePayload);
  out[prefix_at + 0] = static_cast<std::uint8_t>(payload);
  out[prefix_at + 1] = static_cast<std::uint8_t>(payload >> 8);
  out[prefix_at + 2] = static_cast<std::uint8_t>(payload >> 16);
  out[prefix_at + 3] = static_cast<std::uint8_t>(payload >> 24);
}

/// Reference point the per-field deltas start from. All fields are kept
/// unsigned so delta arithmetic wraps instead of overflowing (times are
/// signed on the outside; zigzag keeps small magnitudes cheap either way).
struct DeltaState {
  std::uint64_t seq = 0;
  std::uint64_t io = 0;
  std::uint64_t from_router = 0;
  std::uint64_t to_router = 0;
  std::uint64_t logged_time = 0;
};

}  // namespace

void encode_shard_frame(ShardFrameType type, std::span<const ShardMessage> batch,
                        std::vector<std::uint8_t>& out) {
  assert(type == ShardFrameType::kCrossBatch || type == ShardFrameType::kLocalBatch);
  std::size_t prefix = open_frame(out);
  out.push_back(static_cast<std::uint8_t>(type));

  // Interned channel-key table, first-appearance order (deterministic: the
  // batch contents alone decide the encoding, not any map iteration order).
  std::vector<const std::string*> keys;
  std::vector<std::uint32_t> key_index(batch.size());
  {
    std::unordered_map<std::string_view, std::uint32_t> seen;
    seen.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto [it, inserted] =
          seen.emplace(batch[i].channel, static_cast<std::uint32_t>(keys.size()));
      if (inserted) keys.push_back(&batch[i].channel);
      key_index[i] = it->second;
    }
  }
  put_varint(out, keys.size());
  for (const std::string* key : keys) {
    put_varint(out, key->size());
    out.insert(out.end(), key->begin(), key->end());
  }

  put_varint(out, batch.size());
  DeltaState prev;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ShardMessage& m = batch[i];
    assert(type != ShardFrameType::kCrossBatch || m.is_send);
    if (type == ShardFrameType::kLocalBatch) {
      out.push_back(m.is_send ? 1 : 0);
    }
    put_varint(out, key_index[i]);
    put_zigzag(out, static_cast<std::int64_t>(m.seq - prev.seq));
    put_zigzag(out, static_cast<std::int64_t>(m.io - prev.io));
    put_zigzag(out, static_cast<std::int64_t>(m.from_router - prev.from_router));
    put_zigzag(out, static_cast<std::int64_t>(m.to_router - prev.to_router));
    put_zigzag(out, static_cast<std::int64_t>(static_cast<std::uint64_t>(m.logged_time) -
                                              prev.logged_time));
    prev = {m.seq, m.io, m.from_router, m.to_router, static_cast<std::uint64_t>(m.logged_time)};
  }
  seal_frame(out, prefix);
}

void encode_match_frame(std::span<const ShardMatch> matches, std::vector<std::uint8_t>& out) {
  std::size_t prefix = open_frame(out);
  out.push_back(static_cast<std::uint8_t>(ShardFrameType::kMatches));
  put_varint(out, matches.size());
  std::uint64_t prev_send = 0;
  std::uint64_t prev_recv = 0;
  for (const ShardMatch& m : matches) {
    put_zigzag(out, static_cast<std::int64_t>(m.send_io - prev_send));
    put_zigzag(out, static_cast<std::int64_t>(m.recv_io - prev_recv));
    prev_send = m.send_io;
    prev_recv = m.recv_io;
  }
  seal_frame(out, prefix);
}

void encode_control_frame(ShardFrameType type, std::vector<std::uint8_t>& out) {
  assert(type == ShardFrameType::kFlush || type == ShardFrameType::kShutdown);
  std::size_t prefix = open_frame(out);
  out.push_back(static_cast<std::uint8_t>(type));
  seal_frame(out, prefix);
}

std::size_t shard_frame_size(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < 4) return 0;
  std::size_t payload = static_cast<std::size_t>(buffer[0]) |
                        static_cast<std::size_t>(buffer[1]) << 8 |
                        static_cast<std::size_t>(buffer[2]) << 16 |
                        static_cast<std::size_t>(buffer[3]) << 24;
  return 4 + payload;
}

bool decode_shard_frame(std::span<const std::uint8_t> frame, DecodedShardFrame& out) {
  out.events.clear();
  out.matches.clear();
  if (frame.size() < 5) return false;  // prefix + type byte
  std::size_t payload = shard_frame_size(frame);
  if (payload != frame.size()) return false;  // truncated or trailing bytes
  if (payload - 4 > kMaxShardFramePayload) return false;

  std::size_t pos = 4;
  std::uint8_t type = frame[pos++];
  switch (type) {
    case static_cast<std::uint8_t>(ShardFrameType::kFlush):
    case static_cast<std::uint8_t>(ShardFrameType::kShutdown):
      out.type = static_cast<ShardFrameType>(type);
      return pos == frame.size();

    case static_cast<std::uint8_t>(ShardFrameType::kMatches): {
      out.type = ShardFrameType::kMatches;
      std::uint64_t count = 0;
      if (!get_varint(frame, pos, count)) return false;
      // Each match costs >= 2 bytes; a count claiming more than the payload
      // could hold is corrupt, not merely truncated.
      if (count > (frame.size() - pos)) return false;
      out.matches.reserve(count);
      std::uint64_t prev_send = 0;
      std::uint64_t prev_recv = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        std::int64_t dsend = 0;
        std::int64_t drecv = 0;
        if (!get_zigzag(frame, pos, dsend) || !get_zigzag(frame, pos, drecv)) return false;
        prev_send += static_cast<std::uint64_t>(dsend);
        prev_recv += static_cast<std::uint64_t>(drecv);
        out.matches.push_back({prev_send, prev_recv});
      }
      return pos == frame.size();
    }

    case static_cast<std::uint8_t>(ShardFrameType::kCrossBatch):
    case static_cast<std::uint8_t>(ShardFrameType::kLocalBatch): {
      out.type = static_cast<ShardFrameType>(type);
      const bool local = out.type == ShardFrameType::kLocalBatch;

      std::uint64_t key_count = 0;
      if (!get_varint(frame, pos, key_count)) return false;
      if (key_count > frame.size() - pos) return false;
      std::vector<std::string> keys;
      keys.reserve(key_count);
      for (std::uint64_t i = 0; i < key_count; ++i) {
        std::uint64_t len = 0;
        if (!get_varint(frame, pos, len)) return false;
        if (len > frame.size() - pos) return false;
        keys.emplace_back(reinterpret_cast<const char*>(frame.data() + pos), len);
        pos += len;
      }

      std::uint64_t event_count = 0;
      if (!get_varint(frame, pos, event_count)) return false;
      // Each event costs >= 6 bytes (5 varints + key index).
      if (event_count > frame.size() - pos) return false;
      out.events.reserve(event_count);
      DeltaState prev;
      for (std::uint64_t i = 0; i < event_count; ++i) {
        ShardMessage m;
        if (local) {
          if (pos >= frame.size()) return false;
          std::uint8_t flags = frame[pos++];
          if ((flags & ~1u) != 0) return false;
          m.is_send = (flags & 1) != 0;
        } else {
          m.is_send = true;
        }
        std::uint64_t key_idx = 0;
        if (!get_varint(frame, pos, key_idx)) return false;
        if (key_idx >= keys.size()) return false;
        std::int64_t dseq = 0, dio = 0, dfrom = 0, dto = 0, dtime = 0;
        if (!get_zigzag(frame, pos, dseq) || !get_zigzag(frame, pos, dio) ||
            !get_zigzag(frame, pos, dfrom) || !get_zigzag(frame, pos, dto) ||
            !get_zigzag(frame, pos, dtime)) {
          return false;
        }
        prev.seq += static_cast<std::uint64_t>(dseq);
        prev.io += static_cast<std::uint64_t>(dio);
        prev.from_router += static_cast<std::uint64_t>(dfrom);
        prev.to_router += static_cast<std::uint64_t>(dto);
        prev.logged_time += static_cast<std::uint64_t>(dtime);
        m.seq = prev.seq;
        m.io = prev.io;
        m.from_router = static_cast<RouterId>(prev.from_router);
        m.to_router = static_cast<RouterId>(prev.to_router);
        m.logged_time = static_cast<SimTime>(prev.logged_time);
        m.channel = keys[key_idx];
        out.events.push_back(std::move(m));
      }
      return pos == frame.size();
    }

    default:
      return false;
  }
}

}  // namespace hbguard
