#include "hbguard/provenance/shard_exchange.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "hbguard/util/logging.hpp"

extern "C" char** environ;

namespace hbguard {

void ShardChannelMatcher::feed(const ShardMessage& event, std::vector<ShardMatch>& out) {
  ChannelState& channel = channels_[event.channel];
  if (event.is_send) {
    // Receives this (too-late) send can no longer serve are dropped —
    // RuleMatchEngine::match_channels' skip semantics.
    while (!channel.unmatched_recvs.empty() &&
           event.logged_time > channel.unmatched_recvs.front().logged_time + slack_us_) {
      channel.unmatched_recvs.pop_front();
    }
    if (!channel.unmatched_recvs.empty()) {
      PendingIo recv = channel.unmatched_recvs.front();
      channel.unmatched_recvs.pop_front();
      out.push_back({event.io, recv.id});
    } else {
      channel.unmatched_sends.push_back({event.io, event.logged_time});
    }
  } else {
    if (!channel.unmatched_sends.empty() &&
        channel.unmatched_sends.front().logged_time <= event.logged_time + slack_us_) {
      PendingIo send = channel.unmatched_sends.front();
      channel.unmatched_sends.pop_front();
      out.push_back({send.id, event.io});
    } else {
      channel.unmatched_recvs.push_back({event.io, event.logged_time});
    }
  }
}

void ShardChannelMatcher::feed_sorted(std::vector<ShardMessage>& events,
                                      std::vector<ShardMatch>& out) {
  // seq is unique per record, so plain sort is a total (deterministic)
  // order: the global capture order the single-graph engine saw.
  std::sort(events.begin(), events.end(),
            [](const ShardMessage& a, const ShardMessage& b) { return a.seq < b.seq; });
  for (const ShardMessage& event : events) feed(event, out);
}

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE instead of killing the
    // process with SIGPIPE.
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly one frame (prefix + payload) into `frame`.
bool read_frame(int fd, std::vector<std::uint8_t>& frame) {
  std::uint8_t prefix[4];
  if (!read_all(fd, prefix, sizeof prefix)) return false;
  std::size_t total = shard_frame_size(std::span<const std::uint8_t>(prefix, 4));
  if (total < 4 || total - 4 > kMaxShardFramePayload) return false;
  frame.resize(total);
  std::memcpy(frame.data(), prefix, 4);
  return read_all(fd, frame.data() + 4, total - 4);
}

/// The child: a single-threaded matcher loop. Entered from the pre-main
/// constructor hook below in a freshly exec'd process, so it must never
/// return into main; it exits via _exit.
[[noreturn]] void matcher_child_loop(int fd, SimTime slack_us) {
  ShardChannelMatcher matcher(slack_us);
  std::vector<ShardMessage> buffered;
  std::vector<std::uint8_t> frame;
  DecodedShardFrame decoded;
  for (;;) {
    if (!read_frame(fd, frame)) _exit(1);
    if (!decode_shard_frame(frame, decoded)) _exit(2);
    switch (decoded.type) {
      case ShardFrameType::kCrossBatch:
      case ShardFrameType::kLocalBatch:
        buffered.insert(buffered.end(), std::make_move_iterator(decoded.events.begin()),
                        std::make_move_iterator(decoded.events.end()));
        break;
      case ShardFrameType::kFlush: {
        std::vector<ShardMatch> matches;
        matcher.feed_sorted(buffered, matches);
        buffered.clear();
        std::vector<std::uint8_t> reply;
        encode_match_frame(matches, reply);
        if (!write_all(fd, reply.data(), reply.size())) _exit(3);
        break;
      }
      case ShardFrameType::kShutdown:
        _exit(0);
      case ShardFrameType::kMatches:
        _exit(4);  // protocol violation: only the child emits matches
    }
  }
}

/// The fd the child's socket end is dup2'd onto across exec.
constexpr int kChildSocketFd = 3;

/// Pre-main hook, linked into every binary that links hbg_provenance: a
/// process spawned by LoopbackMatcherProcess::start (re-exec of
/// /proc/self/exe with HBG_SHARD_MATCHER_FD in its env) becomes a matcher
/// child here and never reaches main. A plain fork() would be simpler but
/// deadlocks: the parent's ThreadPool is live when shards spawn, and a
/// worker holding a sanitizer/allocator-internal lock at fork time leaves
/// that lock locked forever in the single-threaded child. exec resets every
/// lock, so the child starts clean under any sanitizer.
[[gnu::constructor]] void maybe_become_matcher_child() {
  const char* fd_env = std::getenv("HBG_SHARD_MATCHER_FD");
  if (fd_env == nullptr) return;
  const char* slack_env = std::getenv("HBG_SHARD_MATCHER_SLACK_US");
  int fd = std::atoi(fd_env);
  SimTime slack_us = slack_env != nullptr ? static_cast<SimTime>(std::atoll(slack_env)) : 0;
  matcher_child_loop(fd, slack_us);  // never returns
}

}  // namespace

LoopbackMatcherProcess::~LoopbackMatcherProcess() { shutdown(); }

bool LoopbackMatcherProcess::start(SimTime cross_router_slack_us) {
  // CLOEXEC on both ends so later-spawned shard children do not inherit
  // this pair; the dup2 file action below hands the child a non-CLOEXEC
  // copy of its own end.
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    HBG_ERROR << "loopback matcher: socketpair failed: " << std::strerror(errno);
    return false;
  }

  // Re-exec this binary; maybe_become_matcher_child() turns the spawned
  // process into the matcher before main runs. The child's socket end is
  // dup2'd onto a fixed fd (dup2 also clears FD_CLOEXEC for the copy).
  char exe[4096];
  ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (exe_len <= 0) {
    HBG_ERROR << "loopback matcher: readlink(/proc/self/exe) failed: " << std::strerror(errno);
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  exe[exe_len] = '\0';

  int child_end = sv[1];
  if (child_end == kChildSocketFd) {  // dup2 onto itself would not reset CLOEXEC
    child_end = ::fcntl(sv[1], F_DUPFD_CLOEXEC, kChildSocketFd + 1);
    ::close(sv[1]);
    if (child_end < 0) {
      HBG_ERROR << "loopback matcher: fcntl(F_DUPFD) failed: " << std::strerror(errno);
      ::close(sv[0]);
      return false;
    }
  }

  // No addclose(sv[0]): it is CLOEXEC, and an explicit close action could
  // land on kChildSocketFd right after the dup2 placed the socket there.
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, child_end, kChildSocketFd);

  // The marker env vars go only into the child's envp; the parent's
  // environment is untouched.
  std::string fd_var = "HBG_SHARD_MATCHER_FD=" + std::to_string(kChildSocketFd);
  std::string slack_var =
      "HBG_SHARD_MATCHER_SLACK_US=" + std::to_string(cross_router_slack_us);
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) envp.push_back(*e);
  envp.push_back(fd_var.data());
  envp.push_back(slack_var.data());
  envp.push_back(nullptr);
  char* argv[] = {exe, nullptr};

  pid_t pid = -1;
  int rc = ::posix_spawn(&pid, exe, &actions, nullptr, argv, envp.data());
  posix_spawn_file_actions_destroy(&actions);
  ::close(child_end);
  if (rc != 0) {
    HBG_ERROR << "loopback matcher: posix_spawn failed: " << std::strerror(rc);
    ::close(sv[0]);
    return false;
  }
  fd_ = sv[0];
  pid_ = pid;
  return true;
}

bool LoopbackMatcherProcess::write_frames(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    HBG_ERROR << "loopback matcher " << pid_ << ": write failed: " << std::strerror(errno);
    return false;
  }
  return true;
}

std::vector<ShardMatch> LoopbackMatcherProcess::flush() {
  if (fd_ < 0) return {};
  std::vector<std::uint8_t> control;
  encode_control_frame(ShardFrameType::kFlush, control);
  if (!write_all(fd_, control.data(), control.size())) {
    HBG_ERROR << "loopback matcher " << pid_ << ": flush write failed";
    return {};
  }
  std::vector<std::uint8_t> frame;
  DecodedShardFrame decoded;
  if (!read_frame(fd_, frame) || !decode_shard_frame(frame, decoded) ||
      decoded.type != ShardFrameType::kMatches) {
    HBG_ERROR << "loopback matcher " << pid_ << ": bad kMatches reply";
    return {};
  }
  return std::move(decoded.matches);
}

void LoopbackMatcherProcess::shutdown() {
  if (fd_ >= 0) {
    std::vector<std::uint8_t> control;
    encode_control_frame(ShardFrameType::kShutdown, control);
    write_all(fd_, control.data(), control.size());  // best-effort
    ::close(fd_);
    fd_ = -1;
  }
  if (pid_ > 0) {
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
  }
}

}  // namespace hbguard
