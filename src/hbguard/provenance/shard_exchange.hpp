// The shard-side half of the distributed-HBG exchange (§5): the FIFO
// channel matcher every shard runs over its merged event stream, and the
// socket-loopback harness that runs that matcher in a separate process.
//
// ShardChannelMatcher replicates RuleMatchEngine::match_channels exactly —
// including the skip-too-late-receive semantics — over ShardMessages fed in
// global capture order. It is deliberately ignorant of shards, graphs and
// records: given the same ordered event stream it emits the same matched
// (send, recv) pairs whether it runs inline in the store, on a ThreadPool
// task, or inside a spawned matcher process on the far side of a socketpair.
// The DistributedHbgStore classifies each returned pair (same-shard edge vs
// cross-shard remote-parent entry) when it applies them.
//
// LoopbackMatcherProcess is the §5 deployment shape made real: the matcher
// runs behind a genuine process boundary, fed exclusively through the
// shard_wire codec over an AF_UNIX socketpair (the same kernel transport
// hbguardd's ingest sockets use). The parent streams kCrossBatch /
// kLocalBatch frames as construction proceeds; at the quiescence barrier it
// sends kFlush and reads back one kMatches frame. The child buffers decoded
// events, sorts them by capture sequence at each flush, feeds the matcher,
// and replies — it never touches the parent's memory, so the differential
// harness proving kLoopback byte-identical to the single-graph oracle
// certifies that everything the matching pass needs really crosses the
// wire.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "hbguard/provenance/shard_wire.hpp"

namespace hbguard {

class ShardChannelMatcher {
 public:
  explicit ShardChannelMatcher(SimTime cross_router_slack_us)
      : slack_us_(cross_router_slack_us) {}

  /// Feed one event; events must arrive in global capture order (sort by
  /// ShardMessage::seq first). Appends any pair this event completes.
  void feed(const ShardMessage& event, std::vector<ShardMatch>& out);

  /// Feed a batch after sorting it by seq in place.
  void feed_sorted(std::vector<ShardMessage>& events, std::vector<ShardMatch>& out);

 private:
  struct PendingIo {
    IoId id = kNoIo;
    SimTime logged_time = 0;
  };
  struct ChannelState {
    std::deque<PendingIo> unmatched_sends;
    std::deque<PendingIo> unmatched_recvs;
  };

  SimTime slack_us_;
  std::map<std::string, ChannelState> channels_;
};

/// A shard matcher spawned into its own process behind an AF_UNIX
/// socketpair: posix_spawn re-execs /proc/self/exe, and a pre-main hook in
/// shard_exchange.cpp turns the fresh process into the matcher (exec —
/// unlike a bare fork from a thread-pool-active parent — cannot inherit a
/// lock some other thread held at spawn time). All methods are
/// parent-side; the child runs a read loop (decode → buffer → on kFlush:
/// sort, match, reply) until kShutdown/EOF.
class LoopbackMatcherProcess {
 public:
  LoopbackMatcherProcess() = default;
  ~LoopbackMatcherProcess();

  LoopbackMatcherProcess(const LoopbackMatcherProcess&) = delete;
  LoopbackMatcherProcess& operator=(const LoopbackMatcherProcess&) = delete;

  /// socketpair + posix_spawn of /proc/self/exe. The child never reaches
  /// main. False (with a logged error) if any syscall fails.
  bool start(SimTime cross_router_slack_us);

  bool running() const { return pid_ > 0; }

  /// Ship already-encoded frame bytes (one or more complete frames).
  bool write_frames(std::span<const std::uint8_t> bytes);

  /// Barrier: kFlush, then block for the child's kMatches reply. Matches
  /// come back in the child's deterministic feed order. On a dead or
  /// misbehaving child this logs and returns an empty list (the
  /// differential harness then fails loudly on the missing edges).
  std::vector<ShardMatch> flush();

  /// kShutdown + waitpid. Safe to call twice.
  void shutdown();

 private:
  int fd_ = -1;
  pid_t pid_ = -1;
};

}  // namespace hbguard
