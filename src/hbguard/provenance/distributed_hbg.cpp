#include "hbguard/provenance/distributed_hbg.hpp"

#include <algorithm>
#include <functional>

#include "hbguard/hbr/incremental.hpp"
#include "hbguard/util/thread_pool.hpp"

namespace hbguard {

namespace {
constexpr std::size_t kVertexSlotBytes = 16;  // id + store index
constexpr std::size_t kHalfEdgeBytes = 16;    // other + origin + confidence
bool internal_peer(const IoRecord& r) {
  return r.peer != kExternalRouter && r.peer != kInvalidRouter;
}
}  // namespace

DistributedHbgStore::DistributedHbgStore() : DistributedHbgStore(Options{}) {}

DistributedHbgStore::DistributedHbgStore(Options options) : options_(options) {}

DistributedHbgStore::DistributedHbgStore(const HappensBeforeGraph& global)
    : DistributedHbgStore(global, Options{}) {}

DistributedHbgStore::DistributedHbgStore(const HappensBeforeGraph& global, Options options)
    : options_(options) {
  // Adoption path: partition an already-built graph. Vertices share the
  // global graph's record store when it has one (each vertex then costs one
  // id+index slot instead of a full record copy).
  store_ = global.record_store();
  std::less_equal<const IoRecord*> le;
  std::less<const IoRecord*> lt;
  global.for_each_vertex([&](const IoRecord& record) {
    owner_[record.id] = record.router;
    Shard& shard = *shards_[assign_shard(record.router)];
    HappensBeforeGraph& graph = shard.builder.graph_mutable();
    if (store_ != nullptr && !store_->empty() && le(store_->data(), &record) &&
        lt(&record, store_->data() + store_->size())) {
      graph.add_vertex_ref(record.id, static_cast<std::uint32_t>(&record - store_->data()));
    } else {
      graph.add_vertex(record);
    }
  });
  global.for_each_edge_view([&](const HbgEdgeView& edge) {
    std::uint32_t from_shard = shard_of(owner_.at(edge.from));
    std::uint32_t to_shard = shard_of(owner_.at(edge.to));
    if (from_shard == to_shard) {
      shards_[to_shard]->builder.graph_mutable().add_edge(edge.from, edge.to, edge.confidence,
                                                          edge.origin);
    } else {
      HbgEdge copy{edge.from, edge.to, edge.confidence, std::string(edge.origin)};
      shards_[to_shard]->cross_in[edge.to].push_back(copy);
      shards_[from_shard]->cross_out[edge.from].push_back(std::move(copy));
      ++cross_edge_total_;
    }
  });
  for (auto& shard : shards_) shard->builder.graph_mutable().compact();
}

void DistributedHbgStore::attach_store(const std::vector<IoRecord>* store) { store_ = store; }

DistributedHbgStore::Shard& DistributedHbgStore::new_shard() {
  shards_.push_back(std::make_unique<Shard>(options_.matcher));
  if (store_ != nullptr) {
    shards_.back()->builder.attach_store(store_);
  }
  return *shards_.back();
}

std::uint32_t DistributedHbgStore::shard_of(RouterId router) const {
  return router_shard_.at(router);
}

std::uint32_t DistributedHbgStore::assign_shard(RouterId router) {
  auto it = router_shard_.find(router);
  if (it != router_shard_.end()) return it->second;
  std::uint32_t index;
  if (options_.num_shards > 0) {
    index = static_cast<std::uint32_t>(router % options_.num_shards);
    while (shards_.size() <= index) new_shard();
  } else {
    // One shard per router, created in order of first appearance (capture
    // order for streaming construction — deterministic at any thread
    // count, since assignment happens in the serial routing phase).
    index = static_cast<std::uint32_t>(shards_.size());
    new_shard();
  }
  router_shard_.emplace(router, index);
  return index;
}

void DistributedHbgStore::ingest_shard_batch(Shard& shard, std::span<const IoRecord> records) {
  // Phase A (parallel per shard): same-router rule matching over the
  // shard's own tap stream only. Every edge the local-only engine emits
  // has both endpoints on the same router, hence inside this shard.
  for (std::uint32_t index : shard.batch) {
    shard.builder.append(records.subspan(index, 1));
  }
  shard.batch.clear();
}

void DistributedHbgStore::stitch_shard_channels(std::uint32_t shard_index) {
  // Phase C (parallel per shard): replay the engine's FIFO channel
  // semantics over this receiver shard's channel events — local sends and
  // receives merged, in capture order, with inbox sends inserted exactly
  // where their capture position put them (the routing phase already
  // interleaved them).
  Shard& shard = *shards_[shard_index];
  for (const ChannelEvent& event : shard.events) {
    ChannelState& channel = shard.channels[event.key];
    if (event.is_send) {
      // Receives this (too-late) send can no longer serve are dropped —
      // RuleMatchEngine::match_channels' skip semantics.
      while (!channel.unmatched_recvs.empty() &&
             event.logged_time > channel.unmatched_recvs.front().logged_time +
                                     options_.matcher.cross_router_slack_us) {
        channel.unmatched_recvs.pop_front();
      }
      if (!channel.unmatched_recvs.empty()) {
        PendingIo recv = channel.unmatched_recvs.front();
        channel.unmatched_recvs.pop_front();
        HbgEdge edge{event.id, recv.id, 1.0, "send->recv"};
        std::uint32_t send_shard = shard_of(event.sender_router);
        if (send_shard == shard_index) {
          shard.builder.add_matched_edge(edge);
        } else {
          shard.cross_in[recv.id].push_back(edge);
          shard.emitted_cross.emplace_back(send_shard, std::move(edge));
        }
      } else {
        channel.unmatched_sends.push_back({event.id, event.logged_time});
      }
    } else {
      if (!channel.unmatched_sends.empty() &&
          channel.unmatched_sends.front().logged_time <=
              event.logged_time + options_.matcher.cross_router_slack_us) {
        PendingIo send = channel.unmatched_sends.front();
        channel.unmatched_sends.pop_front();
        HbgEdge edge{send.id, event.id, 1.0, "send->recv"};
        std::uint32_t send_shard = shard_of(event.sender_router);
        if (send_shard == shard_index) {
          shard.builder.add_matched_edge(edge);
        } else {
          shard.cross_in[event.id].push_back(edge);
          shard.emitted_cross.emplace_back(send_shard, std::move(edge));
        }
      } else {
        channel.unmatched_recvs.push_back({event.id, event.logged_time});
      }
    }
  }
  shard.events.clear();
}

void DistributedHbgStore::append(std::span<const IoRecord> records, ThreadPool* pool) {
  if (records.empty()) return;
  stats_.records_ingested += records.size();

  // Phase B first (serial): assign owners and shards, split the batch into
  // per-shard record lists, and route channel events to their *receiving*
  // shard — sends whose receiver lives on another shard cross the wire as
  // ShardMessages into that shard's inbox.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const IoRecord& r = records[i];
    owner_[r.id] = r.router;
    std::uint32_t home = assign_shard(r.router);
    shards_[home]->batch.push_back(static_cast<std::uint32_t>(i));

    if (r.kind == IoKind::kSendAdvert && internal_peer(r)) {
      std::uint32_t recv_shard = assign_shard(r.peer);
      std::string key = RuleMatchEngine::channel_key(r, /*is_send=*/true);
      if (recv_shard != home) {
        ShardMessage message{r.id, r.router, r.peer, r.logged_time, key};
        ++stats_.messages;
        stats_.wire_bytes += message.wire_bytes();
        shards_[recv_shard]->inbox_bytes += message.wire_bytes();
        shards_[recv_shard]->inbox.push_back(std::move(message));
      }
      shards_[recv_shard]->events.push_back(
          {std::move(key), r.id, r.logged_time, r.router, /*is_send=*/true});
    } else if (r.kind == IoKind::kRecvAdvert && internal_peer(r)) {
      // The sender may not have produced a record yet; pin its shard now so
      // the (parallel) stitching phase can classify the match.
      assign_shard(r.peer);
      shards_[home]->events.push_back({RuleMatchEngine::channel_key(r, /*is_send=*/false),
                                       r.id, r.logged_time, r.peer, /*is_send=*/false});
    }
  }

  // Phases A + C fan out one task per shard: shards touch disjoint state,
  // and each shard's work is internally ordered, so results are identical
  // at any thread count (including pool == nullptr).
  auto shard_task = [&](std::size_t s) {
    ingest_shard_batch(*shards_[s], records);
    stitch_shard_channels(static_cast<std::uint32_t>(s));
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->parallel_for(shards_.size(), shard_task);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) shard_task(s);
  }

  // Phase D (serial): deliver cross-shard matches back to the sending
  // shard's forward index so descendant walks can leave the shard too.
  for (auto& shard : shards_) {
    for (auto& [send_shard, edge] : shard->emitted_cross) {
      ++cross_edge_total_;
      ++stats_.cross_edges;
      shards_[send_shard]->cross_out[edge.from].push_back(std::move(edge));
    }
    shard->emitted_cross.clear();
  }
}

const HappensBeforeGraph* DistributedHbgStore::subgraph(RouterId router) const {
  auto it = router_shard_.find(router);
  return it == router_shard_.end() ? nullptr : &shards_[it->second]->builder.graph();
}

const IoRecord* DistributedHbgStore::record(IoId id) const {
  auto it = owner_.find(id);
  if (it == owner_.end()) return nullptr;
  return shards_[shard_of(it->second)]->builder.graph().record(id);
}

std::vector<IoId> DistributedHbgStore::root_causes(IoId fault, double min_confidence,
                                                   DistributedQueryStats* stats) const {
  std::vector<IoId> roots;
  auto owner_it = owner_.find(fault);
  if (owner_it == owner_.end()) return roots;

  DistributedQueryStats local_stats;
  std::set<RouterId> contacted{owner_it->second};
  std::set<IoId> visited{fault};
  std::deque<IoId> frontier{fault};

  while (!frontier.empty()) {
    IoId current = frontier.front();
    frontier.pop_front();
    const Shard& shard = *shards_[shard_of(owner_.at(current))];

    bool has_parent = false;
    // Local in-edges: free (the shard expands within its own subgraph).
    shard.builder.graph().for_each_in_edge(current, min_confidence,
                                           [&](const HbgEdgeView& edge) {
                                             has_parent = true;
                                             ++local_stats.edges_walked;
                                             if (visited.insert(edge.from).second) {
                                               frontier.push_back(edge.from);
                                             }
                                           });
    // Cross-shard in-edges: resolve the remote parent via the message
    // index — ship the partial path to the shard owning the send.
    auto cross = shard.cross_in.find(current);
    if (cross != shard.cross_in.end()) {
      for (const HbgEdge& edge : cross->second) {
        if (edge.confidence < min_confidence) continue;
        has_parent = true;
        ++local_stats.edges_walked;
        ++local_stats.messages;
        contacted.insert(owner_.at(edge.from));
        if (visited.insert(edge.from).second) frontier.push_back(edge.from);
      }
    }
    if (!has_parent) roots.push_back(current);
  }

  // The fault itself only counts as a root when it has no parents at all
  // (mirrors HappensBeforeGraph::root_causes).
  if (!(roots.size() == 1 && roots.front() == fault)) {
    std::erase(roots, fault);
  }
  std::sort(roots.begin(), roots.end());

  local_stats.routers_contacted = contacted.size();
  if (stats != nullptr) *stats = local_stats;
  return roots;
}

std::vector<IoId> DistributedHbgStore::ancestors(IoId fault, double min_confidence,
                                                 DistributedQueryStats* stats) const {
  std::vector<IoId> up;
  auto owner_it = owner_.find(fault);
  if (owner_it == owner_.end()) return up;

  DistributedQueryStats local_stats;
  std::set<RouterId> contacted{owner_it->second};
  std::set<IoId> visited{fault};
  std::deque<IoId> frontier{fault};

  while (!frontier.empty()) {
    IoId current = frontier.front();
    frontier.pop_front();
    const Shard& shard = *shards_[shard_of(owner_.at(current))];
    shard.builder.graph().for_each_in_edge(current, min_confidence,
                                           [&](const HbgEdgeView& edge) {
                                             ++local_stats.edges_walked;
                                             if (visited.insert(edge.from).second) {
                                               frontier.push_back(edge.from);
                                             }
                                           });
    auto cross = shard.cross_in.find(current);
    if (cross != shard.cross_in.end()) {
      for (const HbgEdge& edge : cross->second) {
        if (edge.confidence < min_confidence) continue;
        ++local_stats.edges_walked;
        ++local_stats.messages;
        contacted.insert(owner_.at(edge.from));
        if (visited.insert(edge.from).second) frontier.push_back(edge.from);
      }
    }
  }

  visited.erase(fault);
  up.assign(visited.begin(), visited.end());
  local_stats.routers_contacted = contacted.size();
  if (stats != nullptr) *stats = local_stats;
  return up;
}

std::vector<IoId> DistributedHbgStore::path_from(IoId root, IoId fault, double min_confidence,
                                                 DistributedQueryStats* stats) const {
  // Mirrors HappensBeforeGraph::path_from's canonical spec: BFS distances
  // from the root over the forward edges, then backtrack picking the
  // smallest-id predecessor on a shortest path at each step.
  if (root == fault) return {root};
  if (!owner_.contains(root) || !owner_.contains(fault)) return {};

  DistributedQueryStats local_stats;
  std::set<RouterId> contacted{owner_.at(root)};
  std::map<IoId, std::uint32_t> dist;
  dist[root] = 0;
  std::deque<IoId> frontier{root};
  bool found = false;

  auto discover = [&](IoId to, std::uint32_t d) {
    if (dist.emplace(to, d).second) {
      if (to == fault) {
        found = true;
      } else {
        frontier.push_back(to);
      }
    }
  };

  while (!frontier.empty() && !found) {
    IoId current = frontier.front();
    frontier.pop_front();
    std::uint32_t next_dist = dist.at(current) + 1;
    const Shard& shard = *shards_[shard_of(owner_.at(current))];
    shard.builder.graph().for_each_out_edge(current, min_confidence,
                                            [&](const HbgEdgeView& edge) {
                                              ++local_stats.edges_walked;
                                              discover(edge.to, next_dist);
                                              return found;
                                            });
    if (found) break;
    auto cross = shard.cross_out.find(current);
    if (cross != shard.cross_out.end()) {
      for (const HbgEdge& edge : cross->second) {
        if (edge.confidence < min_confidence) continue;
        ++local_stats.edges_walked;
        ++local_stats.messages;
        contacted.insert(owner_.at(edge.to));
        discover(edge.to, next_dist);
        if (found) break;
      }
    }
  }
  if (!found) {
    local_stats.routers_contacted = contacted.size();
    if (stats != nullptr) *stats = local_stats;
    return {};
  }

  std::vector<IoId> path{fault};
  IoId walk = fault;
  while (walk != root) {
    std::uint32_t want = dist.at(walk) - 1;
    IoId best = kNoIo;
    auto consider = [&](IoId from, double confidence) {
      if (confidence < min_confidence) return;
      auto it = dist.find(from);
      if (it == dist.end() || it->second != want) return;
      if (best == kNoIo || from < best) best = from;
    };
    const Shard& shard = *shards_[shard_of(owner_.at(walk))];
    shard.builder.graph().for_each_in_edge(
        walk, min_confidence, [&](const HbgEdgeView& edge) { consider(edge.from, edge.confidence); });
    auto cross = shard.cross_in.find(walk);
    if (cross != shard.cross_in.end()) {
      for (const HbgEdge& edge : cross->second) {
        ++local_stats.messages;
        consider(edge.from, edge.confidence);
      }
    }
    walk = best;
    path.push_back(walk);
  }
  std::reverse(path.begin(), path.end());
  local_stats.routers_contacted = contacted.size();
  if (stats != nullptr) *stats = local_stats;
  return path;
}

std::map<RouterId, DistributedHbgStore::RouterStorage>
DistributedHbgStore::per_router_storage() const {
  std::map<RouterId, RouterStorage> storage;
  for (const auto& [router, shard_index] : router_shard_) storage[router];
  for (const auto& shard : shards_) {
    const HappensBeforeGraph& graph = shard->builder.graph();
    graph.for_each_vertex([&](const IoRecord& record) {
      RouterStorage& slot = storage[record.router];
      ++slot.ios;
      slot.storage_bytes += kVertexSlotBytes;
    });
    // Edges are stored at the head (receiving) router: one half-edge in
    // each direction.
    graph.for_each_edge_view([&](const HbgEdgeView& edge) {
      const IoRecord* to = graph.record(edge.to);
      if (to == nullptr) return;
      RouterStorage& slot = storage[to->router];
      ++slot.local_edges;
      slot.storage_bytes += 2 * kHalfEdgeBytes;
    });
    for (const auto& [recv, edges] : shard->cross_in) {
      auto owner_it = owner_.find(recv);
      if (owner_it == owner_.end()) continue;
      RouterStorage& slot = storage[owner_it->second];
      slot.cross_in_edges += edges.size();
      slot.storage_bytes += edges.size() * (kHalfEdgeBytes + sizeof(IoId));
    }
    for (const ShardMessage& message : shard->inbox) {
      RouterStorage& slot = storage[message.to_router];
      ++slot.inbox_messages;
      slot.storage_bytes += message.wire_bytes();
    }
  }
  return storage;
}

}  // namespace hbguard
