#include "hbguard/provenance/distributed_hbg.hpp"

#include <algorithm>
#include <deque>
#include <functional>

namespace hbguard {

DistributedHbgStore::DistributedHbgStore(const HappensBeforeGraph& global) {
  // Shards share the global graph's record store when it has one (each
  // vertex then costs one id+index slot instead of a full record copy).
  const std::vector<IoRecord>* store = global.record_store();
  std::less_equal<const IoRecord*> le;
  std::less<const IoRecord*> lt;
  global.for_each_vertex([&](const IoRecord& record) {
    owner_[record.id] = record.router;
    auto [it, inserted] = subgraphs_.try_emplace(record.router);
    if (inserted && store != nullptr) it->second.attach_record_store(store);
    if (store != nullptr && !store->empty() && le(store->data(), &record) &&
        lt(&record, store->data() + store->size())) {
      it->second.add_vertex_ref(record.id,
                                static_cast<std::uint32_t>(&record - store->data()));
    } else {
      it->second.add_vertex(record);
    }
  });
  global.for_each_edge_view([&](const HbgEdgeView& edge) {
    RouterId from_owner = owner_.at(edge.from);
    RouterId to_owner = owner_.at(edge.to);
    if (from_owner == to_owner) {
      subgraphs_.at(from_owner).add_edge(edge.from, edge.to, edge.confidence, edge.origin);
    } else {
      cross_in_[edge.to].push_back(
          {edge.from, edge.to, edge.confidence, std::string(edge.origin)});
      ++cross_edge_total_;
    }
  });
  for (auto& [router, shard] : subgraphs_) shard.compact();
}

const HappensBeforeGraph* DistributedHbgStore::subgraph(RouterId router) const {
  auto it = subgraphs_.find(router);
  return it == subgraphs_.end() ? nullptr : &it->second;
}

std::vector<IoId> DistributedHbgStore::root_causes(IoId fault, double min_confidence,
                                                   DistributedQueryStats* stats) const {
  std::vector<IoId> roots;
  auto owner_it = owner_.find(fault);
  if (owner_it == owner_.end()) return roots;

  DistributedQueryStats local_stats;
  std::set<RouterId> contacted{owner_it->second};
  std::set<IoId> visited{fault};
  std::deque<IoId> frontier{fault};

  while (!frontier.empty()) {
    IoId current = frontier.front();
    frontier.pop_front();
    RouterId router = owner_.at(current);
    const HappensBeforeGraph& shard = subgraphs_.at(router);

    bool has_parent = false;
    // Local in-edges: free (the router expands within its own subgraph).
    shard.for_each_in_edge(current, min_confidence, [&](const HbgEdgeView& edge) {
      has_parent = true;
      ++local_stats.edges_walked;
      if (visited.insert(edge.from).second) frontier.push_back(edge.from);
    });
    // Cross-router in-edges: ship the partial path to the sender's router.
    auto cross = cross_in_.find(current);
    if (cross != cross_in_.end()) {
      for (const HbgEdge& edge : cross->second) {
        if (edge.confidence < min_confidence) continue;
        has_parent = true;
        ++local_stats.edges_walked;
        ++local_stats.messages;
        contacted.insert(owner_.at(edge.from));
        if (visited.insert(edge.from).second) frontier.push_back(edge.from);
      }
    }
    if (!has_parent) roots.push_back(current);
  }

  // The fault itself only counts as a root when it has no parents at all
  // (mirrors HappensBeforeGraph::root_causes).
  if (!(roots.size() == 1 && roots.front() == fault)) {
    std::erase(roots, fault);
  }
  std::sort(roots.begin(), roots.end());

  local_stats.routers_contacted = contacted.size();
  if (stats != nullptr) *stats = local_stats;
  return roots;
}

}  // namespace hbguard
